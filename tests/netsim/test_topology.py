"""Unit tests for the topology container and generators."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.netsim.topology import Topology, TopologyBuilder


class TestTopologyConstruction:
    def test_add_node_assigns_unique_addresses(self):
        topo = Topology()
        a = topo.add_node("a")
        b = topo.add_node("b")
        assert a.address != b.address

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_node("a")

    def test_duplicate_address_rejected(self):
        topo = Topology()
        topo.add_node("a", address=100)
        with pytest.raises(TopologyError):
            topo.add_node("b", address=100)

    def test_link_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "zzz")

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "a")

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b")
        with pytest.raises(TopologyError):
            topo.add_link("b", "a")

    def test_node_lookup_by_address(self):
        topo = Topology()
        node = topo.add_node("a")
        assert topo.node_by_address(node.address) is node
        assert topo.node_by_address(0xDEAD) is None

    def test_link_between(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_node("c")
        link = topo.add_link("a", "b")
        assert topo.link_between("a", "b") is link
        assert topo.link_between("a", "c") is None

    def test_graph_excludes_down_links(self):
        topo = Topology()
        for name in "abc":
            topo.add_node(name)
        topo.add_link("a", "b")
        down = topo.add_link("b", "c")
        down.fail()
        graph = topo.graph()
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "c")
        assert topo.graph(only_up=False).has_edge("b", "c")


class TestBuilders:
    def test_line(self):
        topo = TopologyBuilder.line(5)
        assert len(topo.nodes) == 5
        assert len(topo.links) == 4
        assert topo.is_connected()

    def test_star(self):
        topo = TopologyBuilder.star(6)
        assert len(topo.nodes) == 7
        assert len(topo.node("hub").interfaces) == 6

    def test_balanced_tree_counts(self):
        topo = TopologyBuilder.balanced_tree(depth=3, fanout=2)
        # 1 + 2 + 4 + 8 nodes, 14 links
        assert len(topo.nodes) == 15
        assert len(topo.links) == 14
        assert topo.is_connected()

    def test_balanced_tree_depth_zero(self):
        topo = TopologyBuilder.balanced_tree(depth=0)
        assert list(topo.nodes) == ["r"]

    def test_random_connected_is_connected_and_seeded(self):
        topo1 = TopologyBuilder.random_connected(30, seed=5)
        topo2 = TopologyBuilder.random_connected(30, seed=5)
        assert topo1.is_connected()
        edges1 = {frozenset((l.node_a.name, l.node_b.name)) for l in topo1.links}
        edges2 = {frozenset((l.node_a.name, l.node_b.name)) for l in topo2.links}
        assert edges1 == edges2

    def test_random_connected_different_seeds_differ(self):
        e1 = {frozenset((l.node_a.name, l.node_b.name))
              for l in TopologyBuilder.random_connected(30, seed=1).links}
        e2 = {frozenset((l.node_a.name, l.node_b.name))
              for l in TopologyBuilder.random_connected(30, seed=2).links}
        assert e1 != e2

    def test_isp_structure(self):
        topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=2, hosts_per_stub=3)
        assert topo.is_connected()
        assert "t0" in topo.nodes and "e3_1" in topo.nodes and "h3_1_2" in topo.nodes
        # hosts have degree 1
        assert len(topo.node("h0_0_0").interfaces) == 1

    def test_isp_small_transit_counts(self):
        assert TopologyBuilder.isp(n_transit=1).is_connected()
        assert TopologyBuilder.isp(n_transit=2).is_connected()

    def test_lan(self):
        topo = TopologyBuilder.lan(8)
        assert len(topo.node("gw").interfaces) == 8

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            TopologyBuilder.line(0)
        with pytest.raises(TopologyError):
            TopologyBuilder.star(0)
        with pytest.raises(TopologyError):
            TopologyBuilder.balanced_tree(depth=-1)
        with pytest.raises(TopologyError):
            TopologyBuilder.random_connected(0)

    def test_diameter_of_line_matches_networkx(self):
        topo = TopologyBuilder.line(10)
        graph = topo.graph()
        assert nx.diameter(graph) == 9
