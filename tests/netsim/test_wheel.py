"""Timer-wheel scheduler unit tests.

The broad engine contract (ordering, cancellation, ``until``
semantics, compaction) is pinned for the heap in ``test_engine``;
``tests/properties/test_scheduler_equivalence`` pins heap≡wheel over
randomized workloads. This file targets the wheel's own machinery:
slot/bucket placement, the open-slot bisect path, the overflow heap
and cascade, the empty-slot jump, the ``run(until=...)`` cursor bound,
and the wheel-specific stats surfaced in perf reports.
"""

import pytest

from repro.errors import SimulationError
from repro.netsim.engine import Simulator, TimerWheel


def wheel_sim(**kwargs) -> Simulator:
    kwargs.setdefault("scheduler", "wheel")
    return Simulator(**kwargs)


class TestConstruction:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(scheduler="calendar")

    def test_wheel_only_built_in_wheel_mode(self):
        assert Simulator(scheduler="heap")._wheel is None
        assert isinstance(wheel_sim()._wheel, TimerWheel)

    def test_invalid_wheel_tuning_rejected(self):
        with pytest.raises(SimulationError):
            wheel_sim(wheel_granularity=0.0)
        with pytest.raises(SimulationError):
            wheel_sim(wheel_slots=0)


class TestPlacement:
    def test_near_events_go_to_buckets_not_overflow(self):
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=100)
        for i in range(10):
            sim.schedule_at(0.001 * i, lambda: None)
        stats = sim.scheduler_stats()
        assert stats["wheel_inserts"] == 10
        assert stats["overflow_inserts"] == 0

    def test_beyond_horizon_goes_to_overflow(self):
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=100)  # horizon 0.1s
        sim.schedule_at(0.05, lambda: None)
        sim.schedule_at(5.0, lambda: None)
        stats = sim.scheduler_stats()
        assert stats["wheel_inserts"] == 1
        assert stats["overflow_inserts"] == 1

    def test_overflow_cascades_and_dispatches_in_order(self):
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=64)  # horizon 64ms
        got = []
        sim.schedule_at(10.0, lambda: got.append("far"))
        sim.schedule_at(0.5, lambda: got.append("mid"))
        sim.schedule_at(0.01, lambda: got.append("near"))
        sim.run()
        assert got == ["near", "mid", "far"]
        assert sim.scheduler_stats()["cascades"] >= 1

    def test_empty_slot_jump_skips_dead_time(self):
        # 1000 slots of 1ms: events 50 simulated seconds apart would
        # mean ~50k slot scans without the jump optimization.
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=1000)
        got = []
        for k in range(4):
            sim.schedule_at(50.0 * k + 0.001, lambda k=k: got.append(k))
        sim.run()
        assert got == [0, 1, 2, 3]
        assert sim.scheduler_stats()["slots_scanned"] < 1000

    def test_mid_dispatch_insert_into_open_slot(self):
        # A zero-delay follow-up lands in the currently-open slot and
        # must still run after its scheduler (time tie → seq order).
        sim = wheel_sim()
        got = []

        def first():
            got.append("first")
            sim.schedule(0.0, lambda: got.append("follow-up"))

        sim.schedule_at(0.01, first)
        sim.schedule_at(0.01, lambda: got.append("peer"))
        sim.run()
        assert got == ["first", "peer", "follow-up"]


class TestRunSemantics:
    def test_until_is_inclusive_and_advances_clock(self):
        sim = wheel_sim()
        got = []
        sim.schedule_at(1.0, lambda: got.append("at"))
        sim.schedule_at(1.5, lambda: got.append("late"))
        ran = sim.run(until=1.0)
        assert ran == 1 and got == ["at"] and sim.now == 1.0
        sim.run()
        assert got == ["at", "late"]

    def test_far_future_peek_does_not_degrade_wheel(self):
        # The regression the limit_slot bound fixes: a bounded run that
        # stops short of a far-future overflow event must not advance
        # the cursor to that event's slot — if it did, every event
        # scheduled afterwards would take the open-slot bisect path
        # instead of a bucket append.
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=8192)
        sim.schedule_at(30.0, lambda: None)  # keepalive-style timer
        sim.run(until=0.01)
        before = sim.scheduler_stats()["wheel_inserts"]
        for i in range(100):
            sim.schedule_at(0.02 + 0.001 * i, lambda: None)
        stats = sim.scheduler_stats()
        assert stats["wheel_inserts"] == before + 100
        assert sim._wheel._cursor <= int(0.01 / 0.001) + 1

    def test_max_events_leaves_remainder(self):
        sim = wheel_sim()
        got = []
        for i in range(5):
            sim.schedule_at(0.01 * (i + 1), lambda i=i: got.append(i))
        assert sim.run(max_events=2) == 2
        assert got == [0, 1] and sim.pending() == 3
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_peek_time_sees_next_live_event(self):
        sim = wheel_sim()
        a = sim.schedule_at(0.5, lambda: None)
        sim.schedule_at(1.0, lambda: None)
        assert sim.peek_time() == 0.5
        a.cancel()
        assert sim.peek_time() == 1.0

    def test_step_dispatches_single_event(self):
        sim = wheel_sim()
        got = []
        sim.schedule_at(0.1, lambda: got.append("a"))
        sim.schedule_at(0.2, lambda: got.append("b"))
        assert sim.step() and got == ["a"]
        assert sim.step() and got == ["a", "b"]
        assert not sim.step()


class TestCancellation:
    def test_cancelled_event_in_bucket_is_skipped(self):
        sim = wheel_sim()
        got = []
        event = sim.schedule_at(0.05, lambda: got.append("dead"))
        sim.schedule_at(0.06, lambda: got.append("live"))
        event.cancel()
        sim.run()
        assert got == ["live"]

    def test_cancelled_event_in_overflow_is_skipped(self):
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=16)
        got = []
        event = sim.schedule_at(9.0, lambda: got.append("dead"))
        sim.schedule_at(10.0, lambda: got.append("live"))
        event.cancel()
        sim.run()
        assert got == ["live"]

    def test_pending_is_exact_through_churn(self):
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=32)
        events = [
            sim.schedule_at(0.001 * i if i % 2 else 1.0 + i, lambda: None)
            for i in range(200)
        ]
        assert sim.pending() == 200
        for event in events[::2]:
            event.cancel()
        assert sim.pending() == 100
        sim.run()
        assert sim.pending() == 0

    def test_mass_cancellation_compacts(self):
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=32)
        keep = [sim.schedule_at(0.001 + 0.0005 * i, lambda: None) for i in range(10)]
        drop = [sim.schedule_at(2.0 + 0.001 * i, lambda: None) for i in range(300)]
        for event in drop:
            event.cancel()
        # Compaction triggered (cancelled majority): the wheel sheds
        # most dead entries; only a sub-threshold lazy residue remains.
        assert len(sim._wheel) < len(keep) + len(drop) // 4
        assert sim.run() == len(keep)

    def test_double_cancel_counts_once(self):
        sim = wheel_sim()
        sim.schedule_at(0.5, lambda: None)
        event = sim.schedule_at(0.2, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending() == 1
        assert sim.run() == 1


class TestStats:
    def test_scheduler_stats_shape(self):
        sim = wheel_sim(wheel_granularity=0.002, wheel_slots=128)
        sim.schedule_at(0.01, lambda: None)
        sim.schedule_at(99.0, lambda: None)
        sim.run()
        stats = sim.scheduler_stats()
        assert stats["scheduler"] == "wheel"
        assert stats["granularity"] == 0.002
        assert stats["num_slots"] == 128
        assert stats["wheel_inserts"] == 1
        assert stats["overflow_inserts"] == 1
        assert 0.0 <= stats["wheel_insert_share"] <= 1.0
        assert stats["pending"] == 0

    def test_heap_stats_shape(self):
        sim = Simulator(scheduler="heap")
        sim.schedule_at(0.01, lambda: None)
        stats = sim.scheduler_stats()
        assert stats["scheduler"] == "heap"
        assert stats["pending"] == 1


class TestHorizonReinjection:
    """The sharded runner's import pattern: run an exclusive-horizon
    window (``run(until=H, inclusive=False)``), then re-inject events at
    or just past the clamped clock. The wheel's cursor sits *on* the
    horizon slot after the window, so these inserts land in the open
    slot / current-bucket edge cases."""

    def test_reinjected_event_at_horizon_dispatches_next_window(self):
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=64)
        order = []
        for when in (0.5, 1.0, 1.5, 2.0):
            sim.schedule_at(when, lambda t=when: order.append(t))
        sim.run(until=1.5, inclusive=False)
        assert sim.now == 1.5 and order == [0.5, 1.0]
        # Import arriving exactly at the horizon: legal (arrival >= H)
        # and dispatched after the pre-existing t=1.5 event (lower seq).
        sim.schedule_at(1.5, lambda: order.append("reinj"))
        sim.run(until=2.5, inclusive=False)
        assert order == [0.5, 1.0, 1.5, "reinj", 2.0]

    def test_stats_count_reinjected_inserts(self):
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=64)
        sim.schedule_at(0.01, lambda: None)
        sim.run(until=0.02, inclusive=False)
        before = sim.scheduler_stats()["wheel_inserts"]
        sim.schedule_at(0.02, lambda: None)   # on the horizon
        sim.schedule_at(0.0205, lambda: None)  # inside the open slot
        stats = sim.scheduler_stats()
        assert stats["wheel_inserts"] == before + 2
        assert stats["pending"] == 2
        sim.run()
        assert sim.scheduler_stats()["pending"] == 0

    def test_cancel_of_reinjected_event_at_horizon(self):
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=64)
        order = []
        sim.schedule_at(0.5, lambda: order.append("pre"))
        sim.run(until=0.5, inclusive=False)
        keep = sim.schedule_at(0.5, lambda: order.append("keep"))
        drop = sim.schedule_at(0.5, lambda: order.append("drop"))
        drop.cancel()
        assert sim.pending() == 2  # pre and keep; the tombstone is dead
        sim.run()
        assert order == ["pre", "keep"]
        assert keep.cancelled is False

    def test_cancel_then_reinject_same_timestamp(self):
        # Cancelling a horizon event and re-injecting a replacement at
        # the identical timestamp must not resurrect the tombstone.
        sim = wheel_sim(wheel_granularity=0.001, wheel_slots=64)
        order = []
        sim.schedule_at(0.25, lambda: order.append("tick"))
        sim.run(until=0.25, inclusive=False)
        first = sim.schedule_at(0.25, lambda: order.append("first"))
        first.cancel()
        first.cancel()  # double cancel counts once
        assert sim.pending() == 1
        sim.schedule_at(0.25, lambda: order.append("second"))
        sim.run()
        assert order == ["tick", "second"]
