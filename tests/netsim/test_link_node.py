"""Unit tests for links, nodes, interfaces, and agent dispatch."""

import pytest

from repro.errors import SimulationError, TopologyError
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import MAX_INTERFACES, Node, ProtocolAgent
from repro.netsim.packet import Packet


class Sink(ProtocolAgent):
    def __init__(self, node):
        super().__init__(node)
        self.received = []

    def handle_packet(self, packet, ifindex):
        self.received.append((packet, ifindex))


def wire_pair(delay=0.001, loss=0.0, bandwidth=1e9):
    sim = Simulator(seed=1)
    a = Node(sim, "a", 1)
    b = Node(sim, "b", 2)
    link = Link(sim, a.add_interface(), b.add_interface(), delay=delay, loss=loss, bandwidth=bandwidth)
    return sim, a, b, link


class TestLinkDelivery:
    def test_packet_arrives_after_delay(self):
        sim, a, b, link = wire_pair(delay=0.5, bandwidth=1e12)
        sink = Sink(b)
        b.register_agent("data", sink)
        a.send(Packet(src=1, dst=2, size=0), 0)
        sim.run()
        assert len(sink.received) == 1
        assert sim.now == pytest.approx(0.5)

    def test_serialization_delay_included(self):
        sim, a, b, link = wire_pair(delay=0.0, bandwidth=1000.0)
        sink = Sink(b)
        b.register_agent("data", sink)
        a.send(Packet(src=1, dst=2, size=500), 0)
        sim.run()
        assert sim.now == pytest.approx(0.5)  # 500 B / 1000 B/s

    def test_bidirectional(self):
        sim, a, b, link = wire_pair()
        sink = Sink(a)
        a.register_agent("data", sink)
        b.send(Packet(src=2, dst=1), 0)
        sim.run()
        assert len(sink.received) == 1

    def test_loss_drops_packets_deterministically(self):
        sim, a, b, link = wire_pair(loss=0.5)
        sink = Sink(b)
        b.register_agent("data", sink)
        for _ in range(100):
            a.send(Packet(src=1, dst=2), 0)
        sim.run()
        assert 0 < len(sink.received) < 100
        assert link.lost_packets == 100 - len(sink.received)

    def test_reliable_flag_bypasses_loss(self):
        sim, a, b, link = wire_pair(loss=0.9)
        sink = Sink(b)
        b.register_agent("data", sink)
        for _ in range(20):
            packet = Packet(src=1, dst=2)
            packet.headers["reliable"] = True
            a.send(packet, 0)
        sim.run()
        assert len(sink.received) == 20

    def test_down_link_drops(self):
        sim, a, b, link = wire_pair()
        sink = Sink(b)
        b.register_agent("data", sink)
        link.fail()
        assert not a.send(Packet(src=1, dst=2), 0)
        sim.run()
        assert sink.received == []

    def test_link_state_change_notifies_agents(self):
        sim, a, b, link = wire_pair()
        changes = []

        class Watcher(ProtocolAgent):
            def handle_packet(self, packet, ifindex):
                pass
            def on_link_change(self, ifindex, up):
                changes.append((self.node.name, ifindex, up))

        a.register_agent("x", Watcher(a))
        b.register_agent("x", Watcher(b))
        link.fail()
        link.recover()
        assert ("a", 0, False) in changes and ("b", 0, True) in changes

    def test_validation(self):
        sim = Simulator()
        a, b = Node(sim, "a", 1), Node(sim, "b", 2)
        with pytest.raises(TopologyError):
            Link(sim, a.add_interface(), b.add_interface(), delay=-1)
        with pytest.raises(TopologyError):
            Link(sim, a.add_interface(), b.add_interface(), loss=1.0)
        with pytest.raises(TopologyError):
            Link(sim, a.add_interface(), b.add_interface(), bandwidth=0)


class TestNode:
    def test_interface_limit_is_32(self):
        sim = Simulator()
        node = Node(sim, "n", 1)
        for _ in range(MAX_INTERFACES):
            node.add_interface()
        with pytest.raises(TopologyError):
            node.add_interface()

    def test_agent_dispatch_by_proto(self):
        sim, a, b, link = wire_pair()
        data_sink, ecmp_sink = Sink(b), Sink(b)
        b.register_agent("data", data_sink)
        b.register_agent("ecmp", ecmp_sink)
        a.send(Packet(src=1, dst=2, proto="ecmp"), 0)
        sim.run()
        assert len(ecmp_sink.received) == 1 and not data_sink.received

    def test_wildcard_agent_catches_unknown(self):
        sim, a, b, link = wire_pair()
        catch_all = Sink(b)
        b.register_agent("*", catch_all)
        a.send(Packet(src=1, dst=2, proto="weird"), 0)
        sim.run()
        assert len(catch_all.received) == 1

    def test_unmatched_packets_counted(self):
        sim, a, b, link = wire_pair()
        a.send(Packet(src=1, dst=2, proto="weird"), 0)
        sim.run()
        assert b.unmatched_packets == 1

    def test_duplicate_agent_registration_rejected(self):
        sim = Simulator()
        node = Node(sim, "n", 1)
        node.register_agent("data", Sink(node))
        with pytest.raises(SimulationError):
            node.register_agent("data", Sink(node))

    def test_ttl_zero_packets_dropped(self):
        sim, a, b, link = wire_pair()
        sink = Sink(b)
        b.register_agent("data", sink)
        a.send(Packet(src=1, dst=2, ttl=0), 0)
        sim.run()
        assert sink.received == [] and b.dropped_packets == 1

    def test_send_to_missing_interface_raises(self):
        sim = Simulator()
        node = Node(sim, "n", 1)
        with pytest.raises(SimulationError):
            node.send(Packet(src=1, dst=2), 0)

    def test_interface_counters(self):
        sim, a, b, link = wire_pair()
        b.register_agent("data", Sink(b))
        a.send(Packet(src=1, dst=2, size=100), 0)
        sim.run()
        assert a.interfaces[0].tx_packets == 1
        assert a.interfaces[0].tx_bytes == 100
        assert b.interfaces[0].rx_packets == 1
        assert b.interfaces[0].rx_bytes == 100

    def test_neighbors_and_interface_to(self):
        sim, a, b, link = wire_pair()
        assert a.neighbors() == [b]
        assert a.interface_to(b).index == 0
        assert a.interface_to(a) is None
