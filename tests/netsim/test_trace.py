"""Unit tests for tracing helpers."""

from repro.netsim.trace import Counter, LatencyStats, PacketTrace


class TestPacketTrace:
    def test_record_and_filter(self):
        trace = PacketTrace()
        trace.record(0.0, "a", "tx", "ecmp", 36)
        trace.record(0.1, "b", "rx", "ecmp", 36)
        trace.record(0.2, "a", "tx", "data", 1316)
        assert len(trace) == 3
        assert len(trace.filter(node="a")) == 2
        assert len(trace.filter(direction="rx")) == 1
        assert len(trace.filter(proto="ecmp", node="a")) == 1

    def test_totals(self):
        trace = PacketTrace()
        trace.record(0.0, "a", "tx", "ecmp", 16)
        trace.record(0.0, "a", "tx", "ecmp", 24)
        assert trace.total_bytes(proto="ecmp") == 40
        assert trace.count(proto="ecmp") == 2
        assert trace.count(proto="data") == 0


class TestCounter:
    def test_incr_and_get(self):
        counter = Counter()
        counter.incr("x")
        counter.incr("x", 4)
        assert counter["x"] == 5
        assert counter["missing"] == 0

    def test_as_dict(self):
        counter = Counter()
        counter.incr("a")
        counter.incr("b", 2)
        assert counter.as_dict() == {"a": 1, "b": 2}


class TestLatencyStats:
    def test_statistics(self):
        stats = LatencyStats()
        stats.add(0.0, 0.5)
        stats.add(1.0, 1.1)
        stats.add(2.0, 2.9)
        assert len(stats) == 3
        assert abs(stats.min() - 0.1) < 1e-9
        assert abs(stats.max() - 0.9) < 1e-9
        assert abs(stats.mean() - 0.5) < 1e-9

    def test_empty(self):
        stats = LatencyStats()
        assert stats.mean() == 0.0
        assert stats.max() == 0.0
        assert stats.min() == 0.0


class TestLatencyPercentiles:
    def test_nearest_rank(self):
        stats = LatencyStats()
        for i in range(1, 101):
            stats.add(0.0, i / 1000.0)
        assert abs(stats.percentile(50) - 0.050) < 1e-12
        assert abs(stats.percentile(90) - 0.090) < 1e-12
        assert abs(stats.percentile(99) - 0.099) < 1e-12
        assert abs(stats.percentile(100) - 0.100) < 1e-12

    def test_single_sample(self):
        stats = LatencyStats()
        stats.add(0.0, 0.25)
        for p in (0, 50, 99, 100):
            assert stats.percentile(p) == 0.25

    def test_empty_is_zero(self):
        assert LatencyStats().percentile(99) == 0.0

    def test_out_of_range_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            LatencyStats().percentile(101)
        with pytest.raises(ValueError):
            LatencyStats().percentile(-1)

    def test_as_dict(self):
        stats = LatencyStats()
        stats.add(0.0, 0.1)
        stats.add(0.0, 0.3)
        summary = stats.as_dict()
        assert summary["count"] == 2.0
        assert abs(summary["mean"] - 0.2) < 1e-12
        assert summary["min"] == 0.1
        assert summary["max"] == 0.3
        assert summary["p50"] == 0.1
        assert summary["p99"] == 0.3


class TestTraceIndexes:
    def _populated(self):
        trace = PacketTrace()
        for i in range(50):
            node = f"n{i % 5}"
            proto = "ecmp" if i % 2 else "data"
            direction = ("tx", "rx", "drop")[i % 3]
            trace.record(i * 0.001, node, direction, proto, 100 + i)
        return trace

    def test_indexed_filters_match_full_scan(self):
        trace = self._populated()

        def scan(node=None, direction=None, proto=None):
            return [
                r
                for r in trace.records
                if (node is None or r.node == node)
                and (direction is None or r.direction == direction)
                and (proto is None or r.proto == proto)
            ]

        for node in (None, "n0", "n3", "missing"):
            for proto in (None, "ecmp", "data", "missing"):
                for direction in (None, "tx", "drop"):
                    assert trace.filter(
                        node=node, direction=direction, proto=proto
                    ) == scan(node=node, direction=direction, proto=proto)

    def test_index_preserves_insertion_order(self):
        trace = self._populated()
        times = [r.time for r in trace.filter(node="n1", proto="ecmp")]
        assert times == sorted(times)
