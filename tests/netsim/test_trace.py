"""Unit tests for tracing helpers."""

from repro.netsim.trace import Counter, LatencyStats, PacketTrace


class TestPacketTrace:
    def test_record_and_filter(self):
        trace = PacketTrace()
        trace.record(0.0, "a", "tx", "ecmp", 36)
        trace.record(0.1, "b", "rx", "ecmp", 36)
        trace.record(0.2, "a", "tx", "data", 1316)
        assert len(trace) == 3
        assert len(trace.filter(node="a")) == 2
        assert len(trace.filter(direction="rx")) == 1
        assert len(trace.filter(proto="ecmp", node="a")) == 1

    def test_totals(self):
        trace = PacketTrace()
        trace.record(0.0, "a", "tx", "ecmp", 16)
        trace.record(0.0, "a", "tx", "ecmp", 24)
        assert trace.total_bytes(proto="ecmp") == 40
        assert trace.count(proto="ecmp") == 2
        assert trace.count(proto="data") == 0


class TestCounter:
    def test_incr_and_get(self):
        counter = Counter()
        counter.incr("x")
        counter.incr("x", 4)
        assert counter["x"] == 5
        assert counter["missing"] == 0

    def test_as_dict(self):
        counter = Counter()
        counter.incr("a")
        counter.incr("b", 2)
        assert counter.as_dict() == {"a": 1, "b": 2}


class TestLatencyStats:
    def test_statistics(self):
        stats = LatencyStats()
        stats.add(0.0, 0.5)
        stats.add(1.0, 1.1)
        stats.add(2.0, 2.9)
        assert len(stats) == 3
        assert abs(stats.min() - 0.1) < 1e-9
        assert abs(stats.max() - 0.9) < 1e-9
        assert abs(stats.mean() - 0.5) < 1e-9

    def test_empty(self):
        stats = LatencyStats()
        assert stats.mean() == 0.0
        assert stats.max() == 0.0
        assert stats.min() == 0.0
