"""EventArena pool mechanics and recycle-safety.

The arena hands out *records*, not identities: a pooled Event object is
reused across many logical events, and the only thing distinguishing one
incarnation from the next is the ``gen`` counter the engine bumps at
acquisition. These tests pin the pool bookkeeping (LIFO blocks, cap,
stats) and — via hypothesis — the property that makes recycling safe:
``cancel_if`` captured against one incarnation never touches a later
one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.arena import ARENA, NATIVE, POOL_CAP, EventArena
from repro.netsim.engine import Event, Simulator


def make_event(i: int = 0) -> Event:
    return Event(float(i), i, lambda: None, f"e{i}")


class TestEventArena:
    def test_acquire_from_empty_pool_returns_none(self):
        arena = EventArena()
        assert arena.acquire() is None
        assert arena.stats()["pooled"] == 0

    def test_release_then_acquire_roundtrips_lifo(self):
        arena = EventArena()
        first, second = make_event(1), make_event(2)
        arena.release(first)
        arena.release(second)
        assert arena.total == 2
        # LIFO: the most recently released record comes back first.
        assert arena.acquire() is second
        assert arena.acquire() is first
        assert arena.acquire() is None
        assert arena.total == 0

    def test_release_block_consumes_the_list_wholesale(self):
        arena = EventArena()
        block = [make_event(i) for i in range(5)]
        ids = {id(e) for e in block}
        arena.release_block(block)
        assert arena.total == 5
        # O(1): the list itself moves in, and acquire() pops from it.
        assert arena.blocks[-1] is block
        got = {id(arena.acquire()) for _ in range(5)}
        assert got == ids

    def test_release_block_empty_is_a_noop(self):
        arena = EventArena()
        arena.release_block([])
        assert arena.total == 0
        assert arena.stats()["recycled"] == 0

    def test_cap_drops_overflow_releases(self):
        arena = EventArena(cap=3)
        for i in range(5):
            arena.release(make_event(i))
        assert arena.total == 3
        assert arena.dropped == 2
        # A whole block that would burst the cap is dropped entirely.
        arena.acquire()
        arena.release_block([make_event(10), make_event(11), make_event(12)])
        assert arena.total == 2
        assert arena.dropped == 5

    def test_stats_keys_and_counts(self):
        arena = EventArena(cap=8)
        arena.release(make_event())
        arena.acquire()
        stats = arena.stats()
        assert stats == {
            "pooled": 0,
            "acquired": 1,
            "recycled": 1,
            "dropped": 0,
            "cap": 8,
        }

    def test_clear_empties_the_pool(self):
        arena = EventArena()
        arena.release_block([make_event(i) for i in range(4)])
        arena.clear()
        assert arena.total == 0
        assert arena.acquire() is None

    def test_global_arena_is_native_capped(self):
        assert isinstance(ARENA, EventArena)
        assert ARENA.cap == POOL_CAP
        assert isinstance(NATIVE, bool)


def run_bulk_round(sim: Simulator, n: int, offset: float) -> None:
    """Schedule-and-drain one batch so its pooled events recycle."""
    sim.schedule_bulk(
        [(offset + 0.001 * i, lambda: None) for i in range(n)], name="round"
    )
    sim.run()


class TestRecycleSafety:
    """Generation counters make stale handles inert, not dangerous."""

    def test_gen_bumps_on_reuse(self):
        ARENA.clear()
        sim = Simulator(scheduler="wheel", wheel_slots=64, native=True)
        run_bulk_round(sim, 32, 0.01)
        recycled = ARENA.acquire()
        if recycled is None:
            pytest.skip("pool capped out by earlier tests")
        gen_before = recycled.gen
        ARENA.release(recycled)
        # Drive another full round: the engine re-acquires the record and
        # must bump gen so old handles can tell it changed hands.
        sim2 = Simulator(scheduler="wheel", wheel_slots=64, native=True)
        run_bulk_round(sim2, 64, 0.01)
        assert recycled.gen > gen_before

    def test_cancel_if_refuses_stale_generation(self):
        event = make_event()
        event.gen = 7
        assert event.cancel_if(6) is False
        assert event.cancelled is False
        assert event.cancel_if(7) is True
        assert event.cancelled is True

    @settings(max_examples=40, deadline=None)
    @given(
        rounds=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=6),
    )
    def test_recycled_records_never_honor_old_handles(self, rounds):
        """Across arbitrary schedule/drain cycles, a handle captured
        before recycling can never cancel the record's new incarnation.
        """
        arena = EventArena()
        live: list[tuple[Event, int]] = []
        counter = 0
        for n in rounds:
            for _ in range(n):
                event = arena.acquire()
                if event is None:
                    event = make_event()
                # Engine contract: gen bumps at every acquisition.
                event.gen += 1
                event.cancelled = False
                live.append((event, event.gen))
                counter += 1
            # Drain: every live record returns to the pool.
            for event, _ in live:
                arena.release(event)
            stale = live
            live = []
            # Re-acquire some of the drained records (new incarnations).
            for _ in range(min(len(stale), n)):
                event = arena.acquire()
                assert event is not None
                event.gen += 1
                event.cancelled = False
                live.append((event, event.gen))
            # Stale handles: cancel_if with the *old* gen must refuse on
            # any record that was handed out again.
            reused = {id(event) for event, _ in live}
            for event, old_gen in stale:
                if id(event) in reused:
                    assert event.gen > old_gen
                    assert event.cancel_if(old_gen) is False
                    assert event.cancelled is False
            # Current handles still work.
            for event, gen in live:
                assert event.cancel_if(gen) is True
                event.cancelled = False  # reset for the next round
        assert counter == sum(rounds)

    def test_simulator_native_flag_controls_pooling(self):
        on = Simulator(scheduler="wheel", wheel_slots=64, native=True)
        off = Simulator(scheduler="wheel", wheel_slots=64, native=False)
        assert on._arena is ARENA
        assert off._arena is None
