"""Tests for the topology partitioner (:mod:`repro.netsim.parallel.partition`)."""

from math import ceil, inf

import pytest

from repro.errors import TopologyError
from repro.netsim.parallel.partition import plan_partitions
from repro.netsim.topology import Topology, TopologyBuilder

SOURCE = "h0_0_0"


def isp_topo():
    return TopologyBuilder.isp(
        n_transit=2, stubs_per_transit=2, hosts_per_stub=2, seed=0
    )


class TestPlan:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_parts_cover_all_nodes_disjointly(self, n):
        topo = isp_topo()
        plan = plan_partitions(topo, n, SOURCE)
        assert plan.n == n
        union = set()
        for part in plan.parts:
            assert part, "no partition may be empty"
            assert not (union & part)
            union |= part
        assert union == set(topo.nodes)
        assert all(plan.owner[name] == rank
                   for rank, part in enumerate(plan.parts) for name in part)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_source_lands_in_rank_zero(self, n):
        plan = plan_partitions(isp_topo(), n, SOURCE)
        assert plan.rank_of(SOURCE) == 0

    def test_single_partition_has_no_cut(self):
        plan = plan_partitions(isp_topo(), 1, SOURCE)
        assert plan.cut_links == []
        assert plan.lookahead == {}
        assert plan.min_lookahead() == inf

    def test_cut_links_match_ownership(self):
        topo = isp_topo()
        plan = plan_partitions(topo, 2, SOURCE)
        expected = sorted(
            (link.node_a.name, link.node_b.name, link.delay)
            for link in topo.links
            if plan.owner[link.node_a.name] != plan.owner[link.node_b.name]
        )
        assert plan.cut_links == expected
        assert plan.cut_links, "a 2-way ISP split must cross some links"

    def test_lookahead_is_min_cut_delay_per_direction(self):
        topo = isp_topo()
        plan = plan_partitions(topo, 2, SOURCE)
        mins: dict[tuple[int, int], float] = {}
        for a, b, delay in plan.cut_links:
            ra, rb = plan.owner[a], plan.owner[b]
            for direction in ((ra, rb), (rb, ra)):
                mins[direction] = min(mins.get(direction, inf), delay)
        assert plan.lookahead == mins
        assert plan.min_lookahead() == min(mins.values())

    def test_partitions_are_balanced(self):
        topo = isp_topo()
        for n in (2, 3, 4):
            plan = plan_partitions(topo, n, SOURCE)
            cap = ceil(len(topo.nodes) / n)
            # Growth is capped at ``cap``; the cap-relaxed sweep and the
            # refinement slack can each add one more node.
            assert max(len(p) for p in plan.parts) <= cap + 2
            assert min(len(p) for p in plan.parts) >= 1

    def test_deterministic(self):
        a = plan_partitions(isp_topo(), 3, SOURCE)
        b = plan_partitions(isp_topo(), 3, SOURCE)
        assert a.owner == b.owner
        assert a.cut_links == b.cut_links
        assert a.lookahead == b.lookahead

    def test_n_clamped_to_node_count(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", delay=0.01)
        plan = plan_partitions(topo, 8, "a")
        assert plan.n <= 2
        assert set().union(*plan.parts) == {"a", "b"}

    def test_summary_shape(self):
        summary = plan_partitions(isp_topo(), 2, SOURCE).summary()
        assert summary["partitions"] == 2
        assert sum(summary["sizes"]) == len(isp_topo().nodes)
        assert summary["cut_links"] == len(
            plan_partitions(isp_topo(), 2, SOURCE).cut_links
        )
        assert summary["min_lookahead"] > 0


class TestValidation:
    def test_rejects_nonpositive_n(self):
        with pytest.raises(TopologyError, match="at least 1 partition"):
            plan_partitions(isp_topo(), 0, SOURCE)

    def test_rejects_unknown_source(self):
        with pytest.raises(TopologyError, match="unknown source"):
            plan_partitions(isp_topo(), 2, "nope")

    def test_rejects_zero_delay_cut_link(self):
        topo = Topology()
        for name in ("a", "b", "c", "d"):
            topo.add_node(name)
        topo.add_link("a", "b", delay=0.01)
        topo.add_link("c", "d", delay=0.01)
        # The only link joining the two halves has zero delay, so any
        # 2-way split must cut it.
        topo.add_link("b", "c", delay=0.0)
        with pytest.raises(TopologyError, match="zero delay"):
            plan_partitions(topo, 2, "a")
