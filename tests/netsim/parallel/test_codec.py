"""Tests for cross-partition packet serialization
(:mod:`repro.netsim.parallel.codec`)."""

import pytest

from repro.core.channel import Channel
from repro.core.ecmp.messages import Count, CountQuery, EcmpBatch
from repro.errors import CodecError
from repro.netsim.packet import Packet
from repro.netsim.parallel.codec import (
    EXIT_FRAME,
    FRAME_ERROR,
    FRAME_EXIT,
    FRAME_GRANT,
    FRAME_READY,
    FRAME_REPORT,
    FRAME_RESULT,
    FRAME_RESULT_REQ,
    RESULT_REQ_FRAME,
    _decode_spanctx,
    _encode_spanctx,
    decode_frame,
    decode_packet,
    encode_error,
    encode_grant,
    encode_packet,
    encode_ready,
    encode_report,
    encode_result,
)
from repro.obs.hooks import SPAN_HEADER
from repro.obs.tracing import SpanContext, shard_id_base

CHANNEL = Channel(source=0x0A000001, group=0xE8000005)


def roundtrip(packet: Packet) -> Packet:
    return decode_packet(encode_packet(packet))


class TestRoundTrip:
    def test_plain_fields(self):
        packet = Packet(
            src=0x0A000001, dst=0xE8000005, proto="data",
            size=1356, ttl=17, created_at=1.25,
        )
        out = roundtrip(packet)
        assert (out.src, out.dst, out.proto) == (packet.src, packet.dst, "data")
        assert (out.size, out.ttl) == (1356, 17)
        assert out.created_at == 1.25
        assert out.payload is None and out.headers == {}

    def test_ecmp_message_uses_wire_codec(self):
        message = Count(channel=CHANNEL, count_id=1, count=7)
        packet = Packet(
            src=1 << 24, dst=2 << 24, proto="ecmp",
            headers={"ecmp": message, "reliable": True},
        )
        out = roundtrip(packet)
        assert out.headers["ecmp"] == message
        assert out.headers["reliable"] is True

    def test_ecmp_batch_crosses_as_msg_batch(self):
        batch = EcmpBatch(messages=(
            Count(channel=CHANNEL, count_id=1, count=3),
            CountQuery(channel=CHANNEL, count_id=2, timeout=1.5),
        ))
        packet = Packet(src=1, dst=2, proto="ecmp", headers={"ecmp": batch})
        out = roundtrip(packet)
        assert out.headers["ecmp"] == batch

    def test_raw_wire_bytes_pass_through(self):
        # wire_format=True networks carry pre-encoded bytes; the codec
        # must not re-encode or decode them.
        raw = b"\x01\x02\x03\x04opaque"
        packet = Packet(src=1, dst=2, proto="ecmp", headers={"ecmp": raw})
        out = roundtrip(packet)
        assert out.headers["ecmp"] == raw
        assert isinstance(out.headers["ecmp"], bytes)

    def test_extra_headers_and_payload_fall_back_to_pickle(self):
        inner = Packet(src=9, dst=8, proto="data", size=100)
        packet = Packet(
            src=1, dst=2, proto="ipip", payload=inner,
            headers={"span": ("trace", 42), "hops": 3},
        )
        out = roundtrip(packet)
        assert out.headers["span"] == ("trace", 42)
        assert out.headers["hops"] == 3
        assert out.payload.src == 9 and out.payload.proto == "data"

    def test_uid_is_not_preserved(self):
        packet = Packet(src=1, dst=2)
        out = roundtrip(packet)
        assert out.uid != packet.uid


class TestSpanContext:
    """Trace contexts cross the cut as a compact struct block, not a
    pickle blob — the carrier of cross-shard trace stitching."""

    def test_single_context_roundtrips(self):
        ctx = SpanContext(trace_id=shard_id_base(1) + 7, span_id=shard_id_base(1) + 9)
        packet = Packet(
            src=1, dst=2, proto="ecmp",
            headers={"ecmp": Count(channel=CHANNEL, count_id=1, count=1),
                     SPAN_HEADER: ctx},
        )
        out = roundtrip(packet)
        assert out.headers[SPAN_HEADER] == ctx
        assert isinstance(out.headers[SPAN_HEADER], SpanContext)

    def test_batch_context_list_with_absences(self):
        contexts = [
            SpanContext(trace_id=1, span_id=2),
            None,
            SpanContext(trace_id=shard_id_base(3) + 1, span_id=shard_id_base(3) + 2),
        ]
        packet = Packet(
            src=1, dst=2, proto="ecmp",
            headers={"ecmp": Count(channel=CHANNEL, count_id=1, count=1),
                     SPAN_HEADER: contexts},
        )
        out = roundtrip(packet)
        assert out.headers[SPAN_HEADER] == contexts

    def test_spanctx_avoids_pickle_fallback(self):
        """A packet whose only extra header is the span context must
        not grow a pickle section (flags bit 0x08 unset)."""
        bare = encode_packet(Packet(
            src=1, dst=2, proto="ecmp",
            headers={"ecmp": Count(channel=CHANNEL, count_id=1, count=1)},
        ))
        with_ctx = encode_packet(Packet(
            src=1, dst=2, proto="ecmp",
            headers={"ecmp": Count(channel=CHANNEL, count_id=1, count=1),
                     SPAN_HEADER: SpanContext(trace_id=1, span_id=2)},
        ))
        # kind(1) + count(2) + present(1) + trace_id(8) + span_id(8)
        assert len(with_ctx) - len(bare) == 20

    def test_truncated_block_rejected(self):
        block = _encode_spanctx(SpanContext(trace_id=1, span_id=2))
        with pytest.raises(CodecError, match="truncated"):
            _decode_spanctx(block[:-3])

    def test_trailing_bytes_rejected(self):
        block = _encode_spanctx([SpanContext(trace_id=1, span_id=2)])
        with pytest.raises(CodecError, match="framing"):
            _decode_spanctx(block + b"\x00")

    def test_unknown_kind_rejected(self):
        with pytest.raises(CodecError, match="kind"):
            _decode_spanctx(b"\x07\x00\x00")


class TestStrictness:
    def test_truncated_header_rejected(self):
        with pytest.raises(CodecError, match="truncated"):
            decode_packet(b"\x00\x01")

    def test_trailing_bytes_rejected(self):
        data = encode_packet(Packet(src=1, dst=2))
        with pytest.raises(CodecError, match="framing"):
            decode_packet(data + b"\x00")

    def test_short_body_rejected(self):
        data = encode_packet(Packet(src=1, dst=2, proto="data"))
        with pytest.raises(CodecError, match="framing"):
            decode_packet(data[:-1])

    def test_overlong_proto_rejected(self):
        packet = Packet(src=1, dst=2, proto="x" * 300)
        with pytest.raises(CodecError, match="proto label"):
            encode_packet(packet)

    def test_encode_does_not_mutate_headers(self):
        headers = {"ecmp": Count(channel=CHANNEL, count_id=1, count=1),
                   "reliable": True}
        packet = Packet(src=1, dst=2, proto="ecmp", headers=headers)
        encode_packet(packet)
        assert set(packet.headers) == {"ecmp", "reliable"}


class TestSyncFrames:
    """The coordinator/worker control-frame protocol (struct-packed,
    zero pickle except the off-hot-path RESULT and telemetry blob)."""

    def _export(self, seq=7):
        packet = Packet(src=1, dst=2, proto="data")
        return (1.25, 0, seq, 1, "core_1", 3, encode_packet(packet))

    def test_ready_roundtrip(self):
        kind, body = decode_frame(encode_ready(2.5, 11))
        assert kind == FRAME_READY
        assert body == (2.5, 11)

    def test_grant_roundtrip(self):
        record = self._export()
        frame = encode_grant([1.5, 2.5, 4.0], [record], True, False)
        kind, (ladder, imports, final, eager) = decode_frame(frame)
        assert kind == FRAME_GRANT
        assert ladder == [1.5, 2.5, 4.0]
        assert final and not eager
        assert imports == [record]

    def test_grant_eager_flag(self):
        _, (ladder, imports, final, eager) = decode_frame(
            encode_grant([9.0], [], False, True)
        )
        assert ladder == [9.0] and imports == [] and not final and eager

    def test_report_roundtrip(self):
        record = self._export(seq=42)
        frame = encode_report(
            [3.0, 4.5], 5, 17, [record], finalized=False, stalled=True
        )
        kind, body = decode_frame(frame)
        assert kind == FRAME_REPORT
        next_times, windows, dispatched, exports, finalized, stalled, blob = body
        assert next_times == [3.0, 4.5]
        assert (windows, dispatched) == (5, 17)
        assert exports == [record]
        assert not finalized and stalled and blob is None

    def test_report_carries_telemetry_blob(self):
        import pickle

        blob = pickle.dumps({"snapshot": 1})
        frame = encode_report([1.0], 1, 0, [], True, False, telemetry=blob)
        _, body = decode_frame(frame)
        assert body[-1] == {"snapshot": 1}

    def test_result_and_error(self):
        kind, body = decode_frame(encode_result({"events": 3}))
        assert kind == FRAME_RESULT and body == {"events": 3}
        kind, body = decode_frame(encode_error("boom"))
        assert kind == FRAME_ERROR and body == "boom"

    def test_bodyless_control_frames(self):
        assert decode_frame(RESULT_REQ_FRAME) == (FRAME_RESULT_REQ, None)
        assert decode_frame(EXIT_FRAME) == (FRAME_EXIT, None)

    def test_truncated_frames_rejected(self):
        good = encode_report([1.0, 2.0], 3, 4, [self._export()], True, False)
        for cut in (1, len(good) // 2, len(good) - 1):
            with pytest.raises(CodecError):
                decode_frame(good[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError):
            decode_frame(encode_ready(1.0, 2) + b"\x00")

    def test_unknown_kind_rejected(self):
        with pytest.raises(CodecError, match="kind"):
            decode_frame(b"\xff")
