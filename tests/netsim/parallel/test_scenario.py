"""Tests for declarative scenario specs
(:mod:`repro.netsim.parallel.scenario`)."""

import pickle

import pytest

from repro.errors import SimulationError
from repro.netsim.parallel.scenario import (
    OPGENS,
    ScenarioSpec,
    build,
    schedule_ops,
)

from .conftest import make_small_spec


class TestSpec:
    def test_op_owner_per_kind(self, small_spec):
        assert small_spec.op_owner((0.1, "join", "h1_0_0", 0)) == "h1_0_0"
        assert small_spec.op_owner((0.1, "leave", "h0_1_0", 0)) == "h0_1_0"
        assert small_spec.op_owner((0.1, "send", 0)) == "h0_0_0"
        assert small_spec.op_owner((0.1, "block_join", 0, 0)) == "e0_1"
        assert small_spec.op_owner((0.1, "block_leave", 1, 0)) == "e1_0"
        with pytest.raises(SimulationError, match="unknown op kind"):
            small_spec.op_owner((0.1, "flap", "x"))

    def test_spec_is_picklable(self, small_spec):
        clone = pickle.loads(pickle.dumps(small_spec))
        assert clone == small_spec

    def test_unknown_opgen_rejected(self):
        spec = make_small_spec()
        spec.opgen = ("nope", {})
        with pytest.raises(SimulationError, match="unknown op generator"):
            spec.all_ops()

    def test_unknown_topology_rejected(self):
        spec = make_small_spec()
        spec.topology = "nope"
        with pytest.raises(SimulationError, match="unknown topology"):
            build(spec)


class TestScheduleOps:
    def test_owned_filter_partitions_the_ops(self, small_spec):
        net, channels, blocks = build(small_spec)
        net.start()
        total = schedule_ops(small_spec, net, channels, blocks, owned=None)
        assert total == len(small_spec.ops)
        owners = {small_spec.op_owner(op) for op in small_spec.ops}
        # Splitting the owner set must split the op count exactly.
        some = set(sorted(owners)[: len(owners) // 2])
        rest = owners - some
        net_a, ch_a, bl_a = build(small_spec)
        net_b, ch_b, bl_b = build(small_spec)
        count_a = schedule_ops(small_spec, net_a, ch_a, bl_a, owned=some)
        count_b = schedule_ops(small_spec, net_b, ch_b, bl_b, owned=rest)
        assert count_a + count_b == total

    def test_ops_replay_the_workload(self, small_spec):
        net, channels, blocks = build(small_spec)
        net.start()
        schedule_ops(small_spec, net, channels, blocks)
        net.run(until=small_spec.duration)
        # Two hosts still subscribed on channel 0 plus the settled
        # block membership from the spec's join/leave waves.
        assert blocks[0].count(channels[0]) == 25
        assert blocks[1].count(channels[1]) == 30
        assert blocks[0].deliveries > 0


class TestBlockStormOpgen:
    def test_deterministic_and_sized(self):
        gen = OPGENS["block_storm"]
        ops_a = gen(n_subs=100, n_blocks=4, packets=3, seed=9)
        ops_b = gen(n_subs=100, n_blocks=4, packets=3, seed=9)
        assert ops_a == ops_b
        # joins + leaves + sends
        assert len(ops_a) == 100 + 12 + 3
        kinds = {op[1] for op in ops_a}
        assert kinds == {"block_join", "block_leave", "send"}

    def test_seed_changes_order(self):
        gen = OPGENS["block_storm"]
        assert gen(n_subs=50, n_blocks=2, seed=1) != gen(
            n_subs=50, n_blocks=2, seed=2
        )

    def test_sends_follow_the_leave_wave(self):
        ops = OPGENS["block_storm"](n_subs=10, n_blocks=2, packets=2, seed=0)
        send_times = [op[0] for op in ops if op[1] == "send"]
        membership_times = [op[0] for op in ops if op[1] != "send"]
        assert min(send_times) > max(membership_times)
