"""Shared fixtures for the sharded-simulation tests.

``small_spec`` is a 14-node ISP scenario that exercises every op kind
(host join/leave, block join/leave, source sends on two channels) and
crosses every partition boundary when split 2 or 4 ways — small enough
that an oracle run plus several sharded runs stay well under a second.
"""

import pytest

from repro.netsim.parallel.scenario import ScenarioSpec


def make_small_spec(seed: int = 0, duration: float = 2.0) -> ScenarioSpec:
    return ScenarioSpec(
        topology="isp",
        topology_kwargs={
            "n_transit": 2,
            "stubs_per_transit": 2,
            "hosts_per_stub": 2,
        },
        source="h0_0_0",
        n_channels=2,
        blocks=("e0_1", "e1_0"),
        ops=(
            (0.10, "join", "h1_0_0", 0),
            (0.12, "join", "h0_1_0", 0),
            (0.15, "join", "h1_1_1", 1),
            (0.20, "block_join", 0, 0, 25),
            (0.22, "block_join", 1, 1, 40),
            (0.30, "send", 0),
            (0.32, "send", 1),
            (0.40, "leave", "h0_1_0", 0),
            (0.45, "block_leave", 1, 1, 10),
            (0.50, "send", 0),
            (0.55, "send", 1),
        ),
        duration=duration,
        seed=seed,
    )


@pytest.fixture
def small_spec() -> ScenarioSpec:
    return make_small_spec()
