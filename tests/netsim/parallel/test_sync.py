"""Unit tests for the conservative-sync math
(:mod:`repro.netsim.parallel.sync`)."""

from math import inf, isclose

from repro.netsim.parallel.sync import (
    RoundTrace,
    SyncStats,
    build_ladder,
    compute_horizons,
    effective_next_times,
    grant_ceilings,
    merge_sync_stats,
    transitive_lookahead,
)


class TestEffectiveNextTimes:
    def test_elementwise_min(self):
        assert effective_next_times([1.0, 5.0, inf], [inf, 2.0, 3.0]) == [
            1.0,
            2.0,
            3.0,
        ]

    def test_empty(self):
        assert effective_next_times([], []) == []


class TestTransitiveLookahead:
    def test_direct_delays_kept(self):
        closure = transitive_lookahead({(0, 1): 0.5, (1, 0): 0.25}, 2)
        assert closure[(0, 1)] == 0.5
        assert closure[(1, 0)] == 0.25

    def test_chain_through_idle_intermediate(self):
        # 0 -> 1 -> 2: influence reaches rank 2 in 1+2 even when rank 1
        # is idle (reporting next_eff = inf). Direct-only lookahead
        # would leave (0, 2) unbounded — the unsafe-horizon bug.
        closure = transitive_lookahead({(0, 1): 1.0, (1, 2): 2.0}, 3)
        assert closure[(0, 2)] == 3.0

    def test_diagonal_is_min_cycle(self):
        # A worker's own dispatches can echo back through the cut; the
        # shortest cycle bounds its own horizon.
        closure = transitive_lookahead({(0, 1): 1.0, (1, 0): 2.5}, 2)
        assert closure[(0, 0)] == 3.5
        assert closure[(1, 1)] == 3.5

    def test_shorter_multi_hop_path_wins(self):
        closure = transitive_lookahead(
            {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 10.0}, 3
        )
        assert closure[(0, 2)] == 2.0

    def test_unreachable_pairs_absent(self):
        closure = transitive_lookahead({(0, 1): 1.0}, 3)
        assert (2, 0) not in closure
        assert (0, 0) not in closure  # no cycle back to 0


class TestComputeHorizons:
    def test_min_over_predecessors(self):
        lookahead = {(0, 1): 0.5, (2, 1): 0.1}
        horizons = compute_horizons([1.0, 9.0, 2.0], lookahead)
        assert isclose(horizons[1], min(1.0 + 0.5, 2.0 + 0.1))

    def test_unreached_worker_gets_inf(self):
        horizons = compute_horizons([1.0, 1.0], {(0, 1): 0.5})
        assert horizons[0] == inf
        assert horizons[1] == 1.5

    def test_idle_predecessor_unbounds_only_with_direct_matrix(self):
        # The raw matrix lets rank 2 run free when rank 1 idles; the
        # closure keeps rank 0's influence in the bound.
        direct = {(0, 1): 1.0, (1, 2): 2.0}
        next_eff = [0.0, inf, 5.0]
        assert compute_horizons(next_eff, direct)[2] == inf
        closure = transitive_lookahead(direct, 3)
        assert compute_horizons(next_eff, closure)[2] == 3.0


class TestSyncStats:
    def test_merge_totals(self):
        stats = [
            SyncStats(rank=0, null_messages=2, lbts_stalls=1, sync_rounds=5,
                      windows=8, frames_sent=6, frames_received=5,
                      proxy_packets_out=3, proxy_bytes_out=100,
                      proxy_packets_in=1, proxy_bytes_in=40),
            SyncStats(rank=1, null_messages=1, sync_rounds=5,
                      windows=5, frames_sent=6, frames_received=5,
                      proxy_packets_out=1, proxy_bytes_out=40,
                      proxy_packets_in=3, proxy_bytes_in=100),
        ]
        totals = merge_sync_stats(stats)
        assert totals == {
            "null_messages": 3,
            "lbts_stalls": 1,
            "sync_rounds": 10,
            "windows": 13,
            "frames_sent": 12,
            "frames_received": 10,
            "proxy_packets": 4,
            "proxy_bytes": 140,
        }

    def test_as_dict_round_trips_fields(self):
        stats = SyncStats(rank=3, null_messages=7)
        d = stats.as_dict()
        assert d["rank"] == 3 and d["null_messages"] == 7


class TestGrantCeilings:
    def test_excludes_diagonal(self):
        closure = {(0, 0): 2.0, (0, 1): 1.0, (1, 0): 1.0, (1, 1): 2.0}
        ceilings = grant_ceilings([0.0, 10.0], closure)
        # Rank 0's ceiling comes only from rank 1 (10 + 1), never its
        # own 0 + 2 self-echo term (the worker enforces that locally).
        assert ceilings == [11.0, 1.0]

    def test_matches_horizons_without_diagonal(self):
        closure = transitive_lookahead({(0, 1): 0.5, (1, 0): 0.25}, 2)
        next_eff = [3.0, 4.0]
        ceilings = grant_ceilings(next_eff, closure)
        assert ceilings == [4.25, 3.5]
        # compute_horizons folds the diagonal in, so it can only be
        # tighter than the ceiling.
        horizons = compute_horizons(next_eff, closure)
        assert all(h <= c for h, c in zip(horizons, ceilings))

    def test_idle_peers_leave_inf(self):
        assert grant_ceilings([inf, inf], {(0, 1): 1.0, (1, 0): 1.0}) == [
            inf,
            inf,
        ]


class TestBuildLadder:
    def test_rungs_project_export_capped_windows(self):
        ladder = build_ladder([1.0, 2.0, 6.0], 0.5, 4.0)
        assert ladder == [1.5, 2.5, 4.0]

    def test_last_rung_is_always_the_ceiling(self):
        assert build_ladder([], 0.5, 4.0) == [4.0]
        assert build_ladder([9.0], 0.5, 4.0) == [4.0]
        assert build_ladder([1.0], inf, 4.0) == [4.0]

    def test_rungs_dedupe_and_stay_ascending(self):
        ladder = build_ladder([1.0, 1.0, 1.2], 0.5, 9.0)
        assert ladder == [1.5, 1.7, 9.0]
        assert ladder == sorted(set(ladder))


class TestRoundTrace:
    def test_as_dict_scrubs_inf(self):
        trace = RoundTrace(
            round_index=3, next_eff=[1.0, inf], horizons=[inf, 2.0],
            ladders={0: [1.5, inf]}, frames=4, mode="demand",
        )
        d = trace.as_dict()
        assert d["next_eff"] == [1.0, None]
        assert d["horizons"] == [None, 2.0]
        assert d["ladders"]["0"] == [1.5, None]
        assert d["mode"] == "demand" and d["frames"] == 4
        import json

        json.dumps(d)  # strictly JSON-serializable
