"""Coordinator/worker protocol tests (:mod:`repro.netsim.parallel.runner`).

The heavyweight N-partition-vs-oracle equivalence sweep lives in
``tests/properties/test_partition_equivalence.py``; this file pins the
runner mechanics: both transports, sync accounting, merge rules, and
the equivalence checker itself.
"""

import os

import pytest

from repro.errors import SimulationError
from repro.netsim.parallel.runner import (
    ParallelRunner,
    assert_equivalent,
    merge_summaries,
    run_single,
)


@pytest.fixture(scope="module")
def oracle():
    from .conftest import make_small_spec

    return run_single(make_small_spec())


@pytest.fixture(scope="module")
def inline_result():
    from .conftest import make_small_spec

    return ParallelRunner(make_small_spec(), 2, mode="inline").run()


class TestInline:
    def test_matches_oracle(self, oracle, inline_result):
        assert_equivalent(inline_result.merged, oracle)

    def test_rounds_and_wall_recorded(self, inline_result):
        assert inline_result.rounds > 0
        assert inline_result.wall_seconds > 0

    def test_proxy_accounting_closed(self, inline_result):
        # Every exported packet is injected somewhere: fleet totals of
        # out and in must balance, bytes included.
        packets_out = sum(s.proxy_packets_out for s in inline_result.sync)
        packets_in = sum(s.proxy_packets_in for s in inline_result.sync)
        bytes_out = sum(s.proxy_bytes_out for s in inline_result.sync)
        bytes_in = sum(s.proxy_bytes_in for s in inline_result.sync)
        assert packets_out == packets_in > 0
        assert bytes_out == bytes_in > 0

    def test_sync_totals_shape(self, inline_result):
        totals = inline_result.sync_totals()
        # Every coordinator round grants at least one worker, and each
        # grant drains at least one window.
        assert totals["sync_rounds"] >= inline_result.rounds
        assert totals["windows"] >= totals["sync_rounds"]
        # Per worker: one READY frame plus one report per grant.
        assert totals["frames_sent"] == totals["sync_rounds"] + inline_result.plan.n
        assert totals["frames_received"] == totals["sync_rounds"]
        assert totals["proxy_packets"] > 0


class TestProcessTransport:
    def test_mp_matches_oracle_and_inline(self, oracle, inline_result):
        from .conftest import make_small_spec

        result = ParallelRunner(make_small_spec(), 2, mode="mp").run()
        assert_equivalent(result.merged, oracle)
        assert result.merged == inline_result.merged
        assert [s.as_dict() for s in result.sync] == [
            s.as_dict() for s in inline_result.sync
        ]

    def test_worker_error_surfaces(self):
        from .conftest import make_small_spec

        plan = ParallelRunner(make_small_spec(), 2, mode="inline").plan
        bad = make_small_spec()
        bad.topology = "nope"
        with pytest.raises(SimulationError, match="worker 0 failed"):
            ParallelRunner(bad, 2, mode="mp", plan=plan).run()


class TestRunnerValidation:
    def test_unknown_mode_rejected(self, small_spec):
        with pytest.raises(SimulationError, match="unknown runner mode"):
            ParallelRunner(small_spec, 2, mode="threads")

    def test_single_partition_inline_matches_oracle(self, oracle, small_spec):
        result = ParallelRunner(small_spec, 1, mode="inline").run()
        assert_equivalent(result.merged, oracle)
        assert result.sync_totals()["proxy_packets"] == 0


class TestMergeAndCompare:
    def test_merge_rejects_overlap(self):
        summary = {
            "channel_tables": {"r0": {}},
            "subscriptions": {},
            "blocks": {},
            "events": 1,
            "final_time": 1.0,
            "obs_counters": None,
        }
        with pytest.raises(SimulationError, match="partition overlap"):
            merge_summaries([summary, dict(summary)])

    def test_merge_adds_counts_and_counters(self):
        a = {
            "channel_tables": {"r0": {}}, "subscriptions": {}, "blocks": {},
            "events": 3, "final_time": 1.0,
            "obs_counters": {("x", ()): 2, ("h", ()): (1, 0.5)},
        }
        b = {
            "channel_tables": {"r1": {}}, "subscriptions": {}, "blocks": {},
            "events": 4, "final_time": 2.0,
            "obs_counters": {("x", ()): 5, ("h", ()): (2, 1.5)},
        }
        merged = merge_summaries([a, b])
        assert merged["events"] == 7
        assert merged["final_time"] == 2.0
        assert merged["obs_counters"][("x", ())] == 7
        assert merged["obs_counters"][("h", ())] == (3, 2.0)

    def test_assert_equivalent_flags_table_divergence(self, oracle):
        tampered = dict(oracle)
        tampered["channel_tables"] = dict(oracle["channel_tables"])
        victim = next(iter(tampered["channel_tables"]))
        tampered["channel_tables"][victim] = {"bogus": {}}
        with pytest.raises(AssertionError, match="channel_tables"):
            assert_equivalent(tampered, oracle)

    def test_assert_equivalent_flags_event_count(self, oracle):
        tampered = dict(oracle)
        tampered["events"] = oracle["events"] + 1
        with pytest.raises(AssertionError, match="event counts"):
            assert_equivalent(tampered, oracle)

    def test_assert_equivalent_flags_counter_divergence(self):
        base = {
            "channel_tables": {}, "subscriptions": {}, "blocks": {},
            "events": 0, "final_time": 0.0,
            "obs_counters": {("x", ()): 1},
        }
        other = dict(base)
        other["obs_counters"] = {("x", ()): 2}
        with pytest.raises(AssertionError, match="counter"):
            assert_equivalent(base, other)
        missing = dict(base)
        missing["obs_counters"] = {("y", ()): 1}
        with pytest.raises(AssertionError, match="families"):
            assert_equivalent(base, missing)


class TestSyncModesAndTransports:
    def test_eager_mode_matches_oracle_with_more_messages(
        self, oracle, inline_result
    ):
        from .conftest import make_small_spec

        eager = ParallelRunner(
            make_small_spec(), 2, mode="inline", sync_mode="eager"
        ).run()
        assert_equivalent(eager.merged, oracle)
        assert eager.sync_mode == "eager"
        # Demand-driven sync must strictly beat the lockstep baseline
        # on both null messages and total frames.
        demand_totals = inline_result.sync_totals()
        eager_totals = eager.sync_totals()
        assert demand_totals["null_messages"] < eager_totals["null_messages"]
        assert demand_totals["frames_sent"] < eager_totals["frames_sent"]
        # Eager grants every worker every round: one window per grant.
        assert eager_totals["windows"] == eager_totals["sync_rounds"]

    def test_message_totals_shape(self, inline_result):
        totals = inline_result.message_totals()
        assert totals["frames_total"] == (
            inline_result.sync_totals()["frames_sent"]
            + inline_result.sync_totals()["frames_received"]
        )
        assert totals["sync_messages_per_event"] > 0
        assert totals["frames_per_round"] > 0

    def test_round_traces_recorded(self, inline_result):
        traces = inline_result.round_traces
        assert len(traces) == inline_result.rounds
        assert all(t.mode == "demand" for t in traces)
        assert sum(t.frames for t in traces) > 0
        granted = [t for t in traces if t.ladders]
        assert granted
        for trace in granted:
            for rank, ladder in trace.ladders.items():
                # The authoritative bound is the last rung.
                assert ladder == sorted(ladder)
                assert ladder[-1] == trace.horizons[rank] or trace.horizons[
                    rank
                ] > inline_result.plan.lookahead.get((rank, rank), 0)
        # Traces serialize for the CI post-mortem dump.
        import json

        json.dumps([t.as_dict() for t in traces])

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_mp_transports_match_inline_exactly(
        self, oracle, inline_result, transport
    ):
        from .conftest import make_small_spec

        result = ParallelRunner(
            make_small_spec(), 2, mode="mp", transport=transport
        ).run()
        assert result.transport == transport
        assert_equivalent(result.merged, oracle)
        assert result.merged == inline_result.merged
        assert [s.as_dict() for s in result.sync] == [
            s.as_dict() for s in inline_result.sync
        ]
        assert result.rounds == inline_result.rounds

    def test_env_override_selects_transport(self, monkeypatch, small_spec):
        monkeypatch.setenv("REPRO_TRANSPORT", "pipe")
        runner = ParallelRunner(small_spec, 2, mode="mp")
        assert runner.transport == "pipe"
        monkeypatch.delenv("REPRO_TRANSPORT")
        assert ParallelRunner(small_spec, 2, mode="mp").transport == "shm"

    def test_unknown_sync_mode_rejected(self, small_spec):
        with pytest.raises(SimulationError, match="unknown sync mode"):
            ParallelRunner(small_spec, 2, sync_mode="optimistic")

    def test_worker_crash_raises_not_hangs(self, monkeypatch):
        # A worker that dies without sending an error frame must
        # surface as a transport error (subclass of SimulationError),
        # not a hang: the ring's liveness probe catches it.
        from .conftest import make_small_spec

        import repro.netsim.parallel.worker as worker_mod

        original = worker_mod.PartitionWorker.run_grant

        def dying_grant(self, ladder, imports, final, eager):
            if self.rank == 1 and self.sim.events_processed > 0:
                os._exit(3)
            return original(self, ladder, imports, final, eager)

        monkeypatch.setattr(
            worker_mod.PartitionWorker, "run_grant", dying_grant
        )
        with pytest.raises(SimulationError):
            ParallelRunner(
                make_small_spec(), 2, mode="mp", transport="shm"
            ).run()
