"""Shared-memory ring transport: wraparound, streaming frames,
backpressure, crash detection, and a hypothesis fuzz against a deque
oracle."""

import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.netsim.parallel.transport import (
    DEFAULT_RING_BYTES,
    RingBuffer,
    TransportError,
    transport_choice,
)


@pytest.fixture
def ring():
    ring = RingBuffer.create(capacity=64)
    yield ring
    ring.close(unlink=True)


class TestTransportChoice:
    def test_default_is_shm(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        assert transport_choice() == "shm"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "pipe")
        assert transport_choice() == "pipe"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "pipe")
        assert transport_choice("shm") == "shm"

    def test_unknown_rejected(self):
        with pytest.raises(SimulationError, match="unknown transport"):
            transport_choice("tcp")


class TestRingFraming:
    def test_roundtrip_and_generation(self, ring):
        ring.send_frame(b"hello")
        ring.send_frame(b"")
        assert ring.recv_frame() == b"hello"
        assert ring.recv_frame() == b""
        assert ring._generation() == 2
        assert not ring.readable()

    def test_wraparound(self, ring):
        # 24-byte frames (4 length + 20 payload) against a 64-byte
        # ring: the write position laps the capacity within 3 frames,
        # so payloads land split across the physical end.
        for i in range(10):
            payload = bytes([i]) * 20
            ring.send_frame(payload)
            assert ring.recv_frame() == payload
        assert ring._positions()[0] > 64  # monotonic counters lapped

    def test_frame_larger_than_ring_streams_through(self, ring):
        payload = os.urandom(10 * 64 + 13)
        got = []
        reader = threading.Thread(
            target=lambda: got.append(ring.recv_frame())
        )
        reader.start()
        ring.send_frame(payload)  # must stream: 653 bytes through 64
        reader.join(timeout=10)
        assert got == [payload]

    def test_backpressure_blocks_then_drains(self, ring):
        # Fill the ring completely, then start a writer that needs
        # space; it must block until the reader drains, not corrupt.
        ring.send_frame(b"x" * 60)  # 64 bytes with the prefix: full
        done = threading.Event()

        def writer():
            ring.send_frame(b"y" * 30)
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        assert not done.wait(timeout=0.05)  # genuinely blocked
        assert ring.recv_frame() == b"x" * 60
        assert ring.recv_frame() == b"y" * 30
        thread.join(timeout=10)
        assert done.is_set()

    def test_default_capacity_constant(self):
        assert DEFAULT_RING_BYTES == 1 << 20


class TestCrashDetection:
    def test_recv_raises_when_peer_dead_and_ring_empty(self, ring):
        with pytest.raises(TransportError, match="peer died"):
            ring.recv_frame(alive=lambda: False)

    def test_recv_raises_mid_frame(self, ring):
        # Length prefix promises 100 bytes but the peer died after
        # landing 10: the generation counter never advanced, and the
        # body read must raise instead of hanging forever.
        ring._copy_in(0, b"\x64\x00\x00\x00" + b"z" * 10)
        ring._store(0, 14)  # publish write_pos only; generation stays 0
        with pytest.raises(TransportError, match="awaiting frame body"):
            ring.recv_frame(alive=lambda: False)
        assert ring._generation() == 0

    def test_recv_raises_on_closed_ring(self, ring):
        ring.mark_closed()
        with pytest.raises(TransportError, match="peer died"):
            ring.recv_frame(alive=None)

    def test_complete_frame_wins_over_dead_peer(self, ring):
        # A full frame already in the ring must be delivered even if
        # the producer has since exited.
        ring.send_frame(b"last words")
        ring.mark_closed()
        assert ring.recv_frame(alive=lambda: False) == b"last words"

    def test_send_raises_when_reader_dead_and_ring_full(self, ring):
        ring.send_frame(b"x" * 60)
        with pytest.raises(TransportError, match="peer died"):
            ring.send_frame(b"more", alive=lambda: False)


class TestAttach:
    def test_attach_sees_frames_and_does_not_unlink(self):
        ring = RingBuffer.create(capacity=128)
        try:
            ring.send_frame(b"cross-process")
            other = RingBuffer.attach(ring.name, 128)
            assert other.recv_frame() == b"cross-process"
            other.send_frame(b"reply")
            assert ring.recv_frame() == b"reply"
            other.close(unlink=False)
            # The segment must still exist for the creator.
            assert RingBuffer.attach(ring.name, 128).shm.size >= 128
        finally:
            ring.close(unlink=True)


@settings(max_examples=60, deadline=None)
@given(
    frames=st.lists(st.binary(min_size=0, max_size=200), max_size=30),
    capacity=st.integers(min_value=8, max_value=96),
)
def test_ring_matches_deque_oracle(frames, capacity):
    """Any interleaving of sends (producer thread) and recvs must
    deliver exactly the sent frames, in order, byte-for-byte — across
    wraparound, streaming, and backpressure regimes."""
    ring = RingBuffer.create(capacity=capacity)
    try:
        received = []

        def drain():
            for _ in frames:
                received.append(ring.recv_frame())

        reader = threading.Thread(target=drain)
        reader.start()
        for frame in frames:
            ring.send_frame(frame)
        reader.join(timeout=30)
        assert not reader.is_alive()
        assert received == frames
        assert ring._generation() == len(frames)
    finally:
        ring.close(unlink=True)
