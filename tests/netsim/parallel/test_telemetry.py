"""Distributed telemetry end to end: a telemetered 2-worker run must
export one merged Prometheus scrape with per-shard series, stitch at
least one causal trace across a shard boundary, account for ~100% of
worker wall time in the phase breakdown, report a settle time, and —
on worker failure — dump the flight-recorder ring to disk.
"""

import json
import os

import pytest

from repro.netsim.parallel import (
    PHASES,
    ParallelRunner,
    TelemetryConfig,
    assert_equivalent,
    run_single,
)
from tests.netsim.parallel.conftest import make_small_spec


def _telemetered(spec, mode, **cfg):
    runner = ParallelRunner(
        spec, 2, scheduler="wheel", mode=mode,
        telemetry=TelemetryConfig(**cfg),
    )
    return runner.run()


class TestTelemeteredRun:
    @pytest.fixture(scope="class")
    def result(self):
        return _telemetered(make_small_spec(), "mp", snapshot_every=4)

    def test_merged_scrape_has_series_for_every_shard(self, result):
        text = result.telemetry.prometheus()
        for shard in (0, 1):
            assert f'shard="{shard}"' in text
        # Per-shard sync counters made it into the fleet scrape.
        assert "parallel_sync_rounds_total" in text
        merged = result.telemetry.registry()
        shards = set()
        for family in merged.collect():
            if "shard" in family.labelnames:
                at = family.labelnames.index("shard")
                shards.update(values[at] for values, _c in family.children())
        assert shards == {"0", "1"}

    def test_at_least_one_trace_crosses_a_shard_boundary(self, result):
        stitched = result.telemetry.tracer()
        crossing = stitched.cross_shard_traces()
        assert crossing
        # The crossing trace really has spans minted on both shards,
        # reconnected by a parent link that rode a proxied packet.
        from repro.obs.tracing import id_shard

        members = [s for s in stitched.spans if s.trace_id == crossing[0]]
        assert {id_shard(s.span_id) for s in members} == {0, 1}
        child = next(s for s in members if s.parent_id is not None)
        assert stitched.get(child.parent_id) is not None

    def test_phase_breakdown_covers_worker_wall_time(self, result):
        phases = result.phase_totals()
        assert set(phases["phase_breakdown"]) == set(PHASES)
        assert sum(phases["phase_breakdown"].values()) == pytest.approx(1.0)
        assert phases["wall_total"] > 0.0
        # Real mp workers blocked in recv at least once.
        assert phases["phase_seconds"]["sync_wait"] > 0.0
        assert set(phases["events_per_second"]) == {0, 1}

    def test_convergence_and_snapshots(self, result):
        assert result.quiesced_at is not None and result.quiesced_at > 0.0
        assert result.settle_seconds is not None
        assert result.settle_seconds >= 0.0
        # Periodic snapshots arrived on top of the two final ones.
        assert result.telemetry.snapshots_ingested > 2

    def test_telemetered_run_still_matches_oracle(self, result):
        oracle = run_single(make_small_spec(), scheduler="wheel", with_obs=True)
        assert_equivalent(result.merged, oracle)


def test_inline_and_mp_telemetry_agree():
    """The phase wall-clocks differ across transports, but the merged
    scrape's counter content must not (determinism of the telemetry
    pipeline itself)."""
    spec = make_small_spec()
    inline = _telemetered(spec, "inline")
    mp = _telemetered(spec, "mp")

    def counters(result):
        out = {}
        for family in result.telemetry.registry().collect():
            if family.kind != "counter" or family.name.startswith("parallel_"):
                continue
            for values, child in family.children():
                out[(family.name, values)] = child.value
        return out

    assert counters(inline) == counters(mp)


def test_profiled_single_run_phase_totals():
    summary = run_single(make_small_spec(), scheduler="wheel", profile=True)
    profile = summary["profile"]
    assert profile["events"] == summary["events"]
    assert profile["dispatch_seconds"] > 0.0
    assert summary["quiesced_at"] > 0.0


def test_flight_recorder_dumps_on_worker_error(tmp_path, monkeypatch):
    """A mid-run failure inside a worker must leave a
    flight-<rank>.jsonl post-mortem behind: header line with the error
    reason, then the ring of recent events."""
    import repro.netsim.parallel.worker as worker_mod

    original = worker_mod.PartitionWorker.run_grant

    def failing_grant(self, ladder, imports, final, eager):
        result = original(self, ladder, imports, final, eager)
        if self.rank == 1 and self.sim.events_processed > 0:
            raise RuntimeError("induced mid-run failure")
        return result

    monkeypatch.setattr(worker_mod.PartitionWorker, "run_grant", failing_grant)
    with pytest.raises(RuntimeError, match="induced mid-run failure"):
        _telemetered(
            make_small_spec(), "inline",
            flight_dir=str(tmp_path), flight_capacity=64,
        )

    dumps = sorted(p for p in os.listdir(tmp_path) if p.startswith("flight-"))
    assert "flight-1.jsonl" in dumps
    lines = [
        json.loads(line)
        for line in open(tmp_path / "flight-1.jsonl", encoding="utf-8")
    ]
    header = lines[0]
    assert header["kind"] == "flight_header"
    assert header["reason"].startswith("error:RuntimeError")
    assert header["shard"] == 1
    assert any(entry["kind"] == "event" for entry in lines[1:])
    assert len(lines) - 1 <= 64
