"""Unit tests for the packet model."""

import pytest

from repro.netsim.packet import Packet


class TestPacketBasics:
    def test_defaults(self):
        packet = Packet(src=1, dst=2)
        assert packet.proto == "data"
        assert packet.size == 64
        assert packet.ttl == 64
        assert packet.headers == {}

    def test_uids_are_unique(self):
        a, b = Packet(src=1, dst=2), Packet(src=1, dst=2)
        assert a.uid != b.uid

    def test_copy_shares_payload_but_not_headers(self):
        payload = {"k": 1}
        packet = Packet(src=1, dst=2, payload=payload, headers={"h": 1})
        dup = packet.copy()
        assert dup.payload is payload
        dup.headers["h"] = 2
        assert packet.headers["h"] == 1

    def test_copy_preserves_wire_fields(self):
        packet = Packet(src=1, dst=2, proto="ecmp", size=128, ttl=9, created_at=3.5)
        dup = packet.copy()
        assert (dup.src, dup.dst, dup.proto, dup.size, dup.ttl, dup.created_at) == (
            1, 2, "ecmp", 128, 9, 3.5,
        )


class TestEncapsulation:
    def test_encapsulate_wraps_and_adds_overhead(self):
        inner = Packet(src=1, dst=2, size=100)
        outer = inner.encapsulate(outer_src=10, outer_dst=20)
        assert outer.proto == "ipip"
        assert outer.size == 120
        assert outer.payload is inner
        assert outer.src == 10 and outer.dst == 20

    def test_decapsulate_returns_inner(self):
        inner = Packet(src=1, dst=2)
        outer = inner.encapsulate(outer_src=10, outer_dst=20)
        assert outer.decapsulate() is inner

    def test_decapsulate_non_tunnel_raises(self):
        packet = Packet(src=1, dst=2, payload=b"raw")
        with pytest.raises(ValueError):
            packet.decapsulate()

    def test_is_encapsulated(self):
        inner = Packet(src=1, dst=2)
        assert not inner.is_encapsulated()
        assert inner.encapsulate(10, 20).is_encapsulated()

    def test_nested_encapsulation(self):
        inner = Packet(src=1, dst=2, size=50)
        mid = inner.encapsulate(3, 4)
        outer = mid.encapsulate(5, 6)
        assert outer.size == 90
        assert outer.decapsulate().decapsulate() is inner
