"""Tests for network-wide packet tracing (Topology.attach_trace)."""

import pytest

from repro import ExpressNetwork, TopologyBuilder
from repro.netsim.trace import PacketTrace
from tests.conftest import make_channel


class TestAttachTrace:
    def test_trace_captures_control_and_data(self):
        topo = TopologyBuilder.line(2)
        topo.add_node("hsrc")
        topo.add_node("hsub")
        topo.add_link("hsrc", "n0")
        topo.add_link("hsub", "n1")
        net = ExpressNetwork(topo, hosts=["hsrc", "hsub"])
        trace = topo.attach_trace()
        net.run(until=0.01)
        src, ch = make_channel(net, "hsrc")
        net.host("hsub").subscribe(ch)
        net.settle()
        src.send(ch, size=1316)
        net.settle()
        # Control plane: the join crossed every hop.
        assert trace.count(proto="ecmp", direction="tx") >= 3
        # Data plane: one copy per link on the 3-link path.
        assert trace.count(proto="data", direction="tx") == 3
        assert trace.count(proto="data", direction="rx") == 3
        assert trace.total_bytes(proto="data", direction="tx") == 3 * 1316

    def test_per_node_filtering(self):
        topo = TopologyBuilder.line(2)
        topo.add_node("hsrc")
        topo.add_node("hsub")
        topo.add_link("hsrc", "n0")
        topo.add_link("hsub", "n1")
        net = ExpressNetwork(topo, hosts=["hsrc", "hsub"])
        trace = topo.attach_trace()
        net.run(until=0.01)
        src, ch = make_channel(net, "hsrc")
        net.host("hsub").subscribe(ch)
        net.settle()
        src.send(ch)
        net.settle()
        assert trace.count(node="n0", proto="data", direction="tx") == 1
        assert trace.count(node="hsub", proto="data", direction="rx") == 1
        assert trace.count(node="hsub", proto="data", direction="tx") == 0

    def test_detach_stops_recording(self):
        topo = TopologyBuilder.line(2)
        topo.add_node("hsrc")
        topo.add_node("hsub")
        topo.add_link("hsrc", "n0")
        topo.add_link("hsub", "n1")
        net = ExpressNetwork(topo, hosts=["hsrc", "hsub"])
        trace = topo.attach_trace()
        net.run(until=0.01)
        src, ch = make_channel(net, "hsrc")
        net.host("hsub").subscribe(ch)
        net.settle()
        before = len(trace)
        topo.detach_trace()
        src.send(ch)
        net.settle()
        assert len(trace) == before

    def test_external_trace_reused(self):
        topo = TopologyBuilder.line(2)
        mine = PacketTrace()
        returned = topo.attach_trace(mine)
        assert returned is mine

    def test_drop_on_dead_link_recorded(self):
        topo = TopologyBuilder.line(2)
        trace = topo.attach_trace()
        from repro.netsim.packet import Packet

        topo.links[0].fail()
        topo.node("n0").send(Packet(src=1, dst=2), 0)
        assert trace.count(direction="drop") == 1
