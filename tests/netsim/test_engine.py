"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.netsim.engine import PeriodicTask, Simulator, call_repeatedly


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: None))
        sim.run()
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_nested_scheduling_from_event(self):
        sim = Simulator()
        hits = []
        def outer():
            hits.append("outer")
            sim.schedule(1.0, lambda: hits.append("inner"))
        sim.schedule(1.0, outer)
        sim.run()
        assert hits == ["outer", "inner"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        hits = []
        event = sim.schedule(1.0, lambda: hits.append(1))
        event.cancel()
        sim.run()
        assert hits == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        event.cancel()
        assert sim.pending() == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0


class TestRunBounds:
    def test_until_is_inclusive_and_advances_clock(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(5.0, lambda: hits.append(5))
        sim.run(until=3.0)
        assert hits == [1]
        assert sim.now == 3.0
        sim.run()
        assert hits == [1, 5]

    def test_event_exactly_at_until_runs(self):
        sim = Simulator()
        hits = []
        sim.schedule(3.0, lambda: hits.append(1))
        sim.run(until=3.0)
        assert hits == [1]

    def test_max_events(self):
        sim = Simulator()
        hits = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: hits.append(i))
        ran = sim.run(max_events=4)
        assert ran == 4
        assert hits == [0, 1, 2, 3]

    def test_run_returns_event_count(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 3

    def test_not_reentrant(self):
        sim = Simulator()
        caught = []
        def recurse():
            try:
                sim.run()
            except SimulationError:
                caught.append(True)
        sim.schedule(1.0, recurse)
        sim.run()
        assert caught == [True]


class TestDeterminism:
    def test_rng_is_seeded(self):
        a = Simulator(seed=42).rng.random()
        b = Simulator(seed=42).rng.random()
        c = Simulator(seed=43).rng.random()
        assert a == b
        assert a != c


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        sim = Simulator()
        hits = []
        task = PeriodicTask(sim, 1.0, lambda: hits.append(sim.now))
        task.start()
        sim.run(until=3.5)
        assert hits == [1.0, 2.0, 3.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        hits = []
        task = PeriodicTask(sim, 1.0, lambda: hits.append(sim.now))
        task.start()
        sim.schedule(2.5, task.stop)
        sim.run(until=10.0)
        assert hits == [1.0, 2.0]

    def test_double_start_is_idempotent(self):
        sim = Simulator()
        hits = []
        task = PeriodicTask(sim, 1.0, lambda: hits.append(1))
        task.start()
        task.start()
        sim.run(until=1.0)
        assert hits == [1]

    def test_stop_from_within_action(self):
        sim = Simulator()
        hits = []
        task = PeriodicTask(sim, 1.0, lambda: (hits.append(1), task.stop()))
        task.start()
        sim.run(until=5.0)
        assert hits == [1]

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_call_repeatedly_starts(self):
        sim = Simulator()
        hits = []
        call_repeatedly(sim, 2.0, lambda: hits.append(1))
        sim.run(until=5.0)
        assert hits == [1, 1]

    def test_jitter_stays_positive_and_deterministic(self):
        sim = Simulator(seed=7)
        hits = []
        task = PeriodicTask(sim, 1.0, lambda: hits.append(sim.now), jitter=0.5)
        task.start()
        sim.run(until=10.0)
        assert all(t > 0 for t in hits)
        sim2 = Simulator(seed=7)
        hits2 = []
        task2 = PeriodicTask(sim2, 1.0, lambda: hits2.append(sim2.now), jitter=0.5)
        task2.start()
        sim2.run(until=10.0)
        assert hits == hits2
