"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.netsim.engine import PeriodicTask, Simulator, call_repeatedly


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: None))
        sim.run()
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_nested_scheduling_from_event(self):
        sim = Simulator()
        hits = []
        def outer():
            hits.append("outer")
            sim.schedule(1.0, lambda: hits.append("inner"))
        sim.schedule(1.0, outer)
        sim.run()
        assert hits == ["outer", "inner"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        hits = []
        event = sim.schedule(1.0, lambda: hits.append(1))
        event.cancel()
        sim.run()
        assert hits == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        event.cancel()
        assert sim.pending() == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0


class TestRunBounds:
    def test_until_is_inclusive_and_advances_clock(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(5.0, lambda: hits.append(5))
        sim.run(until=3.0)
        assert hits == [1]
        assert sim.now == 3.0
        sim.run()
        assert hits == [1, 5]

    def test_event_exactly_at_until_runs(self):
        sim = Simulator()
        hits = []
        sim.schedule(3.0, lambda: hits.append(1))
        sim.run(until=3.0)
        assert hits == [1]

    def test_max_events(self):
        sim = Simulator()
        hits = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: hits.append(i))
        ran = sim.run(max_events=4)
        assert ran == 4
        assert hits == [0, 1, 2, 3]

    def test_run_returns_event_count(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 3

    def test_not_reentrant(self):
        sim = Simulator()
        caught = []
        def recurse():
            try:
                sim.run()
            except SimulationError:
                caught.append(True)
        sim.schedule(1.0, recurse)
        sim.run()
        assert caught == [True]


class TestDeterminism:
    def test_rng_is_seeded(self):
        a = Simulator(seed=42).rng.random()
        b = Simulator(seed=42).rng.random()
        c = Simulator(seed=43).rng.random()
        assert a == b
        assert a != c


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        sim = Simulator()
        hits = []
        task = PeriodicTask(sim, 1.0, lambda: hits.append(sim.now))
        task.start()
        sim.run(until=3.5)
        assert hits == [1.0, 2.0, 3.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        hits = []
        task = PeriodicTask(sim, 1.0, lambda: hits.append(sim.now))
        task.start()
        sim.schedule(2.5, task.stop)
        sim.run(until=10.0)
        assert hits == [1.0, 2.0]

    def test_double_start_is_idempotent(self):
        sim = Simulator()
        hits = []
        task = PeriodicTask(sim, 1.0, lambda: hits.append(1))
        task.start()
        task.start()
        sim.run(until=1.0)
        assert hits == [1]

    def test_stop_from_within_action(self):
        sim = Simulator()
        hits = []
        task = PeriodicTask(sim, 1.0, lambda: (hits.append(1), task.stop()))
        task.start()
        sim.run(until=5.0)
        assert hits == [1]

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_call_repeatedly_starts(self):
        sim = Simulator()
        hits = []
        call_repeatedly(sim, 2.0, lambda: hits.append(1))
        sim.run(until=5.0)
        assert hits == [1, 1]

    def test_jitter_stays_positive_and_deterministic(self):
        sim = Simulator(seed=7)
        hits = []
        task = PeriodicTask(sim, 1.0, lambda: hits.append(sim.now), jitter=0.5)
        task.start()
        sim.run(until=10.0)
        assert all(t > 0 for t in hits)
        sim2 = Simulator(seed=7)
        hits2 = []
        task2 = PeriodicTask(sim2, 1.0, lambda: hits2.append(sim2.now), jitter=0.5)
        task2.start()
        sim2.run(until=10.0)
        assert hits == hits2


class TestHeapCompaction:
    def test_mass_cancellation_compacts_the_heap(self):
        sim = Simulator()
        events = [sim.schedule(10.0 + i, lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # Once cancelled events outnumbered live ones the heap was
        # rebuilt; at most a sub-majority of cancelled entries remain
        # (compaction is amortized, not eager).
        assert len(sim._queue) < 2 * 50
        assert sim.pending() == 50
        assert sim.run() == 50
        assert len(sim._queue) == 0

    def test_pending_is_exact_through_churn(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        events = [sim.schedule(1.0 + i * 0.001, lambda: None) for i in range(100)]
        for event in events:
            event.cancel()
        assert sim.pending() == 1
        assert sim.run() == 1
        assert sim.pending() == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending() == 1
        assert sim.run() == 1

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert sim.pending() == 0

    def test_cancel_after_lazy_pop_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.peek_time() is None  # lazily dropped from the heap
        event.cancel()
        assert sim.pending() == 0

    def test_compaction_preserves_dispatch_order(self):
        sim = Simulator(seed=3)
        fired = []
        events = []
        for i in range(300):
            events.append(
                sim.schedule(1.0 + i * 0.01, lambda i=i: fired.append(i))
            )
        survivors = [i for i in range(300) if i % 3 == 0]
        for i in range(300):
            if i % 3:
                events[i].cancel()
        sim.run()
        assert fired == survivors

    def test_small_queues_skip_compaction(self):
        sim = Simulator()
        events = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
        for event in events[:9]:
            event.cancel()
        # Below the size floor the heap keeps the cancelled entries
        # (they drain lazily), but pending() is still exact.
        assert len(sim._queue) == 10
        assert sim.pending() == 1


class TestDispatchListeners:
    def test_listener_sees_every_event(self):
        sim = Simulator()
        seen = []
        sim.add_dispatch_listener(
            lambda s, event, wall: seen.append((event.name, wall))
        )
        sim.schedule(1.0, lambda: None, name="a")
        sim.schedule(2.0, lambda: None, name="b")
        sim.run()
        assert [name for name, _ in seen] == ["a", "b"]
        assert all(wall >= 0.0 for _, wall in seen)

    def test_remove_listener(self):
        sim = Simulator()
        seen = []
        listener = lambda s, event, wall: seen.append(event.name)
        sim.add_dispatch_listener(listener)
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.remove_dispatch_listener(listener)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert len(seen) == 1


class TestPeriodicJitterBounds:
    def test_intervals_stay_within_jitter_band(self):
        sim = Simulator(seed=11)
        hits = []
        task = PeriodicTask(sim, 10.0, lambda: hits.append(sim.now), jitter=2.0)
        task.start()
        sim.run(until=500.0)
        assert len(hits) >= 40
        gaps = [b - a for a, b in zip(hits, hits[1:])]
        assert all(8.0 - 1e-9 <= gap <= 12.0 + 1e-9 for gap in gaps)
        # First firing obeys the same band.
        assert 8.0 - 1e-9 <= hits[0] <= 12.0 + 1e-9

    def test_zero_jitter_is_exact(self):
        sim = Simulator(seed=5)
        hits = []
        PeriodicTask(sim, 2.5, lambda: hits.append(sim.now)).start()
        sim.run(until=10.0)
        assert hits == [2.5, 5.0, 7.5, 10.0]

    def test_jitter_larger_than_interval_never_goes_nonpositive(self):
        sim = Simulator(seed=13)
        hits = []
        task = PeriodicTask(sim, 0.01, lambda: hits.append(sim.now), jitter=5.0)
        task.start()
        sim.run(until=20.0)
        assert hits, "task must still fire"
        gaps = [b - a for a, b in zip([0.0] + hits, hits)]
        assert all(gap > 0 for gap in gaps)


class TestRunFastPath:
    """run() pops the next live event directly (single heap touch)
    instead of peek_time()+step(); semantics must match exactly."""

    def test_cancelled_head_events_are_drained(self):
        sim = Simulator()
        order = []
        doomed = [sim.schedule(1.0, lambda: order.append("x")) for _ in range(3)]
        sim.schedule(2.0, lambda: order.append("live"))
        for event in doomed:
            event.cancel()
        ran = sim.run()
        assert ran == 1
        assert order == ["live"]
        assert sim.events_processed == 1
        assert sim.pending() == 0

    def test_until_boundary_is_inclusive(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("at"))
        sim.schedule(1.0 + 1e-9, lambda: order.append("after"))
        sim.run(until=1.0)
        assert order == ["at"]
        assert sim.pending() == 1
        sim.run()
        assert order == ["at", "after"]

    def test_until_with_cancelled_event_past_boundary(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("live"))
        sim.schedule(2.0, lambda: order.append("dead")).cancel()
        ran = sim.run(until=1.5)
        assert ran == 1
        assert order == ["live"]
        # The clock advances to `until` even with no event there.
        assert sim.now == 1.5
        assert sim.pending() == 0

    def test_max_events_leaves_remainder_queued(self):
        sim = Simulator()
        order = []
        for k in range(5):
            sim.schedule(float(k + 1), lambda k=k: order.append(k))
        assert sim.run(max_events=2) == 2
        assert order == [0, 1]
        assert sim.pending() == 3
        assert sim.run() == 3
        assert order == [0, 1, 2, 3, 4]

    def test_events_scheduled_mid_run_are_honoured(self):
        sim = Simulator()
        order = []
        sim.schedule(
            1.0,
            lambda: (order.append("a"), sim.schedule(0.5, lambda: order.append("b"))),
        )
        sim.run()
        assert order == ["a", "b"]
        assert sim.now == 1.5

    def test_run_matches_repeated_step(self):
        def build(sim, order):
            events = []
            for k in range(6):
                events.append(
                    sim.schedule(float(k % 3) + 0.25, lambda k=k: order.append(k))
                )
            events[1].cancel()
            events[4].cancel()

        by_run, by_step = [], []
        sim_run = Simulator()
        build(sim_run, by_run)
        sim_run.run()
        sim_step = Simulator()
        build(sim_step, by_step)
        while sim_step.step():
            pass
        assert by_run == by_step
        assert sim_run.now == sim_step.now
        assert sim_run.events_processed == sim_step.events_processed

    def test_run_survives_compaction_rebinding_the_heap(self):
        # _compact() rebuilds self._queue as a new list; run()'s local
        # alias must refresh per iteration or it would drain a stale heap.
        sim = Simulator()
        order = []
        events = [sim.schedule(10.0 + k, lambda: None) for k in range(300)]

        def mass_cancel():
            order.append("cancel")
            for event in events:
                event.cancel()

        sim.schedule(1.0, mass_cancel)
        sim.schedule(2.0, lambda: order.append("after"))
        sim.run()
        assert order == ["cancel", "after"]
        assert sim.pending() == 0


class TestSeedingContract:
    """The documented RNG contract: one stream per simulator, seeded at
    construction (``seed=``) or injected (``rng=``), never both;
    derived streams come from :func:`derive_seed`; :meth:`reseed` swaps
    the stream wholesale (the partition workers' post-build switch)."""

    def test_injected_rng_is_used_directly(self):
        import random

        rng = random.Random(99)
        expected = random.Random(99).random()
        sim = Simulator(rng=rng)
        assert sim.rng is rng
        assert sim.rng.random() == expected

    def test_seed_and_rng_are_mutually_exclusive(self):
        import random

        with pytest.raises(SimulationError, match="either seed or rng"):
            Simulator(seed=7, rng=random.Random(7))
        # seed=0 is the default, so rng alone is fine.
        Simulator(rng=random.Random(7))

    def test_reseed_replaces_the_stream(self):
        import random

        sim = Simulator(seed=1)
        sim.rng.random()  # advance the original stream
        sim.reseed(5)
        assert sim.rng.random() == random.Random(5).random()

    def test_derive_seed_is_deterministic_and_name_sensitive(self):
        from repro.netsim.engine import derive_seed

        assert derive_seed(0, "worker", 1) == derive_seed(0, "worker", 1)
        distinct = {
            derive_seed(0, "worker", 0),
            derive_seed(0, "worker", 1),
            derive_seed(1, "worker", 0),
            derive_seed(0, "link", 0),
        }
        assert len(distinct) == 4
        for value in distinct:
            assert 0 <= value < 2**64

    def test_derived_streams_are_independent(self):
        from repro.netsim.engine import derive_seed

        a = Simulator(seed=derive_seed(0, "worker", 0))
        b = Simulator(seed=derive_seed(0, "worker", 1))
        assert [a.rng.random() for _ in range(4)] != [
            b.rng.random() for _ in range(4)
        ]


class TestPeekTimes:
    """``peek_times(k)``: the k earliest pending timestamps without
    disturbing the queue — the worker's next-k report for demand-sync
    horizon ladders."""

    def test_sorted_prefix_of_pending(self):
        sim = Simulator()
        for when in (5.0, 1.0, 3.0, 2.0, 4.0):
            sim.schedule(when, lambda: None)
        assert sim.peek_times(3) == [1.0, 2.0, 3.0]
        assert sim.peek_times(99) == [1.0, 2.0, 3.0, 4.0, 5.0]
        # Non-destructive: the queue still dispatches everything.
        assert sim.peek_time() == 1.0
        sim.run(until=10.0)
        assert sim.events_processed == 5

    def test_skips_cancelled(self):
        sim = Simulator()
        doomed = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.schedule(3.0, lambda: None)
        doomed.cancel()
        assert sim.peek_times(2) == [2.0, 3.0]

    def test_duplicates_and_empty(self):
        sim = Simulator()
        assert sim.peek_times(4) == []
        sim.schedule(1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        assert sim.peek_times(4) == [1.0, 1.0]

    def test_k_one_matches_peek_time(self):
        sim = Simulator()
        sim.schedule(2.5, lambda: None)
        assert sim.peek_times(1) == [sim.peek_time()]
        assert sim.peek_times(0) == []

    def test_matches_wheel_scheduler(self):
        import random

        rng = random.Random(0xB07)
        times = [round(rng.uniform(0.001, 5.0), 6) for _ in range(200)]
        heap_sim = Simulator()
        wheel_sim = Simulator(scheduler="wheel")
        for when in times:
            heap_sim.schedule(when, lambda: None)
            wheel_sim.schedule(when, lambda: None)
        for k in (1, 2, 4, 7, 50, 300):
            expected = sorted(times)[:k]
            assert heap_sim.peek_times(k) == expected
            assert wheel_sim.peek_times(k) == expected

    def test_wheel_overflow_and_cancelled(self):
        sim = Simulator(scheduler="wheel")
        sim.schedule(0.001, lambda: None)
        doomed = sim.schedule(0.002, lambda: None)
        # Far-future events land in the wheel's overflow heap.
        sim.schedule(1e6, lambda: None)
        sim.schedule(2e6, lambda: None)
        doomed.cancel()
        assert sim.peek_times(4) == [0.001, 1e6, 2e6]
