"""FaultInjector against live networks: node, link, and adversarial
faults flow through the real protocol, and an empty plan arms nothing."""

import pytest

from repro import ExpressNetwork, TopologyBuilder
from repro.core.keys import make_key
from repro.errors import FaultError
from repro.faults import FaultInjector, FaultMonitor, FaultPlan, WireMutator
from tests.conftest import make_channel


@pytest.fixture
def isp_net():
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=1)
    net = ExpressNetwork(topo)
    net.run(until=0.01)
    return net


def subscribed(net, n_subs=3):
    """One channel, ``n_subs`` subscribers on distinct stubs."""
    hosts = sorted(net.host_names)
    src, ch = make_channel(net, hosts[0])
    subs = hosts[1 : 1 + n_subs]
    for name in subs:
        net.host(name).subscribe(ch)
    net.settle()
    return src, ch, subs


class TestArming:
    def test_empty_plan_schedules_no_events(self, isp_net):
        net = isp_net
        before = net.sim.pending()
        FaultInjector(net, FaultPlan()).arm()
        assert net.sim.pending() == before

    def test_double_arm_rejected(self, isp_net):
        injector = FaultInjector(isp_net, FaultPlan())
        injector.arm()
        with pytest.raises(FaultError, match="already armed"):
            injector.arm()

    def test_past_event_rejected(self, isp_net):
        net = isp_net
        net.run(until=5.0)
        plan = FaultPlan().crash(1.0, "t0")
        with pytest.raises(FaultError, match="in the past"):
            FaultInjector(net, plan).arm()

    def test_invalid_plan_rejected_at_arm(self, isp_net):
        plan = FaultPlan().restart(5.0, "t0")
        with pytest.raises(FaultError, match="no prior crash"):
            FaultInjector(isp_net, plan).arm()

    def test_unknown_target_surfaces_at_fire(self, isp_net):
        net = isp_net
        plan = FaultPlan().crash(1.0, "nonexistent")
        FaultInjector(net, plan).arm()
        with pytest.raises(FaultError, match="unknown crash target"):
            net.run(until=2.0)


class TestCrashRestart:
    def test_crash_wipes_state_and_downs_links(self, isp_net):
        net = isp_net
        src, ch, subs = subscribed(net)
        agent = net.ecmp_agents["t1"]
        now = net.sim.now
        injector = FaultInjector(net, FaultPlan().crash(now + 1.0, "t1"))
        injector.arm()
        net.run(until=now + 1.5)
        assert not agent.channels
        assert not agent.subscriptions
        assert agent.stats.get("state_losses") == 1
        assert all(not link.up for link in injector._downed["t1"])
        assert injector.fired and injector.fired[0][1] == "crash"

    def test_restart_resyncs_through_protocol(self, isp_net):
        net = isp_net
        hosts = sorted(net.host_names)
        src, ch = make_channel(net, hosts[0])
        subs = hosts[1:4]
        got = {name: 0 for name in subs}
        for name in subs:
            net.host(name).subscribe(
                ch,
                on_data=lambda _d, name=name: got.__setitem__(
                    name, got[name] + 1
                ),
            )
        net.settle()
        now = net.sim.now
        plan = FaultPlan().crash_restart(now + 1.0, "t1", downtime=3.0)
        injector = FaultInjector(net, plan)
        injector.arm()
        net.run(until=now + 40.0)
        # Every subscriber is back on the tree and data flows end to end.
        assert set(net.subscriber_hosts(ch)) == set(subs)
        src.send(ch)
        net.settle()
        assert all(count == 1 for count in got.values()), got
        # The resync actually cost bytes on the wire.
        totals = net.control_stats_total()
        assert totals.get("resync_events", 0) > 0

    def test_crash_composed_with_partition_does_not_heal_it(self, isp_net):
        net = isp_net
        now = net.sim.now
        plan = (
            FaultPlan()
            .partition(now + 0.5, "t0", "t1")
            .crash_restart(now + 1.0, "t1", downtime=2.0)
            .heal(now + 10.0, "t0", "t1")
        )
        FaultInjector(net, plan).arm()
        net.run(until=now + 5.0)
        # Restart fired, but the independently partitioned link stays
        # down until its own heal event.
        assert not net.topo.link_between("t0", "t1").up
        net.run(until=now + 11.0)
        assert net.topo.link_between("t0", "t1").up


class TestLinkFaults:
    def test_partition_and_heal(self, isp_net):
        net = isp_net
        now = net.sim.now
        link = net.topo.link_between("t0", "t1")
        plan = FaultPlan().partition(now + 1.0, "t0", "t1").heal(now + 2.0, "t0", "t1")
        FaultInjector(net, plan).arm()
        net.run(until=now + 1.5)
        assert not link.up
        net.run(until=now + 2.5)
        assert link.up

    def test_unlinked_pair_rejected(self, isp_net):
        net = isp_net
        # Both hosts exist, but no direct link joins them.
        hosts = sorted(net.host_names)
        plan = FaultPlan().partition(net.sim.now + 1.0, hosts[0], hosts[-1])
        FaultInjector(net, plan).arm()
        with pytest.raises(FaultError, match="no link between"):
            net.run(until=net.sim.now + 2.0)

    def test_latency_spike_restores_after_duration(self, isp_net):
        net = isp_net
        now = net.sim.now
        link = net.topo.link_between("t0", "t1")
        original = link.delay
        plan = FaultPlan().latency_spike(now + 1.0, "t0", "t1", factor=10.0, duration=2.0)
        FaultInjector(net, plan).arm()
        net.run(until=now + 1.5)
        assert link.delay == pytest.approx(original * 10.0)
        net.run(until=now + 3.5)
        assert link.delay == pytest.approx(original)

    def test_wire_mutator_installs_mutates_and_removes(self, isp_net):
        net = isp_net
        src, ch, subs = subscribed(net)
        now = net.sim.now
        plan = FaultPlan().wire_mutate(
            now + 0.5, "t0", "t1", duration=5.0, duplicate=1.0
        )
        injector = FaultInjector(net, plan)
        injector.arm()
        link = net.topo.link_between("t0", "t1")
        net.run(until=now + 1.0)
        assert link.mutator is injector.mutators[0]
        # Drive control traffic across the mutated window.
        for name in subs:
            net.host(name).unsubscribe(ch)
            net.host(name).subscribe(ch)
        net.run(until=now + 6.0)
        assert link.mutator is None  # removed after the window
        stats = injector.mutation_stats()
        assert stats["duplicated"] > 0
        assert stats["dropped"] == 0
        # Duplicated soft-state messages are idempotent: counts settle
        # to the truth regardless.
        net.settle()
        total = []
        src.count_query(ch, callback=lambda tot, partial: total.append(tot))
        net.settle()
        assert total and total[0] == len(subs)


class TestAdversarialLoad:
    def test_join_flood_is_denied_and_state_clean(self, isp_net):
        net = isp_net
        hosts = sorted(net.host_names)
        src, ch = make_channel(net, hosts[0])
        key = make_key(ch)
        src.channel_key(ch, key)
        net.host(hosts[1]).subscribe(ch, key=key)
        net.settle()
        attacker = hosts[-1]
        now = net.sim.now
        plan = FaultPlan(seed=5).join_flood(
            now + 0.5, attacker, ch, attempts=40, interval=0.01
        )
        injector = FaultInjector(net, plan)
        injector.arm()
        net.run(until=now + 5.0)
        net.settle()
        assert injector.attack_stats["join_attempts"] == 40
        totals = net.control_stats_total()
        assert totals.get("denied_subscriptions", 0) > 0
        # The forged joins never stick: only the honest subscriber.
        assert set(net.subscriber_hosts(ch)) == {hosts[1]}

    def test_count_inflate_is_corrected_by_refresh(self, isp_net):
        net = isp_net
        src, ch, subs = subscribed(net, n_subs=2)
        attacker = subs[0]
        now = net.sim.now
        plan = FaultPlan().count_inflate(
            now + 0.5, attacker, ch, count=500_000, repeats=2, interval=0.1
        )
        injector = FaultInjector(net, plan)
        injector.arm()
        net.run(until=now + 2.0)
        assert injector.attack_stats["inflated_counts"] == 2
        # The inflated number may transiently propagate; a count query
        # forces fresh upstream reports and lands on the truth.
        net.settle(10.0)
        totals = []
        src.count_query(ch, callback=lambda tot, partial: totals.append(tot))
        net.settle()
        assert totals and totals[0] == len(subs)


class TestWireMutatorUnit:
    def test_install_conflict_rejected(self, isp_net):
        import random

        link = isp_net.topo.link_between("t0", "t1")
        first = WireMutator(random.Random(0), drop=0.1)
        second = WireMutator(random.Random(1), drop=0.1)
        first.install(link)
        try:
            with pytest.raises(FaultError, match="already has"):
                second.install(link)
            # remove() of the non-installed mutator is a no-op.
            second.remove(link)
            assert link.mutator is first
        finally:
            first.remove(link)
        assert link.mutator is None

    def test_probability_validation(self):
        import random

        with pytest.raises(FaultError):
            WireMutator(random.Random(0), drop=-0.1)
        with pytest.raises(FaultError):
            WireMutator(random.Random(0), reorder_delay=-1.0)

    def test_zero_probability_mutator_passes_everything(self, isp_net):
        net = isp_net
        src, ch, subs = subscribed(net)
        import random

        link = net.topo.link_between("t0", "t1")
        mutator = WireMutator(random.Random(0))
        mutator.install(link)
        try:
            net.host(subs[0]).unsubscribe(ch)
            net.settle()
        finally:
            mutator.remove(link)
        assert mutator.mutations_total() == 0
