"""FaultMonitor: SLO scoring, orphan detection, and lifecycle."""

import pytest

from repro import ExpressNetwork, TopologyBuilder
from repro.errors import FaultError
from repro.obs.hooks import Observability
from repro.faults import FaultInjector, FaultMonitor, FaultPlan
from tests.conftest import make_channel


@pytest.fixture
def observed_net():
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=1)
    obs = Observability()
    obs.bind_simulator(topo.sim)
    net = ExpressNetwork(topo, obs=obs)
    net.run(until=0.01)
    return net


def workload(net, n_subs=3):
    hosts = sorted(net.host_names)
    src, ch = make_channel(net, hosts[0])
    subs = hosts[1 : 1 + n_subs]
    for name in subs:
        net.host(name).subscribe(ch)
    net.settle()
    return src, ch, subs


class TestLifecycle:
    def test_report_before_begin_raises(self, observed_net):
        monitor = FaultMonitor(observed_net)
        with pytest.raises(FaultError, match="before begin"):
            monitor.report()

    def test_monitor_attaches_convergence_hook(self, observed_net):
        monitor = FaultMonitor(observed_net)
        assert monitor.convergence is observed_net.obs.convergence
        # A second monitor reuses the same hook, not a fresh one.
        assert FaultMonitor(observed_net).convergence is monitor.convergence

    def test_unobserved_network_still_scores_counters(self):
        topo = TopologyBuilder.isp(
            n_transit=3, stubs_per_transit=2, hosts_per_stub=1
        )
        net = ExpressNetwork(topo)
        net.run(until=0.01)
        src, ch, subs = workload(net)
        monitor = FaultMonitor(net)
        assert monitor.convergence is None
        monitor.begin()
        report = monitor.report()
        assert report["convergence_seconds"] == 0.0
        assert report["faults_fired"] == 0


class TestQuietRun:
    def test_no_faults_scores_zero(self, observed_net):
        net = observed_net
        src, ch, subs = workload(net)
        monitor = FaultMonitor(net)
        monitor.begin()
        net.settle(5.0)
        report = monitor.report()
        assert report["faults_fired"] == 0
        assert report["last_fault_at"] is None
        assert report["convergence_seconds"] == 0.0
        assert report["resync_bytes"] == 0
        assert report["blast_radius"] == 0.0
        assert report["agents_churned"] == 0
        assert report["orphaned_state"] == 0
        assert report["state_losses"] == 0


class TestFaultedRun:
    def test_crash_storm_slos(self, observed_net):
        net = observed_net
        src, ch, subs = workload(net)
        monitor = FaultMonitor(net)
        monitor.begin()
        now = net.sim.now
        plan = FaultPlan().crash_restart(now + 1.0, "t1", downtime=3.0)
        injector = FaultInjector(net, plan, monitor=monitor)
        injector.arm()
        net.run(until=now + 40.0)
        report = monitor.report(injector)
        assert report["faults_fired"] == 2
        assert report["last_fault_at"] == pytest.approx(now + 4.0)
        assert report["state_losses"] == 1
        # Recovery happened strictly after the restart landed.
        assert report["convergence_seconds"] > 0.0
        assert report["resync_bytes"] > 0
        assert report["resync_events"] > 0
        # Some but not all agents churned.
        assert 0 < report["agents_churned"] < report["agents_total"]
        assert 0.0 < report["blast_radius"] < 1.0
        # The network re-settled cleanly.
        assert report["orphaned_state"] == 0
        # Injector extras ride along.
        assert report["wire_mutations"] == {
            "passed": 0, "dropped": 0, "duplicated": 0, "reordered": 0,
        }
        assert report["attack"]["join_attempts"] == 0

    def test_blast_radius_counts_only_churned_agents(self, observed_net):
        net = observed_net
        src, ch, subs = workload(net, n_subs=1)
        monitor = FaultMonitor(net)
        monitor.begin()
        # No faults, but one more subscriber joins: churn without any
        # fault is still churn relative to the baseline window.
        joiner = sorted(net.host_names)[-1]
        net.host(joiner).subscribe(ch)
        net.settle()
        report = monitor.report()
        assert report["agents_churned"] >= 1
        assert report["blast_radius"] < 1.0


class TestOrphanDetection:
    def test_settled_network_has_no_orphans(self, observed_net):
        net = observed_net
        workload(net)
        assert FaultMonitor(net).orphaned_state() == 0

    def test_fib_entry_without_channel_state_is_orphan(self, observed_net):
        net = observed_net
        src, ch, subs = workload(net)
        monitor = FaultMonitor(net)
        agent = net.ecmp_agents["t1"]
        # Manufacture the inconsistency a buggy teardown would leave:
        # drop the channel table but keep the FIB entries.
        fib_before = len(list(agent.fib.channels()))
        assert fib_before > 0
        agent.channels.clear()
        assert monitor.orphaned_state() >= fib_before

    def test_unreciprocated_downstream_is_orphan(self, observed_net):
        net = observed_net
        src, ch, subs = workload(net)
        monitor = FaultMonitor(net)
        baseline = monitor.orphaned_state()
        # Wipe a downstream neighbor's whole table without telling its
        # upstream: the upstream's record now points at nothing.
        victim = None
        for name, agent in net.ecmp_agents.items():
            state = agent.channels.get(ch)
            if state is not None and state.upstream in net.ecmp_agents:
                victim = name
                break
        assert victim is not None
        net.ecmp_agents[victim].channels.clear()
        assert monitor.orphaned_state() > baseline
