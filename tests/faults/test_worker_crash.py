"""Worker-crash injection against the parallel transports.

The contract ``crash_parallel_worker`` exists to exercise: when a
worker process dies mid-flight, the coordinator's next receive or
``wait_any`` must surface a :class:`TransportError` — the shm ring's
generation counters spot the dead peer (no frame ever completes), the
pipe transport spots the dead process — rather than hanging forever.
Surviving workers keep working.
"""

import pytest

from repro.errors import FaultError
from repro.faults import crash_parallel_worker
from repro.netsim.parallel.transport import (
    PipeTransport,
    ShmTransport,
    TransportError,
    connect_endpoint,
)


def _echo_worker(descriptor, rank):
    """Child target: echo frames until told to quit."""
    endpoint = connect_endpoint(descriptor)
    while True:
        frame = endpoint.recv()
        if frame == b"quit":
            return
        endpoint.send(frame)


@pytest.fixture(params=["shm", "pipe"])
def transport(request):
    cls = ShmTransport if request.param == "shm" else PipeTransport
    transport = cls(2, _echo_worker)
    yield transport
    for rank, proc in enumerate(transport.procs):
        if proc.is_alive():
            transport.send_frame(rank, b"quit")
    transport.close()


class TestCrashParallelWorker:
    def test_echo_roundtrip_before_crash(self, transport):
        transport.send_frame(0, b"ping")
        assert transport.wait_any([0]) == [0]
        assert transport.recv_frame(0) == b"ping"

    def test_coordinator_raises_instead_of_hanging(self, transport):
        proc = crash_parallel_worker(transport, 0, join_timeout=10.0)
        assert not proc.is_alive()
        # shm: wait_any's liveness probe raises (the ring's generation
        # counter never advances). pipe: EOF makes the connection
        # readable, so wait_any returns and the recv itself raises.
        with pytest.raises(TransportError, match="died without a reply|peer closed"):
            for rank in transport.wait_any([0]):
                transport.recv_frame(rank)

    def test_survivor_keeps_working(self, transport):
        crash_parallel_worker(transport, 0, join_timeout=10.0)
        transport.send_frame(1, b"still here")
        assert transport.wait_any([1]) == [1]
        assert transport.recv_frame(1) == b"still here"

    def test_complete_frame_survives_the_crash(self, transport):
        # A reply already in flight when the worker dies must still be
        # delivered — crash detection only fires on an *empty* channel.
        transport.send_frame(0, b"last words")
        assert transport.wait_any([0]) == [0]
        crash_parallel_worker(transport, 0, join_timeout=10.0)
        assert transport.recv_frame(0) == b"last words"

    def test_bad_rank_rejected(self, transport):
        with pytest.raises(FaultError, match="no worker rank"):
            crash_parallel_worker(transport, 7)

    def test_transport_without_procs_rejected(self):
        with pytest.raises(FaultError, match="no worker processes"):
            crash_parallel_worker(object(), 0)
