"""FaultPlan: builders, validation, and the seeded-determinism contract."""

import pytest

from repro.errors import FaultError
from repro.faults import KINDS, LINK_KINDS, FaultEvent, FaultPlan, seeded_crash_storm


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultEvent(1.0, "meteor_strike", "t0")

    def test_negative_time_and_duration_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(-1.0, "crash", "t0")
        with pytest.raises(FaultError):
            FaultEvent(1.0, "crash", "t0", duration=-0.5)

    def test_link_endpoints_parse(self):
        event = FaultEvent(1.0, "partition", "a|b")
        assert event.link_endpoints == ("a", "b")

    def test_link_endpoints_reject_malformed_target(self):
        for target in ("ab", "a|", "|b", ""):
            with pytest.raises(FaultError, match="link target"):
                FaultEvent(1.0, "partition", target).link_endpoints

    def test_link_endpoints_reject_node_kinds(self):
        with pytest.raises(FaultError, match="not a link fault"):
            FaultEvent(1.0, "crash", "t0").link_endpoints

    def test_kind_tables_are_consistent(self):
        assert set(LINK_KINDS) < set(KINDS)


class TestBuilders:
    def test_fluent_chaining_and_order(self):
        plan = (
            FaultPlan(seed=3)
            .crash(5.0, "t1")
            .restart(8.0, "t1")
            .partition(6.0, "a", "b")
            .heal(7.0, "a", "b")
        )
        assert len(plan) == 4
        assert [e.kind for e in plan] == ["crash", "restart", "partition", "heal"]
        # Firing order sorts by time, stably.
        assert [e.kind for _, e in plan.sorted_events()] == [
            "crash", "partition", "heal", "restart",
        ]

    def test_same_timestamp_keeps_insertion_order(self):
        plan = FaultPlan().crash(5.0, "a").partition(5.0, "x", "y").restart(5.0, "a")
        assert [e.kind for _, e in plan.sorted_events()] == [
            "crash", "partition", "restart",
        ]
        # A same-instant crash/restart still validates: the crash was
        # inserted first, so it fires first.
        plan.heal(5.0, "x", "y")
        plan.validate()

    def test_crash_restart_convenience(self):
        plan = FaultPlan().crash_restart(10.0, "t2", downtime=4.0)
        assert [(e.kind, e.at) for e in plan] == [("crash", 10.0), ("restart", 14.0)]
        with pytest.raises(FaultError, match="downtime"):
            FaultPlan().crash_restart(10.0, "t2", downtime=0.0)

    def test_builder_argument_validation(self):
        with pytest.raises(FaultError, match="factor"):
            FaultPlan().latency_spike(1.0, "a", "b", factor=0.0, duration=1.0)
        with pytest.raises(FaultError, match="probability"):
            FaultPlan().wire_mutate(1.0, "a", "b", duration=1.0, drop=1.5)
        with pytest.raises(FaultError, match="attempts"):
            FaultPlan().join_flood(1.0, "h", object(), attempts=0)
        with pytest.raises(FaultError, match="interval"):
            FaultPlan().join_flood(1.0, "h", object(), interval=0.0)
        with pytest.raises(FaultError, match="count"):
            FaultPlan().count_inflate(1.0, "h", object(), count=-1)
        with pytest.raises(FaultError, match="repeats"):
            FaultPlan().count_inflate(1.0, "h", object(), repeats=0)

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.empty
        assert list(plan) == []
        plan.validate()


class TestValidation:
    def test_restart_without_crash_rejected(self):
        with pytest.raises(FaultError, match="no prior crash"):
            FaultPlan().restart(5.0, "t0").validate()

    def test_double_crash_rejected(self):
        plan = FaultPlan().crash(5.0, "t0").crash(9.0, "t0")
        with pytest.raises(FaultError, match="crashed twice"):
            plan.validate()

    def test_crash_of_distinct_nodes_ok(self):
        FaultPlan().crash(5.0, "t0").crash(6.0, "t1").validate()

    def test_heal_without_partition_rejected(self):
        with pytest.raises(FaultError, match="no prior partition"):
            FaultPlan().heal(5.0, "a", "b").validate()

    def test_double_partition_rejected(self):
        plan = FaultPlan().partition(5.0, "a", "b").partition(6.0, "b", "a")
        with pytest.raises(FaultError, match="partitioned twice"):
            plan.validate()

    def test_heal_matches_reversed_endpoints(self):
        FaultPlan().partition(5.0, "a", "b").heal(6.0, "b", "a").validate()


class TestSeeding:
    def test_rng_is_per_event_and_deterministic(self):
        plan = FaultPlan(seed=42).wire_mutate(1.0, "a", "b", duration=2.0, drop=0.5)
        plan.wire_mutate(3.0, "a", "b", duration=2.0, drop=0.5)
        pairs = plan.sorted_events()
        draws = [plan.rng_for(i, e).random() for i, e in pairs]
        # Distinct events draw distinct streams...
        assert draws[0] != draws[1]
        # ...and the same plan replays the same streams.
        again = [plan.rng_for(i, e).random() for i, e in pairs]
        assert draws == again

    def test_seed_changes_streams(self):
        a = FaultPlan(seed=1).crash(1.0, "t0")
        b = FaultPlan(seed=2).crash(1.0, "t0")
        assert (
            a.rng_for(0, a.events[0]).random()
            != b.rng_for(0, b.events[0]).random()
        )


class TestSeededCrashStorm:
    def test_is_deterministic_and_valid(self):
        routers = ["t0", "t1", "t2"]
        a = seeded_crash_storm(7, routers, start=100.0, crashes=5)
        b = seeded_crash_storm(7, routers, start=100.0, crashes=5)
        assert [(e.at, e.kind, e.target) for e in a] == [
            (e.at, e.kind, e.target) for e in b
        ]
        assert len(a) == 10  # crash + restart per cycle
        a.validate()
        assert {e.target for e in a} <= set(routers)

    def test_different_seeds_differ(self):
        routers = ["t0", "t1", "t2", "t3"]
        a = seeded_crash_storm(1, routers, start=0.0, crashes=6)
        b = seeded_crash_storm(2, routers, start=0.0, crashes=6)
        assert [(e.at, e.target) for e in a] != [(e.at, e.target) for e in b]

    def test_rejects_overlapping_cycles_and_empty_pool(self):
        with pytest.raises(FaultError, match="spacing"):
            seeded_crash_storm(0, ["t0"], start=0.0, crashes=2,
                               downtime=10.0, spacing=10.0)
        with pytest.raises(FaultError, match="at least one"):
            seeded_crash_storm(0, [], start=0.0, crashes=1)
