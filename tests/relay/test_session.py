"""Integration tests: the session-relay middleware (§4)."""

import pytest

from repro import make_key
from repro.relay import (
    FloorControl,
    SessionParticipant,
    SessionRelay,
    direct_channel_switchover,
)


def build_session(net, sr_host="h0_0_0", participants=("h1_0_0", "h2_0_0", "h2_1_1"), floor=None):
    relay = SessionRelay(net, sr_host, floor=floor)
    members = [SessionParticipant(net, name, relay) for name in participants]
    net.settle()
    return relay, members


class TestRelaying:
    def test_relay_resident_speaker_reaches_all(self, isp_net):
        relay, members = build_session(isp_net)
        relay.speak_from_relay("welcome")
        isp_net.settle()
        for member in members:
            assert [m.body for m in member.heard_talks] == ["welcome"]

    def test_participant_speech_relayed_to_everyone(self, isp_net):
        """Students' questions reach the other students via the SR."""
        relay, members = build_session(isp_net)
        members[0].speak("question?")
        isp_net.settle()
        for member in members:
            assert [m.body for m in member.heard_talks] == ["question?"]
        assert relay.relayed == 1

    def test_sequence_numbers_increase(self, isp_net):
        relay, members = build_session(isp_net)
        relay.speak_from_relay("a")
        relay.speak_from_relay("b")
        isp_net.settle()
        seqs = [m.seq for m in members[0].heard_talks]
        assert seqs == sorted(seqs) and len(set(seqs)) == 2

    def test_leave_stops_delivery(self, isp_net):
        relay, members = build_session(isp_net)
        members[1].leave()
        isp_net.settle()
        relay.speak_from_relay("after-leave")
        isp_net.settle()
        assert members[0].heard_talks and not members[1].heard_talks

    def test_stopped_relay_is_silent(self, isp_net):
        relay, members = build_session(isp_net)
        relay.stop()
        relay.speak_from_relay("void")
        members[0].speak("void too")
        isp_net.settle()
        assert not members[1].heard_talks

    def test_keyed_session_requires_key(self, isp_net):
        """A restricted session: the SR keys its channel; only invited
        participants (who got the key out of band) can join."""
        net = isp_net
        from repro.core.keys import ChannelKey

        relay = SessionRelay(net, "h0_0_0", secret=b"invite-only")
        invited = SessionParticipant(net, "h1_0_0", relay, key=relay.key)
        crasher = SessionParticipant(net, "h2_0_0", relay, key=ChannelKey(b"wrongkey"))
        net.settle()
        assert invited.subscription.status == "active"
        assert crasher.subscription.status == "denied"
        relay.speak_from_relay("secret lecture")
        net.settle()
        assert invited.heard_talks
        assert not crasher.heard_talks


class TestFloorControlledSession:
    def test_non_holder_speech_blocked(self, isp_net):
        floor = FloorControl(moderator="h0_0_0")
        relay, members = build_session(isp_net, floor=floor)
        members[0].speak("barge-in")
        isp_net.settle()
        assert relay.blocked == 1
        assert not members[1].heard_talks

    def test_grant_then_speech_relayed(self, isp_net):
        """§4.2: "one question is transmitted to the audience at a
        time"."""
        floor = FloorControl(moderator="h0_0_0")
        relay, members = build_session(isp_net, floor=floor)
        members[0].request_floor()
        isp_net.settle()
        assert members[0].has_floor
        members[0].speak("my question")
        isp_net.settle()
        assert [m.body for m in members[1].heard_talks] == ["my question"]

    def test_release_hands_floor_to_queued_member(self, isp_net):
        floor = FloorControl(moderator="h0_0_0")
        relay, members = build_session(isp_net, floor=floor)
        members[0].request_floor()
        isp_net.settle()
        members[1].request_floor()
        isp_net.settle()
        assert not members[1].has_floor
        members[0].release_floor()
        isp_net.settle()
        assert members[1].has_floor

    def test_moderator_speaks_without_floor(self, isp_net):
        floor = FloorControl(moderator="h0_0_0")
        relay, members = build_session(isp_net, floor=floor)
        relay.speak_from_relay("lecture content")
        isp_net.settle()
        assert members[0].heard_talks

    def test_denied_member_notified(self, isp_net):
        floor = FloorControl(moderator="h0_0_0", max_questions=0)
        relay, members = build_session(isp_net, floor=floor)
        members[0].request_floor()
        isp_net.settle()
        assert not members[0].has_floor
        kinds = [m.kind for m in members[0].received]
        assert "floor_deny" in kinds


class TestDirectChannelSwitchover:
    def test_secondary_source_gets_own_channel(self, isp_net):
        """§4.1: a long-talking secondary source switches from relaying
        to a direct channel announced through the SR."""
        net = isp_net
        relay, members = build_session(net)
        speaker = members[0]  # h1_0_0 becomes a direct source
        direct = direct_channel_switchover(net, relay, speaker.name, members)
        net.settle()
        # Announcement went out on the session channel.
        assert any(m.kind == "announce_channel" for m in members[1].received)
        # Direct traffic now flows without transiting the SR.
        got = []
        net.ecmp_agents[members[1].name].subscriptions[direct].on_data = got.append
        net.source(speaker.name).send(direct)
        net.settle()
        assert len(got) == 1
        # The direct path beats the two-leg relay path.
        direct_hops = net.routing.hop_count(speaker.name, members[1].name)
        relay_hops = net.routing.hop_count(speaker.name, "h0_0_0") + net.routing.hop_count(
            "h0_0_0", members[1].name
        )
        assert direct_hops <= relay_hops
