"""Integration tests: reliable relaying with NACK counting (§4.2,
§2.2.1)."""

import pytest

from repro.errors import RelayError
from repro.relay import ReliableReceiver, ReliableRelay, SessionParticipant, SessionRelay


def build_reliable(net, participants=("h1_0_0", "h2_0_0", "h2_1_1")):
    relay = SessionRelay(net, "h0_0_0")
    reliable = ReliableRelay(relay)
    receivers = []
    for name in participants:
        participant = SessionParticipant(net, name, relay)
        receivers.append(ReliableReceiver(participant))
    net.settle()
    return relay, reliable, receivers


class TestSequencing:
    def test_send_buffers_and_sequences(self, isp_net):
        relay, reliable, receivers = build_reliable(isp_net)
        seq1, _ = reliable.send("a")
        seq2, _ = reliable.send("b")
        assert seq2 > seq1
        assert set(reliable.buffer) == {seq1, seq2}
        isp_net.settle()
        for receiver in receivers:
            assert receiver.missing() == set()

    def test_buffer_limit_evicts_oldest(self, isp_net):
        relay, reliable, receivers = build_reliable(isp_net)
        reliable.buffer_limit = 2
        seqs = [reliable.send(i)[0] for i in range(4)]
        assert set(reliable.buffer) == set(seqs[-2:])


class TestNackCollection:
    def test_zero_nacks_when_all_received(self, isp_net):
        net = isp_net
        relay, reliable, receivers = build_reliable(net)
        seq, _ = reliable.send("payload")
        net.settle()
        result = reliable.check_packet(seq, timeout=5.0)
        net.settle(6.0)
        assert result.count == 0
        assert reliable.retransmissions == 0

    def test_missing_packet_counted_and_repaired(self, isp_net):
        """"efficiently collect ... negative acknowledgments to
        determine how many subscribers missed a particular packet"."""
        net = isp_net
        relay, reliable, receivers = build_reliable(net)
        seq, _ = reliable.send("important")
        net.settle()
        # Two receivers "lose" the packet.
        for receiver in receivers[:2]:
            receiver.received_seqs.discard(seq)
        result = reliable.check_packet(seq, timeout=5.0)
        net.settle(6.0)
        assert result.count == 2
        # Repair was multicast; everyone is whole again.
        assert reliable.retransmissions == 1
        net.settle()
        for receiver in receivers:
            assert seq in receiver.received_seqs

    def test_check_without_repair(self, isp_net):
        net = isp_net
        relay, reliable, receivers = build_reliable(net)
        seq, _ = reliable.send("x")
        net.settle()
        receivers[0].received_seqs.discard(seq)
        result = reliable.check_packet(seq, timeout=5.0, repair=False)
        net.settle(6.0)
        assert result.count == 1
        assert reliable.retransmissions == 0

    def test_gap_tracking(self, isp_net):
        net = isp_net
        relay, reliable, receivers = build_reliable(net)
        s1, _ = reliable.send("a")
        s2, _ = reliable.send("b")
        s3, _ = reliable.send("c")
        net.settle()
        receiver = receivers[0]
        receiver.received_seqs.discard(s2)
        assert receiver.missing() == {s2}

    def test_unbuffered_seq_rejected(self, isp_net):
        relay, reliable, receivers = build_reliable(isp_net)
        with pytest.raises(RelayError):
            reliable.check_packet(9999)
        with pytest.raises(RelayError):
            reliable.retransmit(9999)
