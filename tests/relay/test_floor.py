"""Unit tests for floor control."""

import pytest

from repro.errors import RelayError
from repro.relay.floor import FloorControl, FloorDecision


class TestGrantRelease:
    def test_free_floor_granted_immediately(self):
        floor = FloorControl()
        assert floor.request("alice") is FloorDecision.GRANTED
        assert floor.holder == "alice"
        assert floor.may_speak("alice")

    def test_busy_floor_queues(self):
        floor = FloorControl()
        floor.request("alice")
        assert floor.request("bob") is FloorDecision.QUEUED
        assert not floor.may_speak("bob")

    def test_release_promotes_next_in_queue(self):
        floor = FloorControl()
        floor.request("alice")
        floor.request("bob")
        floor.request("carol")
        assert floor.release("alice") == "bob"
        assert floor.holder == "bob"
        assert floor.release("bob") == "carol"
        assert floor.release("carol") is None
        assert floor.holder is None

    def test_release_without_holding_raises(self):
        floor = FloorControl()
        floor.request("alice")
        with pytest.raises(RelayError):
            floor.release("mallory")

    def test_queued_member_can_withdraw(self):
        floor = FloorControl()
        floor.request("alice")
        floor.request("bob")
        assert floor.release("bob") is None  # withdraw from queue
        assert floor.release("alice") is None  # queue now empty

    def test_duplicate_request_stays_queued(self):
        floor = FloorControl()
        floor.request("alice")
        floor.request("bob")
        assert floor.request("bob") is FloorDecision.QUEUED
        assert list(floor.queue).count("bob") == 1

    def test_holder_re_request_is_queued_not_double_granted(self):
        floor = FloorControl()
        floor.request("alice")
        assert floor.request("alice") is FloorDecision.QUEUED
        assert floor.grants_given["alice"] == 1


class TestModeration:
    def test_moderator_always_may_speak(self):
        floor = FloorControl(moderator="teacher")
        floor.request("alice")
        assert floor.may_speak("teacher")
        assert floor.may_speak("alice")

    def test_max_questions_enforced(self):
        """§4.2: "no member disrupts the session with excessive
        questions"."""
        floor = FloorControl(max_questions=2)
        for _ in range(2):
            assert floor.request("alice") is FloorDecision.GRANTED
            floor.release("alice")
        assert floor.request("alice") is FloorDecision.DENIED
        assert floor.stats.denials == 1

    def test_exhausted_member_skipped_in_queue(self):
        floor = FloorControl(max_questions=1)
        floor.request("alice")       # grant 1 for alice
        floor.request("bob")
        floor.release("alice")       # bob granted (his 1st)
        floor.request("alice")       # denied: alice exhausted
        assert floor.holder == "bob"
        assert floor.release("bob") is None

    def test_authorization_list(self):
        floor = FloorControl(authorized={"alice"})
        assert floor.request("alice") is FloorDecision.GRANTED
        floor.release("alice")
        assert floor.request("mallory") is FloorDecision.DENIED

    def test_revoke(self):
        floor = FloorControl()
        floor.request("alice")
        assert floor.revoke() == "alice"
        assert floor.holder is None
        assert floor.revoke() is None

    def test_stats(self):
        floor = FloorControl(max_questions=1)
        floor.request("a")
        floor.request("b")
        floor.release("a")
        floor.request("a")
        assert floor.stats.grants == 2
        assert floor.stats.queued == 1
        assert floor.stats.denials == 1
