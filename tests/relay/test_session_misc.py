"""Session-relay edge cases: heartbeats, cross-session isolation,
unknown message kinds."""

import pytest

from repro.relay import RelayMessage, SessionParticipant, SessionRelay


class TestHeartbeats:
    def test_heartbeats_reach_participants(self, isp_net):
        net = isp_net
        relay = SessionRelay(net, "h0_0_0", heartbeat_interval=1.0)
        member = SessionParticipant(net, "h1_0_0", relay)
        net.run(until=net.sim.now + 3.5)
        assert member.last_heartbeat_at is not None
        first = member.last_heartbeat_at
        net.run(until=net.sim.now + 2.0)
        assert member.last_heartbeat_at > first

    def test_no_heartbeat_without_interval(self, isp_net):
        net = isp_net
        relay = SessionRelay(net, "h0_0_0")
        member = SessionParticipant(net, "h1_0_0", relay)
        net.run(until=net.sim.now + 5.0)
        assert member.last_heartbeat_at is None


class TestSessionIsolation:
    def test_messages_for_other_sessions_ignored(self, isp_net):
        """A unicast RelayMessage with a foreign session id is ignored
        by the SR (two SRs on one host stay separate)."""
        net = isp_net
        relay_a = SessionRelay(net, "h0_0_0")
        relay_b = SessionRelay(net, "h0_0_0")
        member_a = SessionParticipant(net, "h1_0_0", relay_a)
        member_b = SessionParticipant(net, "h2_0_0", relay_b)
        net.settle()
        member_a.speak("for session A only")
        net.settle()
        # The speaker hears its own relayed talk back (it is a channel
        # subscriber like everyone else).
        assert [m.body for m in member_a.heard_talks] == ["for session A only"]
        assert relay_a.relayed == 1
        assert relay_b.relayed == 0
        assert member_b.heard_talks == []

    def test_two_sessions_one_sr_host_distinct_channels(self, isp_net):
        net = isp_net
        relay_a = SessionRelay(net, "h0_0_0")
        relay_b = SessionRelay(net, "h0_0_0")
        assert relay_a.channel != relay_b.channel
        assert relay_a.session_id != relay_b.session_id

    def test_non_relay_payload_ignored(self, isp_net):
        """Arbitrary unicast traffic to the SR host does not confuse
        the relay."""
        net = isp_net
        relay = SessionRelay(net, "h0_0_0")
        member = SessionParticipant(net, "h1_0_0", relay)
        net.settle()
        from repro.netsim.packet import Packet

        junk = Packet(
            src=net.host("h2_0_0").address,
            dst=relay.address,
            proto="data",
            payload={"not": "a RelayMessage"},
        )
        net.forwarders["h2_0_0"].emit_unicast(junk)
        net.settle()
        assert relay.relayed == 0


class TestFloorlessRelay:
    def test_without_floor_everyone_is_relayed(self, isp_net):
        net = isp_net
        relay = SessionRelay(net, "h0_0_0")  # no floor control
        members = [
            SessionParticipant(net, name, relay) for name in ("h1_0_0", "h2_0_0")
        ]
        net.settle()
        members[0].speak("a")
        members[1].speak("b")
        net.settle()
        assert relay.relayed == 2
        assert relay.blocked == 0

    def test_floor_request_without_floor_control_is_noop(self, isp_net):
        net = isp_net
        relay = SessionRelay(net, "h0_0_0")
        member = SessionParticipant(net, "h1_0_0", relay)
        net.settle()
        member.request_floor()
        net.settle()
        assert not member.has_floor  # nothing grants it; nothing breaks
