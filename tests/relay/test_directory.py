"""Tests for the push-channel session directory (§4.1)."""

import pytest

from repro.errors import RelayError
from repro.relay.directory import (
    DirectoryListener,
    SessionAnnouncement,
    SessionDirectory,
)
from repro.relay.session import SessionRelay


def build_directory(net, readvertise=60.0):
    return SessionDirectory(net, "h0_0_0", readvertise_interval=readvertise)


class TestAnnouncement:
    def test_push_reaches_subscribed_listeners(self, isp_net):
        net = isp_net
        directory = build_directory(net)
        heard = []
        listener = DirectoryListener(
            net, "h1_0_0", directory.channel, on_announcement=heard.append
        )
        net.settle()
        lecture = SessionRelay(net, "h2_0_0")
        directory.announce(
            SessionAnnouncement(
                name="networking-101",
                channel=lecture.channel,
                starts_at=net.sim.now + 100,
                topic="RPF for fun and profit",
            )
        )
        net.settle()
        assert [a.name for a in heard] == ["networking-101"]
        assert listener.lookup("networking-101").channel == lecture.channel

    def test_duplicate_announcement_rejected(self, isp_net):
        net = isp_net
        directory = build_directory(net)
        lecture = SessionRelay(net, "h2_0_0")
        announcement = SessionAnnouncement(
            name="x", channel=lecture.channel, starts_at=0.0
        )
        directory.announce(announcement)
        with pytest.raises(RelayError):
            directory.announce(announcement)

    def test_late_joiner_catches_readvertisement(self, isp_net):
        net = isp_net
        directory = build_directory(net, readvertise=30.0)
        lecture = SessionRelay(net, "h2_0_0")
        directory.announce(
            SessionAnnouncement(name="late-show", channel=lecture.channel, starts_at=0.0)
        )
        net.settle()
        # This listener subscribes *after* the initial push.
        listener = DirectoryListener(net, "h1_1_0", directory.channel)
        net.run(until=net.sim.now + 35.0)
        assert "late-show" in listener.known

    def test_withdrawn_sessions_stop_readvertising(self, isp_net):
        net = isp_net
        directory = build_directory(net, readvertise=10.0)
        lecture = SessionRelay(net, "h2_0_0")
        directory.announce(
            SessionAnnouncement(name="gone", channel=lecture.channel, starts_at=0.0)
        )
        net.settle()
        directory.withdraw("gone")
        sent_before = directory.announcements_sent
        net.run(until=net.sim.now + 25.0)
        assert directory.announcements_sent == sent_before


class TestJoinViaDirectory:
    def test_discover_then_join_and_receive(self, isp_net):
        """The full §4.1 flow: learn (SR,E) from the directory push,
        subscribe, and hear the lecture."""
        net = isp_net
        directory = build_directory(net)
        listener = DirectoryListener(net, "h1_0_0", directory.channel)
        net.settle()
        lecture = SessionRelay(net, "h2_0_0")
        directory.announce(
            SessionAnnouncement(name="talk", channel=lecture.channel, starts_at=0.0)
        )
        net.settle()
        got = []
        listener.join_session("talk", on_data=got.append)
        net.settle()
        lecture.speak_from_relay("hello, discovered audience")
        net.settle()
        assert len(got) == 1

    def test_lookup_unknown_session_raises(self, isp_net):
        net = isp_net
        directory = build_directory(net)
        listener = DirectoryListener(net, "h1_0_0", directory.channel)
        with pytest.raises(RelayError):
            listener.lookup("nope")
