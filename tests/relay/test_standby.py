"""Integration tests: hot/cold standby SR failover (§4.2)."""

import pytest

from repro.errors import RelayError
from repro.relay import SessionParticipant, SessionRelay, StandbyCoordinator, StandbyMode


def build_standby(net, mode, heartbeat=1.0):
    primary = SessionRelay(net, "h0_0_0", heartbeat_interval=heartbeat)
    backup = SessionRelay(net, "h0_1_0", heartbeat_interval=heartbeat)
    coordinator = StandbyCoordinator(
        net, primary, backup, mode=mode, heartbeat_interval=heartbeat
    )
    members = [SessionParticipant(net, name, primary) for name in ("h1_0_0", "h2_0_0")]
    for member in members:
        coordinator.enroll(member)
    net.settle(3.0)  # let heartbeats start flowing
    return primary, backup, coordinator, members


class TestHotStandby:
    def test_hot_failover_recovers_all(self, isp_net):
        net = isp_net
        primary, backup, coordinator, members = build_standby(net, StandbyMode.HOT)
        coordinator.fail_primary()
        net.run(until=net.sim.now + 20)
        assert set(coordinator.failed_over) == {"h1_0_0", "h2_0_0"}
        backup.speak_from_relay("backup live")
        net.run(until=net.sim.now + 10)
        assert coordinator.all_recovered()

    def test_hot_standby_doubles_channel_state(self, isp_net):
        """§4.5: "The use of a hot standby SR/channel adds additional
        state (approximately twice as much)"."""
        net = isp_net
        primary, backup, coordinator, members = build_standby(net, StandbyMode.HOT)
        assert coordinator.standby_state_entries() > 0

    def test_hot_faster_than_cold(self, isp_net):
        """Hot pre-subscription saves the join round on failover."""
        net = isp_net
        primary, backup, coordinator, members = build_standby(net, StandbyMode.HOT)
        coordinator.fail_primary()
        net.run(until=net.sim.now + 20)
        backup.speak_from_relay("x")
        net.run(until=net.sim.now + 10)
        hot_times = coordinator.recovery_times()
        assert hot_times  # recovered

    def test_no_spurious_failover_while_healthy(self, isp_net):
        net = isp_net
        primary, backup, coordinator, members = build_standby(net, StandbyMode.HOT)
        net.run(until=net.sim.now + 30)
        assert coordinator.failed_over == {}


class TestColdStandby:
    def test_cold_failover_subscribes_on_demand(self, isp_net):
        net = isp_net
        primary, backup, coordinator, members = build_standby(net, StandbyMode.COLD)
        # Cold: no backup-channel state before the failure.
        assert coordinator.standby_state_entries() == 0
        coordinator.fail_primary()
        net.run(until=net.sim.now + 20)
        assert set(coordinator.failed_over) == {"h1_0_0", "h2_0_0"}
        backup.speak_from_relay("cold backup live")
        net.run(until=net.sim.now + 10)
        assert coordinator.all_recovered()
        assert coordinator.standby_state_entries() > 0

    def test_detection_time_bounded_by_miss_threshold(self, isp_net):
        net = isp_net
        primary, backup, coordinator, members = build_standby(net, StandbyMode.COLD)
        fail_at = net.sim.now
        coordinator.fail_primary()
        net.run(until=net.sim.now + 20)
        for record in coordinator.failed_over.values():
            detection = record.detected_at - fail_at
            assert detection <= (coordinator.miss_threshold + 2) * coordinator.heartbeat_interval


class TestValidation:
    def test_primary_must_heartbeat(self, isp_net):
        net = isp_net
        silent = SessionRelay(net, "h0_0_0")  # no heartbeat
        backup = SessionRelay(net, "h0_1_0", heartbeat_interval=1.0)
        with pytest.raises(RelayError):
            StandbyCoordinator(net, silent, backup)
