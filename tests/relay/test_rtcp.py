"""Tests for the RTCP-over-counting adaptation (§4.5)."""

import pytest

from repro.errors import RelayError
from repro.relay.rtcp import ReceptionMonitor, SessionQuality
from repro.relay.session import SessionParticipant, SessionRelay


def build_monitored(net, participants=("h1_0_0", "h2_0_0", "h2_1_1")):
    relay = SessionRelay(net, "h0_0_0")
    monitors = []
    for name in participants:
        participant = SessionParticipant(net, name, relay)
        monitors.append(ReceptionMonitor(participant, high_loss_threshold=0.2))
    net.settle()
    return relay, monitors


class TestReceptionMonitor:
    def test_no_loss_initially(self, isp_net):
        relay, monitors = build_monitored(isp_net)
        for _ in range(5):
            relay.speak_from_relay("frame")
        isp_net.settle()
        for monitor in monitors:
            assert monitor.lost_packets() == 0
            assert monitor.loss_rate() == 0.0

    def test_gap_counts_as_loss(self, isp_net):
        relay, monitors = build_monitored(isp_net)
        for _ in range(10):
            relay.speak_from_relay("frame")
        isp_net.settle()
        monitor = monitors[0]
        seqs = sorted(monitor.receiver.received_seqs)
        monitor.receiver.received_seqs.discard(seqs[3])
        monitor.receiver.received_seqs.discard(seqs[5])
        assert monitor.lost_packets() == 2
        assert monitor.loss_rate() == pytest.approx(2 / monitor.receiver.highest_seen)

    def test_threshold_validation(self, isp_net):
        relay, monitors = build_monitored(isp_net)
        participant = monitors[0].participant
        with pytest.raises(RelayError):
            ReceptionMonitor(participant, high_loss_threshold=1.5)


class TestSessionQuality:
    def test_clean_session_report(self, isp_net):
        net = isp_net
        relay, monitors = build_monitored(net)
        for _ in range(8):
            relay.speak_from_relay("frame")
        net.settle()
        quality = SessionQuality(relay)
        collection = quality.collect(timeout=5.0)
        net.settle(6.0)
        assert collection.done
        report = collection.report
        assert report.group_size == 3
        assert report.total_lost == 0
        assert report.high_loss_receivers == 0
        assert report.mean_loss_rate == 0.0

    def test_lossy_receivers_reported(self, isp_net):
        net = isp_net
        relay, monitors = build_monitored(net)
        for _ in range(10):
            relay.speak_from_relay("frame")
        net.settle()
        # Receiver 0 lost 3 of ~10 (high loss at 20% threshold);
        # receiver 1 lost 1 (below threshold).
        seqs0 = sorted(monitors[0].receiver.received_seqs)
        for seq in seqs0[:3]:
            monitors[0].receiver.received_seqs.discard(seq)
        seqs1 = sorted(monitors[1].receiver.received_seqs)
        monitors[1].receiver.received_seqs.discard(seqs1[0])

        quality = SessionQuality(relay)
        collection = quality.collect(timeout=5.0)
        net.settle(6.0)
        report = collection.report
        assert report.group_size == 3
        assert report.total_lost == 4
        assert report.high_loss_receivers == 1
        assert report.mean_lost_per_receiver == pytest.approx(4 / 3)

    def test_three_queries_replace_n_reports(self, isp_net):
        """The point of the adaptation: source-side message load is
        O(fanout), independent of group size."""
        net = isp_net
        relay, monitors = build_monitored(net)
        relay.speak_from_relay("x")
        net.settle()
        sr_agent = net.ecmp_agents["h0_0_0"]
        rx_before = sr_agent.stats.get("counts_rx")
        quality = SessionQuality(relay)
        quality.collect(timeout=5.0)
        net.settle(6.0)
        replies_at_source = sr_agent.stats.get("counts_rx") - rx_before
        # Three queries, each returning via the single first-hop
        # neighbor: 3 replies, not 3 x group_size.
        assert replies_at_source == 3

    def test_last_report_cached(self, isp_net):
        net = isp_net
        relay, monitors = build_monitored(net)
        quality = SessionQuality(relay)
        quality.collect(timeout=5.0)
        net.settle(6.0)
        assert quality.last_report is not None
