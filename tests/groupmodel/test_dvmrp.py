"""Tests for the live DVMRP-lite (flood-and-prune) implementation."""

import pytest

from repro.groupmodel import GroupNetwork
from repro.groupmodel.dvmrp import DvmrpControl
from repro.errors import ProtocolError
from repro.inet.addr import parse_address
from repro.netsim.topology import TopologyBuilder

G = parse_address("224.7.7.7")


@pytest.fixture
def dvmrp_net():
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    return GroupNetwork(topo, protocol="dvmrp", prune_lifetime=60.0)


class TestFloodAndPrune:
    def test_first_packet_floods_the_domain(self, dvmrp_net):
        """The §8 indictment: broadcast-and-prune touches every router,
        even with a single subscriber."""
        net = dvmrp_net
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        assert net.routers_touched() == set(net.routers)

    def test_member_receives_despite_prunes(self, dvmrp_net):
        net = dvmrp_net
        net.join("h1_0_0", G)
        net.settle()
        for _ in range(3):
            net.send("h0_0_0", G)
            net.settle()
        assert net.delivered("h1_0_0", G) == 3

    def test_unjoined_hosts_get_nothing(self, dvmrp_net):
        """The flood is truncated at the last hop: hosts only receive
        joined groups."""
        net = dvmrp_net
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        for name in net.hosts:
            if name not in ("h1_0_0", "h0_0_0"):
                assert net.delivered(name, G) == 0

    def test_prunes_cut_uninterested_branches(self, dvmrp_net):
        net = dvmrp_net
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        first_flood_tx = sum(a.stats.get("data_tx") for a in net.routers.values())
        prunes = sum(a.stats.get("prunes_tx") for a in net.routers.values())
        assert prunes > 0
        net.send("h0_0_0", G)
        net.settle()
        second_tx = sum(a.stats.get("data_tx") for a in net.routers.values())
        # Steady state forwards fewer copies than the initial flood.
        assert second_tx - first_flood_tx < first_flood_tx

    def test_prune_state_everywhere(self, dvmrp_net):
        """Even pruned routers hold (S,G) state — the cost the paper
        contrasts with EXPRESS's on-tree-only state."""
        net = dvmrp_net
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        assert net.total_state() == len(net.routers)

    def test_prunes_expire_and_reflood(self):
        topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
        net = GroupNetwork(topo, protocol="dvmrp", prune_lifetime=10.0)
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        pruned_router = net.routers["t2"]
        net.run(until=net.sim.now + 15.0)  # prunes expire
        net.send("h0_0_0", G)
        net.settle()
        assert sum(
            a.stats.get("prune_expirations") for a in net.routers.values()
        ) > 0

    def test_graft_reconnects_new_member(self, dvmrp_net):
        """A host joining a pruned branch grafts it back."""
        net = dvmrp_net
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)  # prunes the h2 branch
        net.settle()
        net.join("h2_0_0", G)
        net.settle()
        grafts = sum(a.stats.get("grafts_tx") for a in net.routers.values())
        assert grafts > 0
        net.send("h0_0_0", G)
        net.settle()
        assert net.delivered("h2_0_0", G) == 1

    def test_rpf_check_drops_off_path_copies(self, dvmrp_net):
        net = dvmrp_net
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        # Redundant links in the core mean some copies fail RPF.
        rpf_drops = sum(a.stats.get("rpf_drops") for a in net.routers.values())
        assert rpf_drops >= 0  # structural: flood terminates

    def test_control_validation(self):
        with pytest.raises(ProtocolError):
            DvmrpControl(kind="explode", source=1, group=G)
        with pytest.raises(ProtocolError):
            DvmrpControl(kind="prune", source=1, group=parse_address("10.0.0.1"))
