"""GroupNetwork facade edge cases across all three protocols."""

import pytest

from repro.errors import ProtocolError
from repro.groupmodel import GroupNetwork
from repro.inet.addr import parse_address
from repro.netsim.topology import TopologyBuilder

G = parse_address("224.42.42.42")


def build(protocol):
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    kwargs = {"rp": "t1"} if protocol in ("pim", "cbt") else {}
    return GroupNetwork(topo, protocol=protocol, **kwargs)


@pytest.mark.parametrize("protocol", ["pim", "cbt", "dvmrp"])
class TestLeaveRejoin:
    def test_leave_then_rejoin_restores_delivery(self, protocol):
        net = build(protocol)
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        assert net.delivered("h1_0_0", G) == 1
        net.leave("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        assert net.delivered("h1_0_0", G) == 1  # nothing new while left
        net.join("h2_1_1", G)  # unrelated member keeps/rebuilds the tree
        net.join("h1_0_0", G)
        net.settle(2.0)
        net.send("h0_0_0", G)
        net.settle(2.0)
        assert net.delivered("h1_0_0", G) == 2

    def test_leave_without_join_is_noop(self, protocol):
        net = build(protocol)
        net.leave("h1_0_0", G)  # must not raise
        net.settle()

    def test_join_invalid_group_rejected(self, protocol):
        net = build(protocol)
        with pytest.raises(ProtocolError):
            net.join("h1_0_0", parse_address("10.0.0.1"))


@pytest.mark.parametrize("protocol", ["pim", "cbt", "dvmrp"])
class TestMultiGroup:
    def test_two_groups_independent(self, protocol):
        net = build(protocol)
        G2 = parse_address("224.42.42.43")
        net.join("h1_0_0", G)
        net.join("h2_0_0", G2)
        net.settle()
        net.send("h0_0_0", G)
        net.settle(2.0)
        assert net.delivered("h1_0_0", G) == 1
        assert net.delivered("h2_0_0", G2) == 0
        net.send("h0_0_0", G2)
        net.settle(2.0)
        assert net.delivered("h2_0_0", G2) == 1
        assert net.delivered("h1_0_0", G) == 1
