"""Tests for the live CBT-lite (bidirectional core tree)."""

import pytest

from repro.errors import ProtocolError, TopologyError
from repro.groupmodel import GroupNetwork
from repro.groupmodel.cbt import CbtJoinLeave
from repro.inet.addr import parse_address
from repro.netsim.topology import TopologyBuilder

G = parse_address("224.9.9.9")


@pytest.fixture
def cbt_net():
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    return GroupNetwork(topo, protocol="cbt", rp="t1")


class TestTreeMaintenance:
    def test_join_builds_tree_toward_core(self, cbt_net):
        net = cbt_net
        net.join("h2_0_0", G)
        net.settle()
        for hop in net.routing.path("e2_0", "t1"):
            assert G in net.routers[hop].state
        assert G not in net.routers["t0"].state

    def test_leave_tears_down_branch(self, cbt_net):
        net = cbt_net
        net.join("h1_0_0", G)
        net.join("h2_0_0", G)
        net.settle()
        net.leave("h2_0_0", G)
        net.settle()
        assert G not in net.routers["e2_0"].state
        assert G in net.routers["e1_0"].state

    def test_join_message_validation(self):
        with pytest.raises(ProtocolError):
            CbtJoinLeave(group=parse_address("10.0.0.1"), join=True)

    def test_core_required(self):
        topo = TopologyBuilder.star(2)
        with pytest.raises(TopologyError):
            GroupNetwork(topo, protocol="cbt")


class TestBidirectionalData:
    def test_on_tree_member_sends_along_tree(self, cbt_net):
        """A member's packet flows bidirectionally along the tree — no
        core detour when the receivers share its branch side."""
        net = cbt_net
        net.join("h1_0_0", G)
        net.join("h1_0_1", G)  # same edge router
        net.settle()
        tunnels_before = sum(a.stats.get("tunnels_tx") for a in net.routers.values())
        net.send("h1_0_0", G)
        net.settle()
        assert net.delivered("h1_0_1", G) == 1
        # No tunnel needed: the sender's first hop is on the tree.
        assert sum(a.stats.get("tunnels_tx") for a in net.routers.values()) == tunnels_before
        # The core never saw the packet (both members behind e1_0).
        assert net.routers["t1"].stats.get("tree_forwarded") <= 1

    def test_off_tree_sender_tunnels_to_core(self, cbt_net):
        net = cbt_net
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)  # e0_0 has no tree state
        net.settle()
        assert net.delivered("h1_0_0", G) == 1
        assert net.routers["e0_0"].stats.get("tunnels_tx") == 1
        assert net.routers["t1"].stats.get("tunnels_rx") == 1

    def test_every_member_gets_exactly_one_copy(self, cbt_net):
        net = cbt_net
        members = ["h1_0_0", "h1_1_0", "h2_0_0", "h2_1_1"]
        for member in members:
            net.join(member, G)
        net.settle()
        net.send(members[0], G)
        net.settle()
        for member in members[1:]:
            assert net.delivered(member, G) == 1

    def test_shared_tree_state_is_one_entry_per_router(self, cbt_net):
        """CBT's selling point the paper grants (§4.5): one shared tree
        regardless of senders."""
        net = cbt_net
        members = ["h1_0_0", "h2_0_0", "h0_0_0"]
        for member in members:
            net.join(member, G)
        net.settle()
        per_router = [a.state_entries() for a in net.routers.values()]
        assert max(per_router) == 1
        # Multiple senders add zero state.
        before = net.total_state()
        for sender in members:
            net.send(sender, G)
        net.settle()
        assert net.total_state() == before

    def test_unjoined_host_receives_nothing(self, cbt_net):
        net = cbt_net
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        assert net.delivered("h2_0_0", G) == 0
