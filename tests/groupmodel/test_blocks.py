"""Aggregated block membership in the group-model baselines.

The group-model analogue of :mod:`repro.core.blocks`: N members behind
one attachment point join as a counted block; protocol traffic happens
only on 0↔positive transitions and deliveries account arithmetically
via the ``block_deliveries`` counter.
"""

import pytest

from repro.errors import ProtocolError
from repro.groupmodel import GroupNetwork
from repro.inet.addr import parse_address
from repro.netsim.topology import TopologyBuilder

G = parse_address("224.42.42.42")


def build(protocol):
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    kwargs = {"rp": "t1"} if protocol in ("pim", "cbt") else {}
    return GroupNetwork(topo, protocol=protocol, **kwargs)


@pytest.mark.parametrize("protocol", ["pim", "cbt", "dvmrp"])
class TestBlockMembership:
    def test_block_counts_accumulate(self, protocol):
        net = build(protocol)
        assert net.join_block("h1_0_0", G, 10) == 10
        assert net.join_block("h1_0_0", G, 5) == 15
        assert net.leave_block("h1_0_0", G, 3) == 12

    def test_block_deliveries_account_members(self, protocol):
        net = build(protocol)
        net.join_block("h1_0_0", G, 250)
        net.settle(2.0)
        net.send("h0_0_0", G)
        net.settle(2.0)
        agent = net.host("h1_0_0")
        assert agent.stats.get("delivered") == 1  # one wire packet
        assert agent.stats.get("block_deliveries") == 250

    def test_leave_to_zero_stops_delivery(self, protocol):
        net = build(protocol)
        net.join_block("h1_0_0", G, 4)
        net.settle(2.0)
        assert net.leave_block("h1_0_0", G, 4) == 0
        net.settle(2.0)
        net.send("h0_0_0", G)
        net.settle(2.0)
        assert net.host("h1_0_0").stats.get("block_deliveries") == 0

    def test_same_sign_change_emits_no_protocol_traffic(self, protocol):
        net = build(protocol)
        net.join_block("h1_0_0", G, 1)
        net.settle(2.0)
        sent_before = net.host("h1_0_0").stats.as_dict()
        joined_before = dict(net.host("h1_0_0").joined)
        net.join_block("h1_0_0", G, 99)
        net.leave_block("h1_0_0", G, 50)
        # Still one protocol membership, unchanged by magnitude moves.
        assert dict(net.host("h1_0_0").joined) == joined_before
        assert net.host("h1_0_0").stats.as_dict() == sent_before

    def test_nonpositive_deltas_rejected(self, protocol):
        net = build(protocol)
        with pytest.raises(ProtocolError):
            net.join_block("h1_0_0", G, 0)
        with pytest.raises(ProtocolError):
            net.leave_block("h1_0_0", G, -2)
