"""Tests for the live PIM-SM-lite implementation."""

import pytest

from repro.errors import ProtocolError, TopologyError
from repro.groupmodel import GroupNetwork, PimJoinPrune
from repro.inet.addr import parse_address
from repro.netsim.topology import TopologyBuilder

G = parse_address("224.5.5.5")
G2 = parse_address("224.6.6.6")


@pytest.fixture
def pim_net():
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    return GroupNetwork(topo, protocol="pim", rp="t1")


class TestJoinPrune:
    def test_join_builds_shared_tree_toward_rp(self, pim_net):
        net = pim_net
        net.join("h1_0_0", G)
        net.settle()
        # State appears along the host -> RP path.
        path = net.routing.path("e1_0", "t1")
        for hop in path:
            assert G in net.routers[hop].shared
        # And nowhere else.
        assert G not in net.routers["t2"].shared

    def test_leave_prunes_branch(self, pim_net):
        net = pim_net
        net.join("h1_0_0", G)
        net.join("h1_1_0", G)
        net.settle()
        net.leave("h1_1_0", G)
        net.settle()
        assert G not in net.routers["e1_1"].shared
        assert G in net.routers["e1_0"].shared

    def test_last_leave_clears_all_state(self, pim_net):
        net = pim_net
        net.join("h1_0_0", G)
        net.settle()
        net.leave("h1_0_0", G)
        net.settle()
        assert net.total_state() == 0

    def test_groups_independent(self, pim_net):
        net = pim_net
        net.join("h1_0_0", G)
        net.join("h2_0_0", G2)
        net.settle()
        assert G in net.routers["e1_0"].shared
        assert G2 not in net.routers["e1_0"].shared

    def test_join_prune_message_validation(self):
        with pytest.raises(ProtocolError):
            PimJoinPrune(group=parse_address("10.0.0.1"), join=True)


class TestDataPath:
    def test_any_sender_reaches_members(self, pim_net):
        """The group model: senders need not subscribe or register
        intent — anyone can transmit (the §1 problem)."""
        net = pim_net
        net.join("h1_0_0", G)
        net.join("h2_0_0", G)
        net.settle()
        for sender in ("h0_0_0", "h2_1_1", "h1_0_1"):
            net.send(sender, G)
        net.settle()
        assert net.delivered("h1_0_0", G) == 3
        assert net.delivered("h2_0_0", G) == 3

    def test_delivery_detours_via_rp(self, pim_net):
        """Shared-tree data transits the RP even when sender and
        receiver are adjacent."""
        net = pim_net
        net.join("h1_0_1", G)
        net.settle()
        registers = net.routers["e1_0"].stats.get("registers_tx")
        net.send("h1_0_0", G)  # same stub as the receiver
        net.settle()
        assert net.delivered("h1_0_1", G) == 1
        assert net.routers["e1_0"].stats.get("registers_tx") == registers + 1
        assert net.routers["t1"].stats.get("registers_rx") >= 1

    def test_non_members_receive_nothing(self, pim_net):
        net = pim_net
        net.join("h1_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        assert net.delivered("h2_0_0", G) == 0

    def test_rp_without_group_state_drops_register(self, pim_net):
        net = pim_net
        net.send("h0_0_0", G)  # no members at all
        net.settle()
        assert net.routers["t1"].stats.get("register_no_group_drops") == 1


class TestSptSwitchover:
    def test_spt_restores_direct_path_and_suppresses_duplicates(self, pim_net):
        net = pim_net
        net.join("h1_0_0", G)
        net.settle()
        net.switch_to_spt("h1_0_0", "h0_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        # Exactly one copy despite both trees existing.
        assert net.delivered("h1_0_0", G) == 1
        # The (S,G) tree exists along the direct path.
        source_address = net.topo.node("h0_0_0").address
        assert (source_address, G) in net.routers["e1_0"].source_trees
        # Shared-tree copies were suppressed at the last hop.
        assert net.routers["e1_0"].stats.get("spt_suppressed") >= 0

    def test_spt_adds_state(self, pim_net):
        net = pim_net
        net.join("h1_0_0", G)
        net.settle()
        shared_only = net.total_state()
        net.switch_to_spt("h1_0_0", "h0_0_0", G)
        net.settle()
        assert net.total_state() > shared_only

    def test_spt_and_shared_members_coexist_without_duplicates(self, pim_net):
        """One member on the SPT, another on the shared tree: the RP
        splices the native flow onto the shared tree and suppresses the
        redundant register — each member gets exactly one copy."""
        net = pim_net
        net.join("h1_0_0", G)
        net.join("h2_0_0", G)
        net.settle()
        net.switch_to_spt("h1_0_0", "h0_0_0", G)
        net.settle()
        net.send("h0_0_0", G)
        net.settle()
        assert net.delivered("h1_0_0", G) == 1
        assert net.delivered("h2_0_0", G) == 1
        assert net.routers["t1"].stats.get("registers_suppressed") == 1

    def test_spt_requires_pim(self):
        topo = TopologyBuilder.isp(n_transit=2, stubs_per_transit=1, hosts_per_stub=1)
        net = GroupNetwork(topo, protocol="dvmrp")
        with pytest.raises(ProtocolError):
            net.switch_to_spt("h0_0_0", "h1_0_0", G)


class TestValidation:
    def test_pim_requires_rp(self):
        topo = TopologyBuilder.star(2)
        with pytest.raises(TopologyError):
            GroupNetwork(topo, protocol="pim")

    def test_unknown_protocol(self):
        topo = TopologyBuilder.star(2)
        with pytest.raises(ProtocolError):
            GroupNetwork(topo, protocol="cbt-live")

    def test_host_lookup(self, pim_net):
        with pytest.raises(TopologyError):
            pim_net.host("t1")
