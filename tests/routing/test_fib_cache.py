"""Unit tests for the FIB data-plane lookup cache.

``MulticastFib.lookup`` interns its verdict per ``(S, E, iif)`` triple;
these tests pin the cache-hit accounting, the invalidation paths (table
mutations *and* raw attribute writes on installed entries — the
protocol layer re-syncs entries by assigning ``entry.outgoing`` /
``entry.incoming_interface`` directly), exact drop counters on cache
hits, and the size guard.
"""

from repro.inet.addr import parse_address, ssm_address
from repro.routing.fib import _LOOKUP_CACHE_MAX, FibEntry, MulticastFib

S = parse_address("10.0.0.1")
E = ssm_address(42)


def _fib_with_entry(iif: int = 1, oifs: tuple[int, ...] = (2, 3)) -> MulticastFib:
    fib = MulticastFib()
    entry = fib.install(S, E, incoming_interface=iif)
    for oif in oifs:
        entry.add_outgoing(oif)
    return fib


class TestLookupCacheHits:
    def test_repeated_lookup_hits_cache_and_interns_result(self):
        fib = _fib_with_entry()
        first = fib.lookup(S, E, 1)
        second = fib.lookup(S, E, 1)
        assert first == [2, 3]
        assert second is first  # one shared list, not a rebuild
        assert fib.lookups == 2
        assert fib.lookup_cache_hits == 1

    def test_drop_counters_stay_exact_on_cache_hits(self):
        fib = _fib_with_entry(iif=1)
        other = ssm_address(99)
        for _ in range(3):
            assert fib.lookup(S, other, 1) == []  # no entry
        for _ in range(4):
            assert fib.lookup(S, E, 0) == []  # wrong incoming interface
        assert fib.no_match_drops == 3
        assert fib.iif_drops == 4
        assert fib.lookup_cache_hits == 2 + 3

    def test_distinct_iifs_cache_independently(self):
        fib = _fib_with_entry(iif=1)
        assert fib.lookup(S, E, 1) == [2, 3]
        assert fib.lookup(S, E, 2) == []
        assert fib.lookup_cache_hits == 0
        assert fib.iif_drops == 1


class TestInvalidation:
    def test_install_invalidates_no_match_verdict(self):
        fib = MulticastFib()
        assert fib.lookup(S, E, 1) == []
        assert fib.no_match_drops == 1
        entry = fib.install(S, E, incoming_interface=1)
        entry.add_outgoing(5)
        assert fib.lookup(S, E, 1) == [5]
        assert fib.no_match_drops == 1

    def test_remove_invalidates_ok_verdict(self):
        fib = _fib_with_entry()
        assert fib.lookup(S, E, 1) == [2, 3]
        assert fib.remove(S, E)
        assert fib.lookup(S, E, 1) == []
        assert fib.no_match_drops == 1

    def test_bitmap_helpers_invalidate(self):
        fib = _fib_with_entry(oifs=(2,))
        assert fib.lookup(S, E, 1) == [2]
        entry = fib.get(S, E)
        entry.add_outgoing(4)
        assert fib.lookup(S, E, 1) == [2, 4]
        entry.remove_outgoing(2)
        assert fib.lookup(S, E, 1) == [4]
        assert fib.lookup_cache_hits == 0

    def test_raw_outgoing_assignment_invalidates(self):
        # protocol.py prunes by assigning entry.outgoing = 0 directly.
        fib = _fib_with_entry()
        assert fib.lookup(S, E, 1) == [2, 3]
        fib.get(S, E).outgoing = 0
        assert fib.lookup(S, E, 1) == []

    def test_raw_incoming_interface_assignment_invalidates(self):
        # protocol.py re-syncs the RPF interface the same way.
        fib = _fib_with_entry(iif=1)
        assert fib.lookup(S, E, 1) == [2, 3]
        assert fib.lookup(S, E, 0) == []
        assert fib.iif_drops == 1
        fib.get(S, E).incoming_interface = 0
        assert fib.lookup(S, E, 0) == [2, 3]
        assert fib.lookup(S, E, 1) == []
        assert fib.iif_drops == 2

    def test_removed_entry_no_longer_touches_the_fib(self):
        fib = _fib_with_entry()
        entry = fib.get(S, E)
        fib.remove(S, E)
        assert fib.lookup(S, E, 1) == []
        cache_before = dict(fib._lookup_cache)
        entry.add_outgoing(7)  # orphaned entry: must not clear the cache
        assert fib._lookup_cache == cache_before


class TestOifInterning:
    def test_outgoing_interfaces_is_memoized(self):
        entry = FibEntry(source=S, dest_suffix=42, incoming_interface=1, outgoing=0b110)
        first = entry.outgoing_interfaces()
        assert entry.outgoing_interfaces() is first
        entry.add_outgoing(5)
        rebuilt = entry.outgoing_interfaces()
        assert rebuilt is not first
        assert rebuilt == [1, 2, 5]


class TestCacheBound:
    def test_cache_never_exceeds_the_guard(self):
        fib = MulticastFib()
        for k in range(_LOOKUP_CACHE_MAX + 10):
            fib.lookup(S, ssm_address(k), 0)
        assert len(fib._lookup_cache) <= _LOOKUP_CACHE_MAX
        assert fib.no_match_drops == _LOOKUP_CACHE_MAX + 10
