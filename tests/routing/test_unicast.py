"""Unit tests for link-state unicast routing."""

import pytest

from repro.errors import RoutingError
from repro.netsim.topology import Topology, TopologyBuilder
from repro.routing.unicast import UnicastRouting


def diamond():
    """a - b - d and a - c - d with unequal costs."""
    topo = Topology()
    for name in "abcd":
        topo.add_node(name)
    topo.add_link("a", "b", delay=0.001)
    topo.add_link("b", "d", delay=0.001)
    topo.add_link("a", "c", delay=0.005)
    topo.add_link("c", "d", delay=0.005)
    return topo


class TestShortestPaths:
    def test_line_next_hops(self):
        topo = TopologyBuilder.line(4)
        routing = UnicastRouting(topo)
        assert routing.next_hop("n0", "n3") == "n1"
        assert routing.next_hop("n3", "n0") == "n2"
        assert routing.next_hop("n1", "n1") is None

    def test_path_and_hop_count(self):
        topo = TopologyBuilder.line(5)
        routing = UnicastRouting(topo)
        assert routing.path("n0", "n4") == ["n0", "n1", "n2", "n3", "n4"]
        assert routing.hop_count("n0", "n4") == 4
        assert routing.path("n2", "n2") == ["n2"]

    def test_prefers_lower_metric(self):
        routing = UnicastRouting(diamond())
        assert routing.path("a", "d") == ["a", "b", "d"]
        assert routing.distance("a", "d") == pytest.approx(0.002)

    def test_distance_symmetric(self):
        routing = UnicastRouting(diamond())
        assert routing.distance("a", "d") == routing.distance("d", "a")

    def test_equal_cost_ties_deterministic(self):
        topo = Topology()
        for name in "axbyd":
            topo.add_node(name)
        for mid in "xy":
            topo.add_link("a", mid, delay=0.001)
            topo.add_link(mid, "d", delay=0.001)
        r1 = UnicastRouting(topo)
        hop = r1.next_hop("a", "d")
        # Recompute repeatedly: the tie must break the same way.
        for _ in range(5):
            r1.recompute()
            assert r1.next_hop("a", "d") == hop

    def test_unknown_destination_raises(self):
        routing = UnicastRouting(TopologyBuilder.line(2))
        with pytest.raises(RoutingError):
            routing.next_hop("n0", "zzz")

    def test_unreachable_after_partition(self):
        topo = TopologyBuilder.line(3)
        routing = UnicastRouting(topo)
        topo.links[0].fail()
        routing.recompute()
        assert routing.next_hop("n0", "n2") is None
        assert not routing.reachable("n0", "n2")
        with pytest.raises(RoutingError):
            routing.path("n0", "n2")

    def test_recompute_after_recovery(self):
        topo = TopologyBuilder.line(3)
        routing = UnicastRouting(topo)
        topo.links[0].fail()
        routing.recompute()
        topo.links[0].recover()
        routing.recompute()
        assert routing.path("n0", "n2") == ["n0", "n1", "n2"]

    def test_reroute_around_failure(self):
        topo = diamond()
        routing = UnicastRouting(topo)
        topo.link_between("a", "b").fail()
        routing.recompute()
        assert routing.path("a", "d") == ["a", "c", "d"]

    def test_recompute_listeners_called(self):
        routing = UnicastRouting(TopologyBuilder.line(2))
        calls = []
        routing.on_recompute(lambda: calls.append(1))
        routing.recompute()
        routing.recompute()
        assert calls == [1, 1]

    def test_spanning_tree_to_is_complete(self):
        topo = TopologyBuilder.balanced_tree(depth=3, fanout=2)
        routing = UnicastRouting(topo)
        tree = routing.spanning_tree_to("r")
        assert tree["r"] is None
        assert all(parent is not None for name, parent in tree.items() if name != "r")
        # Every parent pointer walks to the root.
        for name in topo.nodes:
            assert routing.path(name, "r")[-1] == "r"


class TestAgainstNetworkx:
    def test_distances_match_networkx(self):
        import networkx as nx

        topo = TopologyBuilder.random_connected(40, seed=9)
        routing = UnicastRouting(topo)
        graph = topo.graph()
        lengths = dict(nx.all_pairs_dijkstra_path_length(graph))
        for src in list(topo.nodes)[:10]:
            for dst in list(topo.nodes)[:10]:
                assert routing.distance(src, dst) == pytest.approx(lengths[src][dst])
