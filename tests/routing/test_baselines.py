"""Tests for the PIM-SM / CBT / DVMRP baseline models."""

import pytest

from repro.errors import RoutingError
from repro.netsim.topology import TopologyBuilder
from repro.routing.baselines import (
    CbtModel,
    DvmrpModel,
    ExpressTreeModel,
    PimSmModel,
)
from repro.routing.unicast import UnicastRouting


@pytest.fixture
def env():
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=2, hosts_per_stub=2)
    return topo, UnicastRouting(topo)


class TestExpressModel:
    def test_tree_is_union_of_shortest_paths(self, env):
        topo, routing = env
        model = ExpressTreeModel(topo, routing, source="h0_0_0")
        model.join("h2_0_0")
        model.join("h3_1_1")
        edges = model.tree_edges()
        for member in ("h2_0_0", "h3_1_1"):
            path = routing.path(member, "h0_0_0")
            for a, b in zip(path, path[1:]):
                assert frozenset((a, b)) in edges

    def test_stretch_is_one(self, env):
        topo, routing = env
        model = ExpressTreeModel(topo, routing, source="h0_0_0")
        model.join("h2_0_0")
        assert model.stretch("h0_0_0", "h2_0_0") == 1.0

    def test_only_source_may_send(self, env):
        topo, routing = env
        model = ExpressTreeModel(topo, routing, source="h0_0_0")
        model.join("h2_0_0")
        with pytest.raises(RoutingError):
            model.delivery_path("h1_0_0", "h2_0_0")

    def test_state_only_on_tree(self, env):
        """§3.6: EXPRESS traffic/state only on source->subscriber paths."""
        topo, routing = env
        model = ExpressTreeModel(topo, routing, source="h0_0_0")
        model.join("h0_1_0")  # member near the source
        touched = model.routers_touched()
        assert "t2" not in touched and "t3" not in touched

    def test_leave_shrinks_tree(self, env):
        topo, routing = env
        model = ExpressTreeModel(topo, routing, source="h0_0_0")
        model.join("h2_0_0")
        model.join("h3_1_1")
        before = len(model.tree_edges())
        model.leave("h3_1_1")
        assert len(model.tree_edges()) < before


class TestPimSm:
    def test_shared_tree_delivery_detours_via_rp(self, env):
        topo, routing = env
        model = PimSmModel(topo, routing, rp="t2")
        model.join("h0_0_0")
        path = model.delivery_path("h1_0_0", "h0_0_0")
        assert "t2" in path  # register leg to the RP
        assert model.stretch("h1_0_0", "h0_0_0") >= 1.0

    def test_spt_switchover_restores_direct_path(self, env):
        topo, routing = env
        model = PimSmModel(topo, routing, rp="t2")
        model.join("h0_0_0")
        model.switch_to_spt("h0_0_0", "h1_0_0")
        path = model.delivery_path("h1_0_0", "h0_0_0")
        assert path == routing.path("h1_0_0", "h0_0_0")

    def test_spt_switchover_costs_extra_state(self, env):
        """The "delay-state tradeoff" of §4.4: SPTs add (S,G) entries."""
        topo, routing = env
        model = PimSmModel(topo, routing, rp="t2")
        model.join("h0_0_0")
        model.join("h3_0_0")
        shared_only = model.total_state()
        model.switch_to_spt("h0_0_0", "h1_0_0")
        model.switch_to_spt("h3_0_0", "h1_0_0")
        assert model.total_state() > shared_only

    def test_switch_requires_membership(self, env):
        topo, routing = env
        model = PimSmModel(topo, routing, rp="t2")
        with pytest.raises(RoutingError):
            model.switch_to_spt("h0_0_0", "h1_0_0")


class TestCbt:
    def test_on_tree_sender_uses_tree_path(self, env):
        topo, routing = env
        model = CbtModel(topo, routing, core="t2")
        model.join("h0_0_0")
        model.join("h1_0_0")
        path = model.delivery_path("h0_0_0", "h1_0_0")
        assert path[0] == "h0_0_0" and path[-1] == "h1_0_0"
        # Bidirectional: no detour past the core required if the tree
        # path between the two members is shorter.
        assert len(path) <= len(routing.path("h0_0_0", "t2")) + len(routing.path("t2", "h1_0_0")) - 1

    def test_off_tree_sender_tunnels_via_core(self, env):
        topo, routing = env
        model = CbtModel(topo, routing, core="t2")
        model.join("h1_0_0")
        path = model.delivery_path("h3_0_0", "h1_0_0")
        assert "t2" in path

    def test_delivery_to_non_member_raises(self, env):
        topo, routing = env
        model = CbtModel(topo, routing, core="t2")
        model.join("h1_0_0")
        with pytest.raises(RoutingError):
            model.delivery_path("h3_0_0", "h3_1_1")

    def test_single_shared_tree_state(self, env):
        topo, routing = env
        model = CbtModel(topo, routing, core="t2")
        for member in ("h0_0_0", "h1_0_0", "h3_1_1"):
            model.join(member)
        assert all(count == 1 for count in model.state_entries().values())


class TestDvmrp:
    def test_touches_every_router(self, env):
        """Broadcast-and-prune leaves state domain-wide."""
        topo, routing = env
        model = DvmrpModel(topo, routing, source="h0_0_0")
        model.join("h1_0_0")
        assert model.routers_touched() == set(topo.nodes)
        assert model.total_state() == len(topo.nodes)

    def test_data_path_is_shortest(self, env):
        topo, routing = env
        model = DvmrpModel(topo, routing, source="h0_0_0")
        model.join("h1_0_0")
        assert model.stretch("h0_0_0", "h1_0_0") == 1.0


class TestComparison:
    def test_express_touches_no_more_than_dvmrp(self, env):
        topo, routing = env
        express = ExpressTreeModel(topo, routing, source="h0_0_0")
        dvmrp = DvmrpModel(topo, routing, source="h0_0_0")
        for member in ("h1_0_0", "h2_1_0"):
            express.join(member)
            dvmrp.join(member)
        assert express.routers_touched() < dvmrp.routers_touched()

    def test_express_stretch_beats_shared_trees(self, env):
        topo, routing = env
        express = ExpressTreeModel(topo, routing, source="h0_0_0")
        pim = PimSmModel(topo, routing, rp="t2")
        member = "h1_1_0"
        express.join(member)
        pim.join(member)
        assert express.stretch("h0_0_0", member) <= pim.stretch("h0_0_0", member)
