"""Unit tests for the incremental SPF machinery in UnicastRouting.

The seed re-ran Dijkstra for every destination on every recompute();
routing now computes destination trees lazily and invalidates them
selectively. These tests pin the counter semantics (``spf_runs`` vs the
seed's ``recompute_count``), the dirty-set selectivity, the
full-recompute fallback, and the error behaviour at the edges. The
*result equivalence* against from-scratch SPF is enforced separately by
``tests/properties/test_routing_equivalence.py``.
"""

import pytest

from repro.errors import RoutingError
from repro.netsim.topology import Topology, TopologyBuilder
from repro.routing.unicast import FULL_RECOMPUTE_DIRTY_FRACTION, UnicastRouting


def _redundant_shortcut_topo() -> Topology:
    """A line n0-n1-n2-n3 with a triangle hung off n0.

    The n0-a1 shortcut (0.005) always loses to n0-a0-a1 (0.002), so it
    appears in *no* shortest-path tree: failing or recovering it must
    dirty zero cached trees.
    """
    topo = Topology()
    for name in ("n0", "n1", "n2", "n3", "a0", "a1"):
        topo.add_node(name)
    topo.add_link("n0", "n1", delay=0.001)
    topo.add_link("n1", "n2", delay=0.001)
    topo.add_link("n2", "n3", delay=0.001)
    topo.add_link("n0", "a0", delay=0.001)
    topo.add_link("a0", "a1", delay=0.001)
    topo.add_link("n0", "a1", delay=0.005)
    return topo


class TestLazyTrees:
    def test_no_dijkstra_runs_until_first_query(self):
        routing = UnicastRouting(TopologyBuilder.line(6))
        assert routing.recompute_count == 1
        assert routing.spf_runs == 0
        assert routing.cached_destinations() == 0

    def test_one_run_per_destination_not_per_query(self):
        routing = UnicastRouting(TopologyBuilder.line(6))
        assert routing.next_hop("n0", "n5") == "n1"
        assert routing.spf_runs == 1
        # Same destination tree answers every (node, n5) query.
        routing.next_hop("n3", "n5")
        routing.distance("n2", "n5")
        routing.path("n0", "n5")
        routing.spanning_tree_to("n5")
        assert routing.spf_runs == 1
        routing.next_hop("n0", "n2")
        assert routing.spf_runs == 2
        assert routing.cached_destinations() == 2

    def test_recompute_without_topology_change_keeps_cache(self):
        routing = UnicastRouting(TopologyBuilder.line(6))
        routing.next_hop("n0", "n5")
        generation = routing.generation
        routing.recompute()
        assert routing.recompute_count == 2
        assert routing.cached_destinations() == 1
        assert routing.generation == generation
        routing.next_hop("n3", "n5")
        assert routing.spf_runs == 1


class TestDirtySetInvalidation:
    def test_flapping_an_unused_link_retains_every_tree(self):
        topo = _redundant_shortcut_topo()
        routing = UnicastRouting(topo)
        for dest in topo.nodes:
            routing.spanning_tree_to(dest)
        assert routing.spf_runs == 6
        shortcut = topo.link_between("n0", "a1")

        shortcut.fail()
        routing.recompute()
        assert routing.partial_invalidations == 1
        assert routing.trees_retained == 6
        assert routing.trees_invalidated == 0

        shortcut.recover()
        routing.recompute()
        assert routing.partial_invalidations == 2
        assert routing.trees_retained == 12
        # Nothing was dropped, so re-querying costs no new Dijkstra.
        for dest in topo.nodes:
            routing.spanning_tree_to(dest)
        assert routing.spf_runs == 6

    def test_retained_trees_match_a_fresh_computation(self):
        topo = _redundant_shortcut_topo()
        routing = UnicastRouting(topo)
        for dest in topo.nodes:
            routing.spanning_tree_to(dest)
        topo.link_between("n0", "a1").fail()
        routing.recompute()
        fresh = UnicastRouting(topo)
        for dest in topo.nodes:
            assert routing.spanning_tree_to(dest) == fresh.spanning_tree_to(dest)
            for node in topo.nodes:
                assert routing.distance(node, dest) == fresh.distance(node, dest)

    def test_failing_a_tree_link_invalidates_and_reroutes(self):
        # Equal-cost square: a - b - d and a - c - d.
        topo = Topology()
        for name in "abcd":
            topo.add_node(name)
        topo.add_link("a", "b", delay=0.001)
        topo.add_link("a", "c", delay=0.001)
        topo.add_link("b", "d", delay=0.001)
        topo.add_link("c", "d", delay=0.001)
        routing = UnicastRouting(topo)
        # Lexicographic tie-break: b beats c.
        assert routing.next_hop("a", "d") == "b"

        topo.link_between("b", "d").fail()
        routing.recompute()
        assert routing.next_hop("a", "d") == "c"

        topo.link_between("b", "d").recover()
        routing.recompute()
        # The recovered equal-cost edge must re-win the tie-break —
        # this is the ">= (relax or tie)" dirtiness condition at work.
        assert routing.next_hop("a", "d") == "b"

    def test_full_fallback_when_most_trees_are_dirty(self):
        # On a line every spanning tree contains every link, so failing
        # the middle link dirties 100% of cached trees — far past
        # FULL_RECOMPUTE_DIRTY_FRACTION.
        assert FULL_RECOMPUTE_DIRTY_FRACTION < 1.0
        topo = TopologyBuilder.line(4)
        routing = UnicastRouting(topo)
        for dest in topo.nodes:
            routing.spanning_tree_to(dest)
        assert routing.full_invalidations == 1  # the initial compute
        topo.link_between("n1", "n2").fail()
        routing.recompute()
        assert routing.full_invalidations == 2
        assert routing.partial_invalidations == 0
        assert routing.cached_destinations() == 0
        # Partition is honoured after the lazy refill.
        assert routing.next_hop("n0", "n3") is None
        with pytest.raises(RoutingError):
            routing.distance("n0", "n3")

    def test_generation_bumps_only_on_invalidation(self):
        topo = _redundant_shortcut_topo()
        routing = UnicastRouting(topo)
        for dest in topo.nodes:
            routing.spanning_tree_to(dest)
        g0 = routing.generation
        routing.recompute()  # no change
        assert routing.generation == g0
        topo.link_between("n0", "a1").fail()
        routing.recompute()  # partial (zero trees dropped, still a pass)
        assert routing.generation == g0 + 1
        topo.link_between("n1", "n2").fail()
        routing.recompute()  # tree link on a majority of trees -> full
        assert routing.generation == g0 + 2


class TestStructuralChanges:
    def test_adding_a_node_forces_full_invalidation(self):
        topo = TopologyBuilder.line(3)
        routing = UnicastRouting(topo)
        routing.spanning_tree_to("n2")
        topo.add_node("x")
        topo.add_link("x", "n2", delay=0.001)
        routing.recompute()
        assert routing.full_invalidations == 2
        assert routing.next_hop("n0", "x") == "n1"
        assert routing.next_hop("n2", "x") == "x"

    def test_unknown_destination_raises(self):
        routing = UnicastRouting(TopologyBuilder.line(2))
        with pytest.raises(RoutingError):
            routing.next_hop("n0", "ghost")

    def test_queries_raise_before_first_recompute(self):
        routing = UnicastRouting(TopologyBuilder.line(2), auto_compute=False)
        with pytest.raises(RoutingError):
            routing.next_hop("n0", "n1")
        routing.recompute()
        assert routing.next_hop("n0", "n1") == "n1"


class TestCountersAndListeners:
    def test_listeners_fire_once_per_recompute(self):
        routing = UnicastRouting(TopologyBuilder.line(3))
        fired = []
        routing.on_recompute(lambda: fired.append(routing.recompute_count))
        routing.recompute()
        routing.recompute()
        assert fired == [2, 3]

    def test_spf_counters_dict_is_consistent(self):
        topo = _redundant_shortcut_topo()
        routing = UnicastRouting(topo)
        for dest in topo.nodes:
            routing.spanning_tree_to(dest)
        topo.link_between("n0", "a1").fail()
        routing.recompute()
        counters = routing.spf_counters()
        assert counters == {
            "recompute_count": routing.recompute_count,
            "spf_runs": routing.spf_runs,
            "trees_invalidated": routing.trees_invalidated,
            "trees_retained": routing.trees_retained,
            "full_invalidations": routing.full_invalidations,
            "partial_invalidations": routing.partial_invalidations,
            "cached_destinations": routing.cached_destinations(),
            "generation": routing.generation,
        }
        assert counters["spf_runs"] == 6
        assert counters["cached_destinations"] == 6
