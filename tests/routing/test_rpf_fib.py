"""Unit tests for RPF helpers and the multicast FIB."""

import pytest

from repro.errors import ForwardingError
from repro.inet.addr import parse_address, ssm_address
from repro.netsim.topology import TopologyBuilder
from repro.routing.fib import FIB_ENTRY_BYTES, FibEntry, MulticastFib
from repro.routing.rpf import rpf_check, rpf_interface, rpf_neighbor
from repro.routing.unicast import UnicastRouting

S = parse_address("10.0.0.1")
E = ssm_address(7)


class TestRpf:
    def test_rpf_neighbor_points_toward_source(self):
        topo = TopologyBuilder.line(4)
        routing = UnicastRouting(topo)
        n2 = topo.node("n2")
        assert rpf_neighbor(routing, n2, "n0").name == "n1"

    def test_rpf_at_source_is_none(self):
        topo = TopologyBuilder.line(2)
        routing = UnicastRouting(topo)
        assert rpf_neighbor(routing, topo.node("n0"), "n0") is None

    def test_rpf_interface_and_check(self):
        topo = TopologyBuilder.line(3)
        routing = UnicastRouting(topo)
        n1 = topo.node("n1")
        toward_n0 = n1.interface_to(topo.node("n0")).index
        toward_n2 = n1.interface_to(topo.node("n2")).index
        assert rpf_interface(routing, n1, "n0") == toward_n0
        assert rpf_check(routing, n1, "n0", toward_n0)
        assert not rpf_check(routing, n1, "n0", toward_n2)

    def test_rpf_check_unreachable_source_fails(self):
        topo = TopologyBuilder.line(3)
        routing = UnicastRouting(topo)
        topo.links[0].fail()
        routing.recompute()
        assert not rpf_check(routing, topo.node("n2"), "n0", 0)


class TestFibEntry:
    def test_packs_to_exactly_12_bytes(self):
        """Figure 5: "An EXPRESS FIB entry can be represented in 12
        bytes"."""
        entry = FibEntry(source=S, dest_suffix=7, incoming_interface=3, outgoing=0b1010)
        assert len(entry.pack()) == FIB_ENTRY_BYTES == 12

    def test_pack_unpack_round_trip(self):
        entry = FibEntry(source=S, dest_suffix=0xABCDEF, incoming_interface=31, outgoing=0xFFFFFFFF)
        assert FibEntry.unpack(entry.pack()) == entry

    def test_field_widths_enforced(self):
        with pytest.raises(ForwardingError):
            FibEntry(source=S, dest_suffix=1 << 24, incoming_interface=0)
        with pytest.raises(ForwardingError):
            FibEntry(source=S, dest_suffix=0, incoming_interface=32)
        with pytest.raises(ForwardingError):
            FibEntry(source=1 << 32, dest_suffix=0, incoming_interface=0)

    def test_outgoing_bitmap_operations(self):
        entry = FibEntry(source=S, dest_suffix=1, incoming_interface=0)
        entry.add_outgoing(2)
        entry.add_outgoing(5)
        assert entry.has_outgoing(2)
        assert entry.outgoing_interfaces() == [2, 5]
        assert entry.fanout() == 2
        entry.remove_outgoing(2)
        assert entry.outgoing_interfaces() == [5]
        with pytest.raises(ForwardingError):
            entry.add_outgoing(32)

    def test_dest_address_reconstruction(self):
        entry = FibEntry(source=S, dest_suffix=7, incoming_interface=0)
        assert entry.dest_address == E

    def test_unpack_wrong_size_rejected(self):
        with pytest.raises(ForwardingError):
            FibEntry.unpack(b"\x00" * 11)


class TestMulticastFib:
    def test_install_lookup_forwarding(self):
        fib = MulticastFib()
        entry = fib.install(S, E, incoming_interface=1)
        entry.add_outgoing(2)
        entry.add_outgoing(3)
        assert fib.lookup(S, E, 1) == [2, 3]

    def test_iif_mismatch_drops(self):
        """§3.4: the incoming-interface check prevents data loops."""
        fib = MulticastFib()
        fib.install(S, E, incoming_interface=1).add_outgoing(2)
        assert fib.lookup(S, E, 0) == []
        assert fib.iif_drops == 1

    def test_no_match_counted_and_dropped(self):
        """§3.4: no rendezvous fallback, no broadcast — count and drop."""
        fib = MulticastFib()
        assert fib.lookup(S, E, 0) == []
        assert fib.no_match_drops == 1

    def test_channels_with_same_e_different_s_are_distinct(self):
        """§2: "two channels (S,E) and (S',E) are unrelated"."""
        s2 = parse_address("10.0.0.2")
        fib = MulticastFib()
        fib.install(S, E, 0).add_outgoing(1)
        fib.install(s2, E, 0).add_outgoing(2)
        assert fib.lookup(S, E, 0) == [1]
        assert fib.lookup(s2, E, 0) == [2]

    def test_install_is_idempotent(self):
        fib = MulticastFib()
        a = fib.install(S, E, 0)
        b = fib.install(S, E, 0)
        assert a is b and len(fib) == 1

    def test_remove(self):
        fib = MulticastFib()
        fib.install(S, E, 0)
        assert fib.remove(S, E)
        assert not fib.remove(S, E)
        assert len(fib) == 0

    def test_memory_accounting(self):
        fib = MulticastFib()
        for suffix in range(10):
            fib.install(S, ssm_address(suffix), 0)
        assert fib.memory_bytes() == 120

    def test_non_ssm_destination_rejected(self):
        fib = MulticastFib()
        with pytest.raises(ForwardingError):
            fib.install(S, parse_address("224.0.0.1"), 0)

    def test_channels_listing(self):
        fib = MulticastFib()
        fib.install(S, E, 0)
        assert fib.channels() == [(S, E)]
