"""Integration tests: subscription, tree maintenance, delivery.

These exercise the Figure 3 flow: "A host subscribing to an EXPRESS
channel" — joins propagate hop-by-hop toward the source, stopping at a
router already on the tree; unsubscribes are zero Counts; data flows
only along the reverse shortest-path tree.
"""

import pytest

from repro import CountPropagation, ExpressNetwork, TopologyBuilder
from repro.core.ecmp.state import LOCAL
from tests.conftest import make_channel


class TestBasicSubscription:
    def test_single_subscriber_delivery(self, line_net):
        net = line_net
        src, ch = make_channel(net, "hsrc")
        got = []
        net.host("hsub").subscribe(ch, on_data=got.append)
        net.settle()
        src.send(ch, payload="hello")
        net.settle()
        assert len(got) == 1
        assert got[0].payload == "hello"

    def test_join_creates_state_on_path_only(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        on_tree = net.nodes_on_tree(ch)
        # The whole delivery path holds state...
        for hop in net.routing.path("h1_0_0", "h0_0_0"):
            assert hop in on_tree
        # ...and untouched corners of the network hold none.
        assert "t2" not in on_tree
        assert len(net.ecmp_agents["e2_1"].channels) == 0

    def test_second_join_stops_at_on_tree_router(self, star_net):
        """§3.2: the join "propagates hop-by-hop until it reaches the
        source or a router already on the distribution tree"."""
        net = star_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()
        counts_before = net.ecmp_agents["leaf0"].stats.get("counts_rx")
        net.host("leaf2").subscribe(ch)
        net.settle()
        # TREE_ONLY: the hub was already on the tree, so the source's
        # node hears nothing new.
        assert net.ecmp_agents["leaf0"].stats.get("counts_rx") == counts_before

    def test_unsubscribe_prunes_leaf_branch(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.host("h1_1_0").subscribe(ch)
        net.settle()
        net.host("h1_1_0").unsubscribe(ch)
        net.settle()
        assert "e1_1" not in net.nodes_on_tree(ch)
        # Shared portion of the tree survives for the other subscriber.
        assert "t1" in net.nodes_on_tree(ch)
        got = []
        net.ecmp_agents["h1_0_0"].subscriptions[ch].on_data = got.append
        src.send(ch)
        net.settle()
        assert len(got) == 1

    def test_last_unsubscribe_tears_down_tree(self, line_net):
        net = line_net
        src, ch = make_channel(net, "hsrc")
        net.host("hsub").subscribe(ch)
        net.settle()
        assert net.fib_entries_total() > 0
        net.host("hsub").unsubscribe(ch)
        net.settle()
        assert net.nodes_on_tree(ch) == set()
        assert net.fib_entries_total() == 0

    def test_resubscribe_after_leave(self, line_net):
        net = line_net
        src, ch = make_channel(net, "hsrc")
        host = net.host("hsub")
        host.subscribe(ch)
        net.settle()
        host.unsubscribe(ch)
        net.settle()
        got = []
        host.subscribe(ch, on_data=got.append)
        net.settle()
        src.send(ch)
        net.settle()
        assert len(got) == 1

    def test_duplicate_subscribe_is_idempotent(self, line_net):
        net = line_net
        _, ch = make_channel(net, "hsrc")
        host = net.host("hsub")
        first = host.subscribe(ch)
        second = host.subscribe(ch)
        assert first is second
        state = net.ecmp_agents["hsub"].channels[ch]
        assert state.downstream[LOCAL].count == 1

    def test_unsubscribe_when_not_subscribed_is_noop(self, line_net):
        assert line_net.host("hsub").unsubscribe(
            make_channel(line_net, "hsrc")[1]
        ) is False

    def test_many_subscribers_all_receive(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        subscribers = [n for n in net.host_names if n != "h0_0_0"]
        for name in subscribers:
            net.host(name).subscribe(ch)
        net.settle()
        src.send(ch)
        net.settle()
        assert net.delivery_count(ch) == len(subscribers)

    def test_tree_matches_reverse_shortest_paths(self, isp_net):
        """RPF invariant: the built tree is the union of each
        subscriber's shortest path to the source."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        members = ["h1_0_0", "h2_1_1", "h0_1_0"]
        for member in members:
            net.host(member).subscribe(ch)
        net.settle()
        expected = set()
        for member in members:
            path = net.routing.path(member, "h0_0_0")
            expected.update(zip(path[1:], path))  # (parent, child)
        assert set(net.tree_edges(ch)) == expected


class TestMultipleChannels:
    def test_channels_do_not_interfere(self, isp_net):
        """§2: a subscriber to (S,E) does not receive (S',E)."""
        net = isp_net
        src1, ch1 = make_channel(net, "h0_0_0")
        src2 = net.source("h1_0_0")
        ch2 = src2.allocate_channel(suffix=ch1.suffix)  # same E, different S
        assert ch1.group == ch2.group

        got1, got2 = [], []
        net.host("h2_0_0").subscribe(ch1, on_data=got1.append)
        net.host("h2_0_1").subscribe(ch2, on_data=got2.append)
        net.settle()
        src1.send(ch1)
        src2.send(ch2)
        net.settle()
        assert len(got1) == 1 and len(got2) == 1

    def test_one_host_many_channels(self, isp_net):
        net = isp_net
        src = net.source("h0_0_0")
        channels = [src.allocate_channel() for _ in range(5)]
        counts = {ch: [] for ch in channels}
        for ch in channels:
            net.host("h2_0_0").subscribe(ch, on_data=counts[ch].append)
        net.settle()
        for ch in channels:
            src.send(ch)
        net.settle()
        assert all(len(v) == 1 for v in counts.values())

    def test_fib_scales_linearly_with_channels(self, line_net):
        """§5: "memory and bandwidth usage scales linearly with the
        number of channels"."""
        net = line_net
        src = net.source("hsrc")
        sizes = []
        allocated = []
        for n in (2, 4, 8):
            while len(allocated) < n:
                ch = src.allocate_channel()
                net.host("hsub").subscribe(ch)
                allocated.append(ch)
            net.settle()
            sizes.append(net.fib_bytes_total())
        assert sizes[1] == 2 * sizes[0]
        assert sizes[2] == 2 * sizes[1]


class TestOnChangePropagation:
    def test_exact_counts_at_source(self):
        topo = TopologyBuilder.star(5)
        net = ExpressNetwork(
            topo,
            hosts=[f"leaf{i}" for i in range(5)],
            propagation=CountPropagation.ON_CHANGE,
        )
        net.run(until=0.01)
        src, ch = make_channel(net, "leaf0")
        for i in (1, 2, 3):
            net.host(f"leaf{i}").subscribe(ch)
        net.settle()
        assert net.ecmp_agents["leaf0"].subscriber_count_estimate(ch) == 3
        net.host("leaf2").unsubscribe(ch)
        net.settle()
        assert net.ecmp_agents["leaf0"].subscriber_count_estimate(ch) == 2
