"""Unit tests for channel keys and the router key cache."""

import pytest

from repro.core.channel import Channel
from repro.core.keys import KEY_BYTES, ChannelKey, KeyCache, make_key
from repro.errors import AuthError
from repro.inet.addr import parse_address

CH = Channel.of(parse_address("10.0.0.1"), 1)
CH2 = Channel.of(parse_address("10.0.0.1"), 2)


class TestChannelKey:
    def test_key_is_8_bytes(self):
        assert len(make_key(CH).value) == KEY_BYTES == 8

    def test_wrong_length_rejected(self):
        with pytest.raises(AuthError):
            ChannelKey(b"short")

    def test_derivation_is_deterministic_per_channel(self):
        assert make_key(CH) == make_key(CH)
        assert make_key(CH) != make_key(CH2)

    def test_different_secrets_differ(self):
        assert ChannelKey.from_secret(CH, b"a") != ChannelKey.from_secret(CH, b"b")


class TestKeyCache:
    def test_unknown_channel_defers(self):
        cache = KeyCache()
        assert cache.validate(CH, make_key(CH)) is None
        assert not cache.knows(CH)

    def test_authoritative_validation(self):
        cache = KeyCache()
        key = make_key(CH)
        cache.install_authoritative(CH, key)
        assert cache.validate(CH, key) is True
        assert cache.validate(CH, make_key(CH2)) is False
        assert cache.validate(CH, None) is False

    def test_learned_keys_validate(self):
        cache = KeyCache()
        key = make_key(CH)
        cache.learn(CH, key)
        assert cache.knows(CH)
        assert cache.validate(CH, key) is True

    def test_get_prefers_authoritative(self):
        cache = KeyCache()
        auth_key = ChannelKey(b"A" * 8)
        cache.learn(CH, ChannelKey(b"B" * 8))
        cache.install_authoritative(CH, auth_key)
        assert cache.get(CH) == auth_key

    def test_forget(self):
        cache = KeyCache()
        cache.learn(CH, make_key(CH))
        cache.forget(CH)
        assert not cache.knows(CH)
        assert cache.get(CH) is None

    def test_accept_deny_counters(self):
        cache = KeyCache()
        cache.install_authoritative(CH, make_key(CH))
        cache.validate(CH, make_key(CH))
        cache.validate(CH, None)
        assert cache.local_accepts == 1
        assert cache.local_denies == 1

    def test_memory_accounting(self):
        cache = KeyCache()
        cache.install_authoritative(CH, make_key(CH))
        cache.learn(CH2, make_key(CH2))
        assert cache.memory_bytes() == 16
