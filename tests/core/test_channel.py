"""Unit tests for the channel value type and allocator."""

import pytest

from repro.core.channel import Channel, ChannelAllocator
from repro.errors import ChannelError
from repro.inet.addr import parse_address, ssm_address

S = parse_address("10.0.0.1")
S2 = parse_address("10.0.0.2")


class TestChannel:
    def test_valid_channel(self):
        ch = Channel(source=S, group=ssm_address(5))
        assert ch.suffix == 5

    def test_source_must_be_unicast(self):
        with pytest.raises(ChannelError):
            Channel(source=parse_address("224.0.0.1"), group=ssm_address(1))

    def test_group_must_be_ssm(self):
        with pytest.raises(ChannelError):
            Channel(source=S, group=parse_address("224.0.0.1"))
        with pytest.raises(ChannelError):
            Channel(source=S, group=parse_address("10.0.0.9"))

    def test_same_e_different_s_are_unrelated(self):
        """§2: "two channels (S,E) and (S',E) are unrelated"."""
        e = ssm_address(42)
        assert Channel(S, e) != Channel(S2, e)
        assert len({Channel(S, e), Channel(S2, e)}) == 2

    def test_of_constructor(self):
        assert Channel.of(S, 7).group == ssm_address(7)

    def test_hashable_and_frozen(self):
        ch = Channel(S, ssm_address(1))
        with pytest.raises(Exception):
            ch.source = S2
        assert ch in {ch}

    def test_str_is_dotted_pair(self):
        assert str(Channel.of(S, 1)) == "(10.0.0.1,232.0.0.1)"


class TestAllocator:
    def test_sequential_allocation(self):
        alloc = ChannelAllocator(S)
        a = alloc.allocate()
        b = alloc.allocate()
        assert a.suffix != b.suffix
        assert len(alloc) == 2

    def test_specific_suffix(self):
        alloc = ChannelAllocator(S)
        ch = alloc.allocate(suffix=99)
        assert ch.suffix == 99
        with pytest.raises(ChannelError):
            alloc.allocate(suffix=99)

    def test_release_allows_reuse(self):
        alloc = ChannelAllocator(S)
        ch = alloc.allocate(suffix=5)
        alloc.release(ch)
        assert alloc.allocate(suffix=5).suffix == 5

    def test_release_foreign_channel_rejected(self):
        alloc = ChannelAllocator(S)
        other = Channel.of(S2, 1)
        with pytest.raises(ChannelError):
            alloc.release(other)

    def test_contains_and_iteration(self):
        alloc = ChannelAllocator(S)
        a = alloc.allocate()
        assert a in alloc
        assert list(alloc.allocated()) == [a]

    def test_allocator_requires_unicast_source(self):
        with pytest.raises(ChannelError):
            ChannelAllocator(parse_address("232.0.0.1"))

    def test_skips_taken_suffixes(self):
        alloc = ChannelAllocator(S)
        alloc.allocate(suffix=1)
        alloc.allocate(suffix=2)
        assert alloc.allocate().suffix == 3
