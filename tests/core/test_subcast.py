"""Integration tests: subcast (§2.1).

"The source can also subcast a packet to a subset of the subscribers by
relaying it through an internal node in the multicast distribution
tree. ... the source unicasts an encapsulated packet to an 'on-channel'
router, addressing the encapsulated packet to the channel."
"""

import pytest

from repro.core.subcast import ENCAP_OVERHEAD, build_subcast_packet
from repro.errors import ChannelError
from repro.netsim.packet import Packet
from tests.conftest import make_channel


class TestSubcastPacket:
    def test_structure(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        relay = net.topo.node("t1").address
        packet = build_subcast_packet(ch, relay, payload="x", size=500)
        assert packet.proto == "ipip"
        assert packet.dst == relay
        assert packet.size == 500 + ENCAP_OVERHEAD
        inner = packet.decapsulate()
        assert inner.src == ch.source and inner.dst == ch.group

    def test_relay_must_not_be_source(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        with pytest.raises(ChannelError):
            build_subcast_packet(ch, ch.source)


class TestSubcastDelivery:
    def test_reaches_only_relay_subtree(self, isp_net):
        """Subscribers below the relay router get the packet; those on
        other branches do not."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        below, beside = [], []
        # h1_* subscribers sit under t1; h2_* under t2.
        net.host("h1_0_0").subscribe(ch, on_data=below.append)
        net.host("h1_1_0").subscribe(ch, on_data=below.append)
        net.host("h2_0_0").subscribe(ch, on_data=beside.append)
        net.settle()
        assert src.subcast(ch, relay_router="t1")
        net.settle()
        assert len(below) == 2
        assert beside == []
        assert net.forwarders["t1"].stats.get("subcast_relayed") == 1

    def test_subcast_to_off_tree_router_dropped(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        # t2 carries no state for this channel.
        assert "t2" not in net.nodes_on_tree(ch)
        src.subcast(ch, relay_router="t2")
        net.settle()
        assert net.forwarders["t2"].stats.get("subcast_off_tree_drops") == 1

    def test_only_source_may_subcast(self, isp_net):
        """§7.1: unlike RMTP's SUBTREE_CAST, "only the channel source
        can subcast on a channel, preserving the single-source
        property"."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        got = []
        net.host("h1_0_0").subscribe(ch, on_data=got.append)
        net.settle()
        # A rogue builds the same encapsulation but its outer source
        # address is its own.
        relay = net.topo.node("t1")
        inner = Packet(src=ch.source, dst=ch.group, proto="data", size=100)
        forged = inner.encapsulate(
            outer_src=net.host("h2_0_0").address, outer_dst=relay.address
        )
        net.forwarders["h2_0_0"].emit_unicast(forged)
        net.settle()
        assert got == []
        assert net.forwarders["t1"].stats.get("subcast_auth_drops") == 1

    def test_malformed_decap_dropped(self, isp_net):
        net = isp_net
        relay = net.topo.node("t1")
        bogus = Packet(
            src=net.host("h0_0_0").address,
            dst=relay.address,
            proto="ipip",
            payload=b"not-a-packet",
        )
        net.forwarders["h0_0_0"].emit_unicast(bogus)
        net.settle()
        assert net.forwarders["t1"].stats.get("bad_decap_drops") == 1
