"""Integration tests: the EXPRESS data plane (§3.4)."""

import pytest

from repro.errors import ForwardingError
from repro.netsim.packet import Packet
from tests.conftest import make_channel


class TestExpressForwarding:
    def test_unauthorized_sender_traffic_dropped(self, isp_net):
        """§2: "Only the source host S may send to (S,E)." A third
        party's packets to the channel address never reach subscribers
        (the Super Bowl interference scenario of §1)."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        got = []
        net.host("h1_0_0").subscribe(ch, on_data=got.append)
        net.settle()
        # Rogue host h2_0_0 sends to E with its own source address:
        # (S', E) has no FIB entry anywhere -> counted and dropped.
        rogue = net.forwarders["h2_0_0"]
        packet = Packet(src=net.host("h2_0_0").address, dst=ch.group, proto="data")
        rogue.node.send(packet, 0)
        net.settle()
        assert got == []
        drops = sum(fib.no_match_drops for fib in net.fibs.values())
        assert drops >= 1

    def test_spoofed_source_fails_rpf_check(self, isp_net):
        """A rogue spoofing S's address from the wrong direction fails
        the incoming-interface check or matches no entry."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        got = []
        net.host("h1_0_0").subscribe(ch, on_data=got.append)
        net.settle()
        spoofed = Packet(src=src.address, dst=ch.group, proto="data")
        net.forwarders["h2_1_1"].node.send(spoofed, 0)
        net.settle()
        assert got == []

    def test_source_cannot_send_off_channel(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        other = net.source("h1_0_0").allocate_channel()
        with pytest.raises(Exception):
            src.send(other)

    def test_emit_on_channel_without_subscribers_counted(self, line_net):
        """Data sent to a subscriber-less channel dies at the source's
        FIB — counted, never flooded."""
        net = line_net
        src, ch = make_channel(net, "hsrc")
        assert src.send(ch) == 0
        assert net.fibs["hsrc"].no_match_drops == 1

    def test_forwarding_uses_fib_only(self, isp_net):
        """Every multicast hop consults the FIB — the "no fast-path
        change" property."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        lookups_before = sum(fib.lookups for fib in net.fibs.values())
        src.send(ch)
        net.settle()
        lookups_after = sum(fib.lookups for fib in net.fibs.values())
        # One lookup per router on the path (the source consults its
        # entry directly; the destination host terminates the channel).
        routers = len(net.routing.path("h0_0_0", "h1_0_0")) - 2
        assert lookups_after - lookups_before == routers

    def test_ttl_decrements_along_path(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        got = []
        net.host("h1_0_0").subscribe(ch, on_data=got.append)
        net.settle()
        src.send(ch)
        net.settle()
        hops = len(net.routing.path("h0_0_0", "h1_0_0")) - 1
        assert got[0].ttl == 64 - hops

    def test_fanout_duplicates_only_at_branch_points(self, star_net):
        """The defining multicast property: one packet in, one copy per
        downstream branch out."""
        net = star_net
        src, ch = make_channel(net, "leaf0")
        for i in (1, 2, 3, 4):
            net.host(f"leaf{i}").subscribe(ch)
        net.settle()
        assert src.send(ch) == 1  # source emits exactly one copy
        net.settle()
        assert net.delivery_count(ch) == 4
        # The hub forwarded 4 copies.
        assert net.forwarders["hub"].stats.get("multicast_forwarded") == 4

    def test_conventional_class_d_not_forwarded(self, line_net):
        net = line_net
        packet = Packet(src=net.host("hsrc").address, dst=0xE0000001, proto="data")
        net.topo.node("hsrc").send(packet, 0)
        net.settle()
        assert net.forwarders["n0"].stats.get("non_express_multicast_drops") == 1


class TestFanOutAliasing:
    """The zero-copy fan-out path: the final interface of a fan-out
    sends the original packet with its TTL decremented in place, but
    *only* when the packet was not also delivered to a local subscriber
    (whose ``on_data`` may retain the object)."""

    def test_pure_transit_relays_the_same_object(self, line_net):
        net = line_net
        src, ch = make_channel(net, "hsrc")
        got = []
        net.host("hsub").subscribe(ch, on_data=got.append)
        net.settle()
        packet = Packet(
            src=src.address, dst=ch.group, proto="data", created_at=net.sim.now
        )
        net.forwarders["hsrc"].emit_local(packet)
        net.settle()
        assert len(got) == 1
        # Every hop (hsrc emit, n0, n1) is a degree-1 relay with no
        # local subscriber, so no copy is ever taken: the delivered
        # object IS the emitted one.
        assert got[0] is packet
        assert got[0].ttl == 64 - 3
        inplace = sum(
            net.forwarders[n].stats.get("fanout_inplace") for n in ("hsrc", "n0", "n1")
        )
        assert inplace == 3

    def test_locally_delivered_packet_not_mutated_by_the_relay(self, line_net):
        """A subscribed *router* both delivers locally and relays
        downstream. The retained object's TTL must stay frozen at its
        delivery-time value — the relay leg gets a copy."""
        net = line_net
        src, ch = make_channel(net, "hsrc")
        retained = []
        ttl_at_delivery = []

        def keep(p):
            retained.append(p)
            ttl_at_delivery.append(p.ttl)

        net.host("n1").subscribe(ch, on_data=keep)
        end_got = []
        net.host("hsub").subscribe(ch, on_data=end_got.append)
        net.settle()
        src.send(ch)
        net.settle()
        assert len(retained) == 1 and len(end_got) == 1
        assert retained[0].ttl == ttl_at_delivery[0]
        # The downstream leg travelled as a distinct object, one hop
        # further along.
        assert end_got[0].uid != retained[0].uid
        assert end_got[0].ttl == retained[0].ttl - 1

    def test_branch_point_subscribers_get_distinct_objects(self, star_net):
        net = star_net
        src, ch = make_channel(net, "leaf0")
        got = {}
        for i in (1, 2):
            net.host(f"leaf{i}").subscribe(ch, on_data=lambda p, i=i: got.setdefault(i, p))
        net.settle()
        src.send(ch)
        net.settle()
        assert set(got) == {1, 2}
        assert got[1].uid != got[2].uid
        assert got[1].payload == got[2].payload
        assert got[1].ttl == got[2].ttl


class TestUnicastForwarding:
    def test_host_to_host_unicast(self, isp_net):
        net = isp_net
        got = []
        net.forwarders["h2_1_1"].on_unicast_delivery(got.append)
        packet = Packet(
            src=net.host("h0_0_0").address,
            dst=net.host("h2_1_1").address,
            proto="data",
            payload="ping",
        )
        net.forwarders["h0_0_0"].emit_unicast(packet)
        net.settle()
        assert len(got) == 1 and got[0].payload == "ping"

    def test_unicast_to_unknown_address_dropped(self, line_net):
        net = line_net
        packet = Packet(src=net.host("hsrc").address, dst=0x01020304, proto="data")
        assert not net.forwarders["hsrc"].emit_unicast(packet)

    def test_self_addressed_unicast_delivered_locally(self, line_net):
        net = line_net
        got = []
        net.forwarders["hsrc"].on_unicast_delivery(got.append)
        packet = Packet(
            src=net.host("hsrc").address, dst=net.host("hsrc").address, proto="data"
        )
        assert net.forwarders["hsrc"].emit_unicast(packet)
        assert len(got) == 1

    def test_emit_local_guards(self, line_net):
        net = line_net
        src, ch = make_channel(net, "hsrc")
        fwd = net.forwarders["hsub"]
        with pytest.raises(ForwardingError):
            fwd.emit_local(Packet(src=src.address, dst=ch.group, proto="data"))
        with pytest.raises(ForwardingError):
            net.forwarders["hsrc"].emit_local(
                Packet(src=src.address, dst=net.host("hsub").address, proto="data")
            )
