"""Unit tests for the refresh-deadline ring (``core/ecmp/refresh.py``).

The integration-level expiry behaviour (ring vs full-table scan
equivalence) is pinned by the UDP-mode and property suites; here we pin
the ring's own container contract, and in particular the satellite
regression from the fault-injection work: an abandoned :meth:`due`
iteration — an exception mid-tick, a crash/restart straddling a refresh
deadline, a clock jump that pops several buckets at once — must never
strand a *popped-but-dead* entry that is tracked in ``_entries`` but
resident in no bucket. Before the ``_pending`` staging area, such an
entry would never expire again and would block :meth:`add` from
re-arming its key forever.
"""

import pytest

from repro.core.ecmp.refresh import RefreshRing


def drain(ring, now, lease=120.0):
    """One well-behaved tick: discard expired keys (all of them here),
    like the protocol's ``_udp_refresh_tick`` with no refreshes."""
    popped = list(ring.due(now))
    for key in popped:
        ring.discard(key)
    return popped


class TestRingBasics:
    def test_add_and_due(self):
        ring = RefreshRing(10.0)
        assert ring.add("a", 15.0)
        assert ring.add("b", 95.0)
        assert len(ring) == 2
        assert "a" in ring and "b" in ring
        # Bucket [10,20) is fully past only when now > 20.
        assert drain(ring, 25.0) == ["a"]
        assert len(ring) == 1
        assert drain(ring, 200.0) == ["b"]
        assert len(ring) == 0

    def test_add_is_deduped(self):
        ring = RefreshRing(10.0)
        assert ring.add("a", 15.0)
        assert not ring.add("a", 999.0)  # existing entry stays
        assert drain(ring, 25.0) == ["a"]

    def test_reschedule_moves_to_new_bucket(self):
        ring = RefreshRing(10.0)
        ring.add("a", 15.0)
        for key in ring.due(25.0):
            ring.reschedule(key, 95.0)
        assert "a" in ring
        assert drain(ring, 50.0) == []
        assert drain(ring, 200.0) == ["a"]

    def test_discard_is_lazy_and_final(self):
        ring = RefreshRing(10.0)
        ring.add("a", 15.0)
        ring.add("b", 15.0)
        ring.discard("a")
        assert drain(ring, 25.0) == ["b"]
        assert len(ring) == 0

    def test_due_yield_order_is_bucket_then_insertion(self):
        ring = RefreshRing(10.0)
        ring.add("late", 95.0)
        ring.add("a", 15.0)
        ring.add("b", 12.0)  # same bucket as a, inserted after
        assert list(drain(ring, 200.0)) == ["a", "b", "late"]

    def test_granularity_must_be_positive(self):
        with pytest.raises(ValueError):
            RefreshRing(0.0)
        with pytest.raises(ValueError):
            RefreshRing(10.0).rebuild(-1.0, lambda key: 0.0)


class TestAbandonedIteration:
    """The satellite regression: popped-but-undispositioned keys
    survive an abandoned ``due`` iteration."""

    def test_abandoned_due_reyields_next_call(self):
        ring = RefreshRing(10.0)
        ring.add("a", 12.0)
        ring.add("b", 14.0)
        it = ring.due(25.0)
        assert next(it) == "a"
        ring.discard("a")
        del it  # tick dies before reaching "b" (exception / crash)
        # "b" is still tracked and must come due again, immediately —
        # even at a ``now`` for which no bucket is due any more.
        assert "b" in ring
        assert drain(ring, 25.0) == ["b"]
        assert len(ring) == 0

    def test_clock_jump_straddling_deadline_leaves_no_dead_entry(self):
        """A crash/restart straddling a refresh deadline: the tick pops
        the bucket, dies, and the key's record is gone by the time the
        next tick runs. The entry must be yielded so the caller can
        discard it — not stay resident forever."""
        ring = RefreshRing(10.0)
        ring.add(("ch", "n1"), 12.0)
        it = ring.due(1e6)  # clock jump: every bucket pops
        next(it)
        del it  # abandoned before disposition
        # The record behind the key is dead; a well-behaved next tick
        # discards it and the key becomes re-armable.
        assert drain(ring, 1e6) == [("ch", "n1")]
        assert len(ring) == 0
        assert ring.add(("ch", "n1"), 2e6)

    def test_discard_while_pending_stops_reyield(self):
        ring = RefreshRing(10.0)
        ring.add("a", 12.0)
        it = ring.due(25.0)
        next(it)
        del it
        ring.discard("a")  # e.g. the neighbor unsubscribed meanwhile
        assert drain(ring, 1e6) == []
        assert ring.add("a", 15.0)  # key is re-armable

    def test_disposition_of_one_key_can_discard_another_pending_key(self):
        ring = RefreshRing(10.0)
        ring.add("a", 12.0)
        ring.add("b", 14.0)
        seen = []
        for key in ring.due(25.0):
            seen.append(key)
            # Handling "a" tears down "b" too (e.g. the whole channel
            # state is dropped): "b" must not be yielded afterwards.
            ring.discard("a")
            ring.discard("b")
        assert seen == ["a"]
        assert len(ring) == 0

    def test_rebuild_rebuckets_pending_keys(self):
        """An interval change (or crash recovery) right after an
        abandoned tick must re-bucket the stranded keys, deduped."""
        ring = RefreshRing(10.0)
        ring.add("a", 12.0)
        ring.add("b", 14.0)
        it = ring.due(25.0)
        next(it)
        del it
        deadlines = {"a": 30.0, "b": 60.0}
        ring.rebuild(5.0, deadlines.__getitem__)
        assert ring.granularity == 5.0
        assert drain(ring, 40.0) == ["a"]
        assert drain(ring, 70.0) == ["b"]

    def test_reschedule_clears_pending(self):
        ring = RefreshRing(10.0)
        ring.add("a", 12.0)
        it = ring.due(25.0)
        next(it)
        del it
        ring.reschedule("a", 95.0)  # refreshed meanwhile
        assert drain(ring, 25.0) == []  # not re-yielded now
        assert drain(ring, 200.0) == ["a"]
