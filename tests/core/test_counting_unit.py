"""Unit tests for the counting primitives (PendingQuery, QueryResult,
timeout decrement) and the unsupported-count rejection path."""

import pytest

from repro.core.channel import Channel
from repro.core.counting import (
    MIN_FORWARD_TIMEOUT,
    TIMEOUT_RTT_MULTIPLE,
    PendingQuery,
    QueryResult,
    decrement_timeout,
)
from repro.core.ecmp.countids import APPLICATION_RANGE, SUBSCRIBER_ID
from repro.core.ecmp.messages import Count
from tests.conftest import make_channel

CH = Channel.of(0x0A000001, 1)


class TestTimeoutDecrement:
    def test_decrement_is_rtt_multiple(self):
        """§3.1: "decrements the timeout value by a small multiple of
        the measured round-trip time to its upstream neighbor"."""
        assert decrement_timeout(5.0, 0.1) == 5.0 - TIMEOUT_RTT_MULTIPLE * 0.1

    def test_never_below_floor(self):
        assert decrement_timeout(0.01, 10.0) == MIN_FORWARD_TIMEOUT

    def test_children_time_out_before_parents(self):
        """Chained decrements are strictly decreasing until the floor —
        the mechanism that lets a child "send a partial reply to its
        parent before the parent itself times out"."""
        timeout = 5.0
        chain = [timeout]
        for _ in range(6):
            timeout = decrement_timeout(timeout, 0.05)
            chain.append(timeout)
        assert all(a > b for a, b in zip(chain, chain[1:]))


class TestPendingQuery:
    def make(self, outstanding=("a", "b")):
        pending = PendingQuery(
            channel=CH, count_id=SUBSCRIBER_ID, deadline=5.0, origin="up"
        )
        pending.outstanding.update(outstanding)
        return pending

    def test_record_reply_accumulates(self):
        pending = self.make()
        assert pending.record_reply("a", 3)
        assert pending.record_reply("b", 4)
        assert pending.is_complete()
        assert pending.total() == 7

    def test_unexpected_reply_rejected(self):
        pending = self.make()
        assert not pending.record_reply("stranger", 9)
        assert pending.received_sum == 0

    def test_duplicate_reply_rejected(self):
        pending = self.make()
        pending.record_reply("a", 3)
        assert not pending.record_reply("a", 3)
        assert pending.total() == 3

    def test_local_contribution_added(self):
        pending = self.make(outstanding=())
        pending.local_contribution = 2
        assert pending.total() == 2


class TestQueryResult:
    def test_resolution_and_callbacks(self):
        result = QueryResult()
        seen = []
        result.on_done(lambda r: seen.append((r.count, r.partial)))
        assert not result.done
        result._resolve(42, True, now=7.0)
        assert result.done and result.count == 42 and result.partial
        assert result.completed_at == 7.0
        assert seen == [(42, True)]

    def test_late_callback_fires_immediately(self):
        result = QueryResult()
        result._resolve(1, False, now=0.0)
        seen = []
        result.on_done(lambda r: seen.append(r.count))
        assert seen == [1]


class TestUnsupportedCount:
    def test_stray_count_rejected_with_response(self, isp_net):
        """§3.1: a Count matching nothing gets an UNSUPPORTED_COUNT
        rejection so the sender can stop."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        # Inject a stray application-count at an on-tree router from a
        # neighbor that was never asked.
        stray_id = APPLICATION_RANGE.start + 9
        agent = net.ecmp_agents["t1"]
        hub = net.topo.node("t1")
        peer = net.topo.node("t0")
        from repro.netsim.packet import Packet

        packet = Packet(src=peer.address, dst=hub.address, proto="ecmp", size=36)
        packet.headers["ecmp"] = Count(channel=ch, count_id=stray_id, count=5)
        agent.handle_packet(packet, hub.interface_to(peer).index)
        net.settle()
        assert agent.stats.get("unexpected_counts") == 1
        assert net.ecmp_agents["t0"].stats.get("rejected_counts") == 1
