"""Unit tests for ECMP message codecs and wire sizes."""

import pytest

from repro.core.channel import Channel
from repro.core.ecmp.messages import (
    BATCH_HEADER_BYTES,
    COUNT_WIRE_BYTES,
    MAX_BATCH_RECORDS,
    MSG_BATCH,
    RECORD_FRAME_BYTES,
    Count,
    CountQuery,
    CountResponse,
    CountStatus,
    EcmpBatch,
    decode_batch,
    decode_message,
    encode_batch,
    encode_message,
)
from repro.core.ecmp.countids import SUBSCRIBER_ID
from repro.core.keys import make_key
from repro.core.proactive import ToleranceCurve
from repro.errors import CodecError
from repro.inet.addr import parse_address
from repro.inet.headers import ETHERNET_TCP_SEGMENT

CH = Channel.of(parse_address("10.0.0.1"), 0xABCDEF)


class TestWireSizes:
    def test_unauthenticated_count_is_16_bytes(self):
        """§5.3: "92 16-byte Count messages fit in a 1480-byte ...
        segment"."""
        message = Count(channel=CH, count_id=SUBSCRIBER_ID, count=5)
        assert message.wire_size() == COUNT_WIRE_BYTES == 16
        assert len(encode_message(message)) == 16
        assert ETHERNET_TCP_SEGMENT // COUNT_WIRE_BYTES == 92

    def test_authenticated_count_adds_8_bytes(self):
        message = Count(channel=CH, count_id=SUBSCRIBER_ID, count=1, key=make_key(CH))
        assert message.wire_size() == 24
        assert len(encode_message(message)) == 24

    def test_query_sizes(self):
        plain = CountQuery(channel=CH, count_id=SUBSCRIBER_ID, timeout=5.0)
        assert len(encode_message(plain)) == plain.wire_size() == 16
        proactive = CountQuery(
            channel=CH, count_id=SUBSCRIBER_ID, timeout=5.0,
            proactive=ToleranceCurve(),
        )
        assert len(encode_message(proactive)) == proactive.wire_size() == 28

    def test_response_size(self):
        message = CountResponse(channel=CH, count_id=SUBSCRIBER_ID, status=CountStatus.OK)
        assert len(encode_message(message)) == message.wire_size() == 12


class TestRoundTrips:
    def test_count_round_trip(self):
        message = Count(channel=CH, count_id=0x4001, count=123456)
        assert decode_message(encode_message(message)) == message

    def test_count_with_key_round_trip(self):
        message = Count(channel=CH, count_id=SUBSCRIBER_ID, count=1, key=make_key(CH))
        assert decode_message(encode_message(message)) == message

    def test_query_round_trip_with_ms_precision(self):
        message = CountQuery(channel=CH, count_id=SUBSCRIBER_ID, timeout=2.5)
        parsed = decode_message(encode_message(message))
        assert parsed.timeout == 2.5

    def test_query_proactive_round_trip(self):
        curve = ToleranceCurve(e_max=0.25, alpha=3.0, tau=60.0)
        message = CountQuery(channel=CH, count_id=SUBSCRIBER_ID, timeout=1.0, proactive=curve)
        parsed = decode_message(encode_message(message))
        assert parsed.proactive.alpha == pytest.approx(3.0)
        assert parsed.proactive.tau == pytest.approx(60.0)

    def test_response_round_trip_all_statuses(self):
        for status in CountStatus:
            message = CountResponse(channel=CH, count_id=SUBSCRIBER_ID, status=status)
            assert decode_message(encode_message(message)) == message


class TestValidation:
    def test_negative_timeout_rejected(self):
        with pytest.raises(CodecError):
            CountQuery(channel=CH, count_id=SUBSCRIBER_ID, timeout=-1.0)

    def test_count_range_enforced(self):
        with pytest.raises(CodecError):
            Count(channel=CH, count_id=SUBSCRIBER_ID, count=1 << 32)

    def test_truncated_buffers_rejected(self):
        data = encode_message(Count(channel=CH, count_id=SUBSCRIBER_ID, count=1))
        for cut in (0, 5, 11, 15):
            with pytest.raises(CodecError):
                decode_message(data[:cut])

    def test_unknown_type_rejected(self):
        data = bytearray(encode_message(Count(channel=CH, count_id=SUBSCRIBER_ID, count=1)))
        data[0] = 0x7F
        with pytest.raises(CodecError):
            decode_message(bytes(data))

    def test_truncated_key_rejected(self):
        data = encode_message(
            Count(channel=CH, count_id=SUBSCRIBER_ID, count=1, key=make_key(CH))
        )
        with pytest.raises(CodecError):
            decode_message(data[:-4])

    def test_unknown_status_rejected(self):
        data = bytearray(encode_message(
            CountResponse(channel=CH, count_id=SUBSCRIBER_ID, status=CountStatus.OK)
        ))
        data[-1] = 0xEE
        with pytest.raises(CodecError):
            decode_message(bytes(data))

    def test_not_a_message_rejected(self):
        with pytest.raises(CodecError):
            encode_message("hello")

    def test_trailing_bytes_rejected_per_type(self):
        """Strict decode: a mis-sliced stream that appends bytes to any
        message type must fail loudly, never deliver a plausible prefix."""
        for message in (
            Count(channel=CH, count_id=SUBSCRIBER_ID, count=1),
            Count(channel=CH, count_id=SUBSCRIBER_ID, count=1, key=make_key(CH)),
            CountQuery(channel=CH, count_id=SUBSCRIBER_ID, timeout=5.0),
            CountQuery(
                channel=CH, count_id=SUBSCRIBER_ID, timeout=5.0,
                proactive=ToleranceCurve(),
            ),
            CountResponse(channel=CH, count_id=SUBSCRIBER_ID, status=CountStatus.OK),
        ):
            with pytest.raises(CodecError):
                decode_message(encode_message(message) + b"\x00")


MIXED_BATCH = (
    Count(channel=CH, count_id=SUBSCRIBER_ID, count=3),
    Count(channel=CH, count_id=SUBSCRIBER_ID, count=1, key=make_key(CH)),
    CountQuery(channel=CH, count_id=0x4001, timeout=2.5),
    CountQuery(
        channel=CH, count_id=SUBSCRIBER_ID, timeout=1.0,
        # float32-exact curve parameters so equality round-trips.
        proactive=ToleranceCurve(e_max=0.25, alpha=4.0, tau=64.0),
    ),
    CountResponse(channel=CH, count_id=SUBSCRIBER_ID, status=CountStatus.OK),
)


class TestBatchCodec:
    def test_mixed_batch_round_trip(self):
        data = encode_batch(MIXED_BATCH)
        assert decode_batch(data) == list(MIXED_BATCH)

    def test_batch_type_byte_and_header(self):
        data = encode_batch(MIXED_BATCH)
        assert data[0] == MSG_BATCH
        assert int.from_bytes(data[2:4], "big") == len(MIXED_BATCH)

    def test_wire_size_matches_encoding(self):
        batch = EcmpBatch(messages=MIXED_BATCH)
        data = encode_message(batch)
        assert len(data) == batch.wire_size()
        assert batch.wire_size() == BATCH_HEADER_BYTES + sum(
            RECORD_FRAME_BYTES + m.wire_size() for m in MIXED_BATCH
        )

    def test_decode_message_dispatches_batch(self):
        parsed = decode_message(encode_batch(MIXED_BATCH))
        assert isinstance(parsed, EcmpBatch)
        assert parsed.messages == MIXED_BATCH
        assert len(parsed) == len(MIXED_BATCH)

    def test_singleton_batch_round_trips(self):
        single = (Count(channel=CH, count_id=SUBSCRIBER_ID, count=7),)
        assert decode_batch(encode_batch(single)) == list(single)


class TestBatchStrictness:
    def test_empty_batch_rejected(self):
        with pytest.raises(CodecError):
            EcmpBatch(messages=())
        with pytest.raises(CodecError):
            encode_batch([])

    def test_nested_batch_rejected(self):
        inner = EcmpBatch(messages=MIXED_BATCH[:1])
        with pytest.raises(CodecError):
            EcmpBatch(messages=(inner,))
        with pytest.raises(CodecError):
            encode_batch([inner])

    def test_record_count_overflow_rejected(self):
        count = Count(channel=CH, count_id=SUBSCRIBER_ID, count=1)
        with pytest.raises(CodecError):
            EcmpBatch(messages=(count,) * (MAX_BATCH_RECORDS + 1))
        with pytest.raises(CodecError):
            encode_batch([count] * (MAX_BATCH_RECORDS + 1))

    def test_truncated_header_rejected(self):
        data = encode_batch(MIXED_BATCH)
        for cut in range(BATCH_HEADER_BYTES):
            with pytest.raises(CodecError):
                decode_batch(data[:cut])

    def test_wrong_type_byte_rejected(self):
        data = bytearray(encode_batch(MIXED_BATCH))
        data[0] = 0x02
        with pytest.raises(CodecError):
            decode_batch(bytes(data))

    def test_zero_record_count_rejected(self):
        import struct

        with pytest.raises(CodecError):
            decode_batch(struct.pack("!BBH", MSG_BATCH, 0, 0))

    def test_trailing_partial_record_rejected(self):
        """Satellite regression: a frame cut mid-record (or mid-length-
        prefix) is a CodecError at that record's index, never a silently
        shorter batch."""
        data = encode_batch(MIXED_BATCH)
        for cut in range(BATCH_HEADER_BYTES, len(data)):
            with pytest.raises(CodecError):
                decode_batch(data[:cut])

    def test_record_count_disagreeing_with_payload_rejected(self):
        # Declare one more record than the payload carries.
        data = bytearray(encode_batch(MIXED_BATCH))
        data[2:4] = (len(MIXED_BATCH) + 1).to_bytes(2, "big")
        with pytest.raises(CodecError):
            decode_batch(bytes(data))

    def test_trailing_bytes_after_records_rejected(self):
        with pytest.raises(CodecError):
            decode_batch(encode_batch(MIXED_BATCH) + b"\x00")
