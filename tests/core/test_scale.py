"""Scale smoke tests: the machinery at hundreds-to-thousands of nodes.

Not performance benchmarks (those live in benchmarks/) — these verify
*correctness is preserved at scale*: exact counting over a 1024-leaf
tree, full delivery, and linear state.
"""

import pytest

from repro import ExpressNetwork, TopologyBuilder
from tests.conftest import make_channel


@pytest.fixture(scope="module")
def big_tree_net():
    """A 1024-leaf binary tree (2047 routers + 1025 hosts)."""
    depth = 10
    topo = TopologyBuilder.balanced_tree(depth=depth, fanout=2)
    topo.add_node("src")
    topo.add_link("src", "r", delay=0.0005)
    leaves = [f"d{depth}_{i}" for i in range(2**depth)]
    net = ExpressNetwork(topo, hosts=leaves + ["src"])
    net.run(until=0.01)
    return net, leaves


class TestThousandSubscribers:
    def test_mass_join_and_exact_count(self, big_tree_net):
        net, leaves = big_tree_net
        src, ch = make_channel(net, "src")
        for leaf in leaves:
            net.host(leaf).subscribe(ch)
        net.settle(2.0)
        result = src.count_query(ch, timeout=10.0)
        net.settle(11.0)
        assert result.count == 1024
        assert not result.partial

    def test_delivery_to_all_1024(self, big_tree_net):
        net, leaves = big_tree_net
        # Reuse the module-scoped subscriptions from the fixture state.
        src = net.source("src")
        channels = list(src.allocator.allocated())
        ch = channels[0]
        src.send(ch, size=1356)
        net.settle(2.0)
        assert net.delivery_count(ch) == 1024

    def test_state_is_one_entry_per_forwarding_node(self, big_tree_net):
        """Exactly one FIB entry per node that forwards the channel:
        the source node plus every router on the tree; subscriber
        leaves hold none."""
        net, leaves = big_tree_net
        channel = next(iter(net.source("src").allocator.allocated()))
        forwarding_nodes = {
            name
            for name in net.nodes_on_tree(channel)
            if name not in net.host_names
        } | {"src"}
        for name, fib in net.fibs.items():
            if name in forwarding_nodes:
                assert len(fib) == 1, name
            elif name in net.host_names and name != "src":
                assert len(fib) == 0, name

    def test_partial_membership_prunes_tree(self, big_tree_net):
        net, leaves = big_tree_net
        src = net.source("src")
        ch = src.allocate_channel()
        # Only the left half subscribes to this second channel.
        for leaf in leaves[:512]:
            net.host(leaf).subscribe(ch)
        net.settle(2.0)
        on_tree = net.nodes_on_tree(ch)
        # The right half's edge routers hold no state for it.
        assert f"d9_{2**9 - 1}" not in on_tree
        result = src.count_query(ch, timeout=10.0)
        net.settle(11.0)
        assert result.count == 512
