"""Integration tests: authenticated subscriptions (§2.1, §3.2, §3.5).

"The network layer ensures that only hosts presenting K(S,E) can
subscribe. ... A router receiving an authenticated subscription passes
K(S,E) upstream for validation. The subscription is eventually
validated or denied by a CountResponse from the upstream router, and a
valid key is cached so that further authenticated requests can be
denied or accepted locally."
"""

import pytest

from repro import Channel, make_key
from repro.core.keys import ChannelKey
from repro.errors import ChannelError
from tests.conftest import make_channel


def keyed_channel(net, source_host):
    src, ch = make_channel(net, source_host)
    key = make_key(ch)
    src.channel_key(ch, key)
    return src, ch, key


class TestKeyedSubscription:
    def test_correct_key_subscribes_and_receives(self, isp_net):
        net = isp_net
        src, ch, key = keyed_channel(net, "h0_0_0")
        got = []
        handle = net.host("h1_0_0").subscribe(ch, key=key, on_data=got.append)
        assert handle.status == "pending"
        net.settle()
        assert handle.status == "active"
        src.send(ch)
        net.settle()
        assert len(got) == 1

    def test_wrong_key_denied_and_no_residual_state(self, isp_net):
        net = isp_net
        src, ch, key = keyed_channel(net, "h0_0_0")
        wrong = ChannelKey(b"badbadba")
        statuses = []
        handle = net.host("h1_0_0").subscribe(
            ch, key=wrong, on_status=lambda h: statuses.append(h.status)
        )
        net.settle()
        assert handle.status == "denied"
        assert "denied" in statuses
        # No residual tree or FIB state anywhere.
        assert net.nodes_on_tree(ch) == set()
        assert net.fib_entries_total() == 0

    def test_wrong_key_never_receives_data(self, isp_net):
        net = isp_net
        src, ch, key = keyed_channel(net, "h0_0_0")
        got = []
        net.host("h1_0_0").subscribe(ch, key=ChannelKey(b"badbadba"), on_data=got.append)
        net.settle()
        src.send(ch)
        net.settle()
        assert got == []

    def test_missing_key_denied(self, isp_net):
        """§2.1: "If a newSubscription fails due to a missing or
        improper key, the call returns a failure indication"."""
        net = isp_net
        src, ch, key = keyed_channel(net, "h0_0_0")
        handle = net.host("h1_0_0").subscribe(ch)  # no key
        net.settle()
        assert handle.status == "denied"
        assert net.fib_entries_total() == 0

    def test_key_cached_on_path_after_first_validation(self, isp_net):
        net = isp_net
        src, ch, key = keyed_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch, key=key)
        net.settle()
        for hop in net.routing.path("h1_0_0", "h0_0_0")[1:-1]:
            assert net.ecmp_agents[hop].keys.knows(ch)

    def test_cached_key_denies_locally(self, isp_net):
        """After caching, a bad second subscriber is refused at its
        first on-tree router without bothering the source."""
        net = isp_net
        src, ch, key = keyed_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch, key=key)
        net.settle()
        src_denies_before = net.ecmp_agents["h0_0_0"].stats.get("denied_subscriptions")
        # h1_0_1 shares the edge router e1_0 with h1_0_0.
        handle = net.host("h1_0_1").subscribe(ch, key=ChannelKey(b"badbadba"))
        net.settle()
        assert handle.status == "denied"
        assert (
            net.ecmp_agents["h0_0_0"].stats.get("denied_subscriptions")
            == src_denies_before
        )
        assert net.ecmp_agents["e1_0"].keys.local_denies >= 1

    def test_cached_key_accepts_locally(self, isp_net):
        net = isp_net
        src, ch, key = keyed_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch, key=key)
        net.settle()
        handle = net.host("h1_0_1").subscribe(ch, key=key)
        net.settle()
        assert handle.status == "active"
        assert net.ecmp_agents["e1_0"].keys.local_accepts >= 1

    def test_good_and_bad_subscribers_coexist(self, isp_net):
        net = isp_net
        src, ch, key = keyed_channel(net, "h0_0_0")
        good = net.host("h1_0_0").subscribe(ch, key=key)
        bad = net.host("h2_0_0").subscribe(ch, key=ChannelKey(b"badbadba"))
        net.settle()
        assert good.status == "active"
        assert bad.status == "denied"
        got = []
        good.on_data = got.append
        src.send(ch)
        net.settle()
        assert len(got) == 1

    def test_channel_key_requires_source(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        with pytest.raises(ChannelError):
            net.source("h1_0_0").channel_key(ch, make_key(ch))

    def test_open_channel_ignores_presented_key(self, isp_net):
        """Keys presented to an unauthenticated channel don't block the
        subscription (the source accepts; §2.1 keys are optional)."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        handle = net.host("h1_0_0").subscribe(ch, key=ChannelKey(b"whatever"))
        net.settle()
        assert handle.status == "active"

    def test_unreachable_source_denied(self, isp_net):
        net = isp_net
        bogus = Channel.of(0x0BADBEEF, 1)  # no such node
        handle = net.host("h1_0_0").subscribe(bogus)
        net.settle()
        assert handle.status == "denied"
