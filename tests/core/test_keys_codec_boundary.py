"""Channel-key authentication at the codec boundary.

The §3.5 key rides inside the keyed ``Count`` wire record, so the
authentication edge cases live where the codec meets :mod:`repro.core.
keys`: a truncated key must fail framing (never yield a short
``ChannelKey``), extra key bytes must fail strictness (never be
silently absorbed into the authenticator), and a syntactically valid
but *forged* key must cross the real wire intact and be rejected by
the upstream validator with ``INVALID_AUTHENTICATOR`` — exercised
end-to-end with ``wire_format=True`` so every hop encodes and parses
real bytes. Both codec implementations (the zero-copy fast path and
the legacy concatenating one) are pinned to identical behavior.
"""

import pytest

from repro.core.channel import Channel
from repro.core.ecmp.countids import SUBSCRIBER_ID
from repro.core.ecmp.messages import (
    KEY_BYTES,
    Count,
    decode_batch,
    decode_message,
    encode_batch,
    encode_message,
    set_zero_copy,
)
from repro.core.keys import ChannelKey, make_key
from repro.core.network import ExpressNetwork
from repro.errors import AuthError, CodecError
from repro.inet.addr import parse_address
from repro.netsim.topology import TopologyBuilder

CH = Channel.of(parse_address("10.9.0.1"), 7)


@pytest.fixture(params=["zero_copy", "legacy"])
def codec(request):
    """Run each case under both codec implementations."""
    prior = set_zero_copy(request.param == "zero_copy")
    yield request.param
    set_zero_copy(prior)


def keyed_count(key: ChannelKey) -> bytes:
    return encode_message(
        Count(channel=CH, count_id=SUBSCRIBER_ID, count=3, key=key)
    )


class TestKeyFraming:
    def test_keyed_count_round_trips_key_bytes(self, codec):
        key = make_key(CH)
        decoded = decode_message(keyed_count(key))
        assert decoded.key == key
        assert isinstance(decoded.key.value, bytes)
        assert len(decoded.key.value) == KEY_BYTES

    @pytest.mark.parametrize("missing", [1, KEY_BYTES - 1, KEY_BYTES])
    def test_truncated_key_fails_framing(self, codec, missing):
        # Chop bytes off the authenticator: the KEY flag promises 8 key
        # bytes, so a short buffer is a framing error — it must never
        # surface as a short ChannelKey (whose constructor would raise
        # AuthError) or as a keyless Count.
        frame = keyed_count(make_key(CH))
        with pytest.raises(CodecError, match="Count body truncated"):
            decode_message(frame[:-missing])

    def test_extra_key_bytes_fail_strictness(self, codec):
        # A forger padding the authenticator field must fail framing,
        # not have the surplus silently ignored.
        frame = keyed_count(make_key(CH)) + b"\x00"
        with pytest.raises(CodecError, match="trailing bytes after Count"):
            decode_message(frame)

    def test_truncated_key_inside_batch_names_the_record(self, codec):
        frame = bytearray(encode_batch([
            Count(channel=CH, count_id=SUBSCRIBER_ID, count=1),
            Count(channel=CH, count_id=SUBSCRIBER_ID, count=2, key=make_key(CH)),
        ]))
        # Shorten the final record's declared payload: the per-record
        # length prefix now promises more than the frame holds.
        with pytest.raises(CodecError, match="batch record 1 truncated"):
            decode_batch(bytes(frame[:-2]))

    def test_forged_key_crosses_codec_intact(self, codec):
        # A wrong-but-well-formed key is not the codec's business: it
        # must arrive byte-identical for the key cache to reject.
        forged = ChannelKey(b"badbadba")
        decoded = decode_message(keyed_count(forged))
        assert decoded.key == forged
        assert decoded.key != make_key(CH)

    def test_short_key_cannot_be_constructed(self):
        # The AuthError backstop: even code bypassing the codec cannot
        # materialize an undersized authenticator.
        with pytest.raises(AuthError, match="must be 8 bytes"):
            ChannelKey(b"\x01" * (KEY_BYTES - 1))
        with pytest.raises(AuthError):
            ChannelKey(b"\x01" * (KEY_BYTES + 1))


class TestForgedKeyOverWire:
    @pytest.fixture
    def wire_net(self):
        topo = TopologyBuilder.isp(
            n_transit=3, stubs_per_transit=2, hosts_per_stub=2
        )
        net = ExpressNetwork(topo, wire_format=True)
        net.run(until=0.01)
        return net

    def _keyed_channel(self, net):
        src = net.source("h0_0_0")
        ch = src.allocate_channel()
        key = make_key(ch)
        src.channel_key(ch, key)
        return src, ch, key

    def test_forged_key_denied_end_to_end(self, wire_net, codec):
        net = wire_net
        src, ch, key = self._keyed_channel(net)
        statuses = []
        handle = net.host("h1_0_0").subscribe(
            ch,
            key=ChannelKey(b"badbadba"),
            on_status=lambda h: statuses.append(h.status),
        )
        net.settle()
        # The forged authenticator survived encode/decode at every hop
        # and was rejected upstream: INVALID_AUTHENTICATOR, no tree.
        assert handle.status == "denied"
        assert "denied" in statuses
        assert net.nodes_on_tree(ch) == set()

    def test_valid_key_accepted_end_to_end(self, wire_net, codec):
        net = wire_net
        src, ch, key = self._keyed_channel(net)
        got = []
        handle = net.host("h1_0_0").subscribe(ch, key=key, on_data=got.append)
        net.settle()
        assert handle.status == "active"
        src.send(ch)
        net.settle()
        assert len(got) == 1
