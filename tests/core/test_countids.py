"""Unit tests for the countId space."""

import pytest

from repro.core.ecmp.countids import (
    ALL_CHANNELS_ID,
    APPLICATION_RANGE,
    LINK_COUNT_ID,
    LOCAL_USE_RANGE,
    NEIGHBORS_ID,
    NETWORK_LAYER_RANGE,
    SUBSCRIBER_ID,
    CountIdError,
    check_count_id,
    is_application_id,
    is_local_use_id,
    is_network_layer_id,
    propagates_to_hosts,
)


class TestReservedIds:
    def test_well_known_ids_are_distinct(self):
        ids = {SUBSCRIBER_ID, NEIGHBORS_ID, ALL_CHANNELS_ID, LINK_COUNT_ID}
        assert len(ids) == 4

    def test_subscriber_id_reaches_hosts(self):
        assert propagates_to_hosts(SUBSCRIBER_ID)

    def test_link_count_stops_at_routers(self):
        """§3.1 footnote: network-layer resource counts are not
        propagated all the way to leaf hosts."""
        assert is_network_layer_id(LINK_COUNT_ID)
        assert not propagates_to_hosts(LINK_COUNT_ID)

    def test_application_ids_reach_hosts(self):
        app_id = APPLICATION_RANGE.start
        assert is_application_id(app_id)
        assert propagates_to_hosts(app_id)

    def test_local_use_range_exists(self):
        assert is_local_use_id(LOCAL_USE_RANGE.start)
        assert not is_application_id(LOCAL_USE_RANGE.start)

    def test_ranges_partition_without_overlap(self):
        ranges = [NETWORK_LAYER_RANGE, LOCAL_USE_RANGE, APPLICATION_RANGE]
        for i, a in enumerate(ranges):
            for b in ranges[i + 1 :]:
                assert set(a).isdisjoint(b)


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, 0x10000])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(CountIdError):
            check_count_id(bad)

    def test_check_returns_value(self):
        assert check_count_id(SUBSCRIBER_ID) == SUBSCRIBER_ID
