"""Miscellaneous facade and data-plane edge cases."""

import pytest

from repro import ExpressNetwork, TopologyBuilder
from repro.netsim.packet import Packet
from tests.conftest import make_channel


class TestRecomputeDebounce:
    def test_multiple_link_events_trigger_one_recompute(self, isp_net):
        net = isp_net
        recomputes_before = net.routing.recompute_count
        # Two link events in the same instant...
        net.topo.link_between("t0", "t1").fail()
        net.topo.link_between("t1", "t2").fail()
        net.settle(0.1)
        # ...coalesce into a single SPF recompute.
        assert net.routing.recompute_count == recomputes_before + 1

    def test_recovery_triggers_recompute_too(self, isp_net):
        net = isp_net
        link = net.topo.link_between("t0", "t1")
        link.fail()
        net.settle(0.1)
        count_after_fail = net.routing.recompute_count
        link.recover()
        net.settle(0.1)
        assert net.routing.recompute_count == count_after_fail + 1


class TestDataPlaneEdges:
    def test_ttl_expiry_mid_path(self, isp_net):
        """A packet whose TTL runs out on the way is dropped, not
        delivered."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        got = []
        net.host("h1_0_0").subscribe(ch, on_data=got.append)
        net.settle()
        hops = len(net.routing.path("h0_0_0", "h1_0_0")) - 1
        packet = Packet(
            src=src.address, dst=ch.group, proto="data", ttl=hops - 2,
            created_at=net.sim.now,
        )
        net.forwarders["h0_0_0"].emit_local(packet)
        net.settle()
        assert got == []

    def test_unicast_transit_of_tunnel_packets(self, isp_net):
        """An ipip packet not addressed to this router is forwarded as
        plain unicast (the subcast transit leg)."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        got = []
        net.ecmp_agents["h1_0_0"].subscriptions[ch].on_data = got.append
        # Relay via e1_0: the tunnel transits e0_0, t0, t1 first.
        assert src.subcast(ch, relay_router="e1_0")
        net.settle()
        assert len(got) == 1

    def test_source_with_no_subscribers_after_churn(self, line_net):
        net = line_net
        src, ch = make_channel(net, "hsrc")
        net.host("hsub").subscribe(ch)
        net.settle()
        net.host("hsub").unsubscribe(ch)
        net.settle()
        assert src.send(ch) == 0  # counted, dropped, no crash

    def test_is_subscribed_reflects_status(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        host = net.host("h1_0_0")
        assert not host.is_subscribed(ch)
        host.subscribe(ch)
        net.settle()
        assert host.is_subscribed(ch)
        host.unsubscribe(ch)
        assert not host.is_subscribed(ch)


class TestMultiSourcePerHost:
    def test_two_sources_share_one_subscriber(self, isp_net):
        """Distinct sources' channels coexist at one subscriber with
        independent delivery."""
        net = isp_net
        src_a, ch_a = make_channel(net, "h0_0_0")
        src_b, ch_b = make_channel(net, "h3_1_1" if "h3_1_1" in net.topo.nodes else "h2_1_1")
        got_a, got_b = [], []
        host = net.host("h1_0_0")
        host.subscribe(ch_a, on_data=got_a.append)
        host.subscribe(ch_b, on_data=got_b.append)
        net.settle()
        src_a.send(ch_a)
        src_b.send(ch_b)
        src_b.send(ch_b)
        net.settle()
        assert len(got_a) == 1
        assert len(got_b) == 2
