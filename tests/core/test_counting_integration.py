"""Integration tests: the generic counting operation (§3.1) and the
service-interface uses of it (§2.1, §2.2)."""

import pytest

from repro import SUBSCRIBER_ID
from repro.core.ecmp.countids import APPLICATION_RANGE, LINK_COUNT_ID, TREE_SIZE_ID
from tests.conftest import make_channel

VOTE_ID = APPLICATION_RANGE.start + 7


class TestSubscriberCounting:
    def test_exact_count_at_source(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        members = ["h1_0_0", "h1_1_1", "h2_0_0", "h2_1_1", "h0_1_0"]
        for member in members:
            net.host(member).subscribe(ch)
        net.settle()
        result = src.count_query(ch, timeout=5.0)
        net.settle(6.0)
        assert result.done
        assert result.count == len(members)
        assert not result.partial

    def test_count_of_empty_channel_is_zero(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        result = src.count_query(ch, timeout=1.0)
        net.settle(2.0)
        assert result.count == 0

    def test_count_after_churn(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        for member in ["h1_0_0", "h1_0_1", "h2_0_0"]:
            net.host(member).subscribe(ch)
        net.settle()
        net.host("h1_0_1").unsubscribe(ch)
        net.settle()
        result = src.count_query(ch, timeout=5.0)
        net.settle(6.0)
        assert result.count == 2

    def test_callback_invoked(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        seen = []
        src.count_query(ch, timeout=5.0, callback=lambda n, p: seen.append((n, p)))
        net.settle(6.0)
        assert seen == [(1, False)]

    def test_router_initiated_query(self, isp_net):
        """§3.1: "ECMP also allows any router on the channel
        distribution tree to initiate a query without source
        cooperation"."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        for member in ["h1_0_0", "h1_1_0"]:
            net.host(member).subscribe(ch)
        net.settle()
        # t1 sits above both subscribers' stub routers.
        result = net.router_agent("t1").count_query(ch, SUBSCRIBER_ID, timeout=5.0)
        net.settle(6.0)
        assert result.count == 2

    def test_partial_count_on_timeout(self, isp_net):
        """§2.1: the count is best-effort within the timeout."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.host("h2_0_0").subscribe(ch)
        net.settle()
        # Cut one branch *after* the tree is built, then query: the
        # query into the dead branch cannot answer. Use the h2 branch.
        net.topo.link_between("t0", "t2").fail()
        # Freeze re-homing by querying immediately (before recompute
        # propagates the new tree shape).
        result = src.count_query(ch, timeout=0.5)
        net.settle(2.0)
        assert result.done
        assert result.count >= 1


class TestNetworkLayerCounts:
    def test_link_count_measures_tree_links(self, isp_net):
        """§3.1's transit-domain example: count the links a channel
        uses (for settlements/planning)."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        members = ["h1_0_0", "h2_0_0"]
        for member in members:
            net.host(member).subscribe(ch)
        net.settle()
        result = src.count_query(ch, LINK_COUNT_ID, timeout=5.0)
        net.settle(6.0)
        # Tree edges between nodes = number of downstream links summed
        # over all on-tree nodes.
        assert result.count == len(net.tree_edges(ch))

    def test_tree_size_counts_on_tree_nodes(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        result = src.count_query(ch, TREE_SIZE_ID, timeout=5.0)
        net.settle(6.0)
        # Every on-tree *router* contributes 1 (hosts don't see
        # network-layer countIds; the source node contributes 1).
        routers_on_tree = [
            n for n in net.nodes_on_tree(ch) if n not in net.host_names
        ]
        assert result.count == len(routers_on_tree) + 1  # + source node


class TestApplicationCounts:
    def test_vote_collection(self, isp_net):
        """§2.2.1: "an Internet TV station can conduct a poll ...
        getting a response from potentially millions of subscribers"."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        votes = {"h1_0_0": 1, "h1_1_0": 0, "h2_0_0": 1, "h2_1_0": 1}
        for member, vote in votes.items():
            host = net.host(member)
            host.subscribe(ch)
            host.respond_to_count(ch, VOTE_ID, lambda v=vote: v)
        net.settle()
        result = src.count_query(ch, VOTE_ID, timeout=5.0)
        net.settle(6.0)
        assert result.count == 3

    def test_hosts_without_responder_contribute_zero(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        result = src.count_query(ch, VOTE_ID, timeout=5.0)
        net.settle(6.0)
        assert result.count == 0

    def test_concurrent_counts_on_different_ids(self, isp_net):
        """§5.2 sizes state for two counts outstanding per channel."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        host = net.host("h1_0_0")
        host.subscribe(ch)
        host.respond_to_count(ch, VOTE_ID, lambda: 1)
        net.settle()
        r1 = src.count_query(ch, SUBSCRIBER_ID, timeout=5.0)
        r2 = src.count_query(ch, VOTE_ID, timeout=5.0)
        net.settle(6.0)
        assert r1.count == 1 and r2.count == 1


class TestQueryResult:
    def test_on_done_after_completion_fires_immediately(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        result = src.count_query(ch, timeout=5.0)
        net.settle(6.0)
        fired = []
        result.on_done(lambda r: fired.append(r.count))
        assert fired == [1]

    def test_completed_at_recorded(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        result = src.count_query(ch, timeout=5.0)
        net.settle(6.0)
        assert result.completed_at is not None and result.completed_at > 0
