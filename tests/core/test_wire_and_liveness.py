"""Integration tests: wire-format operation, neighbor discovery, and
keepalive liveness (§3.3)."""

import pytest

from repro import ExpressNetwork, TopologyBuilder
from repro.core.ecmp.protocol import DISCOVERY_CHANNEL, EcmpAgent
from tests.conftest import make_channel


@pytest.fixture
def wire_net():
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo, wire_format=True)
    net.run(until=0.01)
    return net


class TestWireFormat:
    def test_subscription_over_real_bytes(self, wire_net):
        """The full join/deliver/count flow works when every ECMP
        message is serialized and parsed at each hop."""
        net = wire_net
        src, ch = make_channel(net, "h0_0_0")
        got = []
        net.host("h1_0_0").subscribe(ch, on_data=got.append)
        net.settle()
        src.send(ch)
        net.settle()
        assert len(got) == 1
        result = src.count_query(ch, timeout=5.0)
        net.settle(6.0)
        assert result.count == 1

    def test_auth_over_real_bytes(self, wire_net):
        from repro import make_key
        from repro.core.keys import ChannelKey

        net = wire_net
        src, ch = make_channel(net, "h0_0_0")
        key = make_key(ch)
        src.channel_key(ch, key)
        good = net.host("h1_0_0").subscribe(ch, key=key)
        bad = net.host("h2_0_0").subscribe(ch, key=ChannelKey(b"badbadba"))
        net.settle()
        assert good.status == "active"
        assert bad.status == "denied"

    def test_wire_and_object_modes_build_same_tree(self):
        def tree_for(wire_format):
            topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
            net = ExpressNetwork(topo, wire_format=wire_format)
            net.run(until=0.01)
            src, ch = make_channel(net, "h0_0_0")
            for member in ("h1_0_0", "h2_1_1"):
                net.host(member).subscribe(ch)
            net.settle()
            return net.tree_edges(ch)

        assert tree_for(True) == tree_for(False)

    def test_undecodable_bytes_counted(self, wire_net):
        from repro.netsim.packet import Packet

        net = wire_net
        hub = net.topo.node("t0")
        agent = net.ecmp_agents["t0"]
        garbage = Packet(
            src=net.topo.node("t1").address,
            dst=hub.address,
            proto="ecmp",
            payload=b"\xff\xfftruncated",
        )
        ifindex = hub.interface_to(net.topo.node("t1")).index
        agent.handle_packet(garbage, ifindex)
        assert agent.stats.get("undecodable_messages") == 1


class TestNeighborLiveness:
    def test_keepalive_probes_flow(self, isp_net):
        """§3.3: routers periodically probe neighbors with the reserved
        neighbors countId; replies refresh liveness."""
        net = isp_net
        net.run(until=EcmpAgent.KEEPALIVE_INTERVAL * 2 + 5)
        agent = net.ecmp_agents["t0"]
        assert agent.stats.get("keepalives_tx") > 0
        # Every physical neighbor has been heard from.
        for neighbor in net.topo.node("t0").neighbors():
            assert neighbor.name in agent.neighbor_last_heard

    def test_discovery_channel_is_well_known(self):
        """Footnote 5: ECMP's own multicast uses a well-known localhost
        source and ECMP group."""
        from repro.inet.addr import format_address

        assert format_address(DISCOVERY_CHANNEL.source) == "127.0.0.1"
        assert format_address(DISCOVERY_CHANNEL.group) == "232.0.0.255"

    def test_silence_alone_does_not_fail_live_neighbor(self, isp_net):
        """A neighbor whose link is up is not declared dead just for
        being quiet between keepalives."""
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        net.run(until=net.sim.now + EcmpAgent.KEEPALIVE_INTERVAL * 5)
        # The subscription survives long idle periods (TCP mode needs
        # no per-channel refresh — §3.2).
        assert net.ecmp_agents["h0_0_0"].subscriber_count_estimate(ch) == 1
        got = []
        net.ecmp_agents["h1_0_0"].subscriptions[ch].on_data = got.append
        src.send(ch)
        net.settle()
        assert len(got) == 1

    def test_tcp_mode_sends_no_per_channel_refresh(self, isp_net):
        """§5.3: "With TCP operation, it is not necessary to send a
        periodic refresh for long-lived channels." Control traffic over
        a long idle period is keepalives only — independent of the
        number of channels."""
        net = isp_net
        src = net.source("h0_0_0")
        channels = [src.allocate_channel() for _ in range(20)]
        for ch in channels:
            net.host("h1_0_0").subscribe(ch)
        net.settle()
        stats_before = net.control_stats_total()
        net.run(until=net.sim.now + 120)
        stats_after = net.control_stats_total()
        counts_sent = stats_after.get("tx_count", 0) - stats_before.get("tx_count", 0)
        keepalives = stats_after.get("keepalives_tx", 0) - stats_before.get(
            "keepalives_tx", 0
        )
        # Keepalive replies are Counts on the discovery channel; no
        # per-channel refresh means counts_sent tracks keepalives, not
        # 20 channels x refresh rounds.
        assert counts_sent <= keepalives + 5
        assert keepalives > 0
