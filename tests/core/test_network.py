"""Tests for the ExpressNetwork facade and the ECMP state accounting."""

import pytest

from repro import CountPropagation, ExpressNetwork, TopologyBuilder
from repro.core.ecmp.state import (
    LOCAL,
    ChannelState,
    DownstreamRecord,
    management_state_bytes,
    paper_model_channel_bytes,
)
from repro.core.channel import Channel
from repro.errors import TopologyError
from tests.conftest import make_channel


class TestFacade:
    def test_auto_host_detection(self):
        topo = TopologyBuilder.isp(n_transit=2, stubs_per_transit=1, hosts_per_stub=2)
        net = ExpressNetwork(topo)
        assert net.host_names == {"h0_0_0", "h0_0_1", "h1_0_0", "h1_0_1"}

    def test_explicit_hosts_validated(self):
        topo = TopologyBuilder.star(2)
        with pytest.raises(TopologyError):
            ExpressNetwork(topo, hosts=["nope"])

    def test_source_handle_is_cached_and_upgrades_host_handle(self, line_net):
        net = line_net
        host_handle = net.host("hsrc")
        source_handle = net.source("hsrc")
        assert net.source("hsrc") is source_handle
        # Allocator state must persist across lookups.
        ch = source_handle.allocate_channel()
        assert ch in net.source("hsrc").allocator

    def test_settle_advances_clock(self, line_net):
        before = line_net.sim.now
        line_net.settle(2.5)
        assert line_net.sim.now == pytest.approx(before + 2.5)

    def test_subscriber_hosts_listing(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.host("h2_0_0").subscribe(ch)
        net.settle()
        assert net.subscriber_hosts(ch) == ["h1_0_0", "h2_0_0"]

    def test_control_stats_aggregate(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        totals = net.control_stats_total()
        assert totals.get("subscribe_events", 0) >= 1
        assert totals.get("bytes_tx", 0) > 0

    def test_nodes_on_tree_empty_for_unknown_channel(self, isp_net):
        ch = Channel.of(0x0A0A0A0A, 5)
        assert isp_net.nodes_on_tree(ch) == set()


class TestStateAccounting:
    def test_paper_model_is_200_bytes(self):
        """§5.2's worked example totals 200 bytes per channel."""
        assert paper_model_channel_bytes() == 200
        assert paper_model_channel_bytes(authenticated=False) == 192

    def test_live_state_accounting_matches_shape(self):
        state = ChannelState(channel=Channel.of(0x0A000001, 1), upstream="up")
        state.downstream["a"] = DownstreamRecord(count=3)
        state.downstream["b"] = DownstreamRecord(count=2)
        # fanout 2 + upstream = 3 records; 2 outstanding counts.
        assert management_state_bytes(state, outstanding_counts=2, authenticated=True) == 200

    def test_root_state_has_no_upstream_record(self):
        state = ChannelState(channel=Channel.of(0x0A000001, 1), upstream=None)
        state.downstream["a"] = DownstreamRecord(count=1)
        assert management_state_bytes(state) == 32

    def test_channel_state_helpers(self):
        state = ChannelState(channel=Channel.of(0x0A000001, 1), upstream="up")
        state.downstream[LOCAL] = DownstreamRecord(count=1)
        state.downstream["r2"] = DownstreamRecord(count=4)
        state.downstream["r3"] = DownstreamRecord(count=0)
        assert state.total() == 5
        assert state.has_downstream()
        assert state.downstream_links() == 1  # LOCAL and zero-count excluded

    def test_unvalidated_listing(self):
        state = ChannelState(channel=Channel.of(0x0A000001, 1))
        state.downstream["a"] = DownstreamRecord(count=1, validated=False)
        state.downstream["b"] = DownstreamRecord(count=1)
        assert state.unvalidated() == ["a"]

    def test_validated_only_total(self):
        state = ChannelState(channel=Channel.of(0x0A000001, 1))
        state.downstream["a"] = DownstreamRecord(count=2, validated=False)
        state.downstream["b"] = DownstreamRecord(count=3)
        assert state.total(validated_only=True) == 3
        assert state.total(validated_only=False) == 5
