"""Route-stability behaviour: hysteresis under metric flapping, and
re-homing onto newly provisioned links."""

import pytest

from repro import ExpressNetwork
from repro.netsim.topology import Topology
from tests.conftest import make_channel


def build_diamond(hysteresis=None):
    topo = Topology()
    for name in ("a", "b", "c", "d"):
        topo.add_node(name)
    topo.add_node("hsrc")
    topo.add_node("hsub")
    topo.add_link("hsrc", "a", delay=0.001)
    topo.add_link("a", "b", delay=0.001)
    topo.add_link("a", "c", delay=0.004)
    topo.add_link("b", "d", delay=0.001)
    topo.add_link("c", "d", delay=0.004)
    topo.add_link("d", "hsub", delay=0.001)
    net = ExpressNetwork(topo, hosts=["hsrc", "hsub"])
    if hysteresis is not None:
        for agent in net.ecmp_agents.values():
            agent.HYSTERESIS = hysteresis
    net.run(until=0.01)
    return net


def flap(net, cycles):
    """Alternate the a-b link metric so the best path keeps changing."""
    link = net.topo.link_between("a", "b")
    for _ in range(cycles):
        link.delay = 0.050  # c-path now better
        net.routing.recompute()
        for agent in net.ecmp_agents.values():
            agent.reevaluate_upstreams()
        net.settle(0.2)
        link.delay = 0.001  # b-path better again
        net.routing.recompute()
        for agent in net.ecmp_agents.values():
            agent.reevaluate_upstreams()
        net.settle(0.2)


class TestHysteresis:
    def test_hysteresis_damps_route_flapping(self):
        """§3.2: "Hysteresis is applied to prevent route oscillation."
        Under a flapping metric, the damped router re-homes far fewer
        times than an undamped one."""
        def churn_count(hysteresis):
            net = build_diamond(hysteresis=hysteresis)
            src, ch = make_channel(net, "hsrc")
            net.host("hsub").subscribe(ch)
            net.settle()
            flap(net, cycles=6)
            return net.ecmp_agents["d"].stats.get("upstream_changes")

        damped = churn_count(hysteresis=60.0)
        undamped = churn_count(hysteresis=0.0)
        assert undamped >= 6
        assert damped <= 1

    def test_delivery_correct_throughout_flapping(self):
        net = build_diamond(hysteresis=5.0)
        src, ch = make_channel(net, "hsrc")
        got = []
        net.host("hsub").subscribe(ch, on_data=got.append)
        net.settle()
        flap(net, cycles=3)
        net.settle(10.0)
        src.send(ch)
        net.settle()
        assert len(got) == 1


class TestProvisioning:
    def test_new_link_adopted_after_recompute(self):
        """Provisioning a shortcut link mid-run: after the operator
        triggers an SPF recompute, trees re-home onto the better path
        (once hysteresis allows)."""
        net = build_diamond()
        src, ch = make_channel(net, "hsrc")
        got = []
        net.host("hsub").subscribe(ch, on_data=got.append)
        net.settle()
        assert "b" in net.nodes_on_tree(ch)
        # Provision a direct a-d link, much faster than either branch.
        net.topo.add_link("a", "d", delay=0.0001)
        net.routing.recompute()
        for agent in net.ecmp_agents.values():
            agent.reevaluate_upstreams()
        net.settle(10.0)  # hysteresis dwell
        for agent in net.ecmp_agents.values():
            agent.reevaluate_upstreams()
        net.settle(1.0)
        assert net.ecmp_agents["d"].channels[ch].upstream == "a"
        assert "b" not in net.nodes_on_tree(ch)
        src.send(ch)
        net.settle()
        assert len(got) == 1
