"""The vectorized accounting layer: banks, delivery views, link flush.

The load-bearing property is *equivalence*: deferred, batch-applied
counters must land on exactly the values the old per-packet dict
increments produced, on the numpy fancy-indexed path, on the scalar
loop under ``VECTOR_MIN`` rows, and with numpy absent entirely
(``REPRO_NO_NUMPY=1``). The hypothesis tests drive random pend/flush
interleavings against a plain-dict oracle.
"""

from __future__ import annotations

import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.accounting as accounting
from repro.core.accounting import (
    BLOCK_BANK,
    LINK_COLUMNS,
    VECTOR_MIN,
    CounterBank,
    DeliveryView,
    LinkAccounting,
    flush_agent_views,
    link_accounting,
)


class TestCounterBank:
    def test_add_row_and_basic_ops(self):
        bank = CounterBank(("a", "b"), capacity=4)
        row = bank.add_row()
        assert row == 0
        assert bank.rows == 1
        bank.inc("a", row, 3)
        bank.inc("a", row)
        bank.set("b", row, 7)
        assert bank.get("a", row) == 4
        assert bank.row_values(row) == {"a": 4, "b": 7}

    def test_intern_is_stable_per_key(self):
        bank = CounterBank(("hits",), capacity=4)
        first = bank.intern("link-1")
        second = bank.intern("link-2")
        assert first != second
        assert bank.intern("link-1") == first
        assert bank.rows == 2

    def test_growth_preserves_values(self):
        bank = CounterBank(("c",), capacity=2)
        for i in range(2):
            bank.inc("c", bank.add_row(), i + 1)
        before = bank.column("c")
        # Third row forces a doubling; earlier values must survive.
        bank.add_row()
        if accounting.np is not None:
            # numpy growth swaps the array in, so callers must re-fetch
            # columns after add_row (the list fallback grows in place).
            assert bank.column("c") is not before
        assert len(bank.column("c")) == 4
        assert [bank.get("c", i) for i in range(3)] == [1, 2, 0]

    def test_stats_reports_backend(self):
        bank = CounterBank(("x",))
        stats = bank.stats()
        assert stats["rows"] == 0
        assert stats["columns"] == ["x"]
        assert stats["vectorized"] == (accounting.np is not None)


class FakeStats:
    """Stand-in for the forwarder's stats bag (``incr`` protocol)."""

    def __init__(self):
        self.counts: dict = {}

    def incr(self, key, amount=1):
        self.counts[key] = self.counts.get(key, 0) + amount


class FakeBlock:
    def __init__(self, channel, members):
        self._row = BLOCK_BANK.add_row()
        self.members = {channel: members}


class FakeAgent:
    def __init__(self, channel, blocks):
        self.channel_blocks = {channel: list(blocks)}
        self.blocks_version = 0
        self._delivery_views: dict = {}


def make_view(n_blocks, member_counts):
    channel = "ch"
    blocks = [FakeBlock(channel, member_counts[i]) for i in range(n_blocks)]
    agent = FakeAgent(channel, blocks)
    view = DeliveryView(agent, channel, FakeStats())
    view.refresh()
    return view, blocks


class TestDeliveryView:
    @settings(max_examples=30, deadline=None)
    @given(
        n_blocks=st.integers(min_value=1, max_value=VECTOR_MIN * 2),
        packets=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=9),
                st.integers(min_value=0, max_value=1500),
            ),
            min_size=0,
            max_size=20,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_flush_matches_per_packet_dict_oracle(self, n_blocks, packets, seed):
        """Batched flush == per-packet dict increments, on whichever
        path (scalar under VECTOR_MIN, fancy-indexed at or above it)
        the row count selects.
        """
        member_counts = [(seed + 3 * i) % 5 + 1 for i in range(n_blocks)]
        view, blocks = make_view(n_blocks, member_counts)
        oracle = {
            id(b): {"packets_seen": 0, "deliveries": 0, "bytes_delivered": 0}
            for b in blocks
        }
        oracle_stats = FakeStats()
        for count, nbytes in packets:
            view.pending_packets += count
            view.pending_bytes += count * nbytes
            for block in blocks:
                m = block.members["ch"]
                row = oracle[id(block)]
                row["packets_seen"] += count
                row["deliveries"] += m * count
                row["bytes_delivered"] += m * count * nbytes
            oracle_stats.incr("block_deliveries", view.members_sum * count)
            oracle_stats.incr("block_packets", count)
        view.flush()
        view.flush()  # second flush must be a no-op
        for block in blocks:
            assert BLOCK_BANK.row_values(block._row) == oracle[id(block)]
        if packets:
            assert view.stats.counts == oracle_stats.counts
        assert view.pending_packets == 0
        assert view.pending_bytes == 0

    def test_refresh_freezes_membership(self):
        view, blocks = make_view(3, [2, 1, 4])
        assert view.members_sum == 7
        assert len(view.blocks) == 3
        assert view.version == 0
        # Membership changes after refresh are invisible until the next
        # refresh — the frozen counts are the equivalence contract.
        blocks[0].members["ch"] = 99
        view.pending_packets = 1
        view.flush()
        assert BLOCK_BANK.get("deliveries", blocks[0]._row) == 2
        view.refresh()
        assert view.members_sum == 99 + 1 + 4

    def test_flush_agent_views_skips_idle_views(self):
        view, _ = make_view(2, [1, 1])
        idle_view, _ = make_view(2, [1, 1])
        agent = view.agent
        agent._delivery_views = {"ch": view, "other": idle_view}
        view.pending_packets = 2
        flush_agent_views(agent)
        assert view.pending_packets == 0
        assert view.stats.counts["block_packets"] == 2
        assert idle_view.stats.counts == {}

    def test_scalar_path_without_numpy(self, monkeypatch):
        """With ``np`` gone the view falls back to list vectors and the
        scalar flush loop — same numbers, even above VECTOR_MIN rows.
        """
        monkeypatch.setattr(accounting, "np", None)
        n = VECTOR_MIN + 2
        view, blocks = make_view(n, [2] * n)
        assert isinstance(view.rows, list)
        view.pending_packets = 3
        view.pending_bytes = 300
        view.flush()
        for block in blocks:
            assert BLOCK_BANK.row_values(block._row) == {
                "packets_seen": 3,
                "deliveries": 6,
                "bytes_delivered": 600,
            }
        bank = CounterBank(("k",), capacity=2)
        bank.inc("k", bank.add_row(), 5)
        bank.add_row()
        bank.add_row()  # growth on the list backend
        assert isinstance(bank.column("k"), list)
        assert bank.get("k", 0) == 5
        assert bank.stats()["vectorized"] is False


class FakeCounter:
    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class FakeRegistry:
    def __init__(self):
        self.collectors: list = []

    def register_collector(self, fn):
        self.collectors.append(fn)

    def collect(self):
        for fn in self.collectors:
            fn()


class FakeLinkMetrics:
    """Duck-typed LinkMetrics: pending-integer attrs + take_pending."""

    def __init__(self, link, acct):
        self.link = link
        self._c_packets = FakeCounter()
        self._c_lost = FakeCounter()
        self._c_ecmp_packets = FakeCounter()
        self._c_ecmp_bytes = FakeCounter()
        self.pending = None
        self.row = acct.attach(self)

    def take_pending(self):
        pending, self.pending = self.pending, None
        return pending


class TestLinkAccounting:
    def test_flush_folds_pending_into_bank_and_counters(self):
        registry = FakeRegistry()
        acct = LinkAccounting(registry)
        a = FakeLinkMetrics("a->b", acct)
        b = FakeLinkMetrics("b->c", acct)
        assert a.row != b.row
        a.pending = (5, 1, 2, 2048)
        registry.collect()
        assert acct.bank.row_values(a.row) == dict(
            zip(LINK_COLUMNS, (5, 1, 2, 2048))
        )
        assert acct.bank.row_values(b.row) == dict(zip(LINK_COLUMNS, (0,) * 4))
        assert a._c_packets.value == 5
        assert a._c_lost.value == 1
        assert a._c_ecmp_bytes.value == 2048
        # Second collect with nothing pending changes nothing.
        registry.collect()
        assert a._c_packets.value == 5
        a.pending = (1, 0, 0, 0)
        registry.collect()
        assert acct.bank.get("packets", a.row) == 6
        assert a._c_lost.value == 1  # zero fields stay untouched

    def test_link_accounting_caches_per_registry(self):
        registry = FakeRegistry()
        first = link_accounting(registry)
        assert link_accounting(registry) is first
        assert len(registry.collectors) == 1


def test_repro_no_numpy_env_gate():
    """``REPRO_NO_NUMPY=1`` disables numpy at import time (the in-proc
    monkeypatch above can't cover the env gate itself)."""
    env = dict(os.environ, REPRO_NO_NUMPY="1", PYTHONPATH="src")
    code = (
        "import repro.core.accounting as acc\n"
        "assert acc.np is None\n"
        "assert acc.BLOCK_BANK.stats()['vectorized'] is False\n"
        "bank = acc.CounterBank(('x',))\n"
        "bank.inc('x', bank.add_row(), 4)\n"
        "assert bank.get('x', 0) == 4\n"
        "print('ok')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"
