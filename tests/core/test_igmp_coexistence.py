"""§3.6: "ECMP is implemented on top of UDP and TCP, and so can be
deployed on an end system host that supports IP multicast without
changing the host operating system. Hosts can continue to use IGMP for
the rest of the class D address space."

One host runs both stacks simultaneously: ECMP subscriptions for 232/8
channels and IGMP membership for a conventional 224/4 group.
"""

import pytest

from repro import ExpressNetwork, TopologyBuilder
from repro.inet.addr import parse_address
from repro.inet.igmp import IgmpHostAgent, IgmpRouterAgent
from tests.conftest import make_channel

LEGACY_GROUP = parse_address("239.1.2.3")


@pytest.fixture
def dual_stack_net():
    """An ExpressNetwork whose edge also runs IGMP."""
    topo = TopologyBuilder.isp(n_transit=2, stubs_per_transit=1, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    # Add IGMP alongside ECMP: querier on the edge router, host agent
    # on a subscriber host. Protocol dispatch is per-proto, so the
    # agents coexist on the same nodes.
    querier = IgmpRouterAgent(topo.node("e0_0"))
    topo.node("e0_0").register_agent("igmp", querier)
    host_igmp = IgmpHostAgent(topo.node("h0_0_0"))
    topo.node("h0_0_0").register_agent("igmp", host_igmp)
    net.run(until=0.1)
    return net, querier, host_igmp


class TestCoexistence:
    def test_both_memberships_on_one_host(self, dual_stack_net):
        net, querier, host_igmp = dual_stack_net
        # EXPRESS subscription in 232/8...
        src, channel = make_channel(net, "h1_0_0")
        got = []
        net.host("h0_0_0").subscribe(channel, on_data=got.append)
        # ...and IGMP membership in the administratively-scoped range.
        host_igmp.join(LEGACY_GROUP)
        net.settle(2.0)

        assert querier.has_members(LEGACY_GROUP)
        src.send(channel)
        net.settle()
        assert len(got) == 1

    def test_igmp_leave_does_not_disturb_channel(self, dual_stack_net):
        net, querier, host_igmp = dual_stack_net
        src, channel = make_channel(net, "h1_0_0")
        got = []
        net.host("h0_0_0").subscribe(channel, on_data=got.append)
        host_igmp.join(LEGACY_GROUP)
        net.settle(2.0)
        host_igmp.leave(LEGACY_GROUP)
        net.settle(10.0)
        assert not querier.has_members(LEGACY_GROUP)
        src.send(channel)
        net.settle()
        assert len(got) == 1

    def test_channel_unsubscribe_does_not_disturb_igmp(self, dual_stack_net):
        net, querier, host_igmp = dual_stack_net
        src, channel = make_channel(net, "h1_0_0")
        net.host("h0_0_0").subscribe(channel)
        host_igmp.join(LEGACY_GROUP)
        net.settle(2.0)
        net.host("h0_0_0").unsubscribe(channel)
        net.settle(2.0)
        assert querier.has_members(LEGACY_GROUP)
        assert host_igmp.is_member(LEGACY_GROUP)
