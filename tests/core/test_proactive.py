"""Unit tests for the proactive-counting tolerance curve and counter."""

import pytest

from repro.core.proactive import ProactiveCounter, ToleranceCurve, relative_error
from repro.errors import ProtocolError


class TestToleranceCurve:
    def test_clamped_at_e_max_near_zero(self):
        curve = ToleranceCurve(e_max=0.3, alpha=4.0, tau=120.0)
        assert curve.tolerance(0.0) == 0.3
        assert curve.tolerance(1e-9) == 0.3

    def test_zero_at_and_beyond_tau(self):
        """τ is the x-intercept: "the maximum delay until any change is
        transmitted upstream"."""
        curve = ToleranceCurve(e_max=0.3, alpha=4.0, tau=120.0)
        assert curve.tolerance(120.0) == 0.0
        assert curve.tolerance(500.0) == 0.0

    def test_monotone_non_increasing(self):
        curve = ToleranceCurve(e_max=0.5, alpha=2.5, tau=120.0)
        samples = [curve.tolerance(dt) for dt in range(0, 130, 5)]
        assert all(a >= b for a, b in zip(samples, samples[1:]))

    def test_alpha_controls_decay_not_e_max(self):
        """Figure 7: α changes the decay rate, not the clamp."""
        fast = ToleranceCurve(e_max=0.3, alpha=4.0, tau=120.0)
        slow = ToleranceCurve(e_max=0.3, alpha=2.5, tau=120.0)
        assert fast.tolerance(0.0) == slow.tolerance(0.0) == 0.3
        assert fast.tolerance(60.0) < slow.tolerance(60.0)

    def test_deadline_inverts_tolerance(self):
        curve = ToleranceCurve(e_max=0.3, alpha=4.0, tau=120.0)
        for error in (0.05, 0.1, 0.2, 0.29):
            dt = curve.deadline_for_error(error)
            assert curve.tolerance(dt) == pytest.approx(error, abs=1e-9)

    def test_deadline_for_large_error_is_clamp_end(self):
        curve = ToleranceCurve(e_max=0.3, alpha=4.0, tau=120.0)
        import math
        assert curve.deadline_for_error(5.0) == pytest.approx(120 * math.exp(-1.2))

    def test_deadline_for_zero_error_is_tau(self):
        curve = ToleranceCurve(tau=120.0)
        assert curve.deadline_for_error(0.0) == 120.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ProtocolError):
            ToleranceCurve(e_max=0.0)
        with pytest.raises(ProtocolError):
            ToleranceCurve(alpha=-1.0)
        with pytest.raises(ProtocolError):
            ToleranceCurve(tau=0.0)


class TestRelativeError:
    def test_no_change_is_zero(self):
        assert relative_error(5, 5) == 0.0

    def test_paper_formula_max_of_both_ratios(self):
        # |Δ|/c_adv = 5/10, |Δ|/c_cur = 5/15 -> max is 0.5
        assert relative_error(15, 10) == 0.5
        assert relative_error(10, 15) == 0.5

    def test_transition_from_zero_is_full_scale(self):
        assert relative_error(1, 0) == 1.0
        assert relative_error(0, 1) == 1.0

    def test_burst_can_exceed_one(self):
        assert relative_error(10, 1) == 9.0


class TestProactiveCounter:
    def test_no_send_when_unchanged(self):
        counter = ProactiveCounter(ToleranceCurve(), now=0.0)
        counter.observe(0)
        assert not counter.should_send(10.0)
        assert counter.next_check_delay(10.0) is None

    def test_large_change_sends_immediately(self):
        counter = ProactiveCounter(ToleranceCurve(e_max=0.3), now=0.0)
        counter.observe(100)
        assert counter.should_send(0.001)

    def test_small_change_waits_for_curve(self):
        curve = ToleranceCurve(e_max=0.3, alpha=4.0, tau=120.0)
        counter = ProactiveCounter(curve, now=0.0)
        counter.sent(0.0)
        counter.advertised = 100
        counter.observe(105)  # 5% error
        assert not counter.should_send(1.0)
        deadline = curve.deadline_for_error(counter.error())
        assert counter.should_send(deadline + 0.1)
        # next_check_delay points at the crossing.
        assert counter.next_check_delay(1.0) == pytest.approx(deadline - 1.0)

    def test_any_change_sent_within_tau(self):
        """The τ guarantee: even a one-subscriber change on a huge
        channel goes upstream within τ."""
        curve = ToleranceCurve(tau=120.0)
        counter = ProactiveCounter(curve, now=0.0)
        counter.advertised = 10**6
        counter.observe(10**6 + 1)
        assert counter.should_send(120.1)

    def test_sent_resets_error(self):
        counter = ProactiveCounter(ToleranceCurve(), now=0.0)
        counter.observe(50)
        assert counter.sent(1.0) == 50
        assert counter.error() == 0.0
        assert counter.updates_sent == 1
