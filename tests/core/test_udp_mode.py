"""Integration tests: UDP-mode ECMP at the edge (§3.2-3.3).

"For UDP operation, the upstream router periodically multicasts a
CountQuery request, analogous to an IGMP query, causing all the UDP
neighbors to respond with Count messages ... A UDP neighbor
unsubscribes by sending a zero Count message, causing the upstream
router to decrement its sum and re-issue a CountQuery on that interface
(like IGMPv2). Unlike IGMPv2, but like the proposed IGMPv3, there is no
report suppression."
"""

import pytest

from repro import ExpressNetwork, NeighborMode, TopologyBuilder
from repro.core.ecmp.protocol import EcmpAgent
from tests.conftest import make_channel


@pytest.fixture
def edge_net():
    """Star with UDP mode between the hub router and its leaf hosts."""
    topo = TopologyBuilder.star(5)
    net = ExpressNetwork(
        topo, hosts=[f"leaf{i}" for i in range(5)], edge_udp=True
    )
    net.run(until=0.01)
    return net


class TestUdpMode:
    def test_subscription_works_over_udp(self, edge_net):
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        got = []
        net.host("leaf1").subscribe(ch, on_data=got.append)
        net.settle()
        src.send(ch)
        net.settle()
        assert len(got) == 1

    def test_udp_records_flagged(self, edge_net):
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()
        state = net.ecmp_agents["hub"].channels[ch]
        assert state.downstream["leaf1"].udp

    def test_periodic_general_query_refreshes_state(self, edge_net):
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()
        state = net.ecmp_agents["hub"].channels[ch]
        stamp = state.downstream["leaf1"].updated_at
        # Run past a UDP query interval: the host's refresh bumps the
        # record timestamp.
        net.run(until=net.sim.now + EcmpAgent.UDP_QUERY_INTERVAL + 5)
        assert state.downstream["leaf1"].updated_at > stamp

    def test_soft_state_expires_for_silent_neighbor(self, edge_net):
        """A UDP neighbor that vanishes without a zero Count ages out
        after robustness x query-interval."""
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()
        # Silence the host: wipe its state so it ignores queries, but
        # keep the link up (no TCP-style failure signal).
        leaf = net.ecmp_agents["leaf1"]
        leaf.subscriptions.clear()
        leaf.channels.clear()
        horizon = (EcmpAgent.UDP_ROBUSTNESS + 1) * EcmpAgent.UDP_QUERY_INTERVAL + 10
        net.run(until=net.sim.now + horizon)
        hub = net.ecmp_agents["hub"]
        assert hub.subscriber_count_estimate(ch) == 0
        assert hub.stats.get("udp_expirations") >= 1

    def test_zero_count_triggers_requery(self, edge_net):
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()
        queries_before = net.ecmp_agents["leaf1"].stats.get("queries_rx")
        net.host("leaf1").unsubscribe(ch)
        net.settle()
        # Hub re-issued a CountQuery toward the leaving interface.
        assert net.ecmp_agents["leaf1"].stats.get("queries_rx") > queries_before

    def test_no_report_suppression(self, edge_net):
        """Each UDP neighbor answers the general query itself."""
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        for i in (1, 2, 3):
            net.host(f"leaf{i}").subscribe(ch)
        net.settle()
        hub = net.ecmp_agents["hub"]
        rx_before = hub.stats.get("counts_rx")
        net.run(until=net.sim.now + EcmpAgent.UDP_QUERY_INTERVAL + 5)
        # All three subscribers re-reported (plus possible churn noise).
        assert hub.stats.get("counts_rx") - rx_before >= 3

    def test_lossy_edge_recovers_via_refresh(self):
        """UDP state survives message loss: periodic refresh repairs a
        lost leave/join eventually."""
        topo = TopologyBuilder.star(3)
        for link in topo.links:
            link.loss = 0.3
        net = ExpressNetwork(topo, hosts=["leaf0", "leaf1", "leaf2"], edge_udp=True)
        net.run(until=0.01)
        src, ch = make_channel(net, "leaf0")
        got = []
        net.host("leaf1").subscribe(ch, on_data=got.append)
        # Several query cycles: even if the first join is lost, the
        # refresh re-announces it.
        net.run(until=net.sim.now + 3 * EcmpAgent.UDP_QUERY_INTERVAL)
        delivered = 0
        for _ in range(20):
            src.send(ch)
        net.settle()
        assert len(got) > 0
