"""Integration tests: UDP-mode ECMP at the edge (§3.2-3.3).

"For UDP operation, the upstream router periodically multicasts a
CountQuery request, analogous to an IGMP query, causing all the UDP
neighbors to respond with Count messages ... A UDP neighbor
unsubscribes by sending a zero Count message, causing the upstream
router to decrement its sum and re-issue a CountQuery on that interface
(like IGMPv2). Unlike IGMPv2, but like the proposed IGMPv3, there is no
report suppression."
"""

import pytest

from repro import ExpressNetwork, NeighborMode, TopologyBuilder
from repro.core.ecmp.protocol import EcmpAgent
from tests.conftest import make_channel


@pytest.fixture
def edge_net():
    """Star with UDP mode between the hub router and its leaf hosts."""
    topo = TopologyBuilder.star(5)
    net = ExpressNetwork(
        topo, hosts=[f"leaf{i}" for i in range(5)], edge_udp=True
    )
    net.run(until=0.01)
    return net


class TestUdpMode:
    def test_subscription_works_over_udp(self, edge_net):
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        got = []
        net.host("leaf1").subscribe(ch, on_data=got.append)
        net.settle()
        src.send(ch)
        net.settle()
        assert len(got) == 1

    def test_udp_records_flagged(self, edge_net):
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()
        state = net.ecmp_agents["hub"].channels[ch]
        assert state.downstream["leaf1"].udp

    def test_periodic_general_query_refreshes_state(self, edge_net):
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()
        state = net.ecmp_agents["hub"].channels[ch]
        stamp = state.downstream["leaf1"].updated_at
        # Run past a UDP query interval: the host's refresh bumps the
        # record timestamp.
        net.run(until=net.sim.now + EcmpAgent.UDP_QUERY_INTERVAL + 5)
        assert state.downstream["leaf1"].updated_at > stamp

    def test_soft_state_expires_for_silent_neighbor(self, edge_net):
        """A UDP neighbor that vanishes without a zero Count ages out
        after robustness x query-interval."""
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()
        # Silence the host: wipe its state so it ignores queries, but
        # keep the link up (no TCP-style failure signal).
        leaf = net.ecmp_agents["leaf1"]
        leaf.subscriptions.clear()
        leaf.channels.clear()
        horizon = (EcmpAgent.UDP_ROBUSTNESS + 1) * EcmpAgent.UDP_QUERY_INTERVAL + 10
        net.run(until=net.sim.now + horizon)
        hub = net.ecmp_agents["hub"]
        assert hub.subscriber_count_estimate(ch) == 0
        assert hub.stats.get("udp_expirations") >= 1

    def test_zero_count_triggers_requery(self, edge_net):
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()
        queries_before = net.ecmp_agents["leaf1"].stats.get("queries_rx")
        net.host("leaf1").unsubscribe(ch)
        net.settle()
        # Hub re-issued a CountQuery toward the leaving interface.
        assert net.ecmp_agents["leaf1"].stats.get("queries_rx") > queries_before

    def test_leave_requery_is_channel_specific_with_full_timeout(self, edge_net):
        """The IGMPv2-style last-member re-query names the channel that
        was left and starts from the full query-interval budget."""
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()

        leaf = net.ecmp_agents["leaf1"]
        seen = []
        original = leaf._handle_query

        def spy(query, from_name):
            seen.append(query)
            return original(query, from_name)

        leaf._handle_query = spy
        net.host("leaf1").unsubscribe(ch)
        net.settle()

        requeries = [q for q in seen if q.channel == ch]
        assert requeries, seen
        # The hub originates the re-query with the full query-interval
        # budget (decrements happen at forwarding routers, and the leaf
        # is one hop away).
        assert requeries[0].timeout == EcmpAgent.UDP_QUERY_INTERVAL

    def test_requery_restores_state_after_spurious_leave(self, edge_net):
        """The point of the IGMPv2-style re-query: a zero Count that
        does not reflect the interface's true membership (a stale or
        raced leave) is repaired — the re-query makes the still-
        subscribed neighbor re-report, and the branch comes back."""
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        got = []
        net.host("leaf1").subscribe(ch, on_data=got.append)
        net.settle()
        hub = net.ecmp_agents["hub"]
        assert hub.subscriber_count_estimate(ch) == 1

        # Inject a spurious zero Count for leaf1's interface while
        # leaf1 is in fact still subscribed.
        hub._apply_subscriber_count(ch, "leaf1", 0)
        net.settle()

        # The re-query re-learned the subscriber and the tree healed:
        # the record is back and data still reaches leaf1.
        assert hub.subscriber_count_estimate(ch) == 1
        src.send(ch)
        net.settle()
        assert len(got) == 1

    def test_state_survives_one_missed_query_round(self, edge_net):
        """Robustness: soft state must outlive a single lost refresh —
        expiry requires UDP_ROBUSTNESS (=2) silent intervals."""
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.settle()
        leaf = net.ecmp_agents["leaf1"]
        hub = net.ecmp_agents["hub"]

        # Silence the leaf for a bit more than one query interval, then
        # restore it before the robustness horizon.
        saved_subs = dict(leaf.subscriptions)
        saved_channels = dict(leaf.channels)
        leaf.subscriptions.clear()
        leaf.channels.clear()
        net.run(until=net.sim.now + 1.5 * EcmpAgent.UDP_QUERY_INTERVAL)
        assert hub.subscriber_count_estimate(ch) == 1
        assert hub.stats.get("udp_expirations") == 0

        leaf.subscriptions.update(saved_subs)
        leaf.channels.update(saved_channels)
        net.run(until=net.sim.now + EcmpAgent.UDP_QUERY_INTERVAL + 5)
        # The next general-query round refreshed the record: no expiry.
        assert hub.subscriber_count_estimate(ch) == 1
        assert hub.stats.get("udp_expirations") == 0

    def test_hop_by_hop_timeout_decrement(self, line_net):
        """§3.1: each forwarding router shaves 2x the measured RTT to
        its parent off the query timeout before passing it on, so
        children report before their parents."""
        from repro.core.counting import TIMEOUT_RTT_MULTIPLE

        net = line_net
        src, ch = make_channel(net, "hsrc")
        net.host("hsub").subscribe(ch)
        net.settle()

        leaf = net.ecmp_agents["hsub"]
        seen = []
        original = leaf._handle_query

        def spy(query, from_name):
            seen.append(query)
            return original(query, from_name)

        leaf._handle_query = spy
        net.ecmp_agents["n0"].count_query(ch, count_id=0x4001, timeout=5.0)
        net.settle()

        forwarded = [q for q in seen if q.count_id == 0x4001]
        assert forwarded
        # n0 originates at 5.0s; n1 forwards after decrementing by
        # 2x its RTT to n0 (links are 1ms -> RTT 2ms -> 4ms off).
        expected = 5.0 - TIMEOUT_RTT_MULTIPLE * (2 * 0.001)
        assert forwarded[0].timeout == pytest.approx(expected, abs=1e-6)

    def test_no_report_suppression(self, edge_net):
        """Each UDP neighbor answers the general query itself."""
        net = edge_net
        src, ch = make_channel(net, "leaf0")
        for i in (1, 2, 3):
            net.host(f"leaf{i}").subscribe(ch)
        net.settle()
        hub = net.ecmp_agents["hub"]
        rx_before = hub.stats.get("counts_rx")
        net.run(until=net.sim.now + EcmpAgent.UDP_QUERY_INTERVAL + 5)
        # All three subscribers re-reported (plus possible churn noise).
        assert hub.stats.get("counts_rx") - rx_before >= 3

    def test_lossy_edge_recovers_via_refresh(self):
        """UDP state survives message loss: periodic refresh repairs a
        lost leave/join eventually."""
        topo = TopologyBuilder.star(3)
        for link in topo.links:
            link.loss = 0.3
        net = ExpressNetwork(topo, hosts=["leaf0", "leaf1", "leaf2"], edge_udp=True)
        net.run(until=0.01)
        src, ch = make_channel(net, "leaf0")
        got = []
        net.host("leaf1").subscribe(ch, on_data=got.append)
        # Several query cycles: even if the first join is lost, the
        # refresh re-announces it.
        net.run(until=net.sim.now + 3 * EcmpAgent.UDP_QUERY_INTERVAL)
        delivered = 0
        for _ in range(20):
            src.send(ch)
        net.settle()
        assert len(got) > 0
