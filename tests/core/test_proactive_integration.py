"""Integration tests: proactive counting (§6) on live networks,
including application-defined counts ("A source can request that
proactive counting be used for any countId")."""

import pytest

from repro import CountPropagation, ExpressNetwork, ToleranceCurve, TopologyBuilder
from repro.core.ecmp.countids import APPLICATION_RANGE, SUBSCRIBER_ID
from tests.conftest import make_channel

VOTE_ID = APPLICATION_RANGE.start + 3


def build_tree_net(propagation=CountPropagation.TREE_ONLY, tau=30.0):
    topo = TopologyBuilder.balanced_tree(depth=2, fanout=3)
    topo.add_node("src")
    topo.add_link("src", "r", delay=0.001)
    leaves = [f"d2_{i}" for i in range(9)]
    net = ExpressNetwork(
        topo,
        hosts=leaves + ["src"],
        propagation=propagation,
        proactive_curve=ToleranceCurve(e_max=0.3, alpha=4.0, tau=tau),
    )
    net.run(until=0.01)
    return net, leaves


class TestProactiveSubscriberCounts:
    def test_estimate_converges_within_tau(self):
        net, leaves = build_tree_net(propagation=CountPropagation.PROACTIVE, tau=30.0)
        src, ch = make_channel(net, "src")
        for leaf in leaves:
            net.host(leaf).subscribe(ch)
        # Within tau of quiescence the root estimate is exact.
        net.run(until=net.sim.now + 35.0)
        assert net.ecmp_agents["src"].subscriber_count_estimate(ch) == len(leaves)

    def test_leave_burst_converges_to_zero(self):
        net, leaves = build_tree_net(propagation=CountPropagation.PROACTIVE, tau=30.0)
        src, ch = make_channel(net, "src")
        for leaf in leaves:
            net.host(leaf).subscribe(ch)
        net.run(until=net.sim.now + 35.0)
        for leaf in leaves:
            net.host(leaf).unsubscribe(ch)
        net.settle(5.0)
        assert net.ecmp_agents["src"].subscriber_count_estimate(ch) == 0

    def test_small_change_deferred_then_flushed(self):
        """A sub-tolerance change is not pushed immediately but arrives
        within tau."""
        net, leaves = build_tree_net(propagation=CountPropagation.PROACTIVE, tau=30.0)
        src, ch = make_channel(net, "src")
        for leaf in leaves[:8]:
            net.host(leaf).subscribe(ch)
        net.run(until=net.sim.now + 35.0)
        agent = net.ecmp_agents["src"]
        assert agent.subscriber_count_estimate(ch) == 8
        # One more join: relative error 1/8 = 0.125 < e_max 0.3 at the
        # root's feeder, so it lingers...
        net.host(leaves[8]).subscribe(ch)
        net.settle(1.0)
        lingering = agent.subscriber_count_estimate(ch)
        # ...but arrives within tau.
        net.run(until=net.sim.now + 31.0)
        assert agent.subscriber_count_estimate(ch) == 9
        assert lingering <= 9


class TestProactiveApplicationCounts:
    def test_vote_tally_maintained_proactively(self):
        """§2.2.1 votes + §6 proactive maintenance: the source's tally
        follows the electorate without polling."""
        net, leaves = build_tree_net(tau=20.0)
        src, ch = make_channel(net, "src")
        votes = {leaf: 0 for leaf in leaves}
        for leaf in leaves:
            host = net.host(leaf)
            host.subscribe(ch)
            host.respond_to_count(ch, VOTE_ID, lambda l=leaf: votes[l])
        net.settle()

        src.enable_proactive(ch, VOTE_ID, ToleranceCurve(e_max=0.3, alpha=4.0, tau=20.0))
        net.settle()

        # Everyone votes yes, one by one, notifying ECMP of the change.
        for leaf in leaves:
            votes[leaf] = 1
            net.ecmp_agents[leaf].notify_count_changed(ch, VOTE_ID)
        net.run(until=net.sim.now + 25.0)  # within tau everything flushes

        tally = net.ecmp_agents["src"].proactive_estimate(ch, VOTE_ID)
        assert tally == len(leaves)

    def test_vote_changes_propagate(self):
        net, leaves = build_tree_net(tau=10.0)
        src, ch = make_channel(net, "src")
        votes = {leaf: 1 for leaf in leaves}
        for leaf in leaves:
            host = net.host(leaf)
            host.subscribe(ch)
            host.respond_to_count(ch, VOTE_ID, lambda l=leaf: votes[l])
        net.settle()
        src.enable_proactive(ch, VOTE_ID, ToleranceCurve(e_max=0.3, alpha=4.0, tau=10.0))
        for leaf in leaves:
            net.ecmp_agents[leaf].notify_count_changed(ch, VOTE_ID)
        net.run(until=net.sim.now + 12.0)
        assert net.ecmp_agents["src"].proactive_estimate(ch, VOTE_ID) == 9

        # Three voters change their minds.
        for leaf in leaves[:3]:
            votes[leaf] = 0
            net.ecmp_agents[leaf].notify_count_changed(ch, VOTE_ID)
        net.run(until=net.sim.now + 12.0)
        assert net.ecmp_agents["src"].proactive_estimate(ch, VOTE_ID) == 6

    def test_notify_without_proactive_is_noop(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        host = net.host("h1_0_0")
        host.subscribe(ch)
        net.settle()
        # No proactive state for this countId: must not raise or emit.
        tx_before = net.ecmp_agents["h1_0_0"].stats.get("msgs_tx")
        net.ecmp_agents["h1_0_0"].notify_count_changed(ch, VOTE_ID)
        assert net.ecmp_agents["h1_0_0"].stats.get("msgs_tx") == tx_before
