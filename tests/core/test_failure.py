"""Integration tests: failures and topology change (§3.2).

TCP-mode connection failure ("The associated count is subtracted from
the sum provided upstream if the connection fails"), re-homing after a
unicast route change ("it sends a current Count message to the new
upstream router and a zero Count message to the old upstream router"),
and reconnection ("On connection establishment, the downstream neighbor
sends an unsolicited Count message for each channel").
"""

import pytest

from repro import CountPropagation, ExpressNetwork, TopologyBuilder
from tests.conftest import make_channel


@pytest.fixture
def redundant_net():
    """src - a - (b | c) - d - sub : two paths, b fast and c slow, so
    the tree prefers b and can re-home to c."""
    from repro.netsim.topology import Topology

    topo = Topology()
    for name in ("a", "b", "c", "d"):
        topo.add_node(name)
    topo.add_node("hsrc")
    topo.add_node("hsub")
    topo.add_link("hsrc", "a", delay=0.001)
    topo.add_link("a", "b", delay=0.001)
    topo.add_link("a", "c", delay=0.004)
    topo.add_link("b", "d", delay=0.001)
    topo.add_link("c", "d", delay=0.004)
    topo.add_link("d", "hsub", delay=0.001)
    net = ExpressNetwork(topo, hosts=["hsrc", "hsub"])
    net.run(until=0.01)
    return net


class TestLinkFailure:
    def test_downstream_failure_subtracts_count(self, star_net):
        net = star_net
        src, ch = make_channel(net, "leaf0")
        net.host("leaf1").subscribe(ch)
        net.host("leaf2").subscribe(ch)
        net.settle()
        hub = net.ecmp_agents["hub"]
        assert hub.subscriber_count_estimate(ch) == 2
        net.topo.link_between("hub", "leaf1").fail()
        net.settle()
        assert hub.subscriber_count_estimate(ch) == 1
        # FIB no longer points at the dead branch.
        entry = net.fibs["hub"].get(ch.source, ch.group)
        dead_if = net.topo.node("hub").interface_to(net.topo.node("leaf1")).index
        assert not entry.has_outgoing(dead_if)

    def test_total_branch_failure_prunes_to_source(self, redundant_net):
        net = redundant_net
        src, ch = make_channel(net, "hsrc")
        net.host("hsub").subscribe(ch)
        net.settle()
        net.topo.link_between("d", "hsub").fail()
        net.settle()
        # Entire tree torn down: the only subscriber is unreachable.
        assert net.fib_entries_total() == 0

    def test_reroute_after_tree_link_failure(self, redundant_net):
        """The tree re-homes through the redundant path and delivery
        resumes."""
        net = redundant_net
        src, ch = make_channel(net, "hsrc")
        got = []
        net.host("hsub").subscribe(ch, on_data=got.append)
        net.settle()
        assert "b" in net.nodes_on_tree(ch)  # fast path via b
        net.topo.link_between("a", "b").fail()
        net.settle(10.0)  # allow hysteresis + re-join
        src.send(ch)
        net.settle()
        assert len(got) == 1
        assert "c" in net.nodes_on_tree(ch)

    def test_zero_count_sent_to_old_upstream_on_reroute(self, redundant_net):
        """§3.2: re-homing unsubscribes from the old upstream."""
        net = redundant_net
        src, ch = make_channel(net, "hsrc")
        net.host("hsub").subscribe(ch)
        net.settle()
        # Fail the b-d link: d re-homes from b to c; b must lose state.
        net.topo.link_between("b", "d").fail()
        net.settle(10.0)
        assert "b" not in net.nodes_on_tree(ch)
        assert net.ecmp_agents["d"].channels[ch].upstream == "c"

    def test_recovery_rejoins_better_path(self, redundant_net):
        net = redundant_net
        src, ch = make_channel(net, "hsrc")
        got = []
        net.host("hsub").subscribe(ch, on_data=got.append)
        net.settle()
        link = net.topo.link_between("a", "b")
        link.fail()
        net.settle(10.0)
        link.recover()
        net.settle(10.0)
        # Back on the fast path (hysteresis long expired).
        assert net.ecmp_agents["d"].channels[ch].upstream == "b"
        src.send(ch)
        net.settle()
        assert len(got) == 1

    def test_hysteresis_prevents_immediate_flap(self, redundant_net):
        """§3.2: "Hysteresis is applied to prevent route oscillation."
        A freshly re-homed channel does not instantly re-home again
        while the old path is still viable."""
        net = redundant_net
        src, ch = make_channel(net, "hsrc")
        net.host("hsub").subscribe(ch)
        net.settle()
        d_agent = net.ecmp_agents["d"]
        changes_before = d_agent.stats.get("upstream_changes")
        # Metric flap: make the c-path look better, then immediately
        # revert. Within the hysteresis window, d must not bounce.
        link_ab = net.topo.link_between("a", "b")
        link_ab.delay = 0.050
        net.routing.recompute()
        for agent in net.ecmp_agents.values():
            agent.reevaluate_upstreams()
        first_changes = d_agent.stats.get("upstream_changes")
        link_ab.delay = 0.001
        net.routing.recompute()
        for agent in net.ecmp_agents.values():
            agent.reevaluate_upstreams()
        # The switch back is deferred by hysteresis.
        assert d_agent.stats.get("upstream_changes") == first_changes
        net.settle(10.0)
        assert d_agent.channels[ch].upstream == "b"

    def test_partitioned_subscriber_rejoins_on_heal(self):
        """Regression: a subscriber cut off from the source (no
        alternate path) must re-join automatically when the partition
        heals — its local subscription intent survives the outage."""
        from repro import ExpressNetwork, TopologyBuilder

        topo = TopologyBuilder.line(2)
        topo.add_node("hsrc")
        topo.add_node("hsub")
        topo.add_link("hsrc", "n0")
        topo.add_link("hsub", "n1")
        net = ExpressNetwork(topo, hosts=["hsrc", "hsub"])
        net.run(until=0.01)
        src = net.source("hsrc")
        ch = src.allocate_channel()
        got = []
        net.host("hsub").subscribe(ch, on_data=got.append)
        net.settle()
        cut = net.topo.link_between("n0", "n1")
        cut.fail()
        net.settle(8.0)
        assert net.fib_entries_total() == 0  # no stale forwarding state
        cut.recover()
        net.settle(8.0)
        src.send(ch)
        net.settle()
        assert len(got) == 1

    def test_unsubscribe_during_partition_leaves_no_state(self):
        """Regression: unsubscribing while partitioned must not leave a
        zombie channel state (stale advertised count) behind."""
        from repro import ExpressNetwork, TopologyBuilder

        topo = TopologyBuilder.line(2)
        topo.add_node("hsrc")
        topo.add_node("hsub")
        topo.add_link("hsrc", "n0")
        topo.add_link("hsub", "n1")
        net = ExpressNetwork(topo, hosts=["hsrc", "hsub"])
        net.run(until=0.01)
        src = net.source("hsrc")
        ch = src.allocate_channel()
        net.host("hsub").subscribe(ch)
        net.settle()
        cut = net.topo.link_between("n0", "n1")
        cut.fail()
        net.settle(8.0)
        net.host("hsub").unsubscribe(ch)
        net.settle(2.0)
        cut.recover()
        net.settle(8.0)
        assert net.nodes_on_tree(ch) == set()
        assert net.fib_entries_total() == 0

    def test_subscriber_survives_failure_elsewhere(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        got = []
        net.host("h1_0_0").subscribe(ch, on_data=got.append)
        net.settle()
        # Fail a link on an entirely different branch.
        net.topo.link_between("t2", "e2_0").fail()
        net.settle(10.0)
        src.send(ch)
        net.settle()
        assert len(got) == 1
