"""Unit and integration tests for the coalescing TCP-mode send path.

The dirty-channel queue in :class:`EcmpAgent` replaces the seed's
immediate one-packet-per-message sends: non-urgent messages toward a
TCP-mode neighbor wait up to ``BATCH_FLUSH_INTERVAL`` (or until the
``BATCH_MAX_RECORDS`` watermark / keepalive tick) and leave as one
``MSG_BATCH`` frame. Urgent messages — CountQuery, CountResponse
rejections, zero-count leaves — flush the whole queue immediately so
coalescing never adds latency where the protocol has a deadline.
See ``docs/ecmp-wire.md``.
"""

import pytest

from repro import ExpressNetwork, NeighborMode, TopologyBuilder
from repro.core.ecmp.countids import SUBSCRIBER_ID
from repro.core.ecmp.messages import (
    Count,
    CountQuery,
    CountResponse,
    CountStatus,
    EcmpBatch,
    decode_batch,
    encode_batch,
    set_zero_copy,
)
from repro.errors import CodecError
from repro.core.ecmp.protocol import DirtyChannelQueue, EcmpAgent
from repro.core.keys import make_key
from tests.conftest import make_channel


def other_channel(net, source_host, n=1):
    """Allocate extra channels from the same source."""
    handle = net.source(source_host)
    return [handle.allocate_channel() for _ in range(n)]


class TestDirtyChannelQueue:
    """The queue in isolation: LWW merging and pin semantics."""

    def test_last_writer_wins_same_channel(self, line_net):
        q = DirtyChannelQueue()
        src, ch = make_channel(line_net, "hsrc")
        first = Count(channel=ch, count_id=SUBSCRIBER_ID, count=1)
        second = Count(channel=ch, count_id=SUBSCRIBER_ID, count=2)
        assert q.enqueue(first, pinned=False) is False
        assert q.enqueue(second, pinned=False) is True
        assert len(q) == 1
        assert q.records[0].message.count == 2

    def test_distinct_channels_never_merge(self, line_net):
        q = DirtyChannelQueue()
        channels = other_channel(line_net, "hsrc", n=3)
        for ch in channels:
            q.enqueue(
                Count(channel=ch, count_id=SUBSCRIBER_ID, count=1), pinned=False
            )
        assert len(q) == 3

    def test_pinned_records_are_never_replaced(self, line_net):
        q = DirtyChannelQueue()
        src, ch = make_channel(line_net, "hsrc")
        keyed = Count(channel=ch, count_id=SUBSCRIBER_ID, count=1, key=make_key(ch))
        later = Count(channel=ch, count_id=SUBSCRIBER_ID, count=2)
        assert q.enqueue(keyed, pinned=True) is False
        # A later non-pinned write appends rather than absorbing the
        # pinned join (its verdict FIFO slot must survive).
        assert q.enqueue(later, pinned=False) is False
        assert len(q) == 2
        assert [r.message.count for r in q.records] == [1, 2]

    def test_two_responses_never_merge(self, line_net):
        q = DirtyChannelQueue()
        src, ch = make_channel(line_net, "hsrc")
        ok = CountResponse(channel=ch, count_id=SUBSCRIBER_ID, status=CountStatus.OK)
        assert q.enqueue(ok, pinned=True) is False
        assert q.enqueue(ok, pinned=True) is False
        assert len(q) == 2

    def test_fifo_order_of_first_enqueue_preserved(self, line_net):
        q = DirtyChannelQueue()
        a, b = other_channel(line_net, "hsrc", n=2)
        q.enqueue(Count(channel=a, count_id=SUBSCRIBER_ID, count=1), pinned=False)
        q.enqueue(Count(channel=b, count_id=SUBSCRIBER_ID, count=1), pinned=False)
        # Updating channel a keeps its original slot, ahead of b.
        q.enqueue(Count(channel=a, count_id=SUBSCRIBER_ID, count=5), pinned=False)
        assert [r.message.channel for r in q.records] == [a, b]
        assert q.records[0].message.count == 5


class TestCoalescingSendPath:
    """``_send_message`` through the agent: what queues, what flushes."""

    def test_non_urgent_count_queues_instead_of_sending(self, line_net):
        agent = line_net.ecmp_agents["n0"]
        src, ch = make_channel(line_net, "hsrc")
        before = agent.stats.get("wire_sends")
        agent._send_message(
            Count(channel=ch, count_id=SUBSCRIBER_ID, count=2), "n1"
        )
        assert agent.stats.get("wire_sends") == before
        assert len(agent._batch_queues["n1"]) == 1
        assert "n1" in agent._flush_events

    def test_coalesced_update_counted(self, line_net):
        agent = line_net.ecmp_agents["n0"]
        src, ch = make_channel(line_net, "hsrc")
        for value in (1, 2, 3):
            agent._send_message(
                Count(channel=ch, count_id=SUBSCRIBER_ID, count=value), "n1"
            )
        assert len(agent._batch_queues["n1"]) == 1
        assert agent.stats.get("msgs_coalesced") == 2
        assert agent.stats.get("msgs_tx") >= 3
        assert agent.stats.get("wire_sends") == 0

    def test_urgent_query_flushes_whole_queue_as_one_frame(self, line_net):
        agent = line_net.ecmp_agents["n0"]
        a, b = other_channel(line_net, "hsrc", n=2)
        agent._send_message(Count(channel=a, count_id=SUBSCRIBER_ID, count=1), "n1")
        agent._send_message(Count(channel=b, count_id=SUBSCRIBER_ID, count=1), "n1")
        assert agent.stats.get("wire_sends") == 0
        agent._send_message(
            CountQuery(channel=a, count_id=SUBSCRIBER_ID, timeout=5.0), "n1"
        )
        # The queue left as a single wire frame carrying all three
        # records (pending Counts ride ahead of the urgent query).
        assert agent.stats.get("wire_sends") == 1
        assert agent.stats.get("batch_records_tx") == 3
        assert "n1" not in agent._batch_queues
        assert "n1" not in agent._flush_events

    def test_zero_count_leave_is_urgent(self, line_net):
        agent = line_net.ecmp_agents["n0"]
        src, ch = make_channel(line_net, "hsrc")
        agent._send_message(Count(channel=ch, count_id=SUBSCRIBER_ID, count=0), "n1")
        assert agent.stats.get("wire_sends") == 1

    def test_rejection_response_is_urgent_ok_is_not(self, line_net):
        agent = line_net.ecmp_agents["n0"]
        src, ch = make_channel(line_net, "hsrc")
        ok = CountResponse(channel=ch, count_id=SUBSCRIBER_ID, status=CountStatus.OK)
        agent._send_message(ok, "n1")
        assert agent.stats.get("wire_sends") == 0
        denial = CountResponse(
            channel=ch,
            count_id=SUBSCRIBER_ID,
            status=CountStatus.INVALID_AUTHENTICATOR,
        )
        agent._send_message(denial, "n1")
        assert agent.stats.get("wire_sends") == 1

    def test_watermark_flushes_immediately(self, line_net):
        agent = line_net.ecmp_agents["n0"]
        channels = other_channel(line_net, "hsrc", n=EcmpAgent.BATCH_MAX_RECORDS)
        for ch in channels:
            agent._send_message(
                Count(channel=ch, count_id=SUBSCRIBER_ID, count=1), "n1"
            )
        assert agent.stats.get("wire_sends") == 1
        assert agent.stats.get("batch_records_tx") == EcmpAgent.BATCH_MAX_RECORDS

    def test_timer_flushes_within_interval(self, line_net):
        net = line_net
        agent = net.ecmp_agents["n0"]
        src, ch = make_channel(net, "hsrc")
        agent._send_message(Count(channel=ch, count_id=SUBSCRIBER_ID, count=3), "n1")
        assert agent.stats.get("wire_sends") == 0
        net.run(until=net.sim.now + EcmpAgent.BATCH_FLUSH_INTERVAL + 0.01)
        assert agent.stats.get("wire_sends") == 1
        assert agent.stats.get("batch_flushes") == 1
        # A lone record leaves as a bare message, not a one-record frame.
        assert agent.stats.get("batch_records_tx") == 0
        assert net.ecmp_agents["n1"].stats.get("wire_recvs") >= 1

    def test_udp_mode_neighbor_bypasses_queue(self, line_net):
        agent = line_net.ecmp_agents["n0"]
        agent.set_neighbor_mode("n1", NeighborMode.UDP)
        src, ch = make_channel(line_net, "hsrc")
        agent._send_message(Count(channel=ch, count_id=SUBSCRIBER_ID, count=2), "n1")
        assert agent.stats.get("wire_sends") == 1
        assert "n1" not in agent._batch_queues

    def test_batching_off_network_sends_immediately(self):
        topo = TopologyBuilder.line(2)
        topo.add_node("hsrc")
        topo.add_link("hsrc", "n0", delay=0.001)
        net = ExpressNetwork(topo, hosts=["hsrc"], batching=False)
        net.run(until=0.01)
        agent = net.ecmp_agents["n0"]
        src, ch = make_channel(net, "hsrc")
        agent._send_message(Count(channel=ch, count_id=SUBSCRIBER_ID, count=2), "n1")
        assert agent.stats.get("wire_sends") == 1
        assert agent.stats.get("msgs_coalesced") == 0

    def test_wire_accounting_includes_ip_overhead(self, line_net):
        from repro.core.ecmp.protocol import IP_OVERHEAD

        agent = line_net.ecmp_agents["n0"]
        src, ch = make_channel(line_net, "hsrc")
        message = CountQuery(channel=ch, count_id=SUBSCRIBER_ID, timeout=5.0)
        agent._send_message(message, "n1")
        assert agent.stats.get("bytes_on_wire") == IP_OVERHEAD + message.wire_size()


class TestMutatedFrameDecoding:
    """Satellite regression (fault-injection work): a ``MSG_BATCH``
    frame mangled on the wire — duplicated then truncated, torn
    mid-record, concatenated with its own copy — must raise
    :class:`CodecError` from ``decode_batch`` rather than partially
    apply a plausible prefix of records. Pinned on both codecs; the
    adversarial byte strings come from the fault subsystem's
    :meth:`WireMutator.mutate_bytes` applied to real encoder output.
    """

    @staticmethod
    def make_frame(net, n=4):
        channels = other_channel(net, "hsrc", n=n)
        messages = [
            Count(channel=ch, count_id=SUBSCRIBER_ID, count=i + 1)
            for i, ch in enumerate(channels)
        ]
        messages[0] = Count(
            channel=channels[0],
            count_id=SUBSCRIBER_ID,
            count=1,
            key=make_key(channels[0]),
        )
        return encode_batch(messages), messages

    @pytest.fixture(params=[True, False], ids=["zero_copy", "legacy"])
    def codec(self, request):
        prior = set_zero_copy(request.param)
        yield request.param
        set_zero_copy(prior)

    def test_duplicated_then_truncated_raises_not_partial(self, line_net, codec):
        frame, messages = self.make_frame(line_net)
        for cut in range(1, len(frame)):
            mangled = frame + frame[:cut]
            with pytest.raises(CodecError):
                decode_batch(mangled)

    def test_every_truncation_point_raises(self, line_net, codec):
        frame, messages = self.make_frame(line_net)
        for cut in range(len(frame)):
            with pytest.raises(CodecError):
                decode_batch(frame[:cut])

    def test_clean_frame_still_round_trips(self, line_net, codec):
        frame, messages = self.make_frame(line_net)
        assert decode_batch(frame) == messages

    def test_wire_mutator_fuzz_never_partially_applies(self, line_net, codec):
        """Every non-identical byte string the mutator can produce from
        a valid frame either round-trips in full or raises — the decode
        never returns a shortened record list."""
        import random

        from repro.errors import CodecError as CE
        from repro.faults import WireMutator

        frame, messages = self.make_frame(line_net)
        mutator = WireMutator(
            random.Random(1234), drop=0.4, duplicate=0.5, reorder=0.5
        )
        outcomes = {"ok": 0, "rejected": 0, "dropped": 0}
        for _ in range(300):
            pieces = mutator.mutate_bytes(frame)
            if not pieces:
                outcomes["dropped"] += 1
                continue
            # A framing layer that mis-slices the stream hands the
            # decoder the concatenation; per-piece delivery is the
            # duplicate-frame case, which is merely idempotent.
            for candidate in pieces + [b"".join(pieces)]:
                try:
                    decoded = decode_batch(candidate)
                except CE:
                    outcomes["rejected"] += 1
                else:
                    outcomes["ok"] += 1
                    assert decoded == messages
        # The draws must actually exercise both outcomes.
        assert outcomes["rejected"] > 0
        assert outcomes["ok"] > 0

    def test_receive_path_counts_undecodable_instead_of_applying(self, line_net):
        """End to end: a torn frame delivered to an agent increments
        ``undecodable_messages`` and changes no channel state."""
        from repro.netsim.packet import Packet

        net = line_net
        frame, messages = self.make_frame(net)
        agent = net.ecmp_agents["n1"]
        before = dict(agent.stats.as_dict())
        packet = Packet(
            proto="ecmp", src="n0", dst="n1", payload=frame + frame[: len(frame) // 2]
        )
        agent.handle_packet(
            packet, net.topo.node("n1").interface_to(net.topo.node("n0")).index
        )
        after = agent.stats.as_dict()
        assert after.get("undecodable_messages", 0) == before.get(
            "undecodable_messages", 0
        ) + 1
        assert not agent.channels


class TestReconnectResend:
    """Satellite regression: the §3.2 unsolicited state dump on TCP
    session (re-)establishment leaves as ONE wire send."""

    N_CHANNELS = 5

    @pytest.fixture
    def subscribed_net(self, line_net):
        net = line_net
        channels = other_channel(net, "hsrc", n=self.N_CHANNELS)
        for ch in channels:
            net.host("hsub").subscribe(ch)
        net.settle()
        return net, channels

    def test_reconnect_resends_full_state_in_one_frame(self, subscribed_net):
        net, channels = subscribed_net
        n1 = net.ecmp_agents["n1"]
        link = net.topo.link_between("n0", "n1")
        link.fail()
        net.settle()

        sent = []
        original = n1._transmit

        def spy(message, peer, contexts=()):
            sent.append((message, peer.name))
            return original(message, peer, contexts)

        n1._transmit = spy
        link.recover()
        net.settle()

        upstream_sends = [m for m, peer in sent if peer == "n0"]
        assert len(upstream_sends) == 1, upstream_sends
        frame = upstream_sends[0]
        assert isinstance(frame, EcmpBatch)
        assert len(frame) == self.N_CHANNELS
        assert {m.channel for m in frame.messages} == set(channels)
        assert all(m.count == 1 for m in frame.messages)

    def test_reconnect_restores_upstream_counts(self, subscribed_net):
        net, channels = subscribed_net
        link = net.topo.link_between("n0", "n1")
        link.fail()
        net.settle()
        n0 = net.ecmp_agents["n0"]
        assert all(n0.subscriber_count_estimate(ch) == 0 for ch in channels)
        link.recover()
        net.settle()
        assert all(n0.subscriber_count_estimate(ch) == 1 for ch in channels)

    def test_failure_drops_pending_queue(self, subscribed_net):
        """Messages queued toward a session that dies are lost with it;
        the reconnect dump covers them instead of a stale flush."""
        net, channels = subscribed_net
        n1 = net.ecmp_agents["n1"]
        n1._send_message(
            Count(channel=channels[0], count_id=SUBSCRIBER_ID, count=9), "n0"
        )
        assert "n0" in n1._batch_queues
        net.topo.link_between("n0", "n1").fail()
        net.settle()
        assert "n0" not in n1._batch_queues
        assert "n0" not in n1._flush_events
