"""Unit/integration tests for aggregated edge-subscriber blocks.

``tests/properties/test_block_equivalence.py`` pins the headline
property (block(N) ≡ N individual subscribers upstream); this file
covers the block mechanics themselves: attachment rules, count
arithmetic, FIB behaviour at a blocks-only edge, final-hop delivery
accounting, CountQuery folding, the TREE_ONLY fast path, and UDP-mode
soft-state expiry/refresh.
"""

import pytest

from repro import ExpressNetwork, TopologyBuilder
from repro.core.ecmp.protocol import EcmpAgent, NeighborMode
from repro.core.ecmp.state import BLOCK_PREFIX, is_pseudo_neighbor, LOCAL
from repro.errors import ChannelError, ProtocolError, TopologyError


def build_net(**kwargs) -> ExpressNetwork:
    """hsrc - n0 - n1 - n2 (edge), plus one ordinary host on n2."""
    topo = TopologyBuilder.line(3)
    topo.add_node("hsrc")
    topo.add_link("hsrc", "n0", delay=0.001)
    topo.add_node("hsub")
    topo.add_link("hsub", "n2", delay=0.001)
    net = ExpressNetwork(topo, hosts=["hsrc", "hsub"], **kwargs)
    net.run(until=0.01)
    return net


class TestPseudoNeighbors:
    def test_block_prefix_is_pseudo(self):
        assert is_pseudo_neighbor(LOCAL)
        assert is_pseudo_neighbor(BLOCK_PREFIX + "b0")
        assert not is_pseudo_neighbor("n1")

    def test_blocks_never_appear_in_tree_edges(self):
        net = build_net()
        source = net.source("hsrc")
        channel = source.allocate_channel()
        block = net.subscriber_block("n2")
        block.join(channel, 10)
        net.settle()
        edges = net.tree_edges(channel)
        assert all(not child.startswith(BLOCK_PREFIX) for _, child in edges)
        assert ("n1", "n2") in edges


class TestAttachment:
    def test_attach_to_unknown_node_rejected(self):
        net = build_net()
        with pytest.raises(TopologyError):
            net.subscriber_block("nope")

    def test_attach_to_host_rejected(self):
        net = build_net()
        with pytest.raises(ProtocolError):
            net.subscriber_block("hsub")

    def test_duplicate_name_rejected(self):
        net = build_net()
        net.subscriber_block("n2", name="b")
        with pytest.raises(ProtocolError):
            net.subscriber_block("n2", name="b")

    def test_auto_names_are_unique(self):
        net = build_net()
        a = net.subscriber_block("n2")
        b = net.subscriber_block("n2")
        assert a.pseudo != b.pseudo
        assert a.edge_router == b.edge_router == "n2"


class TestCountArithmetic:
    def test_join_and_leave_accumulate(self):
        net = build_net()
        channel = net.source("hsrc").allocate_channel()
        block = net.subscriber_block("n2")
        assert block.join(channel, 5) == 5
        assert block.join(channel) == 6
        assert block.leave(channel, 2) == 4
        assert block.count(channel) == 4
        assert block.total_members() == 4

    def test_leave_clamps_at_zero(self):
        net = build_net()
        channel = net.source("hsrc").allocate_channel()
        block = net.subscriber_block("n2")
        block.join(channel, 3)
        assert block.leave(channel, 10) == 0
        assert block.count(channel) == 0

    def test_nonpositive_deltas_rejected(self):
        net = build_net()
        channel = net.source("hsrc").allocate_channel()
        block = net.subscriber_block("n2")
        with pytest.raises(ChannelError):
            block.join(channel, 0)
        with pytest.raises(ChannelError):
            block.leave(channel, -1)

    def test_tree_only_fast_path_counts(self):
        net = build_net()  # TREE_ONLY default
        channel = net.source("hsrc").allocate_channel()
        block = net.subscriber_block("n2")
        agent = net.router_agent("n2")
        block.join(channel, 1)  # transition: full path
        assert agent.block_fast_updates == 0
        block.join(channel, 41)  # same-sign: fast path
        block.leave(channel, 2)
        assert agent.block_fast_updates == 2
        state = agent.channels[channel]
        assert state.downstream[block.pseudo].count == 40
        block.leave(channel, 40)  # transition to zero: full path
        assert agent.block_fast_updates == 2


class TestDataPlane:
    def test_final_hop_delivery_is_arithmetic(self):
        net = build_net()
        source = net.source("hsrc")
        channel = source.allocate_channel()
        block = net.subscriber_block("n2")
        block.join(channel, 1000)
        net.settle()
        for _ in range(3):
            source.send(channel)
        net.settle()
        assert block.packets_seen == 3
        assert block.deliveries == 3000
        assert block.bytes_delivered > 0
        # The edge keeps an RPF-valid FIB entry with no outgoing
        # interfaces: packets terminate there without §3.4 no-match
        # drops and without any fan-out link events.
        fib = net.fibs["n2"]
        assert fib.no_match_drops == 0
        entry = fib.get(channel.source, channel.group)
        assert entry is not None and entry.outgoing == 0

    def test_block_and_host_coexist_at_one_edge(self):
        net = build_net()
        source = net.source("hsrc")
        channel = source.allocate_channel()
        block = net.subscriber_block("n2")
        block.join(channel, 7)
        got = []
        net.host("hsub").subscribe(channel, on_data=got.append)
        net.settle()
        source.send(channel)
        net.settle()
        assert len(got) == 1  # real host still gets real packets
        assert block.deliveries == 7

    def test_prune_after_last_leave(self):
        net = build_net()
        source = net.source("hsrc")
        channel = source.allocate_channel()
        block = net.subscriber_block("n2")
        block.join(channel, 4)
        net.settle()
        assert net.fibs["n1"].get(channel.source, channel.group) is not None
        block.leave(channel, 4)
        net.settle()
        assert net.fibs["n2"].get(channel.source, channel.group) is None
        assert net.fibs["n1"].get(channel.source, channel.group) is None


class TestCountQuery:
    def test_block_counts_fold_into_query(self):
        net = build_net()
        source = net.source("hsrc")
        channel = source.allocate_channel()
        net.subscriber_block("n2").join(channel, 123)
        net.host("hsub").subscribe(channel)
        net.settle()
        result = source.count_query(channel, timeout=2.0)
        net.settle(3.0)
        assert result.done and not result.partial
        assert result.count == 124


class TestUdpSoftState:
    def test_udp_block_refreshes_and_survives(self):
        net = build_net(default_mode=NeighborMode.UDP)
        channel = net.source("hsrc").allocate_channel()
        block = net.subscriber_block("n2", udp=True)
        block.join(channel, 50)
        agent = net.router_agent("n2")
        horizon = EcmpAgent.UDP_ROBUSTNESS * EcmpAgent.UDP_QUERY_INTERVAL
        net.run(until=net.sim.now + 2 * horizon)
        # Refresh timer kept the record alive through several expiry
        # sweeps.
        assert agent.channels[channel].downstream[block.pseudo].count == 50
        assert block.count(channel) == 50

    def test_stopped_udp_block_expires(self):
        net = build_net(default_mode=NeighborMode.UDP)
        channel = net.source("hsrc").allocate_channel()
        block = net.subscriber_block("n2", udp=True)
        block.join(channel, 50)
        net.settle()
        block.stop()  # refresh timer dies; soft state must age out
        agent = net.router_agent("n2")
        horizon = EcmpAgent.UDP_ROBUSTNESS * EcmpAgent.UDP_QUERY_INTERVAL
        net.run(until=net.sim.now + 3 * horizon)
        state = agent.channels.get(channel)
        record = None if state is None else state.downstream.get(block.pseudo)
        assert record is None
        # Expiry reconciled the block's own ledger and the delivery
        # index, not just the protocol record.
        assert block.count(channel) == 0
        assert agent.channel_blocks.get(channel) is None

    def test_tcp_block_needs_no_refresh(self):
        net = build_net()
        channel = net.source("hsrc").allocate_channel()
        block = net.subscriber_block("n2")  # udp=False
        assert block._refresh_task is None
        block.join(channel, 5)
        horizon = EcmpAgent.UDP_ROBUSTNESS * EcmpAgent.UDP_QUERY_INTERVAL
        net.run(until=net.sim.now + 3 * horizon)
        assert block.count(channel) == 5
