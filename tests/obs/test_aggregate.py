"""Registry dump/merge, fleet aggregation, and exporter robustness.

The distributed-telemetry contract: per-worker registry dumps merge
into one fleet registry with a ``shard`` label, histogram merges keep
count/sum/bucket arithmetic exact, colliding label sets add, and the
exporters survive a registry being mutated while they render.
"""

import threading

import pytest

from repro.obs.aggregate import FleetAggregator
from repro.obs.exporters import metrics_to_jsonl, prometheus_text
from repro.obs.registry import MetricError, MetricsRegistry, percentile
from repro.obs.tracing import Tracer, id_shard, shard_id_base


def _sample_registry(shard_bias: int = 0) -> MetricsRegistry:
    registry = MetricsRegistry()
    packets = registry.counter("packets_total", "pkts", labelnames=("node",))
    packets.labels(node="a").inc(10 + shard_bias)
    packets.labels(node="b").inc(5)
    depth = registry.gauge("queue_depth", "depth")
    depth.set(3 + shard_bias)
    latency = registry.histogram(
        "latency_seconds", "lat", buckets=(0.001, 0.01, 0.1)
    )
    for value in (0.0005, 0.005, 0.05, 0.5):
        latency.observe(value + shard_bias * 0.0001)
    return registry


class TestDumpMerge:
    def test_roundtrip_preserves_values(self):
        source = _sample_registry()
        target = MetricsRegistry()
        target.merge_dump(source.dump())

        assert target.get("packets_total").labels(node="a").value == 10
        assert target.get("packets_total").labels(node="b").value == 5
        assert target.get("queue_depth").value == 3
        hist = target.get("latency_seconds")._solo()
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.0005 + 0.005 + 0.05 + 0.5)

    def test_merge_is_additive_on_colliding_label_sets(self):
        target = MetricsRegistry()
        dump = _sample_registry().dump()
        target.merge_dump(dump)
        target.merge_dump(dump)

        assert target.get("packets_total").labels(node="a").value == 20
        hist = target.get("latency_seconds")._solo()
        assert hist.count == 8
        assert hist.sum == pytest.approx(2 * (0.0005 + 0.005 + 0.05 + 0.5))

    def test_extra_labels_keep_shards_apart(self):
        target = MetricsRegistry()
        target.merge_dump(_sample_registry(0).dump(), extra_labels={"shard": 0})
        target.merge_dump(_sample_registry(1).dump(), extra_labels={"shard": 1})

        family = target.get("packets_total")
        assert family.labelnames == ("node", "shard")
        assert family.labels(node="a", shard="0").value == 10
        assert family.labels(node="a", shard="1").value == 11

    def test_histogram_merge_invariants(self):
        """Merged count/sum/buckets equal one histogram observing both
        streams, and percentiles come out of the union of samples."""
        a = MetricsRegistry()
        b = MetricsRegistry()
        ha = a.histogram("h", buckets=(1.0, 10.0))
        hb = b.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            ha.observe(v)
        for v in (0.6, 3.0):
            hb.observe(v)

        merged = MetricsRegistry()
        merged.merge_dump(a.dump())
        merged.merge_dump(b.dump())
        child = merged.get("h")._solo()
        assert child.count == 5
        assert child.sum == pytest.approx(26.1)
        assert list(child.bucket_counts) == [2, 2, 1]
        union = sorted((0.5, 2.0, 20.0, 0.6, 3.0))
        assert child.percentile(50) == percentile(union, 50)

    def test_truncated_dump_keeps_exact_aggregates(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.5,))
        for i in range(100):
            hist.observe(i / 100.0)

        dump = registry.dump(max_samples=8)
        (payload,) = [
            payload for record in dump for _v, payload in record["children"]
            if record["name"] == "h"
        ]
        assert payload["truncated"] is True
        assert len(payload["samples"]) == 8
        merged = MetricsRegistry()
        merged.merge_dump(dump)
        child = merged.get("h")._solo()
        assert child.count == 100
        assert child.sum == pytest.approx(sum(i / 100.0 for i in range(100)))
        # bisect_left bucketing: 0.00..0.50 land in the 0.5 bucket.
        assert list(child.bucket_counts) == [51, 49]

    def test_merge_kind_conflict_raises(self):
        source = MetricsRegistry()
        source.counter("metric_x").inc()
        target = MetricsRegistry()
        target.gauge("metric_x")
        with pytest.raises(MetricError):
            target.merge_dump(source.dump())


class TestFleetAggregator:
    def _snapshot(self, shard: int, registry: MetricsRegistry, **extra) -> dict:
        return {
            "shard": shard,
            "registry": registry.dump(),
            "spans": extra.get("spans", []),
            "quiesced_at": extra.get("quiesced_at"),
        }

    def test_merged_scrape_has_shard_labelled_series(self):
        fleet = FleetAggregator()
        fleet.ingest(0, self._snapshot(0, _sample_registry(0)))
        fleet.ingest(1, self._snapshot(1, _sample_registry(1)))

        text = fleet.prometheus()
        assert 'packets_total{node="a",shard="0"} 10' in text
        assert 'packets_total{node="a",shard="1"} 11' in text
        assert fleet.shards() == [0, 1]

    def test_cumulative_snapshots_are_latest_wins(self):
        """Re-ingesting a shard's newer cumulative dump must not
        double-count the old one."""
        fleet = FleetAggregator()
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        fleet.ingest(0, self._snapshot(0, registry))
        counter.inc(5)  # cumulative: now 10
        fleet.ingest(0, self._snapshot(0, registry))

        merged = fleet.registry()
        assert merged.get("c").child(("0",)).value == 10

    def test_trace_stitching_across_shards(self):
        t0 = Tracer(id_base=shard_id_base(0))
        t1 = Tracer(id_base=shard_id_base(1))
        root = t0.start_span("query", node="src")
        child = t1.start_span("handle", node="edge", parent=root.context)
        t1.end(child)
        t0.end(root)
        assert id_shard(root.span_id) != id_shard(child.span_id)

        fleet = FleetAggregator()
        fleet.ingest(0, {"registry": None,
                         "spans": [s.to_record() for s in t0.spans],
                         "quiesced_at": 1.5})
        fleet.ingest(1, {"registry": None,
                         "spans": [s.to_record() for s in t1.spans],
                         "quiesced_at": 2.5})

        stitched = fleet.tracer()
        assert stitched.cross_shard_traces() == [root.trace_id]
        assert [s.span_id for s in stitched.children(stitched.get(root.span_id))] == [
            child.span_id
        ]
        # Shard provenance is stamped on absorbed spans.
        assert stitched.get(child.span_id).attrs["shard"] == "1"
        assert fleet.quiesced_at() == 2.5

    def test_none_snapshot_is_noop(self):
        fleet = FleetAggregator()
        fleet.ingest(0, None)
        assert fleet.shards() == []
        assert fleet.snapshots_ingested == 0


class TestExporterRobustness:
    def test_exporters_survive_concurrent_mutation(self):
        """A worker thread hammers new label sets and observations while
        the exporters render — no exceptions, valid output every time.
        (The GIL makes each dict op atomic; the exporters' snapshot
        semantics must cope with children appearing mid-render.)"""
        registry = MetricsRegistry()
        family = registry.counter("spin_total", "spins", labelnames=("k",))
        hist = registry.histogram("spin_seconds", "lat", labelnames=("k",))
        stop = threading.Event()
        failures: list[BaseException] = []

        def mutate():
            i = 0
            while not stop.is_set():
                family.labels(k=str(i % 257)).inc()
                hist.labels(k=str(i % 131)).observe(i * 1e-6)
                i += 1

        def export():
            try:
                for _ in range(50):
                    text = prometheus_text(registry)
                    assert "spin_total" in text
                    metrics_to_jsonl(registry)
                    registry.dump(max_samples=4)
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        mutator = threading.Thread(target=mutate, daemon=True)
        mutator.start()
        try:
            exporters = [threading.Thread(target=export) for _ in range(3)]
            for t in exporters:
                t.start()
            for t in exporters:
                t.join()
        finally:
            stop.set()
            mutator.join(timeout=5)
        assert not failures

    def test_merge_of_concurrently_written_dump_is_consistent(self):
        """A dump taken mid-mutation still merges: every child's
        histogram aggregates are internally consistent."""
        registry = MetricsRegistry()
        hist = registry.histogram("h", labelnames=("k",), buckets=(0.5,))
        stop = threading.Event()

        def mutate():
            i = 0
            while not stop.is_set():
                hist.labels(k=str(i % 17)).observe((i % 10) / 10.0)
                i += 1

        mutator = threading.Thread(target=mutate, daemon=True)
        mutator.start()
        try:
            for _ in range(30):
                merged = MetricsRegistry()
                merged.merge_dump(registry.dump())
                for values, child in merged.get("h").children():
                    assert child.count == sum(child.bucket_counts), values
        finally:
            stop.set()
            mutator.join(timeout=5)
