"""Integration tests: observability threaded through the live stacks.

The acceptance scenario lives here: a CountQuery issued at the source
of a >=3-level ISP topology (source host -> stub -> transit core ->
stub -> subscriber hosts) must reconstruct as a span tree whose leaf
count equals the number of responding subscribers.
"""

import pytest

from repro.core.network import ExpressNetwork
from repro.groupmodel.network import GroupNetwork
from repro.inet.addr import parse_address
from repro.netsim.topology import TopologyBuilder
from repro.obs import Observability
from repro.obs.exporters import prometheus_text
from repro.relay.session import SessionParticipant, SessionRelay


def isp_network(obs=None, **kwargs):
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=3, hosts_per_stub=2)
    return ExpressNetwork(topo, obs=obs, **kwargs)


class TestCountQuerySpanTree:
    def build(self, subscribers):
        obs = Observability()
        net = isp_network(obs)
        net.run(until=0.1)
        source = net.source("h0_0_0")
        channel = source.allocate_channel()
        for name in subscribers:
            net.host(name).subscribe(channel)
        net.settle()
        result = source.count_query(channel, timeout=5.0)
        net.settle(6.0)
        return obs, net, channel, result

    def test_leaf_count_equals_responding_subscribers(self):
        subscribers = ["h1_0_0", "h1_0_1", "h2_1_0", "h2_1_1", "h3_2_0"]
        obs, net, channel, result = self.build(subscribers)
        assert result.count == len(subscribers)
        assert result.partial is False

        tracer = obs.tracer
        roots = [s for s in tracer.spans if s.name == "ecmp.count_query"]
        assert len(roots) == 1
        root = roots[0]
        assert root.end is not None  # finalization closed the root
        tree = [n for n in tracer.tree(root.trace_id) if n.span is root]
        assert len(tree) == 1
        assert tree[0].leaf_count() == len(subscribers)
        # Source host -> stub -> transit -> ... -> subscriber host is
        # at least 4 causal levels on this topology.
        assert tree[0].depth() >= 4
        leaf_nodes = sorted(s.node for s in tracer.leaves(root.trace_id))
        assert leaf_nodes == sorted(subscribers)

    def test_replies_fold_in_as_events_not_spans(self):
        subscribers = ["h1_0_0", "h1_0_1"]
        obs, net, channel, result = self.build(subscribers)
        tracer = obs.tracer
        root = next(s for s in tracer.spans if s.name == "ecmp.count_query")
        members = tracer.trace(root.trace_id)
        # Count replies traveling back up never open spans of their own;
        # every non-root span in the query trace is a query handling.
        assert {s.name for s in members} == {"ecmp.count_query", "ecmp.query"}
        deferred = [s for s in members if s.events]
        reply_events = [
            e for s in deferred for e in s.events if e[1] == "reply"
        ]
        assert len(reply_events) >= len(subscribers)

    def test_critical_path_runs_source_to_subscriber(self):
        subscribers = ["h1_0_0", "h3_2_1"]
        obs, net, channel, result = self.build(subscribers)
        tracer = obs.tracer
        root = next(s for s in tracer.spans if s.name == "ecmp.count_query")
        latency, chain = tracer.critical_path(root.trace_id)
        assert latency > 0.0
        assert chain[0].node == "h0_0_0"
        assert chain[-1].node in subscribers
        assert len(chain) >= 4

    def test_channel_index_finds_query_spans(self):
        obs, net, channel, result = self.build(["h1_0_0"])
        spans = obs.tracer.spans_for(channel)
        assert any(s.name == "ecmp.count_query" for s in spans)
        assert any(s.name == "ecmp.subscribe" for s in spans)


class TestJoinPropagationTrace:
    def test_subscribe_trace_reaches_the_source_hop_by_hop(self):
        obs = Observability()
        net = isp_network(obs)
        net.run(until=0.1)
        source = net.source("h0_0_0")
        channel = source.allocate_channel()
        net.host("h2_1_1").subscribe(channel)
        net.settle()
        tracer = obs.tracer
        sub = next(s for s in tracer.spans if s.name == "ecmp.subscribe")
        members = tracer.trace(sub.trace_id)
        # The join Count propagated RPF hop-by-hop; every hop's handling
        # span is causally chained under the subscribe root.
        count_hops = [s for s in members if s.name == "ecmp.count"]
        hop_nodes = [s.node for s in count_hops]
        assert "e2_1" in hop_nodes  # first-hop stub router
        assert len(count_hops) >= 3
        assert tracer.roots(sub.trace_id)[0] is sub


class TestMetricsThreading:
    def test_per_channel_message_and_latency_series(self):
        obs = Observability()
        net = isp_network(obs)
        net.run(until=0.1)
        source = net.source("h0_0_0")
        channel = source.allocate_channel()
        net.host("h1_0_0").subscribe(channel)
        net.settle()
        source.send(channel)
        net.settle()

        text = prometheus_text(obs.registry)
        assert f'type="Count",channel="{channel}"' in text
        assert "delivery_latency_seconds_bucket" in text
        assert f'protocol="express",node="h1_0_0",channel="{channel}"' in text

    def test_counter_bag_keeps_control_stats_total_working(self):
        obs = Observability()
        net = isp_network(obs)
        net.run(until=0.1)
        source = net.source("h0_0_0")
        channel = source.allocate_channel()
        net.host("h1_0_0").subscribe(channel)
        net.settle()
        totals = net.control_stats_total()
        assert totals["counts_rx"] > 0
        assert totals["subscribe_events"] > 0
        # And the same numbers are visible in the registry family.
        family = obs.registry.get("ecmp_events_total")
        registry_total = sum(
            child.value
            for values, child in family.children()
            if dict(zip(family.labelnames, values))["event"] == "counts_rx"
        )
        assert registry_total == totals["counts_rx"]

    def test_node_link_and_engine_instrumentation(self):
        obs = Observability()
        net = isp_network(obs)
        net.run(until=0.1)
        source = net.source("h0_0_0")
        channel = source.allocate_channel()
        net.host("h1_0_0").subscribe(channel)
        net.settle()
        source.send(channel)
        net.settle()

        snap = obs.registry.snapshot()
        assert any("direction=tx" in k for k in snap["node_packets_total"]["series"])
        assert snap["link_packets_total"]["series"]
        assert snap["sim_events_total"]["series"]
        assert snap["sim_time_seconds"]["series"][""] == net.sim.now
        wall = snap["sim_event_wall_seconds"]["series"]
        assert sum(v["count"] for v in wall.values()) == net.sim.events_processed

    def test_fib_gauges_refresh_on_collect(self):
        obs = Observability()
        net = isp_network(obs)
        net.run(until=0.1)
        source = net.source("h0_0_0")
        channel = source.allocate_channel()
        net.host("h1_0_0").subscribe(channel)
        net.settle()
        snap = obs.registry.snapshot()
        entries = snap["fib_entries"]["series"]
        assert sum(entries.values()) == net.fib_entries_total()
        assert sum(entries.values()) > 0

    def test_uninstrumented_network_unchanged(self):
        net = isp_network(obs=None)
        net.run(until=0.1)
        source = net.source("h0_0_0")
        channel = source.allocate_channel()
        net.host("h1_0_0").subscribe(channel)
        net.settle()
        result = source.count_query(channel, timeout=5.0)
        net.settle(6.0)
        assert result.count == 1
        agent = net.ecmp_agents["h1_0_0"]
        assert agent.obs is None
        assert agent.stats.as_dict()  # plain Counter still accumulates

    def test_instrumentation_does_not_change_simulation_outcomes(self):
        def run(obs):
            net = isp_network(obs)
            net.run(until=0.1)
            source = net.source("h0_0_0")
            channel = source.allocate_channel()
            for name in ("h1_0_0", "h2_1_1"):
                net.host(name).subscribe(channel)
            net.settle()
            source.send(channel)
            net.settle()
            result = source.count_query(channel, timeout=5.0)
            net.settle(6.0)
            return (
                result.count,
                net.sim.now,
                net.sim.events_processed,
                net.tree_edges(channel),
            )

        assert run(None) == run(Observability())


class TestGroupModelSharedFamily:
    GROUP = parse_address("224.5.0.1")

    def test_delivery_latency_shares_one_family(self):
        obs = Observability()
        topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=2, hosts_per_stub=2)
        net = GroupNetwork(topo, protocol="pim", rp="t2", obs=obs)
        for member in ("h1_0_0", "h2_1_1"):
            net.join(member, self.GROUP)
        net.settle()
        net.send("h0_0_0", self.GROUP)
        net.settle()
        family = obs.registry.get("delivery_latency_seconds")
        protocols = {
            dict(zip(family.labelnames, values))["protocol"]
            for values, _ in family.children()
        }
        assert protocols == {"pim"}
        snap = obs.registry.snapshot()
        join_series = snap["groupmodel_messages_total"]["series"]
        assert join_series["protocol=pim,type=join"] == 2

    def test_dvmrp_counts_joins_and_leaves(self):
        obs = Observability()
        topo = TopologyBuilder.isp(n_transit=2, stubs_per_transit=2, hosts_per_stub=2)
        net = GroupNetwork(topo, protocol="dvmrp", obs=obs)
        net.join("h1_0_0", self.GROUP)
        net.settle()
        net.leave("h1_0_0", self.GROUP)
        net.settle()
        series = obs.registry.snapshot()["groupmodel_messages_total"]["series"]
        assert series["protocol=dvmrp,type=join"] == 1
        assert series["protocol=dvmrp,type=leave"] == 1


class TestRelayMetrics:
    def test_relay_counts_rx_and_tx_by_kind(self):
        obs = Observability()
        net = isp_network(obs)
        net.run(until=0.1)
        relay = SessionRelay(net, "h0_0_0")
        listener = SessionParticipant(net, "h1_0_0", relay)
        speaker = SessionParticipant(net, "h2_0_0", relay)
        net.settle()
        speaker.speak(b"question")
        net.settle()
        assert listener.heard_talks
        series = obs.registry.snapshot()["relay_messages_total"]["series"]
        session = str(relay.session_id)
        assert series[f"session={session},direction=rx,kind=talk"] == 1
        assert series[f"session={session},direction=tx,kind=talk"] == 1


class TestCli:
    def test_main_prints_acceptance_lines(self, capsys):
        from repro.obs.__main__ import main

        assert main(["--transit", "3", "--stubs", "2", "--hosts", "2",
                     "--subscribers", "3", "--packets", "1"]) == 0
        captured = capsys.readouterr()
        assert "ecmp_messages_total{" in captured.out
        assert "delivery_latency_seconds_bucket" in captured.out
        assert "CountQuery span tree" in captured.err
        assert "critical path:" in captured.err

    def test_jsonl_format(self, capsys):
        import json

        from repro.obs.__main__ import main

        assert main(["--transit", "2", "--stubs", "1", "--hosts", "2",
                     "--subscribers", "2", "--packets", "1",
                     "--format", "jsonl", "--no-trace"]) == 0
        captured = capsys.readouterr()
        kinds = {json.loads(line)["kind"] for line in captured.out.splitlines()}
        assert kinds == {"metric", "span"}
