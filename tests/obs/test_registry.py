"""Unit tests for the labelled metrics registry."""

import pytest

from repro.obs.registry import (
    LATENCY_BUCKETS,
    CounterBag,
    MetricError,
    MetricsRegistry,
    percentile,
)


class TestCounters:
    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("msgs_total", "messages", ("node", "dir"))
        family.labels(node="a", dir="tx").inc()
        family.labels(node="a", dir="tx").inc(4)
        family.labels(node="b", dir="rx").inc()
        assert family.labels(node="a", dir="tx").value == 5
        assert family.labels(node="b", dir="rx").value == 1

    def test_unlabelled_proxy(self):
        registry = MetricsRegistry()
        family = registry.counter("ticks_total")
        family.inc()
        family.inc(2)
        assert family.value == 3

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        family = registry.counter("c")
        with pytest.raises(MetricError):
            family.inc(-1)

    def test_wrong_label_set_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("c", "", ("node",))
        with pytest.raises(MetricError):
            family.labels(node="a", extra="x")
        with pytest.raises(MetricError):
            family.labels()
        with pytest.raises(MetricError):
            family.inc()  # labelled family has no solo child

    def test_label_values_stringified(self):
        registry = MetricsRegistry()
        family = registry.counter("c", "", ("n",))
        family.labels(n=7).inc()
        assert family.labels(n="7").value == 1


class TestGauges:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 13.0


class TestHistograms:
    def test_percentiles_and_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.2, 0.3, 0.9, 2.0):
            hist.observe(value)
        child = hist.labels()
        assert child.count == 5
        assert abs(child.sum - 3.45) < 1e-12
        assert child.percentile(50) == 0.3
        assert child.percentile(100) == 2.0
        assert abs(child.mean() - 0.69) < 1e-12

    def test_cumulative_buckets_end_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        buckets = hist.labels().cumulative_buckets()
        assert buckets[0] == (0.1, 1)
        assert buckets[1] == (1.0, 2)
        assert buckets[-1][1] == 3  # +Inf is the total count
        assert buckets[-1][0] == float("inf")

    def test_default_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        hist.observe(0.003)
        assert hist.labels().buckets == LATENCY_BUCKETS


class TestDeclaration:
    def test_idempotent_redeclaration(self):
        registry = MetricsRegistry()
        a = registry.counter("c", "", ("node",))
        b = registry.counter("c", "", ("node",))
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(MetricError):
            registry.gauge("m")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", "", ("a",))
        with pytest.raises(MetricError):
            registry.counter("m", "", ("a", "b"))

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        registry.counter("m")
        assert "m" in registry
        assert registry.get("m") is not None
        assert registry.get("missing") is None


class TestCounterBag:
    def test_drop_in_counter_api(self):
        registry = MetricsRegistry()
        bag = registry.counter_bag("events_total", "events", node="r1")
        bag.incr("joins")
        bag.incr("joins", 2)
        bag.incr("leaves")
        assert bag["joins"] == 3
        assert bag.get("leaves") == 1
        assert bag.get("missing") == 0
        assert bag.as_dict() == {"joins": 3, "leaves": 1}
        assert set(bag.keys()) == {"joins", "leaves"}

    def test_bags_share_one_family_but_not_counts(self):
        registry = MetricsRegistry()
        bag_a = registry.counter_bag("events_total", node="a")
        bag_b = registry.counter_bag("events_total", node="b")
        bag_a.incr("x", 5)
        bag_b.incr("x", 7)
        assert bag_a.as_dict() == {"x": 5}
        assert bag_b.as_dict() == {"x": 7}
        family = registry.get("events_total")
        assert len(dict(family.children())) == 2

    def test_fixed_labels_must_match_family(self):
        registry = MetricsRegistry()
        family = registry.counter("t", "", ("node", "event"))
        with pytest.raises(MetricError):
            CounterBag(family, region="us")


class TestCollectorsAndSnapshot:
    def test_collector_runs_on_collect(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        state = {"value": 3}
        registry.register_collector(lambda: gauge.set(state["value"]))
        registry.collect()
        assert gauge.value == 3
        state["value"] = 9
        snapshot = registry.snapshot()
        assert snapshot["depth"]["series"][""] == 9

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "help!", ("n",)).labels(n="x").inc(2)
        hist = registry.histogram("h")
        hist.observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == {
            "type": "counter",
            "help": "help!",
            "series": {"n=x": 2},
        }
        series = snap["h"]["series"][""]
        assert series["count"] == 1
        assert series["p50"] == 0.5


class TestPercentileFunction:
    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 0) == 1.0

    def test_empty_and_bounds(self):
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 101)
