"""Unit tests for the causal tracer."""

from repro.obs.tracing import SpanContext, Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSpanLifecycle:
    def test_root_span_and_ids_are_deterministic(self):
        a = Tracer()
        b = Tracer()
        span_a = a.start_span("work")
        span_b = b.start_span("work")
        assert span_a.span_id == span_b.span_id
        assert span_a.trace_id == span_b.trace_id
        assert span_a.parent_id is None

    def test_clock_drives_start_end(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.start_span("work")
        clock.now = 2.5
        tracer.end(span)
        assert span.start == 0.0
        assert span.duration == 2.5

    def test_end_is_idempotent(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.start_span("work")
        clock.now = 1.0
        tracer.end(span)
        clock.now = 9.0
        tracer.end(span)
        assert span.end == 1.0

    def test_context_manager_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            assert tracer.current is outer
        assert tracer.current is None
        assert outer.end is not None and inner.end is not None

    def test_activate_does_not_end(self):
        tracer = Tracer()
        span = tracer.start_span("pending")
        with tracer.activate(span):
            assert tracer.current is span
        assert span.end is None

    def test_parent_from_wire_context(self):
        tracer = Tracer()
        remote = SpanContext(trace_id=77, span_id=42)
        span = tracer.start_span("handle", parent=remote)
        assert span.trace_id == 77
        assert span.parent_id == 42

    def test_events(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.start_span("query")
        clock.now = 1.5
        tracer.add_event(span, "reply", neighbor="r2", count=3)
        assert span.events == [(1.5, "reply", {"neighbor": "r2", "count": 3})]


class TestQueries:
    def _fan_out(self, tracer):
        """root -> (mid1 -> leaf1, leaf2; mid2 -> leaf3)."""
        with tracer.span("root", node="s", channel="(S,E)") as root:
            with tracer.span("mid", node="r1", channel="(S,E)"):
                with tracer.span("leaf", node="h1"):
                    pass
                with tracer.span("leaf", node="h2"):
                    pass
            with tracer.span("mid", node="r2", channel="(S,E)"):
                with tracer.span("leaf", node="h3"):
                    pass
        return root

    def test_tree_and_leaves(self):
        tracer = Tracer()
        root = self._fan_out(tracer)
        roots = tracer.tree(root.trace_id)
        assert len(roots) == 1
        node = roots[0]
        assert node.span is root
        assert node.leaf_count() == 3
        assert node.depth() == 3
        assert len(list(node)) == 6
        leaves = tracer.leaves(root.trace_id)
        assert sorted(s.node for s in leaves) == ["h1", "h2", "h3"]
        assert [s.node for s in tracer.roots(root.trace_id)] == ["s"]

    def test_spans_for_channel(self):
        tracer = Tracer()
        root = self._fan_out(tracer)
        tagged = tracer.spans_for("(S,E)")
        assert len(tagged) == 3
        assert tracer.traces_for("(S,E)") == [root.trace_id]
        assert tracer.spans_for("(other)") == []

    def test_children(self):
        tracer = Tracer()
        root = self._fan_out(tracer)
        kids = tracer.children(root)
        assert [s.node for s in kids] == ["r1", "r2"]

    def test_critical_path_descends_latest_child(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        root = tracer.start_span("query", node="s")
        with tracer.activate(root):
            clock.now = 0.1
            fast = tracer.start_span("sub", node="fast")
            slow = tracer.start_span("sub", node="slow")
        clock.now = 0.2
        tracer.end(fast)
        with tracer.activate(slow):
            leaf = tracer.start_span("leaf", node="deep")
        clock.now = 0.7
        tracer.end(leaf)
        tracer.end(slow)
        clock.now = 0.8
        tracer.end(root)
        latency, chain = tracer.critical_path(root.trace_id)
        assert [s.node for s in chain] == ["s", "slow", "deep"]
        assert abs(latency - 0.8) < 1e-12

    def test_render_indents_by_depth(self):
        tracer = Tracer()
        root = self._fan_out(tracer)
        text = tracer.render(root.trace_id)
        lines = text.splitlines()
        assert lines[0].startswith("root @s")
        assert lines[1].startswith("  mid @r1")
        assert lines[2].startswith("    leaf @h1")

    def test_empty_trace(self):
        tracer = Tracer()
        assert tracer.tree(999) == []
        assert tracer.critical_path(999) == (0.0, [])
        assert tracer.render(999) == ""
