"""Unit tests for the Prometheus and JSON-lines exporters."""

import io
import json

from repro.obs.exporters import (
    events_to_jsonl,
    metrics_to_jsonl,
    prometheus_text,
    spans_to_jsonl,
    write_prometheus,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer


def small_registry():
    registry = MetricsRegistry()
    counter = registry.counter("msgs_total", "messages", ("node", "type"))
    counter.labels(node="r1", type="Count").inc(3)
    counter.labels(node="r2", type="CountQuery").inc()
    gauge = registry.gauge("depth", "queue depth")
    gauge.set(17)
    hist = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 2.0):
        hist.observe(value)
    return registry


class TestPrometheusText:
    def test_help_and_type_headers(self):
        text = prometheus_text(small_registry())
        assert "# HELP msgs_total messages" in text
        assert "# TYPE msgs_total counter" in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_counter_and_gauge_lines(self):
        text = prometheus_text(small_registry())
        assert 'msgs_total{node="r1",type="Count"} 3' in text
        assert 'msgs_total{node="r2",type="CountQuery"} 1' in text
        assert "depth 17" in text

    def test_histogram_series(self):
        text = prometheus_text(small_registry())
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 2.55" in text
        assert "lat_seconds_count 3" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", "", ("ch",)).labels(ch='a"b\\c\nd').inc()
        text = prometheus_text(registry)
        assert 'c{ch="a\\"b\\\\c\\nd"} 1' in text

    def test_write_prometheus(self):
        out = io.StringIO()
        write_prometheus(small_registry(), out)
        assert out.getvalue() == prometheus_text(small_registry())

    def test_ends_with_newline(self):
        assert prometheus_text(small_registry()).endswith("\n")


class TestJsonl:
    def test_metrics_records_parse(self):
        lines = metrics_to_jsonl(small_registry()).splitlines()
        records = [json.loads(line) for line in lines]
        assert all(record["kind"] == "metric" for record in records)
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        assert by_name["msgs_total"][0]["labels"] == {"node": "r1", "type": "Count"}
        assert by_name["msgs_total"][0]["value"] == 3
        hist = by_name["lat_seconds"][0]
        assert hist["count"] == 3
        assert hist["p50"] == 0.5

    def test_spans_records_parse(self):
        tracer = Tracer()
        with tracer.span("root", node="s", channel="(S,E)") as root:
            tracer.add_event(root, "reply", count=2)
            with tracer.span("child", node="h"):
                pass
        records = [json.loads(line) for line in spans_to_jsonl(tracer).splitlines()]
        assert len(records) == 2
        assert records[0]["name"] == "root"
        assert records[0]["parent_id"] is None
        assert records[1]["parent_id"] == records[0]["span_id"]
        assert records[0]["events"][0]["name"] == "reply"
        assert records[0]["attrs"]["channel"] == "(S,E)"

    def test_events_to_jsonl_combines_both(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        out = io.StringIO()
        text = events_to_jsonl(small_registry(), tracer, out)
        assert out.getvalue() == text
        kinds = {json.loads(line)["kind"] for line in text.splitlines()}
        assert kinds == {"metric", "span"}

    def test_empty_dumps(self):
        assert spans_to_jsonl(Tracer()) == ""
        assert metrics_to_jsonl(MetricsRegistry()) == ""
