"""``python -m repro.obs diff``: flattening, direction, regressions."""

import io
import json
import math

from repro.obs.diff import (
    diff_metrics,
    direction,
    flatten,
    load_metrics,
    main,
    render_diff,
)
from repro.obs.exporters import metrics_to_jsonl
from repro.obs.registry import MetricsRegistry


class TestFlatten:
    def test_nested_numeric_leaves_only(self):
        flat = flatten({
            "summary": {"events_per_sec_min": 100.0, "quick": True},
            "scenarios": {"a": {"wall_seconds": 1.5, "topology": "isp"}},
            "seed": 0,
        })
        assert flat == {
            "summary.events_per_sec_min": 100.0,
            "scenarios.a.wall_seconds": 1.5,
            "seed": 0.0,
        }


class TestDirection:
    def test_cost_metrics(self):
        assert direction("scenarios.a.wall_seconds") == -1
        assert direction("delivery_latency.p99_seconds") == -1
        assert direction("summary.null_message_ratio") == -1
        assert direction("peak_rss_kb") == -1
        # Sync-tax economics (schema v7): per-event frame overhead and
        # the demand run's own null ratio are costs...
        assert direction("summary.sync_messages_per_event") == -1
        assert direction("frames_per_round") == -1
        assert direction("demand_null_ratio") == -1
        # Control-plane refresh economics (schema v8): the fast path's
        # share of the legacy scan — a fraction that must *shrink* —
        # classifies as a cost despite the benefit table's "fraction",
        # and examined records are overhead outright.
        assert direction("summary.refresh_scan_fraction") == -1
        assert direction("scenarios.channel_surf.refresh_records_examined") == -1
        # Robustness SLOs (schema v9): recovery time, resync traffic,
        # churn spread, and orphaned state are all costs of a fault.
        assert direction("summary.convergence_seconds") == -1
        assert direction("summary.resync_bytes") == -1
        assert direction("scenarios.router_crash_storm.faults.resync_events") == -1
        assert direction("summary.blast_radius") == -1
        assert direction("summary.orphaned_state") == -1

    def test_benefit_metrics(self):
        assert direction("summary.events_per_sec_min") == +1
        assert direction("wheel_speedup") == +1
        assert direction("sync_efficiency") == +1
        assert direction("dijkstra_savings_ratio") == +1
        # ...while the reductions over the eager baseline are benefits.
        assert direction("summary.null_ratio_reduction") == +1
        assert direction("summary.sync_message_reduction") == +1
        # Schema v8 channel-surf headline numbers.
        assert direction("summary.zap_events_per_sec") == +1
        assert direction("summary.state_churn_speedup") == +1

    def test_neutral(self):
        assert direction("sim_events") == 0


class TestDiff:
    def test_regressions_sort_first(self):
        rows = diff_metrics(
            {"a_per_sec": 100.0, "b_seconds": 1.0, "c": 7.0},
            {"a_per_sec": 50.0, "b_seconds": 1.01, "c": 9.0},
        )
        assert rows[0]["metric"] == "a_per_sec"
        assert rows[0]["regression"] is True
        by_name = {r["metric"]: r for r in rows}
        # +1% on a cost metric is inside the 5% threshold.
        assert by_name["b_seconds"]["regression"] is False
        # Neutral metrics never regress, whatever the delta.
        assert by_name["c"]["regression"] is False
        assert by_name["c"]["delta"] == 2.0

    def test_new_and_removed_metrics(self):
        rows = diff_metrics({"old_only": 1.0}, {"new_only_per_sec": 5.0})
        by_name = {r["metric"]: r for r in rows}
        assert by_name["new_only_per_sec"]["old"] is None
        assert by_name["new_only_per_sec"]["pct"] == math.inf
        # A metric that only exists on one side cannot regress.
        assert not by_name["new_only_per_sec"]["regression"]
        assert by_name["old_only"]["new"] is None

    def test_render_counts_regressions(self):
        rows = diff_metrics({"x_per_sec": 100.0}, {"x_per_sec": 10.0})
        out = io.StringIO()
        assert render_diff(rows, out) == 1
        text = out.getvalue()
        assert "! x_per_sec" in text
        assert "-90.0%" in text
        assert "1 regression" in text


class TestLoadAndCli:
    def _bench(self, tmp_path, name, eps):
        path = tmp_path / name
        path.write_text(json.dumps({
            "bench": "perf",
            "schema_version": 5,
            "generated_at": "2026-01-01T00:00:00Z",
            "platform": "test",
            "scenarios": {"s": {"events_per_sec": eps}},
            "summary": {"events_per_sec_min": eps},
        }))
        return str(path)

    def test_load_bench_report_drops_metadata(self, tmp_path):
        flat = load_metrics(self._bench(tmp_path, "a.json", 100.0))
        assert flat["scenarios.s.events_per_sec"] == 100.0
        assert not any("generated_at" in k or "platform" in k for k in flat)

    def test_load_jsonl_dump(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("pkts_total", labelnames=("node",)).labels(
            node="a"
        ).inc(3)
        registry.histogram("lat_seconds").observe(0.25)
        path = tmp_path / "scrape.jsonl"
        path.write_text(metrics_to_jsonl(registry))

        flat = load_metrics(str(path))
        assert flat['pkts_total{node="a"}'] == 3.0
        assert flat["lat_seconds.count"] == 1.0
        assert flat["lat_seconds.p50"] == 0.25

    def test_cli_exit_codes(self, tmp_path, capsys):
        old = self._bench(tmp_path, "old.json", 100.0)
        new = self._bench(tmp_path, "new.json", 10.0)
        assert main([old, new]) == 0
        assert main([old, new, "--fail-on-regression"]) == 1
        assert main([old, old, "--fail-on-regression"]) == 0
        out = capsys.readouterr().out
        assert "events_per_sec" in out

    def test_module_dispatch(self, tmp_path, capsys):
        """``python -m repro.obs diff`` routes to the diff CLI."""
        from repro.obs.__main__ import main as obs_main

        old = self._bench(tmp_path, "old.json", 100.0)
        assert obs_main(["diff", old, old]) == 0
        assert "0 regressions" in capsys.readouterr().out
