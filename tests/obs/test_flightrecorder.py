"""Flight recorder: bounded ring, JSONL dumps, simulator attachment."""

import json

from repro.netsim.engine import Simulator
from repro.obs.flightrecorder import FlightRecorder
from repro.obs.tracing import Tracer


def test_ring_is_bounded_oldest_first():
    recorder = FlightRecorder(capacity=4, shard=1)
    for i in range(10):
        recorder.record("tick", n=i)
    tail = recorder.tail()
    assert len(tail) == 4
    assert [entry["n"] for entry in tail] == [6, 7, 8, 9]
    assert recorder.recorded == 10


def test_dump_writes_header_then_entries(tmp_path):
    recorder = FlightRecorder(capacity=8, shard=2)
    recorder.record("tick", n=1)
    tracer = Tracer()
    span = tracer.start_span("work", node="a")
    tracer.end(span)
    recorder.record_span(span)

    path = recorder.dump(str(tmp_path / "sub" / "flight-2.jsonl"), reason="test")
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    header, entries = lines[0], lines[1:]
    assert header["kind"] == "flight_header"
    assert header["reason"] == "test"
    assert header["shard"] == 2
    assert header["entries"] == 2
    assert header["recorded"] == 2
    assert [e["kind"] for e in entries] == ["tick", "span"]
    assert entries[1]["name"] == "work"
    assert recorder.dumped_to == path


def test_attach_records_dispatched_events():
    sim = Simulator(seed=0)
    recorder = FlightRecorder(capacity=16)
    recorder.attach(sim)
    sim.schedule_at(0.5, lambda: None, name="alpha")
    sim.schedule_at(1.0, lambda: None, name="beta")
    sim.run(until=2.0)

    tail = recorder.tail()
    assert [entry["name"] for entry in tail] == ["alpha", "beta"]
    assert [entry["time"] for entry in tail] == [0.5, 1.0]
    assert all(entry["kind"] == "event" for entry in tail)
