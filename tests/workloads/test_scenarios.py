"""Tests for the Figure 8 scenario machinery."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.scenarios import (
    FIG8_END,
    FIG8_SUBSCRIBERS,
    Fig8Sample,
    build_fig8_network,
    fig8_events,
    run_fig8,
)


class TestFig8Events:
    def test_shape_matches_paper_description(self):
        events = fig8_events(seed=0)
        joins = [e for e in events if e.action == "join"]
        leaves = [e for e in events if e.action == "leave"]
        assert len(joins) == FIG8_SUBSCRIBERS
        assert len(leaves) == FIG8_SUBSCRIBERS
        # Initial burst near t=0.
        assert sum(1 for e in joins if e.time <= 2.0) >= 100
        # Second burst right after 200.
        assert sum(1 for e in joins if 200.0 <= e.time <= 202.0) >= 50
        # Quiet gap: no activity in (210, 300).
        assert not any(210 < e.time < 300 for e in events)
        # Fast leave: all gone by 310.
        assert all(300 <= e.time <= 310 for e in leaves)

    def test_every_host_joins_once_and_leaves_once(self):
        events = fig8_events(seed=1)
        by_host = {}
        for event in events:
            by_host.setdefault(event.host, []).append(event.action)
        assert all(actions == ["join", "leave"] for actions in by_host.values())

    def test_needs_enough_hosts(self):
        with pytest.raises(WorkloadError):
            fig8_events(hosts=["only", "two"])


class TestFig8Network:
    def test_build_validates_leaf_budget(self):
        with pytest.raises(WorkloadError):
            build_fig8_network(alpha=4.0, depth=2, fanout=4)  # 16 leaves

    def test_build_wires_source_to_root(self):
        net, channel, leaves, src = build_fig8_network(alpha=4.0)
        assert src == "src"
        assert channel.source == net.topo.node("src").address
        assert len(leaves) >= FIG8_SUBSCRIBERS


class TestRunFig8:
    @pytest.fixture(scope="class")
    def samples(self):
        return {
            alpha: run_fig8(alpha=alpha, sample_interval=5.0, seed=0)
            for alpha in (4.0, 2.5)
        }

    def test_estimate_tracks_actual_within_tolerance(self, samples):
        """Upper panel of Figure 8: the estimate follows the actual
        size; α=4 "tracks the actual size very closely"."""
        for sample in samples[4.0]:
            if 20 <= sample.time <= 200:  # slow-growth regime
                assert abs(sample.actual - sample.estimated) <= max(
                    0.25 * sample.actual, 5
                )

    def test_alpha_4_tracks_better_than_2_5_after_burst(self, samples):
        """"the estimated size lags behind the actual size after the
        large burst" for α=2.5."""
        def lag(series):
            return max(
                abs(s.actual - s.estimated)
                for s in series
                if 220 <= s.time <= 300
            )

        assert lag(samples[2.5]) >= lag(samples[4.0])

    def test_alpha_2_5_uses_fewer_messages(self, samples):
        """Lower panel: smaller α = less bandwidth."""
        final = {a: s[-1].counts_delivered_to_source for a, s in samples.items()}
        assert final[2.5] <= final[4.0]

    def test_estimate_returns_to_zero_after_leave(self, samples):
        for alpha in (4.0, 2.5):
            tail = [s for s in samples[alpha] if s.time >= FIG8_END + 30]
            assert tail and all(s.estimated == 0 for s in tail)

    def test_peak_reaches_250(self, samples):
        assert max(s.actual for s in samples[4.0]) == FIG8_SUBSCRIBERS
