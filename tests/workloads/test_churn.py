"""Tests for churn generators."""

import pytest

from repro.core.ecmp.countids import SUBSCRIBER_ID
from repro.errors import WorkloadError
from repro.workloads.churn import (
    ChurnEvent,
    count_message_stream,
    poisson_churn,
    schedule_churn,
)
from tests.conftest import make_channel


class TestPoissonChurn:
    def test_events_sorted_and_alternating(self):
        events = poisson_churn(["a", "b"], duration=100, mean_off_time=5, mean_on_time=5, seed=1)
        times = [e.time for e in events]
        assert times == sorted(times)
        for host in ("a", "b"):
            own = [e.action for e in events if e.host == host]
            for first, second in zip(own, own[1:]):
                assert first != second
            if own:
                assert own[0] == "join"

    def test_deterministic_per_seed(self):
        a = poisson_churn(["x"], 50, 2, 2, seed=3)
        b = poisson_churn(["x"], 50, 2, 2, seed=3)
        assert a == b
        assert a != poisson_churn(["x"], 50, 2, 2, seed=4)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            poisson_churn(["a"], 0, 1, 1)
        with pytest.raises(WorkloadError):
            ChurnEvent(time=0, host="a", action="explode")

    def test_schedule_churn_runs_events(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        events = [
            ChurnEvent(time=0.5, host="h1_0_0", action="join"),
            ChurnEvent(time=1.0, host="h2_0_0", action="join"),
            ChurnEvent(time=2.0, host="h1_0_0", action="leave"),
        ]
        schedule_churn(net, ch, events)
        net.run(until=5.0)
        assert net.subscriber_hosts(ch) == ["h2_0_0"]


class TestCountMessageStream:
    def test_alternates_join_leave_per_pair(self):
        stream = list(count_message_stream(4, ["n1", "n2"], 200, seed=1))
        seen = {}
        for message, neighbor in stream:
            key = (message.channel.suffix, neighbor)
            expected = 1 if seen.get(key, 0) == 0 else 0
            assert message.count == expected
            seen[key] = message.count

    def test_all_counts_are_subscriber_id(self):
        for message, _ in count_message_stream(2, ["n1"], 50, seed=2):
            assert message.count_id == SUBSCRIBER_ID

    def test_length_and_determinism(self):
        a = list(count_message_stream(8, ["x", "y"], 100, seed=5))
        b = list(count_message_stream(8, ["x", "y"], 100, seed=5))
        assert len(a) == 100 and a == b

    def test_validation(self):
        with pytest.raises(WorkloadError):
            list(count_message_stream(0, ["a"], 10))
        with pytest.raises(WorkloadError):
            list(count_message_stream(1, [], 10))
