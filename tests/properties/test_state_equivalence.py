"""Property tests: the columnar ECMP record bank is indistinguishable
from the legacy per-record dataclasses, and the refresh ring expires
soft state on exactly the ticks the full-table scan would.

Two layers:

* **Record level** — any sequence of field writes applied to a
  :class:`DownstreamRecord` (StateBank row) and a
  :class:`DictDownstreamRecord` leaves the two observably identical:
  every field, ``repr``, and ``__eq__`` in both directions. Rows
  recycle through the bank's free list without bleeding values.
* **Network level** — the identical subscribe/unsubscribe/silence
  workload driven on two :class:`ExpressNetwork` instances (columnar
  vs dict records; refresh ring vs legacy scan) settles to
  bit-identical ``ChannelState`` tables — including ``updated_at``
  stamps and ``udp_expirations`` counts, pinning the ring's
  expiry-timing equivalence with the scan.

The bank's columns are plain lists regardless of numpy, but CI still
drives this suite under ``REPRO_NO_NUMPY=1`` in the escape-hatches
job: the workload-level comparison exercises the accounting layer's
scalar fallback underneath the same equivalence assertions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ecmp.protocol import EcmpAgent
from repro.core.ecmp.state import DictDownstreamRecord, DownstreamRecord
from repro.core.network import ExpressNetwork
from repro.netsim.topology import TopologyBuilder

FIELD_WRITES = st.lists(
    st.one_of(
        st.tuples(st.just("count"), st.integers(min_value=0, max_value=1 << 31)),
        st.tuples(st.just("validated"), st.booleans()),
        st.tuples(st.just("udp"), st.booleans()),
        st.tuples(
            st.just("updated_at"),
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        ),
        st.tuples(st.just("presented_key"), st.one_of(st.none(), st.binary(max_size=8))),
    ),
    max_size=12,
)

RECORD_FIELDS = ("count", "validated", "presented_key", "updated_at", "udp")


def assert_records_identical(columnar, legacy):
    for field in RECORD_FIELDS:
        assert getattr(columnar, field) == getattr(legacy, field), field
    assert columnar == legacy
    assert legacy == columnar
    # Identical field rendering; only the class name may differ.
    assert repr(columnar).split("(", 1)[1] == repr(legacy).split("(", 1)[1]


class TestRecordEquivalence:
    @given(
        count=st.integers(min_value=0, max_value=1 << 31),
        validated=st.booleans(),
        udp=st.booleans(),
        updated_at=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        writes=FIELD_WRITES,
    )
    def test_any_write_sequence_is_backend_invisible(
        self, count, validated, udp, updated_at, writes
    ):
        kwargs = dict(
            count=count, validated=validated, udp=udp, updated_at=updated_at
        )
        columnar = DownstreamRecord(**kwargs)
        legacy = DictDownstreamRecord(**kwargs)
        assert_records_identical(columnar, legacy)
        for field, value in writes:
            setattr(columnar, field, value)
            setattr(legacy, field, value)
            assert_records_identical(columnar, legacy)

    def test_field_types_survive_the_bank(self):
        record = DownstreamRecord(count=3, updated_at=1.5)
        assert type(record.count) is int
        assert type(record.updated_at) is float
        assert type(record.validated) is bool
        assert type(record.udp) is bool

    def test_recycled_rows_start_fresh(self):
        # Dirty a row, release it (del), and confirm the next alloc —
        # which reuses the freed row — sees constructor defaults, not
        # the previous tenant's values.
        first = DownstreamRecord(count=99, validated=False, udp=True, updated_at=7.0)
        row = first._row
        del first
        second = DownstreamRecord()
        assert second._row == row
        assert_records_identical(second, DictDownstreamRecord())

    def test_unequal_to_differing_record(self):
        assert DownstreamRecord(count=1) != DictDownstreamRecord(count=2)
        assert DownstreamRecord(count=1) != object()


def state_snapshot(net):
    """Every agent's full channel table, bit-exact: (channel, neighbor)
    -> every record field, plus each agent's expiry/examination-free
    counters that must not depend on the backend."""
    snap = {}
    for name, agent in sorted(net.ecmp_agents.items()):
        tables = {}
        for channel, state in agent.channels.items():
            tables[(channel.source, channel.suffix)] = {
                neighbor: tuple(getattr(record, f) for f in RECORD_FIELDS)
                for neighbor, record in sorted(state.downstream.items())
            }
        snap[name] = {
            "tables": tables,
            "udp_expirations": agent.stats.get("udp_expirations"),
            "estimate_events": agent.stats.get("count_update_events"),
        }
    return snap


def build_star(columnar, refresh_ring):
    topo = TopologyBuilder.star(4)
    net = ExpressNetwork(
        topo,
        hosts=[f"leaf{i}" for i in range(4)],
        edge_udp=True,
        columnar=columnar,
        refresh_ring=refresh_ring,
    )
    net.run(until=0.01)
    return net


# One step per (leaf, channel) pair: join, leave (zero Count +
# re-query), or go silent (stop answering queries — soft-state expiry).
OPS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),  # leaf index (leaf0 = source)
        st.integers(min_value=0, max_value=1),  # channel index
        st.sampled_from(["join", "leave", "silence"]),
    ),
    min_size=1,
    max_size=8,
)


class TestControlPlaneEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(ops=OPS)
    def test_fast_and_legacy_control_planes_converge_identically(self, ops):
        interval = EcmpAgent.UDP_QUERY_INTERVAL
        nets = [
            build_star(columnar=True, refresh_ring=True),
            build_star(columnar=False, refresh_ring=False),
        ]
        channels = []
        for net in nets:
            src = net.source("leaf0")
            channels.append([src.allocate_channel(suffix=1 + k) for k in range(2)])
        for net, chans in zip(nets, channels):
            for step, (leaf, chan, action) in enumerate(ops):
                at = 0.1 + 0.25 * step
                host = f"leaf{leaf}"
                if action == "join":
                    net.sim.schedule_at(
                        at,
                        lambda n=host, c=chans[chan], net=net: (
                            net.host(n).subscribe(c)
                        ),
                    )
                elif action == "leave":
                    net.sim.schedule_at(
                        at,
                        lambda n=host, c=chans[chan], net=net: (
                            net.host(n).unsubscribe(c)
                        ),
                    )
                else:
                    # Vanish without a zero Count: the hub's soft state
                    # for this host must age out on the same tick under
                    # ring and scan.
                    def silence(n=host, net=net):
                        agent = net.ecmp_agents[n]
                        agent.subscriptions.clear()
                        agent.channels.clear()

                    net.sim.schedule_at(at, silence)
            # Run well past the soft-state horizon so every scheduled
            # expiry lands in both networks.
            horizon = (EcmpAgent.UDP_ROBUSTNESS + 2) * interval
            net.run(until=0.1 + 0.25 * len(ops) + horizon)
        fast, legacy = nets
        assert fast.sim.now == legacy.sim.now
        assert state_snapshot(fast) == state_snapshot(legacy)

    def test_mixed_backends_interoperate(self):
        # A columnar node and a dict node on the same wire: the record
        # backend is node-local, so a network where only some agents
        # are columnar must still converge (channels carry per-state
        # overrides, not globals).
        net = build_star(columnar=None, refresh_ring=None)
        hub = net.ecmp_agents["hub"]
        src = net.source("leaf0")
        ch = src.allocate_channel()
        net.host("leaf1").subscribe(ch)
        net.settle()
        assert hub.subscriber_count_estimate(ch) >= 1
