"""Property-based codec tests: every wire format round-trips for all
valid field values, and never crashes on truncation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channel import Channel
from repro.core.ecmp.countids import COUNT_ID_MAX
from repro.core.ecmp.messages import (
    Count,
    CountQuery,
    CountResponse,
    CountStatus,
    EcmpBatch,
    decode_batch,
    decode_message,
    encode_batch,
    encode_message,
)
from repro.core.keys import KEY_BYTES, ChannelKey
from repro.core.proactive import ToleranceCurve
from repro.errors import CodecError
from repro.inet.addr import format_address, parse_address
from repro.inet.headers import IPv4Header, UDPHeader
from repro.routing.fib import FibEntry

unicast_addresses = st.integers(min_value=0, max_value=0xDFFFFFFF).filter(
    lambda a: a < 0xE0000000
)
channels = st.builds(
    Channel.of,
    source=unicast_addresses,
    suffix=st.integers(min_value=0, max_value=(1 << 24) - 1),
)
count_ids = st.integers(min_value=1, max_value=COUNT_ID_MAX)
keys = st.one_of(
    st.none(), st.binary(min_size=KEY_BYTES, max_size=KEY_BYTES).map(ChannelKey)
)


class TestEcmpMessages:
    @given(
        channel=channels,
        count_id=count_ids,
        count=st.integers(min_value=0, max_value=0xFFFFFFFF),
        key=keys,
    )
    def test_count_round_trip(self, channel, count_id, count, key):
        message = Count(channel=channel, count_id=count_id, count=count, key=key)
        assert decode_message(encode_message(message)) == message

    @given(
        channel=channels,
        count_id=count_ids,
        timeout_ms=st.integers(min_value=0, max_value=10_000_000),
    )
    def test_query_round_trip(self, channel, count_id, timeout_ms):
        message = CountQuery(channel=channel, count_id=count_id, timeout=timeout_ms / 1000)
        parsed = decode_message(encode_message(message))
        assert parsed.channel == message.channel
        assert abs(parsed.timeout - message.timeout) < 1e-9

    @given(channel=channels, count_id=count_ids, status=st.sampled_from(CountStatus))
    def test_response_round_trip(self, channel, count_id, status):
        message = CountResponse(channel=channel, count_id=count_id, status=status)
        assert decode_message(encode_message(message)) == message

    @given(
        channel=channels,
        e_max=st.floats(min_value=0.01, max_value=8.0),
        alpha=st.floats(min_value=0.1, max_value=32.0),
        tau=st.floats(min_value=1.0, max_value=10_000.0),
    )
    def test_proactive_query_round_trip(self, channel, e_max, alpha, tau):
        curve = ToleranceCurve(e_max=e_max, alpha=alpha, tau=tau)
        message = CountQuery(channel=channel, count_id=1, timeout=1.0, proactive=curve)
        parsed = decode_message(encode_message(message))
        # float32 on the wire: compare at that precision.
        assert abs(parsed.proactive.alpha - alpha) <= abs(alpha) * 1e-6
        assert abs(parsed.proactive.tau - tau) <= abs(tau) * 1e-6

    @given(
        channel=channels,
        count=st.integers(min_value=0, max_value=0xFFFFFFFF),
        cut=st.integers(min_value=0, max_value=15),
    )
    def test_truncation_never_crashes_uncontrolled(self, channel, count, cut):
        data = encode_message(Count(channel=channel, count_id=1, count=count))
        try:
            decode_message(data[:cut])
        except CodecError:
            pass  # the only acceptable failure mode


#: Messages whose dataclass equality survives the wire exactly: Counts
#: (keyed and not), integer-millisecond CountQueries, and every
#: CountResponse status. Proactive curves are float32 on the wire, so
#: they are fuzzed separately above and excluded here.
exact_messages = st.one_of(
    st.builds(
        Count,
        channel=channels,
        count_id=count_ids,
        count=st.integers(min_value=0, max_value=0xFFFFFFFF),
        key=keys,
    ),
    st.builds(
        CountQuery,
        channel=channels,
        count_id=count_ids,
        timeout=st.integers(min_value=0, max_value=10_000_000).map(
            lambda ms: ms / 1000
        ),
    ),
    st.builds(
        CountResponse,
        channel=channels,
        count_id=count_ids,
        status=st.sampled_from(CountStatus),
    ),
)
batches = st.lists(exact_messages, min_size=1, max_size=12)


class TestBatchFrames:
    @given(messages=batches)
    def test_batch_round_trip(self, messages):
        assert decode_batch(encode_batch(messages)) == messages

    @given(messages=batches)
    def test_batch_round_trips_through_decode_message(self, messages):
        parsed = decode_message(encode_message(EcmpBatch(messages=tuple(messages))))
        assert isinstance(parsed, EcmpBatch)
        assert list(parsed.messages) == messages

    @given(messages=batches, data=st.data())
    def test_any_truncation_is_a_codec_error(self, messages, data):
        """Every strict prefix of a batch frame fails decoding with
        CodecError — never an uncontrolled crash, never a silently
        shorter batch."""
        encoded = encode_batch(messages)
        cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        try:
            decode_batch(encoded[:cut])
        except CodecError:
            return
        raise AssertionError(f"prefix of {cut}/{len(encoded)} bytes decoded")

    @given(messages=batches, trailer=st.binary(min_size=1, max_size=8))
    def test_trailing_garbage_is_a_codec_error(self, messages, trailer):
        encoded = encode_batch(messages)
        try:
            decode_batch(encoded + trailer)
        except CodecError:
            return
        raise AssertionError("trailing bytes after the final record decoded")

    @given(message=exact_messages, cut=st.data())
    def test_single_message_truncation_controlled(self, message, cut):
        """The satellite fix generalized: every message type now rejects
        both short buffers and trailing bytes."""
        encoded = encode_message(message)
        offset = cut.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        try:
            decode_message(encoded[:offset])
        except CodecError:
            pass
        else:
            raise AssertionError("truncated message decoded")
        with_sloppy_tail = encoded + b"\x00"
        try:
            decode_message(with_sloppy_tail)
        except CodecError:
            pass
        else:
            raise AssertionError("message with trailing byte decoded")


class TestHeaderCodecs:
    @given(
        src=st.integers(min_value=0, max_value=0xFFFFFFFF),
        dst=st.integers(min_value=0, max_value=0xFFFFFFFF),
        proto=st.integers(min_value=0, max_value=255),
        ttl=st.integers(min_value=0, max_value=255),
        length=st.integers(min_value=20, max_value=0xFFFF),
    )
    def test_ipv4_round_trip(self, src, dst, proto, ttl, length):
        header = IPv4Header(src=src, dst=dst, proto=proto, ttl=ttl, total_length=length)
        assert IPv4Header.unpack(header.pack()) == header

    @given(
        src_port=st.integers(min_value=0, max_value=0xFFFF),
        dst_port=st.integers(min_value=0, max_value=0xFFFF),
        payload=st.binary(max_size=512),
    )
    def test_udp_round_trip(self, src_port, dst_port, payload):
        data = UDPHeader(src_port=src_port, dst_port=dst_port).pack(payload)
        header, parsed = UDPHeader.unpack(data)
        assert (header.src_port, header.dst_port, parsed) == (src_port, dst_port, payload)


class TestAddressAndFib:
    @given(address=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_address_round_trip(self, address):
        assert parse_address(format_address(address)) == address

    @given(
        source=st.integers(min_value=0, max_value=0xFFFFFFFF),
        suffix=st.integers(min_value=0, max_value=(1 << 24) - 1),
        iif=st.integers(min_value=0, max_value=31),
        outgoing=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_fib_entry_round_trip(self, source, suffix, iif, outgoing):
        entry = FibEntry(
            source=source, dest_suffix=suffix, incoming_interface=iif, outgoing=outgoing
        )
        packed = entry.pack()
        assert len(packed) == 12
        assert FibEntry.unpack(packed) == entry

    @given(indexes=st.sets(st.integers(min_value=0, max_value=31)))
    def test_fib_bitmap_matches_set_model(self, indexes):
        entry = FibEntry(source=1, dest_suffix=1, incoming_interface=0)
        for index in indexes:
            entry.add_outgoing(index)
        assert entry.outgoing_interfaces() == sorted(indexes)
        assert entry.fanout() == len(indexes)
        for index in list(indexes)[: len(indexes) // 2]:
            entry.remove_outgoing(index)
            indexes.discard(index)
        assert entry.outgoing_interfaces() == sorted(indexes)
