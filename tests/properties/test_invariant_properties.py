"""Property-based protocol invariants on randomized topologies.

* The live ECMP tree equals the analytic reverse-shortest-path tree.
* At quiescence, a CountQuery returns the exact subscriber count.
* ON_CHANGE propagation keeps the source's running estimate exact.
* The tolerance curve is monotone and bounded for all parameters.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CountPropagation, ExpressNetwork
from repro.core.proactive import ToleranceCurve, relative_error
from repro.netsim.topology import TopologyBuilder
from repro.routing.baselines import ExpressTreeModel

SIM_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_random_net(n_routers, n_hosts, seed, propagation=CountPropagation.TREE_ONLY):
    topo = TopologyBuilder.random_connected(n_routers, seed=seed)
    hosts = []
    for i in range(n_hosts):
        name = f"host{i}"
        topo.add_node(name)
        topo.add_link(name, f"n{i % n_routers}", delay=0.0005)
        hosts.append(name)
    net = ExpressNetwork(topo, hosts=hosts, propagation=propagation)
    net.run(until=0.01)
    return net, hosts


class TestTreeInvariants:
    @SIM_SETTINGS
    @given(
        n_routers=st.integers(min_value=3, max_value=15),
        n_hosts=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
        member_mask=st.integers(min_value=1, max_value=63),
    )
    def test_live_tree_equals_analytic_tree(self, n_routers, n_hosts, seed, member_mask):
        net, hosts = build_random_net(n_routers, n_hosts, seed)
        source = net.source(hosts[0])
        channel = source.allocate_channel()
        members = [
            host
            for i, host in enumerate(hosts[1:])
            if member_mask & (1 << i)
        ]
        model = ExpressTreeModel(net.topo, net.routing, source=hosts[0])
        for member in members:
            net.host(member).subscribe(channel)
            model.join(member)
        net.settle()
        live_edges = {frozenset(edge) for edge in net.tree_edges(channel)}
        assert live_edges == model.tree_edges()

    @SIM_SETTINGS
    @given(
        n_routers=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
        churn=st.lists(
            st.tuples(st.integers(min_value=0, max_value=4), st.booleans()),
            min_size=1,
            max_size=12,
        ),
    )
    def test_count_query_exact_after_churn(self, n_routers, seed, churn):
        net, hosts = build_random_net(n_routers, 5, seed)
        source = net.source(hosts[0])
        channel = source.allocate_channel()
        subscribed = set()
        for host_index, join in churn:
            host = hosts[host_index]
            if join:
                net.host(host).subscribe(channel)
                subscribed.add(host)
            else:
                net.host(host).unsubscribe(channel)
                subscribed.discard(host)
            net.settle(0.5)
        net.settle()
        result = source.count_query(channel, timeout=5.0)
        net.settle(6.0)
        assert result.count == len(subscribed)

    @SIM_SETTINGS
    @given(
        n_routers=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
        churn=st.lists(
            st.tuples(st.integers(min_value=0, max_value=4), st.booleans()),
            min_size=1,
            max_size=12,
        ),
    )
    def test_on_change_estimate_exact_at_quiescence(self, n_routers, seed, churn):
        net, hosts = build_random_net(
            n_routers, 5, seed, propagation=CountPropagation.ON_CHANGE
        )
        source = net.source(hosts[0])
        channel = source.allocate_channel()
        subscribed = set()
        for host_index, join in churn:
            host = hosts[host_index]
            if join:
                net.host(host).subscribe(channel)
                subscribed.add(host)
            else:
                net.host(host).unsubscribe(channel)
                subscribed.discard(host)
        net.settle(5.0)
        agent = net.ecmp_agents[hosts[0]]
        assert agent.subscriber_count_estimate(channel) == len(subscribed)

    @SIM_SETTINGS
    @given(
        n_routers=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_delivery_reaches_exactly_subscribers(self, n_routers, seed):
        net, hosts = build_random_net(n_routers, 5, seed)
        source = net.source(hosts[0])
        channel = source.allocate_channel()
        members = hosts[1:4]
        for member in members:
            net.host(member).subscribe(channel)
        net.settle()
        source.send(channel)
        net.settle()
        for host in hosts[1:]:
            handle = net.ecmp_agents[host].subscriptions.get(channel)
            if host in members:
                assert handle.packets_received == 1
            else:
                assert handle is None


class TestCurveProperties:
    @given(
        e_max=st.floats(min_value=0.01, max_value=5.0),
        alpha=st.floats(min_value=0.1, max_value=20.0),
        tau=st.floats(min_value=0.5, max_value=1000.0),
        dt_pair=st.tuples(
            st.floats(min_value=0.0, max_value=2000.0),
            st.floats(min_value=0.0, max_value=2000.0),
        ),
    )
    def test_tolerance_monotone_and_bounded(self, e_max, alpha, tau, dt_pair):
        curve = ToleranceCurve(e_max=e_max, alpha=alpha, tau=tau)
        lo, hi = sorted(dt_pair)
        assert 0.0 <= curve.tolerance(hi) <= curve.tolerance(lo) <= e_max
        assert curve.tolerance(tau) == 0.0

    @given(
        e_max=st.floats(min_value=0.01, max_value=5.0),
        alpha=st.floats(min_value=0.1, max_value=20.0),
        tau=st.floats(min_value=0.5, max_value=1000.0),
        error=st.floats(min_value=1e-6, max_value=10.0),
    )
    def test_deadline_bounded_by_tau(self, e_max, alpha, tau, error):
        curve = ToleranceCurve(e_max=e_max, alpha=alpha, tau=tau)
        assert 0.0 < curve.deadline_for_error(error) <= tau

    @given(
        current=st.integers(min_value=0, max_value=10**9),
        advertised=st.integers(min_value=0, max_value=10**9),
    )
    def test_relative_error_properties(self, current, advertised):
        error = relative_error(current, advertised)
        assert error >= 0.0
        assert (error == 0.0) == (current == advertised)
        # Symmetric in its arguments.
        assert error == relative_error(advertised, current)
