"""Property suite: fault instrumentation is free, and faults heal.

Two contracts from the fault-injection subsystem:

* **Empty-plan bit-identity** — arming an empty :class:`FaultPlan`
  (with a :class:`FaultMonitor` attached) schedules zero simulator
  events and draws zero RNG values, so an instrumented run's settled
  ChannelState tables *and* ``events_processed`` are identical to a
  plain run's, across heap/wheel schedulers × native core on/off.
  ``events_processed`` equality is the strong claim: one stray
  scheduled callback anywhere would break it.

* **Crash/restart re-convergence** — a run that crashes a transit
  router (full soft-state loss, links down) and restarts it settles
  back to the *same* ChannelState tables as the no-fault oracle run:
  the §3 soft-state machinery rebuilds everything, with no orphaned or
  divergent state left behind. Likewise a duplicate-only wire
  mutation window (§3.2 idempotence: replaying a Count re-asserts the
  same fact).
"""

import random

import pytest

from repro import ExpressNetwork, TopologyBuilder
from repro.faults import FaultInjector, FaultMonitor, FaultPlan
from repro.netsim.arena import ARENA

N_EMPTY_CASES = 2


def snapshot(net: ExpressNetwork) -> dict:
    """Every agent's full channel table, in comparable form (the
    test_scheduler_equivalence snapshot shape)."""
    table = {}
    for name, agent in sorted(net.ecmp_agents.items()):
        for channel, state in agent.channels.items():
            downstream = {
                peer: (record.count, record.validated)
                for peer, record in state.downstream.items()
                if record.count > 0
            }
            table[(name, channel)] = (state.upstream, state.advertised, downstream)
    return table


def build_net(scheduler: str, native: bool) -> ExpressNetwork:
    topo = TopologyBuilder.isp(
        n_transit=3, stubs_per_transit=2, hosts_per_stub=2, seed=7,
        scheduler=scheduler,
    )
    # The per-run native-core switch (what Simulator(native=...) sets).
    topo.sim._native = native
    topo.sim._arena = ARENA if native else None
    net = ExpressNetwork(topo)
    net.run(until=0.01)
    return net


def schedule_workload(net: ExpressNetwork, seed: int) -> float:
    """Randomized join/leave churn over 3 channels; returns end time."""
    rng = random.Random(seed)
    hosts = sorted(net.host_names)
    source = net.source(hosts[0])
    channels = [source.allocate_channel() for _ in range(3)]
    subscribers = hosts[1:]
    when = 0.05
    for _ in range(30):
        when += rng.uniform(0.002, 0.1)
        host = rng.choice(subscribers)
        channel = rng.choice(channels)
        if rng.random() < 0.65:
            net.sim.schedule_at(
                when, lambda h=host, c=channel: net.host(h).subscribe(c)
            )
        else:
            net.sim.schedule_at(
                when, lambda h=host, c=channel: net.host(h).unsubscribe(c)
            )
    return when


def run_workload(
    scheduler: str, native: bool, seed: int, instrumented: bool
) -> tuple[dict, int]:
    net = build_net(scheduler, native)
    end = schedule_workload(net, seed)
    if instrumented:
        monitor = FaultMonitor(net)
        injector = FaultInjector(net, FaultPlan(seed=seed), monitor=monitor)
        injector.arm()
        monitor.begin()
    net.run(until=end)
    net.settle(3.0)
    if instrumented:
        report = monitor.report(injector)
        assert report["faults_fired"] == 0
        assert report["orphaned_state"] == 0
    return snapshot(net), net.sim.events_processed


@pytest.mark.parametrize("scheduler", ["heap", "wheel"])
@pytest.mark.parametrize("native", [True, False])
@pytest.mark.parametrize("case", range(N_EMPTY_CASES))
def test_empty_plan_run_is_bit_identical(scheduler, native, case):
    seed = 0xFA17 + case
    plain = run_workload(scheduler, native, seed, instrumented=False)
    instrumented = run_workload(scheduler, native, seed, instrumented=True)
    assert instrumented == plain


# ---------------------------------------------------------------------------
# crash/restart re-convergence to the no-fault oracle
# ---------------------------------------------------------------------------


def settled_state(seed: int, plan_for=None, settle: float = 45.0):
    """Run the workload, let it settle, optionally arm a plan built by
    ``plan_for(net, now)`` after the churn window, settle again, and
    return the final table."""
    net = build_net("heap", native=False)
    end = schedule_workload(net, seed)
    net.run(until=end)
    net.settle(3.0)
    if plan_for is not None:
        injector = FaultInjector(net, plan_for(net, net.sim.now))
        injector.arm()
    net.settle(settle)
    return snapshot(net)


@pytest.mark.parametrize("victim", ["t1", "e0_0"])
def test_crash_restart_reconverges_to_oracle(victim):
    seed = 0xC4A5
    oracle = settled_state(seed)
    assert oracle  # the workload actually built subscriptions

    def plan_for(net, now):
        return FaultPlan().crash_restart(now + 1.0, victim, downtime=3.0)

    healed = settled_state(seed, plan_for)
    assert healed == oracle


def test_duplicate_only_mutation_reconverges_to_oracle():
    seed = 0xC4A6
    oracle = settled_state(seed)

    def plan_for(net, now):
        # Duplicate every control frame on a core link for 10 seconds:
        # §3.2 idempotence says replaying state messages re-asserts the
        # same facts, so the settled tables must not move.
        return FaultPlan(seed=9).wire_mutate(
            now + 0.5, "t0", "t1", duration=10.0, duplicate=1.0
        )

    healed = settled_state(seed, plan_for)
    assert healed == oracle
