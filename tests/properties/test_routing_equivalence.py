"""Property test: incremental SPF ≡ from-scratch SPF.

The incremental machinery in :class:`UnicastRouting` (lazy destination
trees, dirty-set invalidation, full-recompute fallback) must be
*observationally identical* to the seed's recompute-everything
behaviour. This drives one long-lived routing instance through
randomized link-event sequences on randomized connected topologies and,
after every event, compares its full parent tables and distance maps
for every destination against a routing instance built from scratch on
the same topology state.

Seeded ``random.Random`` instances (not hypothesis) keep the sequence
count explicit — the PR's acceptance criterion asks for ≥ 50 randomized
sequences — and fully deterministic across runs.
"""

import random

import pytest

from repro.netsim.topology import TopologyBuilder
from repro.routing.unicast import UnicastRouting

N_SEQUENCES = 56
EVENTS_PER_SEQUENCE = 8


def _assert_equivalent(incremental: UnicastRouting, topo) -> None:
    """Compare against a from-scratch instance on every destination.

    A fresh ``UnicastRouting`` has no snapshot history, so each of its
    trees is a plain Dijkstra over the current adjacency — exactly the
    seed's full recompute, destination by destination.
    """
    fresh = UnicastRouting(topo)
    for dest in topo.nodes:
        assert incremental.spanning_tree_to(dest) == fresh.spanning_tree_to(dest)
        # Force both trees, then compare the complete distance maps
        # (identical float arithmetic on identical adjacency — exact).
        assert incremental._dist[dest] == fresh._dist[dest]


def _apply_random_event(rng: random.Random, topo) -> None:
    link = rng.choice(topo.links)
    roll = rng.random()
    if roll < 0.45:
        link.fail()
    elif roll < 0.90:
        link.recover()
    else:
        # Metric change: reweighting a link must invalidate like any
        # other link-state event.
        link.delay = rng.uniform(0.0005, 0.0030)


@pytest.mark.parametrize("case", range(N_SEQUENCES))
def test_incremental_matches_from_scratch(case):
    rng = random.Random(0xE59 + case)
    n = rng.randrange(5, 14)
    topo = TopologyBuilder.random_connected(
        n, extra_edge_prob=0.25, seed=case
    )
    incremental = UnicastRouting(topo)
    _assert_equivalent(incremental, topo)
    for _ in range(EVENTS_PER_SEQUENCE):
        _apply_random_event(rng, topo)
        incremental.recompute()
        _assert_equivalent(incremental, topo)


def test_the_sweep_exercises_the_partial_path():
    """Guard against the property above passing vacuously: across a
    handful of the same seeds, the dirty-set (partial) path must
    actually fire and retain trees."""
    partials = 0
    retained = 0
    for case in range(10):
        rng = random.Random(0xE59 + case)
        n = rng.randrange(5, 14)
        topo = TopologyBuilder.random_connected(
            n, extra_edge_prob=0.25, seed=case
        )
        incremental = UnicastRouting(topo)
        for dest in topo.nodes:
            incremental.spanning_tree_to(dest)
        for _ in range(EVENTS_PER_SEQUENCE):
            _apply_random_event(rng, topo)
            incremental.recompute()
            for dest in topo.nodes:
                incremental.spanning_tree_to(dest)
        partials += incremental.partial_invalidations
        retained += incremental.trees_retained
    assert partials > 0
    assert retained > 0
