"""Property tests: the zero-copy codec is byte-identical to the legacy
concatenating codec — same frames out, same objects and same error
messages back in, for every message shape and every corruption.

The fast path (``pack_into`` over one preallocated bytearray on
encode, ``unpack_from`` over memoryview windows on decode) must be
observationally indistinguishable from the legacy implementation it
replaced; ``REPRO_ZERO_COPY=0`` keeps the legacy codec live as the
reference.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.channel import Channel
from repro.core.ecmp.countids import COUNT_ID_MAX
from repro.core.ecmp.messages import (
    Count,
    CountQuery,
    CountResponse,
    CountStatus,
    decode_batch,
    decode_message,
    encode_batch,
    encode_message,
    set_zero_copy,
)
from repro.core.keys import KEY_BYTES, ChannelKey
from repro.core.proactive import ToleranceCurve
from repro.errors import ReproError

unicast_addresses = st.integers(min_value=0, max_value=0xDFFFFFFF)
channels = st.builds(
    Channel.of,
    source=unicast_addresses,
    suffix=st.integers(min_value=0, max_value=(1 << 24) - 1),
)
count_ids = st.integers(min_value=1, max_value=COUNT_ID_MAX)
keys = st.one_of(
    st.none(), st.binary(min_size=KEY_BYTES, max_size=KEY_BYTES).map(ChannelKey)
)
curves = st.one_of(
    st.none(),
    st.builds(
        # width=32: the wire carries float32, so float32-exact inputs
        # round-trip bit-identically.
        ToleranceCurve,
        e_max=st.floats(min_value=0.015625, max_value=8.0, width=32),
        alpha=st.floats(min_value=0.125, max_value=32.0, width=32),
        tau=st.floats(min_value=1.0, max_value=8192.0, width=32),
    ),
)
counts = st.builds(
    Count,
    channel=channels,
    count_id=count_ids,
    count=st.integers(min_value=0, max_value=0xFFFFFFFF),
    key=keys,
)
queries = st.builds(
    CountQuery,
    channel=channels,
    count_id=count_ids,
    timeout=st.integers(min_value=0, max_value=0xFFFFF).map(lambda ms: ms / 1000.0),
    proactive=curves,
)
responses = st.builds(
    CountResponse,
    channel=channels,
    count_id=count_ids,
    status=st.sampled_from(CountStatus),
)
messages = st.one_of(counts, queries, responses)


def legacy(fn, *args):
    """Run one codec call on the legacy implementation."""
    prior = set_zero_copy(False)
    try:
        return fn(*args)
    finally:
        set_zero_copy(prior)


def outcome(fn, *args):
    """Result or (error-type, message) — for comparing error paths.

    Catches every library error, not just ``CodecError``: corrupt
    bytes can surface as e.g. ``CountIdError`` from a message
    constructor, and the two codecs must agree on *which* error and
    its text, whatever the class.
    """
    try:
        return ("ok", fn(*args))
    except ReproError as exc:
        return ("err", type(exc).__name__, str(exc))


class TestEncodeEquivalence:
    @given(message=messages)
    def test_single_frames_byte_identical(self, message):
        assert encode_message(message) == legacy(encode_message, message)

    @given(batch=st.lists(messages, min_size=1, max_size=8))
    def test_batch_frames_byte_identical(self, batch):
        assert encode_batch(batch) == legacy(encode_batch, batch)

    def test_empty_batch_same_error(self):
        assert outcome(encode_batch, []) == legacy(outcome, encode_batch, [])

    def test_non_message_same_error(self):
        assert outcome(encode_message, "nope") == legacy(
            outcome, encode_message, "nope"
        )

    @given(message=queries)
    def test_unencodable_timeout_same_error(self, message):
        bad = CountQuery(
            channel=message.channel,
            count_id=message.count_id,
            timeout=2**33,
            proactive=message.proactive,
        )
        fast = outcome(encode_message, bad)
        assert fast == legacy(outcome, encode_message, bad)
        assert fast[0] == "err"


class TestDecodeEquivalence:
    @given(message=messages)
    def test_round_trips_agree(self, message):
        frame = encode_message(message)
        assert decode_message(frame) == legacy(decode_message, frame)
        assert decode_message(frame) == message

    @given(batch=st.lists(messages, min_size=1, max_size=6))
    def test_batch_round_trips_agree(self, batch):
        frame = encode_batch(batch)
        assert decode_batch(frame) == legacy(decode_batch, frame)
        assert decode_batch(frame) == batch

    @given(message=messages, cut=st.integers(min_value=0, max_value=60))
    def test_truncations_raise_identical_errors(self, message, cut):
        frame = encode_message(message)
        mutated = frame[: max(len(frame) - cut, 0)]
        assert outcome(decode_message, mutated) == legacy(
            outcome, decode_message, mutated
        )

    @given(message=messages, tail=st.binary(min_size=1, max_size=8))
    def test_trailing_bytes_raise_identical_errors(self, message, tail):
        mutated = encode_message(message) + tail
        fast = outcome(decode_message, mutated)
        assert fast == legacy(outcome, decode_message, mutated)
        assert fast[0] == "err"

    @given(
        batch=st.lists(messages, min_size=1, max_size=4),
        cut=st.integers(min_value=1, max_value=40),
        tail=st.binary(max_size=4),
    )
    def test_corrupted_batches_raise_identical_errors(self, batch, cut, tail):
        frame = encode_batch(batch)
        for mutated in (frame[: max(len(frame) - cut, 0)], frame + tail):
            assert outcome(decode_batch, mutated) == legacy(
                outcome, decode_batch, mutated
            )

    @given(byte=st.integers(min_value=0, max_value=255))
    def test_unknown_type_bytes_raise_identical_errors(self, byte):
        frame = bytes([byte]) + bytes(11)
        assert outcome(decode_message, frame) == legacy(
            outcome, decode_message, frame
        )

    @given(message=messages)
    def test_fast_decode_accepts_memoryview(self, message):
        frame = encode_message(message)
        assert decode_message(memoryview(frame)) == message
        assert legacy(decode_message, memoryview(frame)) == message


class TestNestedBatch:
    def test_nested_batch_same_error(self):
        from repro.core.ecmp.messages import EcmpBatch

        inner = Count(channel=Channel.of(1, 1), count_id=1, count=1)
        nested = [EcmpBatch(messages=(inner,))]
        fast = outcome(encode_batch, nested)
        assert fast == legacy(outcome, encode_batch, nested)
        assert fast == ("err", "CodecError", "batches cannot nest")
