"""Property test: batched send path ≡ unbatched send path.

The dirty-channel queue (last-writer-wins coalescing, urgency flushes,
the Nagle-style flush timer) must be *semantically invisible*: after
any join/leave workload settles, every agent's ChannelState table —
upstream choice, advertised count, per-neighbor downstream counts and
validation bits — must be byte-for-byte identical to a run of the same
workload on an ``ExpressNetwork(batching=False)``, which is the seed's
one-packet-per-message behaviour.

Seeded ``random.Random`` instances (not hypothesis) keep the sequences
deterministic across runs and identical between the two networks being
compared, matching the idiom of ``test_routing_equivalence``.
"""

import random

import pytest

from repro import ExpressNetwork, TopologyBuilder

N_SEQUENCES = 10
EVENTS_PER_SEQUENCE = 36
N_CHANNELS = 3


def snapshot(net: ExpressNetwork) -> dict:
    """Every agent's full channel table, in comparable form."""
    table = {}
    for name, agent in sorted(net.ecmp_agents.items()):
        for channel, state in agent.channels.items():
            downstream = {
                peer: (record.count, record.validated)
                for peer, record in state.downstream.items()
                if record.count > 0
            }
            table[(name, channel)] = (state.upstream, state.advertised, downstream)
    return table


def drive(batching: bool, seed: int) -> dict:
    """Build the network, run one randomized workload, snapshot."""
    rng = random.Random(seed)
    topo = TopologyBuilder.isp(
        n_transit=3, stubs_per_transit=2, hosts_per_stub=2, seed=7
    )
    net = ExpressNetwork(topo, batching=batching)
    net.run(until=0.01)

    hosts = sorted(net.host_names)
    source = net.source(hosts[0])
    channels = [source.allocate_channel() for _ in range(N_CHANNELS)]
    subscribers = hosts[1:]

    when = 0.05
    for _ in range(EVENTS_PER_SEQUENCE):
        when += rng.uniform(0.002, 0.12)
        host = rng.choice(subscribers)
        channel = rng.choice(channels)
        if rng.random() < 0.65:
            net.sim.schedule_at(
                when, lambda h=host, c=channel: net.host(h).subscribe(c)
            )
        else:
            net.sim.schedule_at(
                when, lambda h=host, c=channel: net.host(h).unsubscribe(c)
            )
    net.run(until=when)
    net.settle(3.0)
    return snapshot(net)


@pytest.mark.parametrize("case", range(N_SEQUENCES))
def test_batched_state_tables_match_unbatched(case):
    seed = 0xBA7C + case
    assert drive(batching=True, seed=seed) == drive(batching=False, seed=seed)


def test_link_flap_state_tables_match_unbatched():
    """Deterministic churn case: a tree link fails and recovers mid-
    subscription (exercising the reconnect batch resend and the queue
    drop on session death), and the settled tables still match."""

    def drive_flap(batching: bool) -> dict:
        topo = TopologyBuilder.line(3)
        topo.add_node("hsrc")
        topo.add_node("hsub1")
        topo.add_node("hsub2")
        topo.add_link("hsrc", "n0", delay=0.001)
        topo.add_link("hsub1", "n2", delay=0.001)
        topo.add_link("hsub2", "n2", delay=0.001)
        net = ExpressNetwork(topo, hosts=["hsrc", "hsub1", "hsub2"], batching=batching)
        net.run(until=0.01)
        source = net.source("hsrc")
        channels = [source.allocate_channel() for _ in range(4)]
        for channel in channels:
            net.host("hsub1").subscribe(channel)
            net.host("hsub2").subscribe(channel)
        net.settle()
        link = net.topo.link_between("n1", "n2")
        link.fail()
        net.settle()
        link.recover()
        # Past hysteresis, so any deferred re-homing has fired.
        net.settle(6.0)
        return snapshot(net)

    assert drive_flap(batching=True) == drive_flap(batching=False)
