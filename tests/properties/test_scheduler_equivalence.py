"""Property test: timer-wheel scheduler ≡ heap scheduler.

The wheel must be *observationally identical* to the heap: for any
workload, the same seed dispatches the same events in the same
``(time, seq)`` order, leaves the same protocol state behind, and
counts the same ``events_processed``. The heap is the oracle — it is
the seed's original scheduler — so any divergence is a wheel bug.

Three layers of checking:

* raw engine traces (dispatch order as ``(time, seq, name)`` tuples)
  over randomized schedules that include mid-dispatch scheduling,
  cancellation, and far-future events that exercise the overflow heap
  and cascade path;
* full-stack ``ExpressNetwork`` runs: settled ChannelState tables
  (the ``test_batching_equivalence`` snapshot) must match;
* ``events_processed`` equality on every comparison.

Seeded ``random.Random`` instances (not hypothesis) keep sequences
deterministic, matching the idiom of the other property tests.
"""

import random

import pytest

from repro import ExpressNetwork, TopologyBuilder
from repro.netsim.engine import Simulator

N_ENGINE_CASES = 8
N_NETWORK_CASES = 6


# ---------------------------------------------------------------------------
# raw engine equivalence
# ---------------------------------------------------------------------------


def run_engine_trace(scheduler: str, seed: int) -> tuple[list, int]:
    """Drive one randomized schedule; return (dispatch trace, count).

    The workload deliberately mixes near events (open-slot and bucket
    paths), far events (overflow + cascade), simultaneous events (seq
    tie-break), mid-dispatch scheduling (insert at or after the open
    slot), and cancellations (lazy skip + compaction).
    """
    rng = random.Random(seed)
    sim = Simulator(seed=0, scheduler=scheduler, wheel_slots=256)
    trace = []
    cancellable = []

    def record(tag):
        trace.append((sim.now, tag))
        # Mid-dispatch behaviour: sometimes schedule follow-ups
        # (including zero-delay, landing in the open slot) and
        # sometimes cancel a pending event.
        roll = rng.random()
        if roll < 0.30:
            delay = rng.choice([0.0, 0.0004, 0.003, 0.9, 40.0])
            cancellable.append(
                sim.schedule(delay, lambda t=f"{tag}+f": record(t), name=str(tag))
            )
        elif roll < 0.45 and cancellable:
            cancellable.pop(rng.randrange(len(cancellable))).cancel()

    for i in range(120):
        # Spread across three regimes: sub-slot, in-horizon, beyond the
        # 256-slot horizon (256 * 0.001 = 0.256s) to force overflow.
        when = rng.choice(
            [
                rng.uniform(0.0, 0.002),
                rng.uniform(0.0, 0.2),
                rng.uniform(0.3, 5.0),
                rng.uniform(50.0, 90.0),
            ]
        )
        event = sim.schedule_at(when, lambda t=i: record(t), name=str(i))
        if rng.random() < 0.2:
            cancellable.append(event)
    # Duplicate timestamps: seq must break the tie identically.
    for j in range(10):
        sim.schedule_at(0.5, lambda t=f"dup{j}": record(t))
    sim.run()
    return trace, sim.events_processed


@pytest.mark.parametrize("case", range(N_ENGINE_CASES))
def test_dispatch_trace_matches_heap(case):
    seed = 0x3E51 + case
    heap_trace, heap_count = run_engine_trace("heap", seed)
    wheel_trace, wheel_count = run_engine_trace("wheel", seed)
    assert wheel_trace == heap_trace
    assert wheel_count == heap_count


def test_bounded_run_matches_heap():
    """run(until=...) segment by segment — the wheel's cursor bound
    (limit_slot) must not reorder or drop events at window edges."""

    def drive(scheduler):
        rng = random.Random(0xB0B)
        sim = Simulator(seed=0, scheduler=scheduler, wheel_slots=128)
        out = []
        for i in range(200):
            sim.schedule_at(
                rng.uniform(0.0, 3.0), lambda t=i: out.append((sim.now, t))
            )
        # Far-future event beyond every window: its overflow slot must
        # not drag the cursor forward (the degradation the bound fixes).
        sim.schedule_at(500.0, lambda: out.append((sim.now, "far")))
        for until in (0.25, 0.5, 0.500001, 1.0, 2.9999, 3.0, 600.0):
            sim.run(until=until)
            out.append(("mark", until, sim.now, sim.events_processed))
        return out

    assert drive("wheel") == drive("heap")


def test_max_events_matches_heap():
    def drive(scheduler):
        rng = random.Random(7)
        sim = Simulator(seed=0, scheduler=scheduler)
        out = []
        for i in range(50):
            sim.schedule_at(rng.uniform(0.0, 1.0), lambda t=i: out.append(t))
        while sim.run(max_events=7):
            out.append(("chunk", sim.events_processed))
        return out

    assert drive("wheel") == drive("heap")


# ---------------------------------------------------------------------------
# full-stack equivalence
# ---------------------------------------------------------------------------


def snapshot(net: ExpressNetwork) -> dict:
    """Every agent's full channel table, in comparable form (same shape
    as test_batching_equivalence's snapshot)."""
    table = {}
    for name, agent in sorted(net.ecmp_agents.items()):
        for channel, state in agent.channels.items():
            downstream = {
                peer: (record.count, record.validated)
                for peer, record in state.downstream.items()
                if record.count > 0
            }
            table[(name, channel)] = (state.upstream, state.advertised, downstream)
    return table


def drive_network(scheduler: str, seed: int) -> tuple[dict, int]:
    rng = random.Random(seed)
    topo = TopologyBuilder.isp(
        n_transit=3, stubs_per_transit=2, hosts_per_stub=2, seed=7,
        scheduler=scheduler,
    )
    net = ExpressNetwork(topo)
    net.run(until=0.01)

    hosts = sorted(net.host_names)
    source = net.source(hosts[0])
    channels = [source.allocate_channel() for _ in range(3)]
    subscribers = hosts[1:]
    # One aggregated block rides along so block_adjust sits in the
    # compared workload too.
    block = net.subscriber_block("e0_0")

    when = 0.05
    for _ in range(40):
        when += rng.uniform(0.002, 0.12)
        roll = rng.random()
        host = rng.choice(subscribers)
        channel = rng.choice(channels)
        if roll < 0.55:
            net.sim.schedule_at(
                when, lambda h=host, c=channel: net.host(h).subscribe(c)
            )
        elif roll < 0.8:
            net.sim.schedule_at(
                when, lambda h=host, c=channel: net.host(h).unsubscribe(c)
            )
        elif roll < 0.9:
            n = rng.randint(1, 50)
            net.sim.schedule_at(when, lambda c=channel, k=n: block.join(c, k))
        else:
            n = rng.randint(1, 50)
            net.sim.schedule_at(when, lambda c=channel, k=n: block.leave(c, k))
    net.run(until=when)
    net.settle(3.0)
    return snapshot(net), net.sim.events_processed


@pytest.mark.parametrize("case", range(N_NETWORK_CASES))
def test_network_state_tables_match_heap(case):
    seed = 0x4EE1 + case
    heap_table, heap_events = drive_network("heap", seed)
    wheel_table, wheel_events = drive_network("wheel", seed)
    assert wheel_table == heap_table
    assert wheel_events == heap_events


# ---------------------------------------------------------------------------
# schedule_bulk ≡ sequential schedule_at (the native-core contract)
# ---------------------------------------------------------------------------


def bulk_items(seed: int, n: int = 150) -> list:
    """Randomized (time, tag) pairs mixing open-slot, in-horizon,
    overflow, and duplicate timestamps (tie-break coverage), shuffled
    so submission order disagrees with time order."""
    rng = random.Random(seed)
    times = (
        [rng.uniform(0.0, 0.002) for _ in range(n // 4)]
        + [rng.uniform(0.0, 0.2) for _ in range(n // 2)]
        + [rng.uniform(0.3, 40.0) for _ in range(n // 4)]
        + [0.07] * 12  # ties: input order must be preserved
    )
    rng.shuffle(times)
    return [(t, i) for i, t in enumerate(times)]


@pytest.mark.parametrize("scheduler", ["heap", "wheel"])
@pytest.mark.parametrize("native", [True, False])
@pytest.mark.parametrize("case", range(4))
def test_schedule_bulk_matches_sequential_schedule_at(scheduler, native, case):
    items = bulk_items(0xB17C + case)

    def drive(bulk: bool) -> tuple[list, int]:
        sim = Simulator(
            seed=0, scheduler=scheduler, wheel_slots=256, native=native
        )
        out = []
        if bulk:
            sim.schedule_bulk(
                [(t, lambda g=tag: out.append((sim.now, g))) for t, tag in items],
                name="bulk",
            )
        else:
            for t, tag in items:
                sim.schedule_at(t, lambda g=tag: out.append((sim.now, g)), name="bulk")
        sim.run()
        return out, sim.events_processed

    assert drive(True) == drive(False)


@pytest.mark.parametrize("scheduler", ["heap", "wheel"])
def test_schedule_bulk_rejects_past_times_atomically(scheduler):
    from repro.errors import SimulationError

    sim = Simulator(seed=0, scheduler=scheduler)
    sim.schedule_at(1.0, lambda: None)
    sim.run(until=0.5)
    with pytest.raises(SimulationError):
        sim.schedule_bulk([(0.6, lambda: None), (0.1, lambda: None)])
    # Nothing from the rejected batch was scheduled.
    assert sim.pending() == 1


@pytest.mark.parametrize("case", range(3))
def test_bulk_interleaved_with_singles_and_cancels_matches_heap(case):
    """schedule_bulk mixed with schedule_at into the *same* buckets
    (forcing pure-bucket materialization) plus cancellations must stay
    trace-identical to the heap oracle."""
    seed = 0x51A7 + case

    def drive(scheduler: str) -> tuple[list, int]:
        rng = random.Random(seed)
        sim = Simulator(seed=0, scheduler=scheduler, wheel_slots=128)
        out = []

        def rec(tag):
            out.append((sim.now, tag))

        sim.schedule_bulk(
            [
                (rng.uniform(0.0, 0.25), lambda g=f"b{i}": rec(g))
                for i in range(80)
            ]
        )
        cancellable = []
        for i in range(40):
            # Same time range: many land in buckets that are pure.
            event = sim.schedule_at(
                rng.uniform(0.0, 0.25), lambda g=f"s{i}": rec(g)
            )
            if rng.random() < 0.4:
                cancellable.append(event)
        for event in cancellable[::2]:
            event.cancel()
        # A second bulk call over the same window (stale-pure buckets).
        sim.schedule_bulk(
            [
                (rng.uniform(0.0, 0.25), lambda g=f"b2_{i}": rec(g))
                for i in range(40)
            ],
            name="second",
        )
        sim.run()
        return out, sim.events_processed

    assert drive("wheel") == drive("heap")


# ---------------------------------------------------------------------------
# batch slot dispatch ≡ per-event dispatch
# ---------------------------------------------------------------------------


def drive_block_storm(scheduler: str, native: bool, seed: int = 3):
    """A miniature mega storm: block join/leave ops bulk-scheduled with
    coarse wheel slots so native wheel runs exercise batch slot
    dispatch. Returns comparable end state + the stats dict."""
    from repro.netsim.arena import ARENA

    rng = random.Random(seed)
    topo = TopologyBuilder.isp(
        n_transit=3, stubs_per_transit=2, hosts_per_stub=1, seed=7,
        scheduler=scheduler, wheel_granularity=0.05,
    )
    # Force the native-core switch per run (what Simulator(native=...)
    # sets at construction) so the comparison covers on and off.
    topo.sim._native = native
    topo.sim._arena = ARENA if native else None
    net = ExpressNetwork(topo)
    source = net.source(sorted(net.host_names)[0])
    channel = source.allocate_channel()
    blocks = [net.subscriber_block(n) for n in sorted(net.topo.nodes) if n.startswith("e")]
    net.run(until=0.01)
    base = net.sim.now
    work = [
        (base + 0.1 + 2.0 * i / 4000, blocks[i % len(blocks)].join_op(channel))
        for i in range(4000)
    ]
    work += [
        (base + 2.3 + 0.5 * i / 500, blocks[i % len(blocks)].leave_op(channel))
        for i in range(500)
    ]
    rng.shuffle(work)
    net.sim.schedule_bulk(work, name="op")
    net.sim.schedule_at(base + 3.0, lambda: source.send(channel))
    net.run(until=base + 3.4)
    def record_times(block):
        state = block.agent.channels.get(channel)
        record = state.downstream.get(block.pseudo) if state else None
        return record.updated_at if record is not None else None

    state = (
        [(b.count(channel), b.deliveries, record_times(b)) for b in blocks],
        snapshot(net),
        net.sim.events_processed,
    )
    return state, net.sim.scheduler_stats()


def test_batch_slot_dispatch_matches_per_event():
    heap_state, _ = drive_block_storm("heap", native=True)
    wheel_state, wheel_stats = drive_block_storm("wheel", native=True)
    off_state, off_stats = drive_block_storm("wheel", native=False)
    assert wheel_state == heap_state
    assert off_state == heap_state
    # The native wheel run actually used batch dispatch; the escape
    # hatch never did.
    assert wheel_stats["batched_events"] > 0
    assert wheel_stats["batched_slots"] > 0
    assert off_stats["batched_events"] == 0
