"""Property test: one SubscriberBlock(N) ≡ N individual subscribers.

An aggregated edge-subscriber block must be *upstream-invisible*: for
any join/leave delta sequence, the counts the tree carries above the
edge router — every upstream agent's ChannelState, the edge router's
advertised aggregate, and a CountQuery's exact total — must be
identical whether the members are N individual host subscriptions or
one counted block. Both runs share the same wired topology (the host
leaves exist in both; they simply stay idle in the block run), so the
only variable is how the membership is represented at the edge.

Runs use ON_CHANGE propagation so every magnitude change propagates
and the settled tables are exact; a TREE_ONLY case checks the quiet
mode's observable contract (on-tree shape + exact CountQuery) instead
of intermediate magnitudes, which TREE_ONLY deliberately leaves stale.

Seeded ``random.Random`` (not hypothesis), as in the other property
tests.
"""

import random

import pytest

from repro import ExpressNetwork, TopologyBuilder
from repro.core.ecmp.protocol import CountPropagation

N_CASES = 6
N_MEMBERS = 6  # host leaves behind the edge router
N_DELTAS = 24

EDGE = "n2"  # line(3): n0 - n1 - n2


def build(propagation: CountPropagation) -> ExpressNetwork:
    topo = TopologyBuilder.line(3)
    topo.add_node("hsrc")
    topo.add_link("hsrc", "n0", delay=0.001)
    for i in range(N_MEMBERS):
        topo.add_node(f"h{i}")
        topo.add_link(f"h{i}", EDGE, delay=0.001)
    hosts = ["hsrc"] + [f"h{i}" for i in range(N_MEMBERS)]
    return ExpressNetwork(topo, hosts=hosts, propagation=propagation)


def delta_walk(seed: int) -> list[tuple[float, int]]:
    """Deterministic (time, target_count) random walk over
    [0, N_MEMBERS] — the shared aggregate-membership trajectory both
    representations follow."""
    rng = random.Random(seed)
    walk = []
    level = 0
    when = 0.05
    for _ in range(N_DELTAS):
        when += rng.uniform(0.01, 0.2)
        if level == 0:
            step = rng.randint(1, N_MEMBERS)
        elif level == N_MEMBERS:
            step = -rng.randint(1, N_MEMBERS)
        else:
            step = rng.choice([-1, 1]) * rng.randint(1, 2)
        level = max(0, min(N_MEMBERS, level + step))
        walk.append((when, level))
    return walk


def upstream_view(net: ExpressNetwork, channel) -> dict:
    """Everything the tree above the edge router can see: full state at
    the upstream routers, aggregate-only state at the edge (its
    downstream detail is the representation under test)."""
    view = {}
    for name in ("n0", "n1"):
        state = net.ecmp_agents[name].channels.get(channel)
        if state is None:
            view[name] = None
            continue
        view[name] = (
            state.upstream,
            state.advertised,
            {
                peer: record.count
                for peer, record in state.downstream.items()
                if record.count > 0
            },
        )
    edge_state = net.ecmp_agents[EDGE].channels.get(channel)
    view[EDGE] = (
        None
        if edge_state is None
        else (edge_state.upstream, edge_state.advertised)
    )
    view["estimate_at_root"] = net.ecmp_agents["n0"].subscriber_count_estimate(
        channel
    )
    return view


def drive(kind: str, seed: int, propagation: CountPropagation) -> tuple[dict, int]:
    """kind is 'individuals' or 'block'; returns (view, exact count)."""
    net = build(propagation)
    net.run(until=0.01)
    source = net.source("hsrc")
    channel = source.allocate_channel()
    walk = delta_walk(seed)

    if kind == "block":
        block = net.subscriber_block(EDGE)

        def apply(target):
            current = block.count(channel)
            if target > current:
                block.join(channel, target - current)
            elif target < current:
                block.leave(channel, current - target)

    else:
        members = [f"h{i}" for i in range(N_MEMBERS)]

        def apply(target):
            subscribed = [
                m for m in members if net.host(m).is_subscribed(channel)
            ]
            if target > len(subscribed):
                idle = [m for m in members if m not in subscribed]
                for m in idle[: target - len(subscribed)]:
                    net.host(m).subscribe(channel)
            elif target < len(subscribed):
                for m in subscribed[: len(subscribed) - target]:
                    net.host(m).unsubscribe(channel)

    for when, target in walk:
        net.sim.schedule_at(when, lambda t=target: apply(t))
    net.run(until=walk[-1][0])
    net.settle(3.0)

    result = source.count_query(channel, timeout=2.0)
    net.settle(3.0)
    assert result.done and not result.partial
    return upstream_view(net, channel), result.count


@pytest.mark.parametrize("case", range(N_CASES))
def test_block_matches_individuals_on_change(case):
    seed = 0xB10C + case
    view_i, count_i = drive("individuals", seed, CountPropagation.ON_CHANGE)
    view_b, count_b = drive("block", seed, CountPropagation.ON_CHANGE)
    assert view_b == view_i
    assert count_b == count_i
    # The walk's final level, independently:
    assert count_b == delta_walk(seed)[-1][1]


@pytest.mark.parametrize("case", range(3))
def test_block_matches_individuals_tree_only(case):
    """TREE_ONLY's observable contract: identical on-tree shape (who
    has state, who is upstream of whom) and identical exact CountQuery
    totals. Intermediate advertised magnitudes are deliberately stale
    in this mode, so they are not compared."""
    seed = 0x7EE + case

    def shape(view):
        return {
            name: None if entry is None else entry[0]  # upstream choice
            for name, entry in view.items()
            if name != "estimate_at_root"
        }

    view_i, count_i = drive("individuals", seed, CountPropagation.TREE_ONLY)
    view_b, count_b = drive("block", seed, CountPropagation.TREE_ONLY)
    assert shape(view_b) == shape(view_i)
    assert count_b == count_i == delta_walk(seed)[-1][1]
