"""Property-based robustness: the protocol self-heals through random
link failures and recoveries.

On random 2-connected-ish topologies with subscribers in place, fail
and recover random links; after convergence, delivery and counting must
be exact again for every subscriber that remains reachable.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ExpressNetwork
from repro.netsim.topology import TopologyBuilder

SIM_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_net(n_routers, seed):
    # Extra edges give the failure tests alternate paths.
    topo = TopologyBuilder.random_connected(
        n_routers, extra_edge_prob=0.25, seed=seed
    )
    hosts = []
    for i in range(4):
        name = f"host{i}"
        topo.add_node(name)
        topo.add_link(name, f"n{i % n_routers}", delay=0.0005)
        hosts.append(name)
    net = ExpressNetwork(topo, hosts=hosts)
    net.run(until=0.01)
    return net, hosts


class TestFailureRecovery:
    @SIM_SETTINGS
    @given(
        n_routers=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=300),
        failures=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=3),
    )
    def test_delivery_recovers_after_link_flaps(self, n_routers, seed, failures):
        net, hosts = build_net(n_routers, seed)
        source = net.source(hosts[0])
        channel = source.allocate_channel()
        members = hosts[1:]
        counters = {m: [] for m in members}
        for member in members:
            net.host(member).subscribe(
                channel, on_data=lambda p, m=member: counters[m].append(p)
            )
        net.settle()

        # Flap router-router links only (never partition a host).
        core_links = [
            link
            for link in net.topo.links
            if link.node_a.name.startswith("n") and link.node_b.name.startswith("n")
        ]
        for index in failures:
            link = core_links[index % len(core_links)]
            link.fail()
            net.settle(8.0)  # routing + hysteresis + re-join
            link.recover()
            net.settle(8.0)

        # All hosts reachable again (every flapped link recovered).
        source.send(channel)
        net.settle(2.0)
        for member in members:
            assert counters[member], member

        result = source.count_query(channel, timeout=10.0)
        net.settle(11.0)
        assert result.count == len(members)

    @SIM_SETTINGS
    @given(
        n_routers=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=300),
    )
    def test_no_stale_state_after_full_unsubscribe_under_flaps(self, n_routers, seed):
        net, hosts = build_net(n_routers, seed)
        source = net.source(hosts[0])
        channel = source.allocate_channel()
        for member in hosts[1:]:
            net.host(member).subscribe(channel)
        net.settle()
        core_links = [
            link
            for link in net.topo.links
            if link.node_a.name.startswith("n") and link.node_b.name.startswith("n")
        ]
        core_links[seed % len(core_links)].fail()
        net.settle(8.0)
        for member in hosts[1:]:
            net.host(member).unsubscribe(channel)
        net.settle(8.0)
        core_links[seed % len(core_links)].recover()
        net.settle(8.0)
        # Everything torn down; no orphaned FIB entries anywhere.
        assert net.fib_entries_total() == 0
        assert net.nodes_on_tree(channel) == set()
