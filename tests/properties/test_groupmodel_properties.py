"""Property-based invariants for the live group-model stacks.

On random topologies with random membership:
* every member receives exactly one copy per send, non-members zero
  (PIM, CBT, and DVMRP alike);
* DVMRP's first packet touches the whole domain; PIM/CBT state stays on
  the member-to-RP/core paths.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.groupmodel import GroupNetwork
from repro.inet.addr import parse_address
from repro.netsim.topology import TopologyBuilder

GROUP = parse_address("224.123.0.7")

SIM_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build(protocol, n_routers, seed):
    topo = TopologyBuilder.random_connected(n_routers, seed=seed)
    hosts = []
    for i in range(6):
        name = f"host{i}"
        topo.add_node(name)
        topo.add_link(name, f"n{i % n_routers}", delay=0.0005)
        hosts.append(name)
    rp = "n0"
    kwargs = {"rp": rp} if protocol in ("pim", "cbt") else {}
    return GroupNetwork(topo, protocol=protocol, **kwargs), hosts


class TestDeliveryExactness:
    @SIM_SETTINGS
    @given(
        protocol=st.sampled_from(["pim", "cbt", "dvmrp"]),
        n_routers=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=500),
        member_mask=st.integers(min_value=1, max_value=31),
        sender_index=st.integers(min_value=0, max_value=5),
    )
    def test_one_copy_per_member_zero_otherwise(
        self, protocol, n_routers, seed, member_mask, sender_index
    ):
        net, hosts = build(protocol, n_routers, seed)
        members = [h for i, h in enumerate(hosts[:5]) if member_mask & (1 << i)]
        for member in members:
            net.join(member, GROUP)
        net.settle()
        sender = hosts[sender_index]
        net.send(sender, GROUP)
        net.settle(2.0)
        for host in hosts:
            expected = 1 if (host in members and host != sender) else 0
            if host == sender and host in members:
                # A member-sender hears itself only in PIM, where its
                # packet loops via the RP back down the shared tree —
                # unless its first-hop router *is* the RP (the register
                # short-circuit never echoes to the origin port).
                if protocol == "pim" and net._first_hop_router(sender) != "n0":
                    expected = 1
                else:
                    expected = 0
            assert net.delivered(host, GROUP) == expected, (protocol, host)

    @SIM_SETTINGS
    @given(
        n_routers=st.integers(min_value=4, max_value=12),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_dvmrp_floods_domain_pim_does_not(self, n_routers, seed):
        dvmrp, hosts = build("dvmrp", n_routers, seed)
        dvmrp.join(hosts[1], GROUP)
        dvmrp.settle()
        dvmrp.send(hosts[0], GROUP)
        dvmrp.settle(2.0)
        assert dvmrp.routers_touched() == set(dvmrp.routers)

        pim, hosts2 = build("pim", n_routers, seed)
        pim.join(hosts2[1], GROUP)
        pim.settle()
        pim.send(hosts2[0], GROUP)
        pim.settle(2.0)
        # PIM state is confined to the member->RP path.
        path = set(pim.routing.path(pim._first_hop_router(hosts2[1]), "n0"))
        assert pim.routers_touched() <= path
