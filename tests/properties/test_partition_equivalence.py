"""Property test: sharded simulation ≡ single-process oracle.

The contract the parallel subsystem is pinned to: for any declarative
scenario, an N-partition conservative-lookahead run must settle into
*exactly* the state the unsharded heap run produces — ChannelState
tables (upstream, advertised counts, per-neighbor downstream records),
subscription status and per-host delivery counts, aggregated-block
membership and deliveries, total dispatched event counts, and (when
observability is on) every counter and histogram family outside the
sync-only / wall-clock exclusion set. The heap oracle is the seed's
original scheduler, so any divergence is a parallel-subsystem bug.

Five axes are swept:

* partition count N ∈ {1, 2, 4} (1 degenerates to a proxy-free run);
* worker scheduler heap vs. timer wheel (the oracle stays heap);
* sync mode demand (multi-window horizon ladders) vs. eager (lockstep
  null messages every round) — settlement must be bit-identical;
* transport inline vs. pipe vs. shm ring — frame counts included;
* randomized workloads over hosts, blocks, and channels, seeded
  ``random.Random`` per the property-suite idiom.
"""

import random

import pytest

from repro.netsim.parallel import ParallelRunner, assert_equivalent, run_single
from repro.netsim.parallel.scenario import ScenarioSpec

from tests.netsim.parallel.conftest import make_small_spec

N_RANDOM_CASES = 4


@pytest.fixture(scope="module")
def oracle_with_obs():
    return run_single(make_small_spec(), scheduler="heap", with_obs=True)


@pytest.mark.parametrize("n", [1, 2, 4])
def test_n_partitions_match_heap_oracle(n, oracle_with_obs):
    result = ParallelRunner(
        make_small_spec(), n, scheduler="heap", mode="inline", with_obs=True
    ).run()
    assert result.plan.n == n
    assert_equivalent(result.merged, oracle_with_obs)


@pytest.mark.parametrize("n", [2, 4])
def test_wheel_workers_match_heap_oracle(n, oracle_with_obs):
    result = ParallelRunner(
        make_small_spec(), n, scheduler="wheel", mode="inline", with_obs=True
    ).run()
    assert_equivalent(result.merged, oracle_with_obs)


def test_mp_transport_matches_oracle(oracle_with_obs):
    result = ParallelRunner(
        make_small_spec(), 2, scheduler="wheel", mode="mp", with_obs=True
    ).run()
    assert_equivalent(result.merged, oracle_with_obs)


def test_sharded_run_is_deterministic():
    a = ParallelRunner(make_small_spec(), 2, mode="inline").run()
    b = ParallelRunner(make_small_spec(), 2, mode="inline").run()
    assert a.merged == b.merged
    assert a.rounds == b.rounds
    assert [s.as_dict() for s in a.sync] == [s.as_dict() for s in b.sync]


@pytest.mark.parametrize("scheduler", ["heap", "wheel"])
@pytest.mark.parametrize("n", [1, 2, 4])
def test_demand_sync_matches_eager_baseline(n, scheduler, oracle_with_obs):
    """The demand-driven multi-window protocol must settle into the
    exact state the eager lockstep baseline (and the oracle) produces —
    same tables, same deliveries, same event counts — for every
    partition count and worker scheduler."""
    demand = ParallelRunner(
        make_small_spec(), n, scheduler=scheduler, mode="inline",
        with_obs=True, sync_mode="demand",
    ).run()
    eager = ParallelRunner(
        make_small_spec(), n, scheduler=scheduler, mode="inline",
        with_obs=True, sync_mode="eager",
    ).run()
    assert_equivalent(demand.merged, oracle_with_obs)
    assert_equivalent(eager.merged, oracle_with_obs)
    # Settled state must be bit-identical across sync modes. (The
    # sharded-only ``parallel_*`` counters legitimately differ — fewer
    # rounds and null messages is the point — so compare through the
    # equivalence checker, which splits them out and checks proxy
    # conservation instead.)
    for key in ("channel_tables", "subscriptions", "blocks", "events"):
        assert demand.merged[key] == eager.merged[key]
    assert_equivalent(demand.merged, eager.merged)


@pytest.mark.parametrize("transport", ["pipe", "shm"])
@pytest.mark.parametrize("sync_mode", ["demand", "eager"])
def test_transports_are_frame_identical(sync_mode, transport):
    """Pipe and shm runs must not only settle identically to inline —
    the whole protocol transcript (rounds, windows, null messages,
    frame counts per worker) must match, because inline routes through
    the same encoded frames."""
    inline = ParallelRunner(
        make_small_spec(), 2, mode="inline", sync_mode=sync_mode
    ).run()
    mp = ParallelRunner(
        make_small_spec(), 2, mode="mp", sync_mode=sync_mode,
        transport=transport,
    ).run()
    assert mp.transport == transport
    assert mp.merged == inline.merged
    assert mp.rounds == inline.rounds
    assert [s.as_dict() for s in mp.sync] == [
        s.as_dict() for s in inline.sync
    ]


def random_spec(seed: int) -> ScenarioSpec:
    """A randomized membership/data workload on the small ISP topology."""
    rng = random.Random(seed)
    hosts = [
        f"h{t}_{s}_{i}" for t in range(2) for s in range(2) for i in range(2)
    ]
    blocks = ("e0_0", "e1_1")
    ops = []
    when = 0.05
    for _ in range(rng.randint(15, 30)):
        when += rng.uniform(0.005, 0.08)
        roll = rng.random()
        if roll < 0.40:
            ops.append((when, "join", rng.choice(hosts[1:]), rng.randrange(2)))
        elif roll < 0.55:
            ops.append((when, "leave", rng.choice(hosts[1:]), rng.randrange(2)))
        elif roll < 0.75:
            ops.append(
                (when, "block_join", rng.randrange(2), rng.randrange(2),
                 rng.randint(1, 30))
            )
        elif roll < 0.85:
            ops.append(
                (when, "block_leave", rng.randrange(2), rng.randrange(2),
                 rng.randint(1, 10))
            )
        else:
            ops.append((when, "send", rng.randrange(2)))
    return ScenarioSpec(
        topology="isp",
        topology_kwargs={
            "n_transit": 2, "stubs_per_transit": 2, "hosts_per_stub": 2,
        },
        source=hosts[0],
        n_channels=2,
        blocks=blocks,
        ops=tuple(ops),
        duration=when + 1.5,
        seed=seed,
    )


@pytest.mark.parametrize("case", range(N_RANDOM_CASES))
def test_random_workloads_match_oracle(case):
    seed = 0x9A27 + case
    spec = random_spec(seed)
    oracle = run_single(spec, scheduler="heap")
    for n in (2, 4):
        result = ParallelRunner(spec, n, scheduler="heap", mode="inline").run()
        assert_equivalent(result.merged, oracle)
