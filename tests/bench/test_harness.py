"""Tests for the perf harness (``python -m repro.bench``).

The heavier assertions on scenario *metrics* (Dijkstra savings ratio,
in-place fan-out fraction, cache hit rates) live in
``benchmarks/perf/test_perf_smoke.py``; here we pin the report schema,
the CLI contract (output path, scenario selection, floor flags and exit
codes), and JSON serialisability.
"""

import json

import pytest

from repro.bench import (
    CEILING_GATES,
    FLOOR_GATES,
    SCHEMA_VERSION,
    build_report,
    check_floors,
    main,
    write_report,
)
from repro.bench.scenarios import SCENARIOS


@pytest.fixture(scope="module")
def quick_report():
    return build_report(quick=True, seed=0)


class TestReportSchema:
    def test_top_level_schema(self, quick_report):
        report = quick_report
        assert report["bench"] == "perf"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["quick"] is True
        assert report["seed"] == 0
        assert set(report["scenarios"]) == set(SCENARIOS)
        assert report["wall_seconds_total"] > 0

    def test_every_scenario_reports_throughput(self, quick_report):
        for name, metrics in quick_report["scenarios"].items():
            assert metrics["sim_events"] > 0, name
            assert metrics["events_per_sec"] > 0, name
            assert metrics["wall_seconds"] > 0, name
            assert "params" in metrics, name

    def test_summary_aggregates(self, quick_report):
        summary = quick_report["summary"]
        rates = [
            m["events_per_sec"] for m in quick_report["scenarios"].values()
        ]
        assert summary["events_per_sec_min"] == min(rates)
        assert summary["events_per_sec_max"] == max(rates)
        churn = quick_report["scenarios"]["link_flap_churn"]
        assert summary["dijkstra_savings_ratio"] == churn["dijkstra_savings_ratio"]
        assert summary["delivery_p99_max_seconds"] > 0

    def test_report_is_json_serialisable(self, quick_report, tmp_path):
        out = tmp_path / "report.json"
        write_report(quick_report, out)
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(quick_report)
        )

    def test_scenario_selection(self):
        report = build_report(quick=True, only=["steady_fanout"])
        assert set(report["scenarios"]) == {"steady_fanout"}


class TestCli:
    def test_writes_output_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        code = main(
            ["--quick", "--scenario", "join_storm", "--output", str(out)]
        )
        assert code == 0
        parsed = json.loads(out.read_text())
        assert parsed["bench"] == "perf"
        assert set(parsed["scenarios"]) == {"join_storm"}
        assert "join_storm" in capsys.readouterr().out

    def test_events_floor_violation_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        code = main(
            [
                "--quick",
                "--scenario",
                "join_storm",
                "--output",
                str(out),
                "--floor-events-per-sec",
                "1e15",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().err
        # The report is still written for post-mortem diffing.
        assert out.exists()

    def test_dijkstra_floor_checks_the_churn_scenario(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        code = main(
            [
                "--quick",
                "--scenario",
                "link_flap_churn",
                "--output",
                str(out),
                "--floor-dijkstra-ratio",
                "5",
            ]
        )
        assert code == 0
        code = main(
            [
                "--quick",
                "--scenario",
                "link_flap_churn",
                "--output",
                str(out),
                "--floor-dijkstra-ratio",
                "1e9",
            ]
        )
        assert code == 1

    def test_rejects_unknown_scenario(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--scenario", "nope", "--output", str(tmp_path / "x.json")])


class TestParallelScenario:
    """Schema v4 (sharded mega storm) + v7 (sync-tax economics)."""

    def test_scenario_fields(self, quick_report):
        parallel = quick_report["scenarios"]["mega_join_storm_parallel"]
        assert parallel["equivalent_to_single_process"] is True
        assert parallel["partition_speedup"] > 0
        assert parallel["params"]["workers"] == 4
        assert parallel["partition_plan"]["partitions"] == 4
        assert parallel["partition_plan"]["min_lookahead"] > 0
        assert parallel["sync_rounds"] > 0
        assert parallel["sync"]["proxy_packets"] > 0
        assert parallel["members_final"] == parallel["members_expected"]
        assert parallel["block_deliveries"] == parallel["deliveries_expected"]
        single = parallel["single_process"]
        assert single["sim_events"] == parallel["sim_events"]

    def test_sync_tax_fields(self, quick_report):
        # Schema v7: the timed pass runs the demand protocol and an
        # eager lockstep baseline yields the host-independent
        # reduction ratios CI gates on.
        parallel = quick_report["scenarios"]["mega_join_storm_parallel"]
        assert parallel["transport"] in {"shm", "pipe"}
        assert parallel["sync_mode"] == "demand"
        assert parallel["sync_messages_per_event"] > 0
        assert parallel["frames_per_round"] >= 2.0
        baseline = parallel["sync_baseline"]
        assert baseline["sync_mode"] == "eager"
        # Same protocol work, fewer frames: the reductions are exact
        # frame-count ratios, not wall-clock measurements.
        assert parallel["null_ratio_reduction"] > 1.0
        assert parallel["sync_message_reduction"] > 1.0
        assert parallel["demand_null_ratio"] <= baseline["null_message_ratio"]
        assert baseline["sync"]["proxy_packets"] == (
            parallel["sync"]["proxy_packets"]
        )

    def test_summary_fields(self, quick_report):
        parallel = quick_report["scenarios"]["mega_join_storm_parallel"]
        summary = quick_report["summary"]
        assert summary["partition_speedup"] == parallel["partition_speedup"]
        assert summary["partition_workers"] == 4
        assert summary["transport"] == parallel["transport"]
        assert summary["sync_mode"] == "demand"
        assert summary["null_ratio_reduction"] == (
            parallel["null_ratio_reduction"]
        )
        assert summary["sync_message_reduction"] == (
            parallel["sync_message_reduction"]
        )


def fake_report(**summary) -> dict:
    base = {
        "events_per_sec_min": 1e6,
        "dijkstra_savings_ratio": 10.0,
        "ecmp_bytes_on_wire": 50_000,
        "wire_message_reduction": 5.0,
        "wheel_speedup": 3.0,
        "mega_events_per_sec": 2e6,
        "partition_speedup": 2.0,
        "sync_efficiency": 0.9,
        "null_ratio_reduction": 10.0,
        "sync_message_reduction": 3.5,
        "zap_events_per_sec": 1500.0,
        "state_churn_speedup": 4.0,
        "convergence_seconds": 0.5,
        "blast_radius": 0.6,
    }
    base.update(summary)
    return {"summary": base}


class TestCheckFloors:
    """The declarative gate table behind every ``--floor-*`` flag."""

    def test_none_floors_are_skipped(self):
        assert check_floors(fake_report(), {g: None for g in FLOOR_GATES}) == []

    @pytest.mark.parametrize("gate", sorted(FLOOR_GATES))
    def test_each_gate_passes_and_fails(self, gate):
        key = FLOOR_GATES[gate][0]
        assert check_floors(fake_report(), {gate: 0.001}) == []
        failures = check_floors(fake_report(**{key: 0.0005}), {gate: 0.001})
        assert len(failures) == 1
        assert failures[0].startswith("FAIL")

    def test_missing_summary_value_fails_not_passes(self):
        # A requested gate whose scenario did not run must fail loudly.
        report = {"summary": {}}
        failures = check_floors(report, {"partition_speedup": 1.5})
        assert len(failures) == 1

    def test_partition_gate_skips_on_cores_limited_host(self, capsys):
        # Workers time-slicing fewer cores than shards cannot express a
        # speedup; the gate skips (loudly) instead of failing the host.
        limited = fake_report(
            partition_speedup=0.5, parallel_warnings=["cores_limited"]
        )
        assert check_floors(limited, {"partition_speedup": 1.5}) == []
        assert "SKIP" in capsys.readouterr().err
        # Without the warning, the same sub-floor speedup still fails,
        # and other gates are unaffected by the warning.
        unwarned = fake_report(partition_speedup=0.5)
        assert len(check_floors(unwarned, {"partition_speedup": 1.5})) == 1
        assert (
            check_floors(limited, {"mega_events_per_sec": 1e6}) == []
        )
        failures = check_floors(
            fake_report(
                mega_events_per_sec=100.0, parallel_warnings=["cores_limited"]
            ),
            {"mega_events_per_sec": 1e6},
        )
        assert len(failures) == 1


class TestCeilingGates:
    """Schema v9 robustness SLOs: lower is better, so the gates are
    ceilings — and a missing measurement fails rather than passing on
    a vacuous zero."""

    @pytest.mark.parametrize("gate", sorted(CEILING_GATES))
    def test_under_ceiling_passes(self, gate):
        key = CEILING_GATES[gate][0]
        assert check_floors(fake_report(**{key: 0.1}), {gate: 1.0}) == []

    @pytest.mark.parametrize("gate", sorted(CEILING_GATES))
    def test_over_ceiling_fails(self, gate):
        key = CEILING_GATES[gate][0]
        failures = check_floors(fake_report(**{key: 2.0}), {gate: 1.0})
        assert len(failures) == 1
        assert failures[0].startswith("FAIL")
        assert "exceeded" in failures[0]

    @pytest.mark.parametrize("gate", sorted(CEILING_GATES))
    def test_exactly_at_ceiling_passes(self, gate):
        key = CEILING_GATES[gate][0]
        assert check_floors(fake_report(**{key: 1.0}), {gate: 1.0}) == []

    @pytest.mark.parametrize("gate", sorted(CEILING_GATES))
    def test_missing_measurement_fails(self, gate):
        # build_report writes None for the v9 fields when the storm
        # scenario is excluded; a requested ceiling must not pass then.
        key = CEILING_GATES[gate][0]
        for report in (fake_report(**{key: None}), {"summary": {}}):
            failures = check_floors(report, {gate: 1.0})
            assert len(failures) == 1
            assert "no measurement" in failures[0]

    def test_gate_tables_are_disjoint(self):
        assert not set(CEILING_GATES) & set(FLOOR_GATES)


class TestCliFloorsAndWorkers:
    def make_fake_build_report(self, captured, **summary):
        def fake_build_report(quick=True, seed=0, only=None, workers=None):
            captured.update(quick=quick, only=only, workers=workers)
            return {
                "bench": "perf",
                "schema_version": SCHEMA_VERSION,
                "scenarios": {},
                **fake_report(**summary),
            }

        return fake_build_report

    def test_workers_flag_reaches_build_report(self, monkeypatch, tmp_path):
        import repro.bench as bench

        captured = {}
        monkeypatch.setattr(
            bench, "build_report", self.make_fake_build_report(captured)
        )
        code = main(
            ["--quick", "--workers", "3", "--output", str(tmp_path / "o.json")]
        )
        assert code == 0
        assert captured["workers"] == 3

    def test_partition_floor_gates_exit_code(self, monkeypatch, tmp_path, capsys):
        import repro.bench as bench

        captured = {}
        monkeypatch.setattr(
            bench,
            "build_report",
            self.make_fake_build_report(captured, partition_speedup=1.1),
        )
        out = str(tmp_path / "o.json")
        assert main(
            ["--output", out, "--floor-partition-speedup", "1.0"]
        ) == 0
        assert main(
            ["--output", out, "--floor-partition-speedup", "1.5"]
        ) == 1
        assert "partition speedup floor" in capsys.readouterr().err

    def test_ceiling_flags_gate_exit_code(self, monkeypatch, tmp_path, capsys):
        import repro.bench as bench

        monkeypatch.setattr(
            bench,
            "build_report",
            self.make_fake_build_report(
                {}, convergence_seconds=1.2, blast_radius=0.9
            ),
        )
        out = str(tmp_path / "o.json")
        assert main(
            [
                "--output", out,
                "--floor-convergence-seconds", "2.0",
                "--floor-blast-radius", "0.95",
            ]
        ) == 0
        assert main(
            ["--output", out, "--floor-convergence-seconds", "1.0"]
        ) == 1
        assert "convergence seconds ceiling" in capsys.readouterr().err
        assert main(
            ["--output", out, "--floor-blast-radius", "0.5"]
        ) == 1
        assert "blast radius ceiling" in capsys.readouterr().err
