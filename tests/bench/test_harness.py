"""Tests for the perf harness (``python -m repro.bench``).

The heavier assertions on scenario *metrics* (Dijkstra savings ratio,
in-place fan-out fraction, cache hit rates) live in
``benchmarks/perf/test_perf_smoke.py``; here we pin the report schema,
the CLI contract (output path, scenario selection, floor flags and exit
codes), and JSON serialisability.
"""

import json

import pytest

from repro.bench import SCHEMA_VERSION, build_report, main, write_report
from repro.bench.scenarios import SCENARIOS


@pytest.fixture(scope="module")
def quick_report():
    return build_report(quick=True, seed=0)


class TestReportSchema:
    def test_top_level_schema(self, quick_report):
        report = quick_report
        assert report["bench"] == "perf"
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["quick"] is True
        assert report["seed"] == 0
        assert set(report["scenarios"]) == set(SCENARIOS)
        assert report["wall_seconds_total"] > 0

    def test_every_scenario_reports_throughput(self, quick_report):
        for name, metrics in quick_report["scenarios"].items():
            assert metrics["sim_events"] > 0, name
            assert metrics["events_per_sec"] > 0, name
            assert metrics["wall_seconds"] > 0, name
            assert "params" in metrics, name

    def test_summary_aggregates(self, quick_report):
        summary = quick_report["summary"]
        rates = [
            m["events_per_sec"] for m in quick_report["scenarios"].values()
        ]
        assert summary["events_per_sec_min"] == min(rates)
        assert summary["events_per_sec_max"] == max(rates)
        churn = quick_report["scenarios"]["link_flap_churn"]
        assert summary["dijkstra_savings_ratio"] == churn["dijkstra_savings_ratio"]
        assert summary["delivery_p99_max_seconds"] > 0

    def test_report_is_json_serialisable(self, quick_report, tmp_path):
        out = tmp_path / "report.json"
        write_report(quick_report, out)
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(quick_report)
        )

    def test_scenario_selection(self):
        report = build_report(quick=True, only=["steady_fanout"])
        assert set(report["scenarios"]) == {"steady_fanout"}


class TestCli:
    def test_writes_output_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        code = main(
            ["--quick", "--scenario", "join_storm", "--output", str(out)]
        )
        assert code == 0
        parsed = json.loads(out.read_text())
        assert parsed["bench"] == "perf"
        assert set(parsed["scenarios"]) == {"join_storm"}
        assert "join_storm" in capsys.readouterr().out

    def test_events_floor_violation_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        code = main(
            [
                "--quick",
                "--scenario",
                "join_storm",
                "--output",
                str(out),
                "--floor-events-per-sec",
                "1e15",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().err
        # The report is still written for post-mortem diffing.
        assert out.exists()

    def test_dijkstra_floor_checks_the_churn_scenario(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        code = main(
            [
                "--quick",
                "--scenario",
                "link_flap_churn",
                "--output",
                str(out),
                "--floor-dijkstra-ratio",
                "5",
            ]
        )
        assert code == 0
        code = main(
            [
                "--quick",
                "--scenario",
                "link_flap_churn",
                "--output",
                str(out),
                "--floor-dijkstra-ratio",
                "1e9",
            ]
        )
        assert code == 1

    def test_rejects_unknown_scenario(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--scenario", "nope", "--output", str(tmp_path / "x.json")])
