"""Tests for the multi-round estimation baseline (§7.3)."""

import pytest

from repro.appcount.multiround import MultiRoundEstimator
from repro.errors import WorkloadError


class TestMultiRound:
    def test_estimate_near_truth(self):
        estimator = MultiRoundEstimator(seed=1)
        outcome = estimator.estimate(group_size=500_000)
        assert outcome.estimate == pytest.approx(500_000, rel=0.5)

    def test_no_implosion_replies_bounded(self):
        """The doubling walk keeps per-round replies near the target —
        this is why "multi-round schemes ... avoid the implosion
        risk"."""
        estimator = MultiRoundEstimator(target_replies=20, seed=2)
        for n in (1_000, 100_000, 10_000_000):
            outcome = estimator.estimate(n)
            # Final round at probability p has ~2*target expected
            # replies at worst (doubling overshoot) + noise margin.
            assert outcome.total_replies < 50 * outcome.rounds

    def test_rounds_grow_with_group_size(self):
        """"... but are slower than suppression-based approaches."""
        estimator = MultiRoundEstimator(seed=3)
        small = estimator.estimate(1_000).rounds
        large = estimator.estimate(10_000_000).rounds
        assert large < small  # larger groups hit the target sooner
        assert estimator.estimate(100).rounds > large

    def test_expected_rounds_formula(self):
        estimator = MultiRoundEstimator(initial_probability=1e-6, target_replies=20)
        assert estimator.expected_rounds(10**7) < estimator.expected_rounds(10**3)
        assert estimator.expected_rounds(0) == estimator.max_rounds

    def test_tiny_group_caps_at_p_one(self):
        estimator = MultiRoundEstimator(seed=4)
        outcome = estimator.estimate(group_size=5)
        assert outcome.final_probability == 1.0
        assert outcome.estimate == 5

    def test_empty_group(self):
        outcome = MultiRoundEstimator(seed=5).estimate(0)
        assert outcome.estimate == 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MultiRoundEstimator(initial_probability=0)
        with pytest.raises(WorkloadError):
            MultiRoundEstimator(target_replies=0)
        with pytest.raises(WorkloadError):
            MultiRoundEstimator().estimate(-5)

    def test_deterministic(self):
        a = MultiRoundEstimator(seed=9).estimate(12345)
        b = MultiRoundEstimator(seed=9).estimate(12345)
        assert a == b
