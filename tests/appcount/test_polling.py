"""Tests for the application-layer counting baselines (§7.3)."""

import pytest

from repro.appcount.polling import (
    ProbabilisticPollEstimator,
    SuppressionPollEstimator,
)
from repro.errors import WorkloadError


class TestProbabilisticPolling:
    def test_estimate_near_truth_for_large_groups(self):
        estimator = ProbabilisticPollEstimator(reply_probability=0.01, seed=1)
        outcome = estimator.poll(group_size=100_000)
        assert outcome.estimate == pytest.approx(100_000, rel=0.2)

    def test_reply_volume_scales_with_n(self):
        """The implosion hazard: replies grow linearly with N at fixed
        p — the source must know N to pick p, which is circular."""
        estimator = ProbabilisticPollEstimator(reply_probability=0.01, seed=2)
        small = estimator.poll(10_000).replies
        large = estimator.poll(1_000_000).replies
        assert large > 50 * small

    def test_empty_group(self):
        outcome = ProbabilisticPollEstimator(0.1).poll(0)
        assert outcome.estimate == 0 and outcome.replies == 0

    def test_relative_stddev_shrinks_with_n(self):
        estimator = ProbabilisticPollEstimator(reply_probability=0.01)
        assert estimator.relative_stddev(1_000_000) < estimator.relative_stddev(10_000)

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            ProbabilisticPollEstimator(0.0)
        with pytest.raises(WorkloadError):
            ProbabilisticPollEstimator(1.5)
        with pytest.raises(WorkloadError):
            ProbabilisticPollEstimator(0.5).poll(-1)

    def test_seeded_determinism(self):
        a = ProbabilisticPollEstimator(0.01, seed=7).poll(50_000)
        b = ProbabilisticPollEstimator(0.01, seed=7).poll(50_000)
        assert a == b


class TestSuppressionPolling:
    def test_healthy_round_few_replies(self):
        estimator = SuppressionPollEstimator(seed=3)
        outcome = estimator.poll(group_size=100_000)
        assert outcome.replies < estimator.implosion_threshold
        assert not outcome.implosion

    def test_estimate_order_of_magnitude(self):
        estimator = SuppressionPollEstimator(seed=4)
        trials = [estimator.poll(10_000).estimate for _ in range(30)]
        geo_mean = 1.0
        for value in trials:
            geo_mean *= value ** (1 / len(trials))
        assert 100 <= geo_mean <= 1_000_000  # right ballpark, high variance

    def test_suppression_loss_causes_implosion(self):
        """§7.3: "there is a risk of serious feedback implosion ... if
        the suppressing reply ... is lost on any large branch"."""
        healthy = SuppressionPollEstimator(suppression_loss=0.0, seed=5)
        lossy = SuppressionPollEstimator(suppression_loss=0.3, seed=5)
        n = 100_000
        assert healthy.implosion_probability(n, trials=5) == 0.0
        assert lossy.implosion_probability(n, trials=5) == 1.0

    def test_misbehaving_clients_cause_implosion(self):
        """"... or if misbehaving clients respond when they should
        not"."""
        rogue = SuppressionPollEstimator(misbehaving_fraction=0.005, seed=6)
        outcome = rogue.poll(group_size=200_000)
        assert outcome.implosion  # ~1000 rogue replies swamp the source

    def test_suppression_degrades_at_extreme_scale(self):
        """Even a healthy round at Super-Bowl scale leaks hundreds of
        replies within one propagation delay of the first — the paper's
        reason ISPs "would not rely on these pure application-layer
        schemes" for 10M-subscriber channels."""
        estimator = SuppressionPollEstimator(seed=8)
        outcome = estimator.poll(group_size=1_000_000)
        assert outcome.replies > estimator.implosion_threshold

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            SuppressionPollEstimator(window=0)
        with pytest.raises(WorkloadError):
            SuppressionPollEstimator(suppression_loss=1.5)

    def test_empty_group(self):
        outcome = SuppressionPollEstimator().poll(0)
        assert outcome.replies == 0 and not outcome.implosion
