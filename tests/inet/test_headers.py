"""Unit tests for the IPv4/UDP header codecs."""

import pytest

from repro.errors import CodecError
from repro.inet.headers import (
    ETHERNET_TCP_SEGMENT,
    IPV4_HEADER_LEN,
    IPv4Header,
    UDPHeader,
    internet_checksum,
)


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example-style: checksum of a buffer plus its checksum
        # verifies to zero.
        data = bytes(range(20))
        checksum = internet_checksum(data)
        patched = data[:10] + checksum.to_bytes(2, "big") + data[12:]
        # Recompute over buffer with checksum in place of original bytes:
        # simpler invariant: checksum of (data + checksum-as-bytes) == 0
        assert internet_checksum(data + checksum.to_bytes(2, "big")) == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF


class TestIPv4Header:
    def test_round_trip(self):
        header = IPv4Header(src=0x0A000001, dst=0xE8000001, proto=17, total_length=100, ttl=32)
        data = header.pack()
        assert len(data) == IPV4_HEADER_LEN
        parsed = IPv4Header.unpack(data)
        assert parsed == header

    def test_checksum_verified_on_unpack(self):
        data = bytearray(IPv4Header(src=1, dst=2, proto=6).pack())
        data[8] ^= 0xFF  # corrupt the TTL
        with pytest.raises(CodecError):
            IPv4Header.unpack(bytes(data))

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            IPv4Header.unpack(b"\x45\x00")

    def test_wrong_version_rejected(self):
        data = bytearray(IPv4Header(src=1, dst=2, proto=6).pack())
        data[0] = (6 << 4) | 5
        with pytest.raises(CodecError):
            IPv4Header.unpack(bytes(data))

    def test_field_ranges_enforced(self):
        with pytest.raises(CodecError):
            IPv4Header(src=1, dst=2, proto=6, total_length=70000).pack()
        with pytest.raises(CodecError):
            IPv4Header(src=1, dst=2, proto=6, ttl=300).pack()


class TestUDPHeader:
    def test_round_trip_with_payload(self):
        payload = b"count-message-bytes"
        data = UDPHeader(src_port=1234, dst_port=4321).pack(payload)
        header, parsed_payload = UDPHeader.unpack(data)
        assert header.src_port == 1234
        assert header.dst_port == 4321
        assert parsed_payload == payload

    def test_checksum_detects_corruption(self):
        data = bytearray(UDPHeader(src_port=1, dst_port=2).pack(b"hello"))
        data[-1] ^= 0xFF
        with pytest.raises(CodecError):
            UDPHeader.unpack(bytes(data))

    def test_length_field_validated(self):
        data = bytearray(UDPHeader(src_port=1, dst_port=2).pack(b"hello"))
        data[4:6] = (9999).to_bytes(2, "big")
        with pytest.raises(CodecError):
            UDPHeader.unpack(bytes(data))

    def test_port_range(self):
        with pytest.raises(CodecError):
            UDPHeader(src_port=70000, dst_port=1).pack()

    def test_truncated(self):
        with pytest.raises(CodecError):
            UDPHeader.unpack(b"\x00\x01")

    def test_mss_constant_matches_paper(self):
        """§5.3's segment arithmetic uses 1480-byte TCP segments."""
        assert ETHERNET_TCP_SEGMENT == 1480
