"""IGMP host-membership tests on a simulated LAN."""

import pytest

from repro.errors import CodecError, ProtocolError
from repro.inet.addr import parse_address
from repro.inet.igmp import (
    FilterMode,
    IgmpHostAgent,
    IgmpMessage,
    IgmpRouterAgent,
    IgmpType,
    QUERY_INTERVAL,
)
from repro.netsim.topology import TopologyBuilder

GROUP = parse_address("224.1.2.3")
OTHER_GROUP = parse_address("224.9.9.9")
SRC_A = parse_address("10.9.0.1")
SRC_B = parse_address("10.9.0.2")


def build_lan(n_hosts=4, version=2):
    topo = TopologyBuilder.lan(n_hosts)
    router = IgmpRouterAgent(topo.node("gw"), version=version)
    topo.node("gw").register_agent("igmp", router)
    hosts = []
    for i in range(n_hosts):
        agent = IgmpHostAgent(topo.node(f"h{i}"), version=version)
        topo.node(f"h{i}").register_agent("igmp", agent)
        hosts.append(agent)
    topo.start()
    return topo, router, hosts


class TestWireFormat:
    def test_v2_report_round_trip(self):
        message = IgmpMessage(IgmpType.V2_REPORT, group=GROUP)
        assert IgmpMessage.unpack(message.pack()) == message

    def test_query_round_trip_preserves_max_response(self):
        message = IgmpMessage(IgmpType.MEMBERSHIP_QUERY, group=0, max_response_time=2.5)
        parsed = IgmpMessage.unpack(message.pack())
        assert parsed.max_response_time == 2.5

    def test_v3_report_with_sources_round_trip(self):
        message = IgmpMessage(
            IgmpType.V3_REPORT,
            group=GROUP,
            filter_mode=FilterMode.INCLUDE,
            sources=(SRC_A, SRC_B),
        )
        parsed = IgmpMessage.unpack(message.pack())
        assert parsed.filter_mode is FilterMode.INCLUDE
        assert parsed.sources == (SRC_A, SRC_B)

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            IgmpMessage.unpack(b"\x16\x00")

    def test_unknown_type_rejected(self):
        data = bytearray(IgmpMessage(IgmpType.V2_REPORT, group=GROUP).pack())
        data[0] = 0x99
        with pytest.raises(CodecError):
            IgmpMessage.unpack(bytes(data))


class TestV2Membership:
    def test_join_creates_router_state(self):
        topo, router, hosts = build_lan()
        hosts[0].join(GROUP)
        topo.run(until=1.0)
        assert router.has_members(GROUP)

    def test_join_non_multicast_rejected(self):
        topo, router, hosts = build_lan()
        with pytest.raises(ProtocolError):
            hosts[0].join(parse_address("10.0.0.1"))

    def test_v2_rejects_source_filters(self):
        topo, router, hosts = build_lan(version=2)
        with pytest.raises(ProtocolError):
            hosts[0].join(GROUP, filter_mode=FilterMode.INCLUDE, sources=(SRC_A,))

    def test_report_suppression_on_general_query(self):
        """With several members, one report answers the periodic query
        for (most of) the group."""
        topo, router, hosts = build_lan(n_hosts=6)
        for host in hosts:
            host.join(GROUP)
        topo.run(until=QUERY_INTERVAL * 2 + 15)
        assert sum(h.reports_suppressed for h in hosts) > 0
        assert router.has_members(GROUP)

    def test_leave_triggers_requery_then_expiry(self):
        topo, router, hosts = build_lan(n_hosts=2)
        hosts[0].join(GROUP)
        topo.run(until=1.0)
        hosts[0].leave(GROUP)
        topo.run(until=10.0)
        assert not router.has_members(GROUP)

    def test_leave_with_remaining_member_keeps_group(self):
        topo, router, hosts = build_lan(n_hosts=3)
        hosts[0].join(GROUP)
        hosts[1].join(GROUP)
        topo.run(until=1.0)
        hosts[0].leave(GROUP)
        topo.run(until=12.0)
        assert router.has_members(GROUP)

    def test_membership_expires_without_refresh(self):
        topo, router, hosts = build_lan(n_hosts=1)
        hosts[0].join(GROUP)
        topo.run(until=1.0)
        # Silence the host: drop membership without sending a leave.
        hosts[0].memberships.clear()
        topo.run(until=QUERY_INTERVAL * 4)
        assert not router.has_members(GROUP)

    def test_groups_are_independent(self):
        topo, router, hosts = build_lan(n_hosts=2)
        hosts[0].join(GROUP)
        hosts[1].join(OTHER_GROUP)
        topo.run(until=1.0)
        assert router.has_members(GROUP) and router.has_members(OTHER_GROUP)
        hosts[1].leave(OTHER_GROUP)
        topo.run(until=10.0)
        assert router.has_members(GROUP)
        assert not router.has_members(OTHER_GROUP)


class TestV3SourceFilters:
    def test_include_sources_merge(self):
        topo, router, hosts = build_lan(n_hosts=2, version=3)
        hosts[0].join(GROUP, filter_mode=FilterMode.INCLUDE, sources=(SRC_A,))
        hosts[1].join(GROUP, filter_mode=FilterMode.INCLUDE, sources=(SRC_B,))
        topo.run(until=1.0)
        mode, sources = router.member_sources(GROUP)
        assert mode is FilterMode.INCLUDE
        assert sources == {SRC_A, SRC_B}

    def test_exclude_forces_exclude_mode(self):
        topo, router, hosts = build_lan(n_hosts=2, version=3)
        hosts[0].join(GROUP, filter_mode=FilterMode.INCLUDE, sources=(SRC_A,))
        hosts[1].join(GROUP, filter_mode=FilterMode.EXCLUDE, sources=(SRC_B,))
        topo.run(until=1.0)
        mode, sources = router.member_sources(GROUP)
        assert mode is FilterMode.EXCLUDE

    def test_exclude_lists_intersect(self):
        topo, router, hosts = build_lan(n_hosts=2, version=3)
        hosts[0].join(GROUP, filter_mode=FilterMode.EXCLUDE, sources=(SRC_A, SRC_B))
        hosts[1].join(GROUP, filter_mode=FilterMode.EXCLUDE, sources=(SRC_A,))
        topo.run(until=1.0)
        mode, sources = router.member_sources(GROUP)
        assert mode is FilterMode.EXCLUDE
        assert sources == {SRC_A}

    def test_no_suppression_in_v3(self):
        topo, router, hosts = build_lan(n_hosts=5, version=3)
        for host in hosts:
            host.join(GROUP)
        topo.run(until=QUERY_INTERVAL + 15)
        assert all(h.reports_suppressed == 0 for h in hosts)
