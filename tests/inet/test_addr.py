"""Unit tests for IPv4 address arithmetic and the SSM range."""

import pytest

from repro.errors import AddressError
from repro.inet.addr import (
    CHANNELS_PER_SOURCE,
    CLASS_D_FIRST,
    CLASS_D_LAST,
    SSM_FIRST,
    SSM_LAST,
    channel_suffix,
    format_address,
    is_class_d,
    is_ssm,
    is_unicast,
    parse_address,
    ssm_address,
)


class TestParseFormat:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0.0.0.0", 0),
            ("255.255.255.255", 0xFFFFFFFF),
            ("10.0.0.1", 0x0A000001),
            ("232.0.0.1", 0xE8000001),
            ("224.0.0.1", 0xE0000001),
        ],
    )
    def test_round_trip(self, text, value):
        assert parse_address(text) == value
        assert format_address(value) == text

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "a.b.c.d", "256.0.0.1", "1.2.3.-1", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            parse_address(bad)

    def test_format_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            format_address(1 << 32)
        with pytest.raises(AddressError):
            format_address(-1)


class TestRanges:
    def test_class_d_boundaries(self):
        assert is_class_d(CLASS_D_FIRST)
        assert is_class_d(CLASS_D_LAST)
        assert not is_class_d(CLASS_D_FIRST - 1)
        assert not is_class_d(CLASS_D_LAST + 1)

    def test_ssm_boundaries_are_232_slash_8(self):
        assert SSM_FIRST == parse_address("232.0.0.0")
        assert SSM_LAST == parse_address("232.255.255.255")
        assert is_ssm(SSM_FIRST) and is_ssm(SSM_LAST)
        assert not is_ssm(parse_address("231.255.255.255"))
        assert not is_ssm(parse_address("233.0.0.0"))

    def test_ssm_is_inside_class_d(self):
        assert is_class_d(SSM_FIRST) and is_class_d(SSM_LAST)

    def test_unicast(self):
        assert is_unicast(parse_address("10.1.2.3"))
        assert not is_unicast(parse_address("224.0.0.1"))
        assert not is_unicast(parse_address("240.0.0.1"))

    def test_channels_per_source_is_2_to_24(self):
        """"each host interface in the Internet can source up to 16
        million channels" (§2)."""
        assert CHANNELS_PER_SOURCE == 2**24
        assert SSM_LAST - SSM_FIRST + 1 == CHANNELS_PER_SOURCE


class TestChannelSuffix:
    def test_suffix_round_trip(self):
        for suffix in (0, 1, 12345, 2**24 - 1):
            assert channel_suffix(ssm_address(suffix)) == suffix

    def test_suffix_of_non_ssm_rejected(self):
        with pytest.raises(AddressError):
            channel_suffix(parse_address("224.0.0.1"))

    def test_ssm_address_range_checked(self):
        with pytest.raises(AddressError):
            ssm_address(2**24)
        with pytest.raises(AddressError):
            ssm_address(-1)
