"""Tests for the group-model address allocation baselines."""

import pytest

from repro.errors import AddressError
from repro.inet.alloc import (
    GROUP_POOL_SIZE,
    CoordinatedAllocator,
    UncoordinatedAllocator,
    collision_probability,
)


class TestPoolArithmetic:
    def test_pool_excludes_ssm_carveout(self):
        """Class D is 2^28 addresses; 232/8 (2^24) belongs to EXPRESS."""
        assert GROUP_POOL_SIZE == 2**28 - 2**24

    def test_collision_probability_birthday_shape(self):
        assert collision_probability(0) == 0.0
        assert collision_probability(1) == 0.0
        small = collision_probability(1_000)
        large = collision_probability(100_000)
        assert 0 < small < large < 1.0
        # The paper's "thousands of Internet radio stations" world-wide:
        # at 100k concurrent sessions, uncoordinated allocation is
        # near-certain to collide somewhere.
        assert large > 0.99

    def test_validation(self):
        with pytest.raises(AddressError):
            collision_probability(-1)
        with pytest.raises(AddressError):
            collision_probability(10, pool_size=0)


class TestCoordinatedAllocator:
    def test_no_collisions_but_round_trips(self):
        allocator = CoordinatedAllocator(service_rtt=0.2)
        addresses = [allocator.allocate() for _ in range(100)]
        assert len(set(addresses)) == 100
        assert allocator.stats.round_trips == 100
        assert allocator.total_latency() == pytest.approx(20.0)

    def test_release_recycles(self):
        allocator = CoordinatedAllocator(pool_size=2)
        a = allocator.allocate()
        b = allocator.allocate()
        with pytest.raises(AddressError):
            allocator.allocate()  # exhausted
        allocator.release(a)
        assert allocator.allocate() == a

    def test_release_unallocated_rejected(self):
        allocator = CoordinatedAllocator()
        with pytest.raises(AddressError):
            allocator.release(7)

    def test_release_costs_a_round_trip(self):
        allocator = CoordinatedAllocator()
        address = allocator.allocate()
        allocator.release(address)
        assert allocator.stats.round_trips == 2


class TestUncoordinatedAllocator:
    def test_collisions_detected_in_small_pool(self):
        allocator = UncoordinatedAllocator(pool_size=50, seed=1)
        for _ in range(100):
            allocator.allocate()
        assert allocator.stats.collisions > 0

    def test_full_pool_rarely_collides_at_small_scale(self):
        allocator = UncoordinatedAllocator(seed=2)
        for _ in range(100):
            allocator.allocate()
        assert allocator.stats.collisions == 0  # 100 out of 2.5e8

    def test_expected_collisions_formula(self):
        allocator = UncoordinatedAllocator(pool_size=1000)
        assert allocator.expected_collisions(2) == pytest.approx(1 / 1000)
        assert allocator.expected_collisions(100) == pytest.approx(4.95)

    def test_deterministic(self):
        a = UncoordinatedAllocator(seed=5)
        b = UncoordinatedAllocator(seed=5)
        assert [a.allocate() for _ in range(10)] == [b.allocate() for _ in range(10)]
