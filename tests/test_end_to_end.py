"""A day-in-the-life integration test: every major subsystem together.

One network hosts, concurrently: an authenticated pay-TV channel with
billing, a floor-controlled lecture discovered through the session
directory with a hot standby, and a reliable file push — then a core
link fails mid-run and everything must keep working or fail over.
"""

import pytest

from repro import ExpressNetwork, TopologyBuilder, make_key
from repro.core.keys import ChannelKey
from repro.costmodel.billing import BillingCollector
from repro.relay import (
    DirectoryListener,
    FloorControl,
    ReliableReceiver,
    ReliableRelay,
    SessionAnnouncement,
    SessionDirectory,
    SessionParticipant,
    SessionRelay,
    StandbyCoordinator,
    StandbyMode,
)


@pytest.fixture(scope="module")
def world():
    topo = TopologyBuilder.isp(n_transit=4, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.1)
    return net


def test_day_in_the_life(world):
    net = world

    # --- 1. Pay TV with billing -----------------------------------------
    station = net.source("h0_0_0")
    feed = station.allocate_channel()
    key = make_key(feed)
    station.channel_key(feed, key)
    viewers = ["h1_0_0", "h2_0_0", "h3_0_0", "h3_1_1"]
    frames = {name: 0 for name in viewers}
    for name in viewers:
        def bump(_pkt, who=name):
            frames[who] += 1
        net.host(name).subscribe(feed, key=key, on_data=bump)
    pirate = net.host("h1_1_0").subscribe(feed, key=ChannelKey(b"cracked!"))
    billing = BillingCollector(station, feed, interval=30.0)
    billing.start()

    # --- 2. A lecture, discovered via the directory ---------------------
    directory = SessionDirectory(net, "h0_0_1", readvertise_interval=20.0)
    floor = FloorControl(moderator="h0_1_0", max_questions=1)
    lecture = SessionRelay(net, "h0_1_0", floor=floor, heartbeat_interval=1.0)
    backup = SessionRelay(net, "h0_1_1", heartbeat_interval=1.0)
    standby = StandbyCoordinator(net, lecture, backup, mode=StandbyMode.HOT)
    listener_hosts = ["h1_0_1", "h2_1_0"]
    listeners = {
        name: DirectoryListener(net, name, directory.channel)
        for name in listener_hosts
    }
    net.settle()
    directory.announce(
        SessionAnnouncement(
            name="networking-201", channel=lecture.channel, starts_at=net.sim.now
        )
    )
    net.settle()
    students = []
    for name in listener_hosts:
        assert "networking-201" in listeners[name].known
        student = SessionParticipant(net, name, lecture)
        standby.enroll(student)
        students.append(student)

    # --- 3. Reliable file push -------------------------------------------
    pusher = SessionRelay(net, "h2_0_1")
    reliable = ReliableRelay(pusher)
    receivers = [
        ReliableReceiver(SessionParticipant(net, name, pusher))
        for name in ("h3_1_0", "h1_1_1")
    ]
    net.settle(2.0)

    # --- run: TV frames + lecture + file chunks interleaved --------------
    for _ in range(5):
        station.send(feed)
    lecture.speak_from_relay("welcome")
    students[0].request_floor()
    net.settle()
    students[0].speak("question!")
    net.settle()
    chunk_seqs = [reliable.send(f"chunk{i}")[0] for i in range(3)]
    net.run(until=net.sim.now + 45)  # let billing sample a few times

    # --- 4. mid-run core failure ------------------------------------------
    net.topo.link_between("t0", "t1").fail()
    net.settle(10.0)
    for _ in range(5):
        station.send(feed)
    net.settle(2.0)

    # --- 5. primary lecture relay dies; hot standby takes over ------------
    standby.fail_primary()
    net.run(until=net.sim.now + 10)
    backup.speak_from_relay("backup here")
    net.run(until=net.sim.now + 5)

    # --- assertions --------------------------------------------------------
    # TV: all viewers got all 10 frames despite the core failure.
    assert all(count == 10 for count in frames.values()), frames
    assert pirate.status == "denied"
    # Billing sampled a steady audience of 4.
    invoice = billing.invoice()
    assert invoice.samples and all(s == 4 for s in invoice.samples)
    assert invoice.tier == "tens"
    # Lecture: both students heard the welcome and the question.
    for student in students:
        bodies = [m.body for m in student.heard_talks]
        assert "welcome" in bodies and "question!" in bodies
    # Standby: everyone failed over and heard the backup.
    assert standby.all_recovered()
    # File push: everyone has every chunk.
    for receiver in receivers:
        assert receiver.missing() == set()
    # No channel leaked FIB state beyond the live ones.
    live_channels = {feed, lecture.channel, backup.channel, pusher.channel,
                     directory.channel}
    for fib in net.fibs.values():
        for source_addr, group in fib.channels():
            assert any(
                ch.source == source_addr and ch.group == group
                for ch in live_channels
            )
