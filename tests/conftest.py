"""Shared fixtures: small EXPRESS networks in canonical shapes."""

from __future__ import annotations

import pytest

from repro import Channel, ExpressNetwork, TopologyBuilder
from repro.core.network import SourceHandle


@pytest.fixture
def line_net():
    """src -- r1 -- r2 -- sub : a 2-router line with a host each end."""
    topo = TopologyBuilder.line(2)  # n0 - n1
    topo.add_node("hsrc")
    topo.add_node("hsub")
    topo.add_link("hsrc", "n0", delay=0.001)
    topo.add_link("hsub", "n1", delay=0.001)
    net = ExpressNetwork(topo, hosts=["hsrc", "hsub"])
    net.run(until=0.01)
    return net


@pytest.fixture
def star_net():
    """One router, one source host, four subscriber hosts."""
    topo = TopologyBuilder.star(5)
    # leaf0 is the source; leaf1..4 subscribers.
    net = ExpressNetwork(topo, hosts=[f"leaf{i}" for i in range(5)])
    net.run(until=0.01)
    return net


@pytest.fixture
def isp_net():
    """A 3-transit ISP topology with 12 hosts."""
    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.01)
    return net


def make_channel(net: ExpressNetwork, source_host: str) -> tuple[SourceHandle, Channel]:
    """Allocate a fresh channel for ``source_host``."""
    handle = net.source(source_host)
    return handle, handle.allocate_channel()
