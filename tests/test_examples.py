"""Smoke tests: the fast example scripts run end-to-end.

(The longer scenarios — stock_ticker, file_distribution — are exercised
indirectly through the modules they use; running them here would slow
the suite.)
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "delivered to: ['h1_0_0', 'h1_1_1', 'h2_0_1']" in out
    assert "subscriber count: 3" in out


def test_internet_tv(capsys):
    out = run_example("internet_tv.py", capsys)
    assert "freeloader subscription: denied" in out
    assert "clean 10-frame feed: 27/27" in out
    assert "ISP-visible subscriber count: 27" in out


def test_distance_learning(capsys):
    out = run_example("distance_learning.py", capsys)
    assert "barge-in blocked by floor control: True" in out
    assert "all students recovered on backup channel: True" in out
    assert "What is reverse-path forwarding?" in out


def test_multiplayer_game(capsys):
    out = run_example("multiplayer_game.py", capsys)
    assert "players with all 5 updates: 6/6" in out


def test_module_main(capsys):
    import repro.__main__ as main_module

    assert main_module.main() == 0
    out = capsys.readouterr().out
    assert "CountQuery -> 3 subscribers" in out
