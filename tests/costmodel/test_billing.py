"""Tests for ISP channel billing (§2.2.3, §6)."""

import pytest

from repro.costmodel.billing import (
    DEFAULT_TIERS,
    BillingCollector,
    BillingTier,
    TieredBillingPolicy,
)
from repro.errors import WorkloadError
from tests.conftest import make_channel


class TestPolicy:
    def test_default_tiers_match_paper_scales(self):
        """"differentiating among channels with 10s, 100s, 1000s, and
        millions of subscribers"."""
        names = [tier.name for tier in DEFAULT_TIERS]
        assert names == ["tens", "hundreds", "thousands", "millions"]

    def test_classification_boundaries(self):
        policy = TieredBillingPolicy()
        assert policy.classify(0).name == "tens"
        assert policy.classify(100).name == "tens"
        assert policy.classify(101).name == "hundreds"
        assert policy.classify(5_000).name == "thousands"
        assert policy.classify(10_000_000).name == "millions"

    def test_bigger_audience_bills_more(self):
        policy = TieredBillingPolicy()
        tiers = [policy.classify(n).rate_per_hour for n in (50, 500, 50_000, 5_000_000)]
        assert tiers == sorted(tiers) and len(set(tiers)) == 4

    def test_invoice_from_samples(self, line_net):
        _, ch = make_channel(line_net, "hsrc")
        policy = TieredBillingPolicy()
        invoice = policy.invoice(ch, samples=[400, 600, 500], duration_hours=1.5)
        assert invoice.average_subscribers == 500
        assert invoice.peak_subscribers == 600
        assert invoice.tier == "hundreds"
        assert invoice.amount == pytest.approx(1.5 * 1.00)

    def test_empty_samples_bill_lowest_tier(self, line_net):
        _, ch = make_channel(line_net, "hsrc")
        invoice = TieredBillingPolicy().invoice(ch, samples=[], duration_hours=2.0)
        assert invoice.tier == "tens"
        assert invoice.average_subscribers == 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TieredBillingPolicy(tiers=())
        with pytest.raises(WorkloadError):
            TieredBillingPolicy(
                tiers=(BillingTier("a", 10, 1.0), BillingTier("b", 10, 2.0))
            )
        with pytest.raises(WorkloadError):
            TieredBillingPolicy().invoice(None, [1], duration_hours=-1)


class TestCollector:
    def test_periodic_sampling_and_invoice(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        for member in ("h1_0_0", "h1_1_0", "h2_0_0"):
            net.host(member).subscribe(ch)
        net.settle()
        collector = BillingCollector(src, ch, interval=60.0, query_timeout=5.0)
        collector.start()
        net.run(until=net.sim.now + 400)  # ~6 samples
        collector.stop()
        assert len(collector.samples) >= 5
        assert all(sample == 3 for sample in collector.samples)
        invoice = collector.invoice()
        assert invoice.tier == "tens"
        assert invoice.average_subscribers == 3
        assert invoice.amount > 0

    def test_samples_track_churn(self, isp_net):
        net = isp_net
        src, ch = make_channel(net, "h0_0_0")
        net.host("h1_0_0").subscribe(ch)
        net.settle()
        collector = BillingCollector(src, ch, interval=30.0)
        collector.start()
        net.run(until=net.sim.now + 100)
        net.host("h2_0_0").subscribe(ch)
        net.run(until=net.sim.now + 100)
        collector.stop()
        assert 1 in collector.samples and 2 in collector.samples

    def test_validation(self, isp_net):
        src, ch = make_channel(isp_net, "h0_0_0")
        with pytest.raises(WorkloadError):
            BillingCollector(src, ch, interval=0)
