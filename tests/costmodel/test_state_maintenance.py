"""Tests for the §5.2 state model and §5.3 maintenance model."""

import pytest

from repro.costmodel.maintenance import (
    MaintenanceModel,
    MillionChannelScenario,
    counts_per_segment,
)
from repro.costmodel.state_cost import ManagementStateModel
from repro.errors import WorkloadError


class TestManagementState:
    def test_paper_default_is_200_bytes(self):
        assert ManagementStateModel().channel_bytes() == 200

    def test_unauthenticated_is_192(self):
        assert ManagementStateModel().channel_bytes(authenticated=False) == 192

    def test_channel_cost_at_most_one_fiftieth_cent(self):
        """§5.2: "each channel costs less than 1/50-th of a cent" —
        200 B x $1/MB is exactly 1/50 c; the paper rounds in its
        favour."""
        cost = ManagementStateModel().channel_cost_dollars()
        assert cost <= 0.01 / 50

    def test_router_state_linear_in_channels(self):
        """§5: memory "scales linearly with the number of channels"."""
        model = ManagementStateModel()
        assert model.router_bytes(2000) == 2 * model.router_bytes(1000)

    def test_million_channels_is_modest_dram(self):
        model = ManagementStateModel()
        bytes_needed = model.router_bytes(1_000_000)
        assert bytes_needed == 200_000_000  # 200 MB for a million channels
        assert model.router_cost_dollars(1_000_000) == pytest.approx(200.0)

    def test_validation(self):
        model = ManagementStateModel()
        with pytest.raises(WorkloadError):
            model.channel_bytes(fanout=-1)
        with pytest.raises(WorkloadError):
            model.router_bytes(-5)


class TestMillionChannelScenario:
    def test_paper_rates(self):
        """§5.3's worked numbers: 4M received / 2M sent per 20 min,
        3,333 req/s, ~5,000 events/s."""
        scenario = MillionChannelScenario()
        assert scenario.received_per_lifetime() == 4_000_000
        assert scenario.sent_per_lifetime() == 2_000_000
        assert scenario.receive_rate() == pytest.approx(3333.3, rel=0.001)
        assert scenario.event_rate() == pytest.approx(5000, rel=0.001)

    def test_counts_per_segment_is_92(self):
        assert counts_per_segment() == 92

    def test_segments_and_bandwidth(self):
        """"36 (3333/92) data segments, or 424 kilobits per second"."""
        scenario = MillionChannelScenario()
        assert scenario.receive_segments_per_second() == pytest.approx(36.2, rel=0.01)
        assert scenario.receive_bandwidth_bps() == pytest.approx(424_000, rel=0.02)
        assert scenario.send_bandwidth_bps() == pytest.approx(212_000, rel=0.02)

    def test_scaling_in_channels(self):
        half = MillionChannelScenario(channels=500_000)
        full = MillionChannelScenario()
        assert full.event_rate() == pytest.approx(2 * half.event_rate())


class TestMaintenanceModel:
    def test_paper_operating_points(self):
        """4,500 events/s at 4% and 33,000 at 43% imply ~3,500 and
        ~5,200 cycles/event on the 400 MHz reference CPU."""
        implied_low = MaintenanceModel.implied_cycles_per_event(4500, 0.04)
        implied_high = MaintenanceModel.implied_cycles_per_event(33000, 0.43)
        assert implied_low == pytest.approx(3555, rel=0.01)
        assert implied_high == pytest.approx(5212, rel=0.01)

    def test_cpu_utilization_at_scenario_rate(self):
        """The million-channel scenario fits comfortably in the
        reference CPU (the paper's point that maintenance is cheap)."""
        model = MaintenanceModel()
        utilization = model.cpu_utilization(MillionChannelScenario().event_rate())
        assert utilization < 0.07  # ~6% with the 5,000-cycle estimate

    def test_max_event_rate(self):
        model = MaintenanceModel()
        assert model.max_event_rate(0.5) == pytest.approx(40_000)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MaintenanceModel().cpu_utilization(-1)
        with pytest.raises(WorkloadError):
            MaintenanceModel.implied_cycles_per_event(0, 0.5)
        with pytest.raises(WorkloadError):
            counts_per_segment(count_bytes=0)
