"""Tests for the Figure 6 FIB cost model and §5.1 worked examples."""

import pytest

from repro.costmodel.fib_cost import (
    FibCostModel,
    conference_example,
    stock_ticker_example,
)
from repro.errors import WorkloadError


class TestModel:
    def test_per_entry_purchase_cost_matches_paper(self):
        """$55/MB x 12 bytes = the paper's $.00066 per entry."""
        assert FibCostModel().entry_purchase_cost() == pytest.approx(0.00066)

    def test_session_cost_formula(self):
        """c_s <= k*n*h * m*e*t_s / (t_r * u), evaluated directly."""
        model = FibCostModel()
        cost = model.session_cost(channels=1, receivers=1, hops=1, session_seconds=31_536_000)
        # One entry for a full router lifetime at 1% utilization:
        # 0.00066 / 0.01 = 0.066.
        assert cost == pytest.approx(0.066)

    def test_cost_linear_in_each_factor(self):
        model = FibCostModel()
        base = model.session_cost(2, 3, 4, 100)
        assert model.session_cost(4, 3, 4, 100) == pytest.approx(2 * base)
        assert model.session_cost(2, 6, 4, 100) == pytest.approx(2 * base)
        assert model.session_cost(2, 3, 8, 100) == pytest.approx(2 * base)
        assert model.session_cost(2, 3, 4, 200) == pytest.approx(2 * base)

    def test_yearly_cost_equals_full_lifetime_session(self):
        model = FibCostModel()
        assert model.yearly_cost(100) == pytest.approx(
            model.tree_cost(100, model.router_lifetime)
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            FibCostModel(utilization=0)
        with pytest.raises(WorkloadError):
            FibCostModel().session_cost(1, 1, 1, -5)


class TestWorkedExamples:
    def test_conference_within_paper_bound(self):
        """§5.1: "less than eight cents for the whole conference"."""
        example = conference_example()
        assert example["formula_cost_dollars"] < 0.08
        # And the formula value itself (the paper's printed $.075
        # differs from its own formula; both are reported).
        assert example["formula_cost_dollars"] == pytest.approx(0.00628, rel=0.01)

    def test_conference_per_channel(self):
        example = conference_example()
        assert example["formula_cost_per_channel"] == pytest.approx(
            example["formula_cost_dollars"] / 10
        )

    def test_stock_ticker_cheap_per_subscriber(self):
        """§5.1: pennies per subscriber-year vs $1/viewer-month cable
        leases — the shape that matters."""
        example = stock_ticker_example()
        # Tens of cents per subscriber-year at most (the formula gives
        # 13.2 c; the paper's $18,200 figure gives 18.2 c — its "0.18
        # cents" phrasing drops a factor of 100 either way).
        assert example["formula_cents_per_subscriber_year"] < 20.0
        # Two orders of magnitude below the cable-TV comparison point
        # ($1 per viewer-month = 1200 c per viewer-year).
        cable_yearly_cents = example["cable_tv_lease_per_viewer_month"] * 12 * 100
        assert example["formula_cents_per_subscriber_year"] < cable_yearly_cents / 50

    def test_modern_prices_make_it_cheaper(self):
        """The model is parametric: at today's SRAM prices the case
        only strengthens."""
        modern = FibCostModel(dollars_per_megabyte=1.0)
        assert (
            modern.yearly_cost(200_000)
            < FibCostModel().yearly_cost(200_000)
        )
