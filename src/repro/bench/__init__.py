"""Machine-readable performance harness (``python -m repro.bench``).

Runs the parameterized scenarios in :mod:`repro.bench.scenarios` and
writes ``BENCH_perf.json`` — the perf trajectory file future PRs diff
against (and that CI's ``perf-smoke`` job gates on). The JSON schema is
documented in ``docs/performance.md``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Optional

from repro.bench.scenarios import SCENARIOS, run_scenarios

#: Bump when the JSON layout changes incompatibly.
#: v2: per-scenario ``ecmp_wire`` blocks (on-wire byte/message
#: accounting), the churn scenario's unbatched baseline +
#: ``wire_message_reduction``, and matching summary fields.
#: v3: the ``mega_join_storm`` scenario (per-scheduler ``schedulers``
#: blocks, ``wheel_speedup``, ``peak_rss_kb``, timer-wheel stats) and
#: matching summary fields.
#: v4: the ``mega_join_storm_parallel`` scenario (sharded run vs.
#: single-process wheel: ``partition_speedup``, ``partition_plan``,
#: ``sync`` null-message/LBTS/proxy totals, ``single_process`` block)
#: and the ``partition_speedup`` / ``partition_workers`` summary
#: fields.
#: v5: distributed telemetry on the parallel scenario — per-shard
#: ``phase_breakdown`` / ``null_message_ratio`` / ``sync_efficiency``
#: / ``settle_seconds`` plus a ``telemetry`` block (merged-scrape and
#: cross-shard-trace evidence) — and the matching summary fields and
#: ``--floor-sync-efficiency`` gate.
#: v6: the native event core — ``mega_join_storm`` gains
#: ``native_core`` / ``batched_events`` / ``batched_slots`` / ``arena``
#: blocks, the parallel scenario gains ``setup_seconds`` /
#: ``cores_available`` / ``warnings`` host diagnostics, phase
#: breakdowns grow ``alloc`` and ``accounting`` phases, and the
#: ``--floor-mega-events-per-sec`` gate pins the mega storm's absolute
#: throughput (the ``partition_speedup`` gate is skipped with a
#: warning when the host cannot run the workers in parallel —
#: ``cores_limited``).
#: v7: the sync-tax cut — the parallel scenario's timed pass runs the
#: demand-driven multi-window protocol over the shared-memory ring
#: transport (``transport`` / ``sync_mode`` fields record the
#: configuration) and gains ``sync_messages_per_event`` /
#: ``frames_per_round`` / ``demand_null_ratio``, an eager lockstep
#: ``sync_baseline`` block, and the host-independent
#: ``null_ratio_reduction`` / ``sync_message_reduction`` ratios gated
#: by ``--floor-null-ratio-reduction`` / ``--floor-sync-msg-reduction``;
#: sync totals grow ``windows`` / ``frames_sent`` / ``frames_received``.
#: v8: the control-plane fast path — the ``channel_surf`` scenario
#: (Zipf channel-surfing over thousands of standing channels, driven
#: on the columnar/zero-copy/refresh-ring control plane and on the
#: legacy dict/scan/concatenating baseline) with ``zap_events_per_sec``
#: / ``state_churn_speedup`` / ``refresh_scan_fraction`` and a
#: ``baseline`` block, the matching summary fields, and the
#: ``--floor-zap-events-per-sec`` / ``--floor-state-churn-speedup``
#: gates.
#: v9: fault injection & adversarial robustness — the
#: ``router_crash_storm`` scenario (a seeded ``repro.faults`` chaos
#: plan: transit-router crash/restart cycles, partition/heal, latency
#: spike, wire mutation, forged-key join flood, counting inflation)
#: with the ``FaultMonitor`` SLOs ``convergence_seconds`` /
#: ``resync_bytes`` / ``blast_radius`` / ``orphaned_state`` (all
#: lower-is-better), matching summary fields, and the first *ceiling*
#: gates ``--floor-convergence-seconds`` / ``--floor-blast-radius``
#: (:data:`CEILING_GATES`: the run fails when the measured value
#: exceeds the threshold).
SCHEMA_VERSION = 9


def build_report(
    quick: bool = True,
    seed: int = 0,
    only: Optional[list[str]] = None,
    workers: Optional[int] = None,
) -> dict:
    """Run scenarios and assemble the full ``BENCH_perf.json`` payload."""
    started = time.time()
    scenarios = run_scenarios(quick=quick, seed=seed, only=only, workers=workers)
    throughputs = [
        s["events_per_sec"] for s in scenarios.values() if "events_per_sec" in s
    ]
    latencies = [
        s["delivery_latency"]["p99_seconds"]
        for s in scenarios.values()
        if s.get("delivery_latency", {}).get("count")
    ]
    churn = scenarios.get("link_flap_churn", {})
    mega = scenarios.get("mega_join_storm", {})
    surf = scenarios.get("channel_surf", {})
    storm = scenarios.get("router_crash_storm", {})
    parallel = scenarios.get("mega_join_storm_parallel", {})
    return {
        "bench": "perf",
        "schema_version": SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)),
        "quick": quick,
        "seed": seed,
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "wall_seconds_total": time.time() - started,
        "scenarios": scenarios,
        "summary": {
            "events_per_sec_min": min(throughputs) if throughputs else 0.0,
            "events_per_sec_max": max(throughputs) if throughputs else 0.0,
            "dijkstra_savings_ratio": churn.get("dijkstra_savings_ratio", 0.0),
            "delivery_p99_max_seconds": max(latencies) if latencies else 0.0,
            "ecmp_bytes_on_wire": churn.get("ecmp_wire", {}).get(
                "ecmp_bytes_on_wire", 0
            ),
            "wire_message_reduction": churn.get("wire_message_reduction", 0.0),
            "wheel_speedup": mega.get("wheel_speedup", 0.0),
            "mega_events_per_sec": mega.get("events_per_sec", 0.0),
            "native_core": mega.get("native_core", False),
            "batched_events": mega.get("batched_events", 0),
            "peak_rss_kb": mega.get("peak_rss_kb", 0),
            "zap_events_per_sec": surf.get("zap_events_per_sec", 0.0),
            "state_churn_speedup": surf.get("state_churn_speedup", 0.0),
            "refresh_scan_fraction": surf.get("refresh_scan_fraction", 0.0),
            # v9 robustness SLOs: None (not 0.0) when the storm scenario
            # did not run, so a requested ceiling gate fails loudly
            # instead of passing on a vacuous zero.
            "convergence_seconds": storm.get("convergence_seconds"),
            "resync_bytes": storm.get("resync_bytes"),
            "blast_radius": storm.get("blast_radius"),
            "orphaned_state": storm.get("orphaned_state"),
            "partition_speedup": parallel.get("partition_speedup", 0.0),
            "partition_workers": parallel.get("params", {}).get("workers", 0),
            "parallel_warnings": parallel.get("warnings", []),
            "sync_efficiency": parallel.get("sync_efficiency", 0.0),
            "null_message_ratio": parallel.get("null_message_ratio", 0.0),
            "settle_seconds": parallel.get("settle_seconds", 0.0),
            "transport": parallel.get("transport", ""),
            "sync_mode": parallel.get("sync_mode", ""),
            "sync_messages_per_event": parallel.get(
                "sync_messages_per_event", 0.0
            ),
            "frames_per_round": parallel.get("frames_per_round", 0.0),
            "null_ratio_reduction": parallel.get("null_ratio_reduction", 0.0),
            "sync_message_reduction": parallel.get(
                "sync_message_reduction", 0.0
            ),
        },
    }


#: Floor gates: CLI flag suffix -> (summary key, human label, format).
#: Every gate reads one ``summary`` field and fails the run (nonzero
#: exit) when the measured value is below the floor. Keeping the table
#: declarative pins the exit-code contract with a unit test per gate.
FLOOR_GATES = {
    "events_per_sec": (
        "events_per_sec_min",
        "events/sec floor",
        "{:,.0f}",
    ),
    "dijkstra_ratio": (
        "dijkstra_savings_ratio",
        "Dijkstra savings ratio floor",
        "{:.2f}",
    ),
    "bytes_on_wire": (
        "ecmp_bytes_on_wire",
        "ecmp_bytes_on_wire floor",
        "{:,.0f}",
    ),
    "wire_reduction": (
        "wire_message_reduction",
        "wire message reduction floor",
        "{:.2f}",
    ),
    "wheel_speedup": (
        "wheel_speedup",
        "wheel speedup floor",
        "{:.2f}",
    ),
    "mega_events_per_sec": (
        "mega_events_per_sec",
        "mega storm events/sec floor",
        "{:,.0f}",
    ),
    "zap_events_per_sec": (
        "zap_events_per_sec",
        "channel-surf zap events/sec floor",
        "{:,.0f}",
    ),
    "state_churn_speedup": (
        "state_churn_speedup",
        "state churn speedup floor",
        "{:.2f}",
    ),
    "partition_speedup": (
        "partition_speedup",
        "partition speedup floor",
        "{:.2f}",
    ),
    "sync_efficiency": (
        "sync_efficiency",
        "sync efficiency floor",
        "{:.2f}",
    ),
    "null_ratio_reduction": (
        "null_ratio_reduction",
        "null-message ratio reduction floor",
        "{:.2f}",
    ),
    "sync_msg_reduction": (
        "sync_message_reduction",
        "sync messages/event reduction floor",
        "{:.2f}",
    ),
}

#: Ceiling gates (schema v9): same table shape as :data:`FLOOR_GATES`,
#: but the run fails when the measured value *exceeds* the threshold —
#: these are robustness SLOs from the crash-storm scenario where lower
#: is better. A missing/None summary value (the scenario did not run)
#: fails loudly: a vacuous 0.0 must never pass a requested ceiling.
CEILING_GATES = {
    "convergence_seconds": (
        "convergence_seconds",
        "convergence seconds ceiling",
        "{:.2f}",
    ),
    "blast_radius": (
        "blast_radius",
        "blast radius ceiling",
        "{:.2f}",
    ),
}


def check_floors(report: dict, floors: dict[str, Optional[float]]) -> list[str]:
    """Evaluate floor gates against a report's summary.

    ``floors`` maps :data:`FLOOR_GATES` or :data:`CEILING_GATES` keys
    to thresholds (``None`` entries are skipped). Returns the list of
    failure messages — empty means every requested gate passed. A floor
    whose summary field is missing or zero (its scenario did not run)
    fails rather than silently passing: a gate the CI asked for must
    measure something. Ceiling gates fail when the value is missing
    (``None``) or above the threshold.

    Exception: the ``partition_speedup`` gate is skipped (with a
    ``SKIP:`` notice on stderr) when the parallel scenario reported
    ``cores_limited`` — the workers time-sliced fewer CPU cores than
    processes, so the measured ratio reflects the host, not the sync
    protocol. The equivalence checks inside the scenario still ran, so
    correctness is unaffected; only the throughput claim is
    unmeasurable there.
    """
    failures = []
    parallel_warnings = report["summary"].get("parallel_warnings", [])
    for gate, floor in floors.items():
        if floor is None:
            continue
        if gate == "partition_speedup" and "cores_limited" in parallel_warnings:
            print(
                "SKIP: partition speedup floor — host has "
                "fewer cores than worker processes (cores_limited)",
                file=sys.stderr,
            )
            continue
        if gate in CEILING_GATES:
            key, label, fmt = CEILING_GATES[gate]
            value = report["summary"].get(key)
            if value is None:
                failures.append(
                    f"FAIL: {label} {fmt.format(floor)} has no measurement "
                    "(crash-storm scenario did not run)"
                )
            elif value > floor:
                failures.append(
                    f"FAIL: {label} {fmt.format(floor)} exceeded "
                    f"(got {fmt.format(value)})"
                )
            continue
        key, label, fmt = FLOOR_GATES[gate]
        value = report["summary"].get(key) or 0.0
        if value < floor:
            failures.append(
                f"FAIL: {label} {fmt.format(floor)} not met "
                f"(got {fmt.format(value)})"
            )
    return failures


def write_report(report: dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the perf scenarios and write BENCH_perf.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small topologies / short runs (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_perf.json"),
        help="output path (default: ./BENCH_perf.json)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process count for the parallel scenario "
        "(default: 2 quick / 4 full)",
    )
    parser.add_argument(
        "--floor-events-per-sec",
        type=float,
        default=None,
        help="exit non-zero if any scenario's events/sec falls below this",
    )
    parser.add_argument(
        "--floor-dijkstra-ratio",
        type=float,
        default=None,
        help="exit non-zero if the churn scenario's Dijkstra savings "
        "ratio falls below this",
    )
    parser.add_argument(
        "--floor-bytes-on-wire",
        type=float,
        default=None,
        help="exit non-zero if the churn scenario's ecmp_bytes_on_wire "
        "falls below this (proves wire accounting is live)",
    )
    parser.add_argument(
        "--floor-wire-reduction",
        type=float,
        default=None,
        help="exit non-zero if the churn scenario's batched-vs-unbatched "
        "wire message reduction falls below this",
    )
    parser.add_argument(
        "--floor-wheel-speedup",
        type=float,
        default=None,
        help="exit non-zero if the mega scenario's timer-wheel-vs-heap "
        "throughput ratio falls below this",
    )
    parser.add_argument(
        "--floor-mega-events-per-sec",
        type=float,
        default=None,
        help="exit non-zero if the mega storm's absolute events/sec "
        "falls below this (pins the native event core's throughput)",
    )
    parser.add_argument(
        "--floor-zap-events-per-sec",
        type=float,
        default=None,
        help="exit non-zero if the channel-surf scenario's zap "
        "throughput on the fast control plane falls below this",
    )
    parser.add_argument(
        "--floor-state-churn-speedup",
        type=float,
        default=None,
        help="exit non-zero if the channel-surf scenario's fast-vs-"
        "legacy control-plane wall-clock ratio falls below this",
    )
    parser.add_argument(
        "--floor-partition-speedup",
        type=float,
        default=None,
        help="exit non-zero if the parallel scenario's sharded-vs-"
        "single-process throughput ratio falls below this",
    )
    parser.add_argument(
        "--floor-sync-efficiency",
        type=float,
        default=None,
        help="exit non-zero if the telemetered parallel run's "
        "productive (non-sync_wait/idle) fraction of worker wall time falls below this",
    )
    parser.add_argument(
        "--floor-null-ratio-reduction",
        type=float,
        default=None,
        help="exit non-zero if demand-driven sync does not cut the "
        "null-message ratio by at least this factor vs the eager "
        "lockstep baseline (host-independent message counts)",
    )
    parser.add_argument(
        "--floor-sync-msg-reduction",
        type=float,
        default=None,
        help="exit non-zero if demand-driven sync does not cut sync "
        "messages per merged event by at least this factor vs the "
        "eager lockstep baseline (host-independent message counts)",
    )
    parser.add_argument(
        "--floor-convergence-seconds",
        type=float,
        default=None,
        help="exit non-zero if the crash storm's post-fault convergence "
        "time exceeds this many sim-seconds (ceiling: lower is better)",
    )
    parser.add_argument(
        "--floor-blast-radius",
        type=float,
        default=None,
        help="exit non-zero if the crash storm churns more than this "
        "fraction of agents (ceiling: lower is better)",
    )
    args = parser.parse_args(argv)

    report = build_report(
        quick=args.quick, seed=args.seed, only=args.scenario, workers=args.workers
    )
    write_report(report, args.output)

    print(f"perf bench ({'quick' if args.quick else 'full'} mode) -> {args.output}")
    for name, metrics in report["scenarios"].items():
        line = (
            f"  {name:18s} {metrics['events_per_sec']:12,.0f} events/s"
            f"  ({metrics['sim_events']:,} events, "
            f"{metrics['wall_seconds']:.2f}s wall)"
        )
        if "dijkstra_savings_ratio" in metrics:
            line += f"  dijkstra saving {metrics['dijkstra_savings_ratio']:.1f}x"
        if "wire_message_reduction" in metrics:
            line += f"  wire msgs {metrics['wire_message_reduction']:.1f}x fewer"
        if "wheel_speedup" in metrics:
            line += f"  wheel {metrics['wheel_speedup']:.1f}x heap"
        if metrics.get("batched_events"):
            line += f"  batched {metrics['batched_events']:,}"
        if "state_churn_speedup" in metrics:
            line += (
                f"  {metrics['zap_events_per_sec']:,.0f} zaps/s"
                f"  churn {metrics['state_churn_speedup']:.1f}x legacy"
                f"  scan {metrics['refresh_scan_fraction']:.1%}"
            )
        if "partition_speedup" in metrics:
            line += (
                f"  {metrics['params']['workers']} workers "
                f"{metrics['partition_speedup']:.2f}x single"
            )
        if "sync_efficiency" in metrics:
            line += (
                f"  sync eff {metrics['sync_efficiency']:.0%}"
                f"  settle {metrics['settle_seconds']:.2f}s"
            )
        if "sync_message_reduction" in metrics:
            line += (
                f"  [{metrics['transport']}/{metrics['sync_mode']}]"
                f"  nulls {metrics['null_ratio_reduction']:.1f}x fewer"
                f"  sync msgs {metrics['sync_message_reduction']:.1f}x fewer"
            )
        if "blast_radius" in metrics:
            line += (
                f"  conv {metrics['convergence_seconds']:.2f}s"
                f"  resync {metrics['resync_bytes']:,}B"
                f"  blast {metrics['blast_radius']:.0%}"
                f"  faults {metrics['faults']['faults_fired']}"
            )
        latency = metrics.get("delivery_latency", {})
        if latency.get("count"):
            line += (
                f"  p50 {latency['p50_seconds'] * 1e3:.2f}ms"
                f" p99 {latency['p99_seconds'] * 1e3:.2f}ms"
            )
        if metrics.get("warnings"):
            line += f"  [{', '.join(metrics['warnings'])}]"
        print(line)

    failures = check_floors(
        report,
        {
            "events_per_sec": args.floor_events_per_sec,
            "dijkstra_ratio": args.floor_dijkstra_ratio,
            "bytes_on_wire": args.floor_bytes_on_wire,
            "wire_reduction": args.floor_wire_reduction,
            "wheel_speedup": args.floor_wheel_speedup,
            "mega_events_per_sec": args.floor_mega_events_per_sec,
            "zap_events_per_sec": args.floor_zap_events_per_sec,
            "state_churn_speedup": args.floor_state_churn_speedup,
            "partition_speedup": args.floor_partition_speedup,
            "sync_efficiency": args.floor_sync_efficiency,
            "null_ratio_reduction": args.floor_null_ratio_reduction,
            "sync_msg_reduction": args.floor_sync_msg_reduction,
            "convergence_seconds": args.floor_convergence_seconds,
            "blast_radius": args.floor_blast_radius,
        },
    )
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0
