"""Parameterized performance scenarios for the perf harness.

Each scenario builds an instrumented :class:`ExpressNetwork`, drives a
workload, and returns a flat metrics dict for ``BENCH_perf.json``. The
three scenarios cover the three hot paths this repo optimizes:

* **join_storm** — control-plane subscription processing: every host
  joins one channel in a short window (the paper's Super Bowl start).
* **link_flap_churn** — routing reconvergence under link events with
  membership churn running (``repro.workloads.churn``); this is the
  scenario the incremental-SPF ≥5× Dijkstra saving is measured on.
* **steady_fanout** — the data plane: a source streaming to a fully
  subscribed balanced tree, exercising FIB lookup interning and the
  zero-copy fan-out path.

Wall-clock throughput numbers reflect the Python substrate and the
host machine; the JSON file exists so future PRs can diff *relative*
movement, and so the counter-based metrics (Dijkstra runs, in-place
fan-out fraction, cache hits) — which are machine-independent — can be
asserted exactly.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.core.network import ExpressNetwork
from repro.netsim.topology import TopologyBuilder
from repro.obs.hooks import Observability
from repro.obs.registry import percentile
from repro.workloads.churn import poisson_churn, schedule_churn


def _latency_summary(obs: Observability) -> dict:
    """p50/p99 end-to-end delivery latency across every subscriber."""
    family = obs.registry.get("delivery_latency_seconds")
    samples: list[float] = []
    if family is not None:
        for _, child in family.children():
            samples.extend(child.samples)
    return {
        "count": len(samples),
        "p50_seconds": percentile(samples, 50),
        "p99_seconds": percentile(samples, 99),
    }


def _spf_timing(obs: Observability, link_events: int) -> dict:
    family = obs.registry.get("spf_recompute_seconds")
    samples: list[float] = []
    if family is not None:
        for _, child in family.children():
            samples.extend(child.samples)
    total = sum(samples)
    return {
        "recomputes": len(samples),
        "total_seconds": total,
        "mean_seconds": total / len(samples) if samples else 0.0,
        "p99_seconds": percentile(samples, 99),
        "per_link_event_seconds": total / link_events if link_events else 0.0,
    }


def _fanout_stats(net: ExpressNetwork) -> dict:
    forwarded = 0
    inplace = 0
    for forwarder in net.forwarders.values():
        forwarded += forwarder.stats.get("multicast_forwarded")
        inplace += forwarder.stats.get("fanout_inplace")
    return {
        "multicast_forwarded": forwarded,
        "fanout_inplace": inplace,
        "inplace_fraction": inplace / forwarded if forwarded else 0.0,
    }


def _fib_cache_stats(net: ExpressNetwork) -> dict:
    lookups = sum(fib.lookups for fib in net.fibs.values())
    hits = sum(fib.lookup_cache_hits for fib in net.fibs.values())
    return {
        "fib_lookups": lookups,
        "fib_lookup_cache_hits": hits,
        "fib_cache_hit_fraction": hits / lookups if lookups else 0.0,
    }


def join_storm(quick: bool = True, seed: int = 0) -> dict:
    """Every host joins one channel within a short window, then the
    source streams a burst to the fully built tree."""
    n_transit = 4 if quick else 8
    stubs = 3 if quick else 4
    hosts_per_stub = 2 if quick else 3
    packets = 20 if quick else 100
    obs = Observability()
    topo = TopologyBuilder.isp(
        n_transit=n_transit,
        stubs_per_transit=stubs,
        hosts_per_stub=hosts_per_stub,
        seed=seed,
    )
    net = ExpressNetwork(topo, obs=obs)
    host_names = sorted(net.host_names)
    source = net.source(host_names[0])
    channel = source.allocate_channel()
    subscribers = host_names[1:]
    for index, name in enumerate(subscribers):
        net.sim.schedule_at(
            0.001 + 0.5 * index / max(len(subscribers), 1),
            lambda n=name: net.host(n).subscribe(channel),
            name="bench-join",
        )
    for k in range(packets):
        net.sim.schedule_at(
            1.0 + 0.01 * k, lambda: source.send(channel), name="bench-send"
        )
    started = perf_counter()
    net.run(until=2.5)
    wall = perf_counter() - started
    events = net.sim.events_processed
    return {
        "params": {
            "topology": f"isp({n_transit},{stubs},{hosts_per_stub})",
            "nodes": len(topo.nodes),
            "subscribers": len(subscribers),
            "packets": packets,
        },
        "wall_seconds": wall,
        "sim_events": events,
        "events_per_sec": events / wall if wall else 0.0,
        "subscribed": sum(
            1 for n in subscribers if net.host(n).is_subscribed(channel)
        ),
        "delivery_latency": _latency_summary(obs),
        **_fanout_stats(net),
        **_fib_cache_stats(net),
    }


def link_flap_churn(quick: bool = True, seed: int = 0) -> dict:
    """Membership churn plus repeated link failures/recoveries.

    The churn stream comes from :mod:`repro.workloads.churn`; core and
    stub links flap on a fixed cadence while hosts join and leave. The
    key outputs are the incremental-SPF counters: ``spf_runs`` (actual
    Dijkstra tree computations) against the from-scratch baseline of
    ``recompute_count × |V|`` — the seed implementation's cost.
    """
    n_transit = 4 if quick else 8
    stubs = 3 if quick else 4
    hosts_per_stub = 2 if quick else 3
    flaps = 6 if quick else 24
    duration = 6.0 if quick else 20.0
    obs = Observability()
    topo = TopologyBuilder.isp(
        n_transit=n_transit,
        stubs_per_transit=stubs,
        hosts_per_stub=hosts_per_stub,
        seed=seed,
    )
    net = ExpressNetwork(topo, obs=obs)
    host_names = sorted(net.host_names)
    # Several channels from sources in different stubs: several RPF
    # destination trees stay cached, so stub-link flaps exercise the
    # partial (dirty-set) invalidation path, not just the full one.
    n_channels = min(3, len(host_names) - 1)
    stride = max(len(host_names) // n_channels, 1)
    sources = [net.source(host_names[i * stride]) for i in range(n_channels)]
    channels = [s.allocate_channel() for s in sources]
    total_churn = 0
    source_names = {s.name for s in sources}
    for index, channel in enumerate(channels):
        subscribers = [
            name for i, name in enumerate(host_names) if i % n_channels == index
        ]
        events = poisson_churn(
            [n for n in subscribers if n not in source_names],
            duration=duration,
            mean_off_time=duration / 4,
            mean_on_time=duration / 4,
            seed=seed + index,
        )
        schedule_churn(net, channel, events)
        total_churn += len(events)
    # Flap a transit-transit link and a transit-stub link alternately;
    # both partial (dirty-set) and full invalidation paths get exercised.
    flap_targets = [
        topo.link_between("t0", "t1"),
        topo.link_between("t0", "e0_0"),
    ]
    for k in range(flaps):
        link = flap_targets[k % len(flap_targets)]
        at = duration * (k + 0.5) / flaps
        net.sim.schedule_at(at, link.fail, name="bench-fail")
        net.sim.schedule_at(at + 0.15, link.recover, name="bench-recover")
    started = perf_counter()
    net.run(until=duration + 1.0)
    wall = perf_counter() - started
    spf = net.routing.spf_counters()
    nodes = len(topo.nodes)
    baseline = spf["recompute_count"] * nodes
    ratio = baseline / spf["spf_runs"] if spf["spf_runs"] else float("inf")
    link_events = 2 * flaps
    return {
        "params": {
            "topology": f"isp({n_transit},{stubs},{hosts_per_stub})",
            "nodes": nodes,
            "channels": n_channels,
            "churn_events": total_churn,
            "link_events": link_events,
            "duration": duration,
        },
        "wall_seconds": wall,
        "sim_events": net.sim.events_processed,
        "events_per_sec": net.sim.events_processed / wall if wall else 0.0,
        "spf": spf,
        "dijkstra_runs": spf["spf_runs"],
        "dijkstra_baseline_equivalent": baseline,
        "dijkstra_savings_ratio": ratio,
        "spf_timing": _spf_timing(obs, link_events),
    }


def steady_fanout(quick: bool = True, seed: int = 0) -> dict:
    """A source streams to a fully subscribed balanced tree — the §5.3
    shape scaled down — measuring pure data-plane throughput."""
    depth = 5 if quick else 7
    packets = 60 if quick else 300
    obs = Observability()
    topo = TopologyBuilder.balanced_tree(depth=depth, fanout=2, seed=seed)
    leaves = [name for name, node in topo.nodes.items() if len(node.interfaces) == 1]
    net = ExpressNetwork(topo, hosts=["r"] + leaves, obs=obs)
    source = net.source("r")
    channel = source.allocate_channel()
    received = [0]

    def on_data(_packet) -> None:
        received[0] += 1

    for leaf in leaves:
        net.host(leaf).subscribe(channel, on_data=on_data)
    net.settle(1.0)
    for k in range(packets):
        net.sim.schedule_at(
            net.sim.now + 0.002 * k, lambda: source.send(channel), name="bench-send"
        )
    started = perf_counter()
    net.run(until=net.sim.now + 0.002 * packets + 1.0)
    wall = perf_counter() - started
    events = net.sim.events_processed
    return {
        "params": {
            "topology": f"balanced_tree(depth={depth},fanout=2)",
            "nodes": len(topo.nodes),
            "subscribers": len(leaves),
            "packets": packets,
        },
        "wall_seconds": wall,
        "sim_events": events,
        "events_per_sec": events / wall if wall else 0.0,
        "packets_delivered": received[0],
        "deliveries_per_sec": received[0] / wall if wall else 0.0,
        "delivery_latency": _latency_summary(obs),
        **_fanout_stats(net),
        **_fib_cache_stats(net),
    }


SCENARIOS = {
    "join_storm": join_storm,
    "link_flap_churn": link_flap_churn,
    "steady_fanout": steady_fanout,
}


def run_scenarios(
    quick: bool = True, seed: int = 0, only: Optional[list[str]] = None
) -> dict[str, dict]:
    """Run the selected scenarios; returns ``{name: metrics}``."""
    names = list(SCENARIOS) if not only else only
    results = {}
    for name in names:
        results[name] = SCENARIOS[name](quick=quick, seed=seed)
    return results
