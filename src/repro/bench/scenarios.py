"""Parameterized performance scenarios for the perf harness.

Each scenario builds an :class:`ExpressNetwork`, drives a workload,
and returns a flat metrics dict for ``BENCH_perf.json``. The scenarios
cover the hot paths this repo optimizes:

* **join_storm** — control-plane subscription processing: every host
  joins one channel in a short window (the paper's Super Bowl start).
* **link_flap_churn** — routing reconvergence under link events with
  membership churn running (``repro.workloads.churn``); this is the
  scenario the incremental-SPF ≥5× Dijkstra saving is measured on.
* **steady_fanout** — the data plane: a source streaming to a fully
  subscribed balanced tree, exercising FIB lookup interning and the
  zero-copy fan-out path.
* **mega_join_storm** — scheduler scale: a 10^5 (quick) / 10^6 (full)
  member join storm over aggregated subscriber blocks, run under both
  the heap and timer-wheel schedulers on identical workloads; gates
  the wheel's throughput advantage (``wheel_speedup``).
* **channel_surf** — control-plane state scale: thousands of standing
  channels (the §2.2 TV-distribution shape) while UDP-mode hosts zap
  between Zipf-popular channels; the identical workload is driven on
  the fast control plane (columnar state, zero-copy codec, refresh
  ring) and on the legacy dict/scan/concatenating baseline, and the
  wall-clock ratio over the zapping window is reported as
  ``state_churn_speedup`` (CI-gated).
* **router_crash_storm** — soft-state robustness: a seeded
  :mod:`repro.faults` chaos plan (transit-router crash/restart cycles,
  a partition/heal, a latency spike, a wire-mutation window, a
  forged-key join flood, and a counting-inflation attack) runs against
  a subscribed ISP network, and the
  :class:`~repro.faults.monitor.FaultMonitor` SLOs —
  ``convergence_seconds`` / ``resync_bytes`` / ``blast_radius`` /
  ``orphaned_state`` — are reported and CI-gated (ceiling gates:
  lower is better).

Wall-clock throughput numbers reflect the Python substrate and the
host machine; the JSON file exists so future PRs can diff *relative*
movement, and so the counter-based metrics (Dijkstra runs, in-place
fan-out fraction, cache hits) — which are machine-independent — can be
asserted exactly.
"""

from __future__ import annotations

import bisect
import gc
import json
import os
import random
from functools import partial
from itertools import accumulate
from time import perf_counter
from typing import Optional

from repro.core.ecmp.messages import set_zero_copy
from repro.core.ecmp.protocol import EcmpAgent, NeighborMode
from repro.core.keys import make_key
from repro.core.network import ExpressNetwork
from repro.faults import FaultInjector, FaultMonitor, seeded_crash_storm
from repro.netsim.engine import derive_seed
from repro.netsim.topology import TopologyBuilder
from repro.obs.hooks import Observability
from repro.obs.registry import percentile
from repro.workloads.churn import poisson_churn, schedule_churn


def _latency_summary(obs: Observability) -> dict:
    """p50/p99 end-to-end delivery latency across every subscriber."""
    family = obs.registry.get("delivery_latency_seconds")
    samples: list[float] = []
    if family is not None:
        for _, child in family.children():
            samples.extend(child.samples)
    return {
        "count": len(samples),
        "p50_seconds": percentile(samples, 50),
        "p99_seconds": percentile(samples, 99),
    }


def _spf_timing(obs: Observability, link_events: int) -> dict:
    family = obs.registry.get("spf_recompute_seconds")
    samples: list[float] = []
    if family is not None:
        for _, child in family.children():
            samples.extend(child.samples)
    total = sum(samples)
    return {
        "recomputes": len(samples),
        "total_seconds": total,
        "mean_seconds": total / len(samples) if samples else 0.0,
        "p99_seconds": percentile(samples, 99),
        "per_link_event_seconds": total / link_events if link_events else 0.0,
    }


def _fanout_stats(net: ExpressNetwork) -> dict:
    forwarded = 0
    inplace = 0
    for forwarder in net.forwarders.values():
        forwarded += forwarder.stats.get("multicast_forwarded")
        inplace += forwarder.stats.get("fanout_inplace")
    return {
        "multicast_forwarded": forwarded,
        "fanout_inplace": inplace,
        "inplace_fraction": inplace / forwarded if forwarded else 0.0,
    }


def _fib_cache_stats(net: ExpressNetwork) -> dict:
    lookups = sum(fib.lookups for fib in net.fibs.values())
    hits = sum(fib.lookup_cache_hits for fib in net.fibs.values())
    return {
        "fib_lookups": lookups,
        "fib_lookup_cache_hits": hits,
        "fib_cache_hit_fraction": hits / lookups if lookups else 0.0,
    }


def _ecmp_wire_stats(net: ExpressNetwork) -> dict:
    """Control-plane wire accounting summed over every agent: logical
    messages (what the protocol decided to say) against wire packets
    (what actually crossed links, post-coalescing)."""
    totals = {
        "msgs_tx": 0,
        "bytes_tx": 0,
        "wire_sends": 0,
        "bytes_on_wire": 0,
        "msgs_coalesced": 0,
        "batch_flushes": 0,
        "batches_rx": 0,
        "batch_records_tx": 0,
    }
    for agent in net.ecmp_agents.values():
        for key in totals:
            totals[key] += agent.stats.get(key)
    link_packets = sum(link.ecmp_wire_packets for link in net.topo.links)
    link_bytes = sum(link.ecmp_wire_bytes for link in net.topo.links)
    wire = totals["wire_sends"]
    return {
        "ecmp_msgs_logical": totals["msgs_tx"],
        "ecmp_bytes_logical": totals["bytes_tx"],
        "ecmp_wire_sends": wire,
        "ecmp_bytes_on_wire": totals["bytes_on_wire"],
        "ecmp_msgs_coalesced": totals["msgs_coalesced"],
        "ecmp_batch_flushes": totals["batch_flushes"],
        "ecmp_batches_rx": totals["batches_rx"],
        "ecmp_batch_records_tx": totals["batch_records_tx"],
        "ecmp_msgs_per_wire_send": totals["msgs_tx"] / wire if wire else 0.0,
        "link_ecmp_wire_packets": link_packets,
        "link_ecmp_wire_bytes": link_bytes,
    }


def join_storm(quick: bool = True, seed: int = 0) -> dict:
    """Every host joins one channel within a short window, then the
    source streams a burst to the fully built tree."""
    n_transit = 4 if quick else 8
    stubs = 3 if quick else 4
    hosts_per_stub = 2 if quick else 3
    packets = 20 if quick else 100
    obs = Observability()
    topo = TopologyBuilder.isp(
        n_transit=n_transit,
        stubs_per_transit=stubs,
        hosts_per_stub=hosts_per_stub,
        seed=seed,
    )
    net = ExpressNetwork(topo, obs=obs)
    host_names = sorted(net.host_names)
    source = net.source(host_names[0])
    channel = source.allocate_channel()
    subscribers = host_names[1:]
    for index, name in enumerate(subscribers):
        net.sim.schedule_at(
            0.001 + 0.5 * index / max(len(subscribers), 1),
            lambda n=name: net.host(n).subscribe(channel),
            name="bench-join",
        )
    for k in range(packets):
        net.sim.schedule_at(
            1.0 + 0.01 * k, lambda: source.send(channel), name="bench-send"
        )
    started = perf_counter()
    net.run(until=2.5)
    wall = perf_counter() - started
    events = net.sim.events_processed
    return {
        "params": {
            "topology": f"isp({n_transit},{stubs},{hosts_per_stub})",
            "nodes": len(topo.nodes),
            "subscribers": len(subscribers),
            "packets": packets,
        },
        "wall_seconds": wall,
        "sim_events": events,
        "events_per_sec": events / wall if wall else 0.0,
        "subscribed": sum(
            1 for n in subscribers if net.host(n).is_subscribed(channel)
        ),
        "delivery_latency": _latency_summary(obs),
        "ecmp_wire": _ecmp_wire_stats(net),
        **_fanout_stats(net),
        **_fib_cache_stats(net),
    }


def link_flap_churn(quick: bool = True, seed: int = 0) -> dict:
    """Membership churn plus repeated link failures/recoveries.

    The churn stream comes from :mod:`repro.workloads.churn`; core and
    stub links flap on a fixed cadence while hosts join and leave. The
    key outputs are the incremental-SPF counters (``spf_runs`` against
    the from-scratch baseline of ``recompute_count × |V|``) and the
    control-plane wire counters: the identical workload is driven twice,
    once batched and once with ``batching=False``, and the wire-message
    reduction between the two runs is reported (the §5 argument that
    TCP-mode sessions amortize per-channel control traffic).
    """
    n_transit = 4 if quick else 8
    stubs = 3 if quick else 4
    hosts_per_stub = 2 if quick else 3
    flaps = 6 if quick else 24
    duration = 6.0 if quick else 20.0
    # Enough channels that one link flap re-homes many channels toward
    # the same new upstream — the coalescing opportunity batching exists
    # to capture. Channels share a few source hosts deliberately: ECMP
    # keeps per-channel state (so flap churn scales with channels) while
    # unicast SPF keeps per-destination trees (so the incremental-SPF
    # measurement keeps its small hot destination set).
    n_sources = 3
    channels_per_source = 6 if quick else 11

    def drive(batching: bool) -> tuple[ExpressNetwork, Observability, dict, float]:
        obs = Observability()
        topo = TopologyBuilder.isp(
            n_transit=n_transit,
            stubs_per_transit=stubs,
            hosts_per_stub=hosts_per_stub,
            seed=seed,
        )
        net = ExpressNetwork(topo, obs=obs, batching=batching)
        host_names = sorted(net.host_names)
        # Several source hosts in different stubs: several RPF
        # destination trees stay cached, so stub-link flaps exercise the
        # partial (dirty-set) invalidation path, not just the full one.
        stride = max(len(host_names) // n_sources, 1)
        sources = [net.source(host_names[i * stride]) for i in range(n_sources)]
        channels = [
            s.allocate_channel()
            for s in sources
            for _ in range(channels_per_source)
        ]
        n_channels = len(channels)
        total_churn = 0
        source_names = {s.name for s in sources}
        for index, channel in enumerate(channels):
            subscribers = [
                name for i, name in enumerate(host_names) if i % n_channels == index
            ]
            events = poisson_churn(
                [n for n in subscribers if n not in source_names],
                duration=duration,
                mean_off_time=duration / 4,
                mean_on_time=duration / 4,
                seed=seed + index,
            )
            schedule_churn(net, channel, events)
            total_churn += len(events)
        # Dense membership underneath the churn: every host joins every
        # channel in a short window, so each flap re-homes per-channel
        # state at every transit node it touches — the §5 control-churn
        # shape batching is built for.
        for index, channel in enumerate(channels):
            for j, name in enumerate(host_names):
                if name in source_names:
                    continue
                net.sim.schedule_at(
                    0.001 + 0.2 * ((j * n_channels + index) % 97) / 97.0,
                    lambda n=name, c=channel: net.host(n).subscribe(c),
                    name="bench-bulk-join",
                )
        # Flap transit-transit links and a transit-stub link in
        # rotation; t2-t3 sits off the chorded shortest paths toward
        # the t0-region source, so its flaps leave some cached trees
        # clean — both partial (dirty-set) and full invalidation paths
        # get exercised.
        flap_targets = [
            topo.link_between("t0", "t1"),
            topo.link_between("t0", "e0_0"),
            topo.link_between("t2", "t3"),
        ]
        for k in range(flaps):
            link = flap_targets[k % len(flap_targets)]
            at = duration * (k + 0.5) / flaps
            net.sim.schedule_at(at, link.fail, name="bench-fail")
            net.sim.schedule_at(at + 0.15, link.recover, name="bench-recover")
        started = perf_counter()
        net.run(until=duration + 1.0)
        wall = perf_counter() - started
        params = {
            "topology": f"isp({n_transit},{stubs},{hosts_per_stub})",
            "nodes": len(topo.nodes),
            "channels": n_channels,
            "churn_events": total_churn,
            "link_events": 2 * flaps,
            "duration": duration,
        }
        return net, obs, params, wall

    net, obs, params, wall = drive(batching=True)
    baseline_net, _, _, _ = drive(batching=False)
    spf = net.routing.spf_counters()
    nodes = params["nodes"]
    baseline = spf["recompute_count"] * nodes
    ratio = baseline / spf["spf_runs"] if spf["spf_runs"] else float("inf")
    link_events = params["link_events"]
    wire = _ecmp_wire_stats(net)
    unbatched_wire = _ecmp_wire_stats(baseline_net)
    reduction = (
        unbatched_wire["ecmp_wire_sends"] / wire["ecmp_wire_sends"]
        if wire["ecmp_wire_sends"]
        else float("inf")
    )
    return {
        "params": params,
        "wall_seconds": wall,
        "sim_events": net.sim.events_processed,
        "events_per_sec": net.sim.events_processed / wall if wall else 0.0,
        "spf": spf,
        "dijkstra_runs": spf["spf_runs"],
        "dijkstra_baseline_equivalent": baseline,
        "dijkstra_savings_ratio": ratio,
        "spf_timing": _spf_timing(obs, link_events),
        "ecmp_wire": wire,
        "ecmp_wire_unbatched": unbatched_wire,
        "wire_message_reduction": reduction,
    }


def steady_fanout(quick: bool = True, seed: int = 0) -> dict:
    """A source streams to a fully subscribed balanced tree — the §5.3
    shape scaled down — measuring pure data-plane throughput."""
    depth = 5 if quick else 7
    packets = 60 if quick else 300
    obs = Observability()
    topo = TopologyBuilder.balanced_tree(depth=depth, fanout=2, seed=seed)
    leaves = [name for name, node in topo.nodes.items() if len(node.interfaces) == 1]
    net = ExpressNetwork(topo, hosts=["r"] + leaves, obs=obs)
    source = net.source("r")
    channel = source.allocate_channel()
    received = [0]

    def on_data(_packet) -> None:
        received[0] += 1

    for leaf in leaves:
        net.host(leaf).subscribe(channel, on_data=on_data)
    net.settle(1.0)
    for k in range(packets):
        net.sim.schedule_at(
            net.sim.now + 0.002 * k, lambda: source.send(channel), name="bench-send"
        )
    started = perf_counter()
    net.run(until=net.sim.now + 0.002 * packets + 1.0)
    wall = perf_counter() - started
    events = net.sim.events_processed
    return {
        "params": {
            "topology": f"balanced_tree(depth={depth},fanout=2)",
            "nodes": len(topo.nodes),
            "subscribers": len(leaves),
            "packets": packets,
        },
        "wall_seconds": wall,
        "sim_events": events,
        "events_per_sec": events / wall if wall else 0.0,
        "packets_delivered": received[0],
        "deliveries_per_sec": received[0] / wall if wall else 0.0,
        "delivery_latency": _latency_summary(obs),
        **_fanout_stats(net),
        **_fib_cache_stats(net),
    }


def mega_join_storm(quick: bool = True, seed: int = 0) -> dict:
    """§5.2 at full scale: a Super Bowl-sized audience joining one
    channel, modeled with aggregated subscriber blocks (100k members in
    quick mode, one million in full mode).

    The identical workload — join/leave times deterministically
    shuffled so scheduler inserts arrive in random time order — is
    driven twice, once under each ``Simulator`` scheduler, and the
    wheel-vs-heap throughput ratio is reported as ``wheel_speedup``
    (the timer-wheel claim CI gates on). Runs uninstrumented (no
    ``Observability``) and with GC paused over the measured region so
    the comparison isolates scheduler cost; correctness is checked
    arithmetically instead (final membership, per-member deliveries,
    and identical event counts across schedulers).
    """
    n_subs = 100_000 if quick else 1_000_000
    n_leaves = n_subs // 8
    packets = 20
    # Best-of-3 in quick mode smooths scheduler-external noise (the
    # quick run is short enough for wall-clock jitter to matter); the
    # full run is long enough to self-average. Repeats also warm the
    # process-wide event arena, so the best run measures the recycled
    # steady state the native core is built for.
    repeats = 3 if quick else 1
    # Coarse wheel slots (50 ms vs the 1 ms default) so the bulk storm
    # fills each bucket with ~1000+ ops: batch slot dispatch amortizes
    # its per-slot group bookkeeping over the whole bucket. Dispatch
    # order is granularity-independent, so the heap comparison and the
    # equivalence arithmetic are unaffected.
    wheel_granularity = 0.05

    def drive(scheduler: str) -> dict:
        topo = TopologyBuilder.isp(
            n_transit=4, stubs_per_transit=3, hosts_per_stub=1,
            seed=seed, scheduler=scheduler,
            wheel_granularity=wheel_granularity,
        )
        net = ExpressNetwork(topo)
        source = net.source(sorted(net.host_names)[0])
        channel = source.allocate_channel()
        edge_routers = sorted(n for n in topo.nodes if n.startswith("e"))
        blocks = [net.subscriber_block(name) for name in edge_routers]
        net.run(until=0.01)  # control-plane startup out of the way
        base = net.sim.now
        n_blocks = len(blocks)

        # Batchable bound ops (see repro.core.blocks.BlockOp): the
        # engine's clean-slot dispatcher folds a whole wheel bucket of
        # these into one arithmetic update per (block, channel).
        join_acts = [b.join_op(channel) for b in blocks]
        leave_acts = [b.leave_op(channel) for b in blocks]
        work = [
            (base + 0.1 + 4.0 * i / n_subs, join_acts[i % n_blocks])
            for i in range(n_subs)
        ]
        work += [
            (base + 4.2 + 0.8 * i / n_leaves, leave_acts[i % n_blocks])
            for i in range(n_leaves)
        ]
        # Shuffle deterministically: in submission order the heap's
        # sift-up degenerates to O(1) (each push is the new maximum)
        # and the comparison measures nothing. schedule_bulk preserves
        # input order for ties (dispatch matches a sequential
        # schedule_at loop), so the shuffle is order-safe.
        random.Random(seed + 1).shuffle(work)

        sim = net.sim
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            started = perf_counter()
            sim.schedule_bulk(work, name="bench-op")
            schedule_at = sim.schedule_at
            for k in range(packets):
                schedule_at(base + 5.2 + 0.005 * k, partial(source.send, channel))
            before = sim.events_processed
            net.run(until=base + 5.6)
            wall = perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
        events = sim.events_processed - before

        members = sum(b.count(channel) for b in blocks)
        deliveries = sum(b.deliveries for b in blocks)
        expected_members = n_subs - n_leaves
        if members != expected_members:
            raise RuntimeError(
                f"{scheduler}: final membership {members} != {expected_members}"
            )
        if deliveries != packets * members:
            raise RuntimeError(
                f"{scheduler}: block deliveries {deliveries} != "
                f"{packets * members}"
            )
        return {
            "wall": wall,
            "events": events,
            "nodes": len(topo.nodes),
            "blocks": n_blocks,
            "members": members,
            "deliveries": deliveries,
            "fast_updates": sum(
                a.block_fast_updates for a in net.ecmp_agents.values()
            ),
            "no_match_drops": sum(f.no_match_drops for f in net.fibs.values()),
            "stats": sim.scheduler_stats(),
        }

    runs = {name: drive(name) for name in ("heap", "wheel")}
    for _ in range(repeats - 1):
        for name in ("heap", "wheel"):
            again = drive(name)
            if again["events"] != runs[name]["events"]:
                raise RuntimeError(f"{name}: repeat diverged")
            if again["wall"] < runs[name]["wall"]:
                runs[name] = again
    heap, wheel = runs["heap"], runs["wheel"]
    if heap["events"] != wheel["events"]:
        raise RuntimeError(
            f"scheduler divergence: heap ran {heap['events']} events, "
            f"wheel {wheel['events']}"
        )
    try:
        import resource

        peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except ImportError:  # non-POSIX
        peak_rss_kb = 0
    return {
        "params": {
            "topology": "isp(4,3,1)",
            "nodes": wheel["nodes"],
            "subscribers": n_subs,
            "leaves": n_leaves,
            "blocks": wheel["blocks"],
            "packets": packets,
            "repeats": repeats,
        },
        # Top-level throughput is the wheel's (the configuration this
        # scale runs at); the heap baseline lives under "schedulers".
        "wall_seconds": wheel["wall"],
        "sim_events": wheel["events"],
        "events_per_sec": wheel["events"] / wheel["wall"] if wheel["wall"] else 0.0,
        "wheel_speedup": heap["wall"] / wheel["wall"] if wheel["wall"] else 0.0,
        "schedulers": {
            name: {
                "wall_seconds": run["wall"],
                "sim_events": run["events"],
                "events_per_sec": run["events"] / run["wall"] if run["wall"] else 0.0,
                "scheduler_stats": run["stats"],
            }
            for name, run in runs.items()
        },
        "peak_rss_kb": peak_rss_kb,
        # Native-core visibility (also inside scheduler_stats): how much
        # of the storm went through batch slot dispatch, and the arena's
        # recycle behaviour over the best run.
        "native_core": bool(wheel["stats"].get("native", False)),
        "batched_events": wheel["stats"].get("batched_events", 0),
        "batched_slots": wheel["stats"].get("batched_slots", 0),
        "arena": wheel["stats"].get("arena"),
        "members_final": wheel["members"],
        "members_expected": n_subs - n_leaves,
        "block_deliveries": wheel["deliveries"],
        "deliveries_expected": packets * (n_subs - n_leaves),
        "block_fast_updates": wheel["fast_updates"],
        "fib_no_match_drops": wheel["no_match_drops"],
        "dispatch_events_match": heap["events"] == wheel["events"],
    }


def channel_surf(quick: bool = True, seed: int = 0) -> dict:
    """Massive standing channel state under Zipf channel-surfing.

    The §2.2 TV-distribution shape: thousands of channels each with a
    persistent TCP-mode tail subscriber (standing per-channel state at
    every on-tree router, zero refresh traffic under TREE_ONLY), while
    a handful of UDP-mode "surfer" hosts zap — leave the current
    channel, join a Zipf-popular draw — on a sub-second cadence with
    the soft-state refresh interval cranked down to match. The zapping
    is what the fast path optimizes; the standing tail is the tax the
    legacy control plane pays for it: the full-table refresh scan
    walks every record of every channel on every tick to find the few
    UDP-mode records actually due.

    The identical workload (channel set, tail joins, zap schedule —
    all seeded via ``derive_seed``) is driven twice: once on the fast
    control plane (columnar record bank, zero-copy codec, refresh
    ring — the defaults) and once on the legacy baseline
    (``columnar=False, refresh_ring=False`` plus the concatenating
    codec via ``set_zero_copy(False)``). Only the zapping window is
    timed; setup/settle and the post-churn soft-state parity check are
    untimed. Reported:

    * ``zap_events_per_sec`` — zap throughput on the fast path (the
      CI-gated absolute floor),
    * ``state_churn_speedup`` — baseline wall over fast wall on the
      identical window (the CI-gated ≥ relative floor),
    * ``refresh_scan_fraction`` — records examined by refresh ticks,
      fast/baseline (how much of the scan tax the ring removes),

    plus a cross-pass equality check of the settled per-router
    ``ChannelState`` tables — the two control planes must agree on
    every (channel, neighbor, count, validated, udp) triple or the
    scenario raises instead of reporting a speedup.
    """
    n_transit = 3
    stubs = 2
    hosts_per_stub = 2
    n_sources = 3
    channels_per_source = 600 if quick else 2000
    n_surfers = 4 if quick else 8
    refresh_interval = 0.4  # vs the 60 s default: zapping-speed leases
    join_window = 4.0
    churn_duration = 20.0 if quick else 30.0
    zap_spacing = 0.6  # mean seconds between one surfer's zaps
    settle_after = 3.0  # > UDP_ROBUSTNESS * refresh_interval lease

    n_channels = n_sources * channels_per_source
    host_names = sorted(
        f"h{t}_{s}_{k}"
        for t in range(n_transit)
        for s in range(stubs)
        for k in range(hosts_per_stub)
    )
    source_names = [f"h{t}_0_0" for t in range(n_sources)]
    others = [name for name in host_names if name not in source_names]
    surfers = others[:n_surfers]
    tails = others[n_surfers:]

    # Zipf channel popularity (exponent ~1 — channel-surfing audiences
    # concentrate on the head but the tail keeps getting sampled).
    cumulative = list(
        accumulate(1.0 / (rank + 1) ** 1.05 for rank in range(n_channels))
    )
    total_weight = cumulative[-1]

    # One zap schedule, shared verbatim by both passes: (time, surfer,
    # channel rank). Seeded per surfer via derive_seed so adding a
    # surfer never perturbs another surfer's stream.
    churn_start = join_window + 2.0
    churn_end = churn_start + churn_duration
    zap_plan: list[tuple[float, str, int]] = []
    for surfer in surfers:
        rng = random.Random(derive_seed(seed, "channel_surf", surfer))
        at = churn_start + zap_spacing * rng.random()
        while at < churn_end:
            draw = bisect.bisect_left(cumulative, rng.random() * total_weight)
            zap_plan.append((at, surfer, draw))
            at += zap_spacing * (0.5 + rng.random())
    zap_plan.sort()

    def drive(fast: bool) -> dict:
        topo = TopologyBuilder.isp(
            n_transit=n_transit,
            stubs_per_transit=stubs,
            hosts_per_stub=hosts_per_stub,
            seed=seed,
        )
        kwargs = {} if fast else {"columnar": False, "refresh_ring": False}
        net = ExpressNetwork(topo, wire_format=True, **kwargs)
        sources = [net.source(name) for name in source_names]
        channels = [
            s.allocate_channel()
            for s in sources
            for _ in range(channels_per_source)
        ]
        # §3.2 per-interface mode selection: each surfer's access link
        # runs ECMP in UDP mode on both ends, so surfer membership is
        # soft state at the edge router — refreshed by general queries,
        # expired on silence.
        for surfer in surfers:
            t, s, _k = surfer[1:].split("_")
            edge = f"e{t}_{s}"
            net.ecmp_agents[surfer].set_neighbor_mode(edge, NeighborMode.UDP)
            net.ecmp_agents[edge].set_neighbor_mode(surfer, NeighborMode.UDP)
        # Standing state: every channel keeps one TCP-mode tail
        # subscriber for the whole run, joins spread across the setup
        # window (untimed).
        for index, channel in enumerate(channels):
            net.sim.schedule_at(
                0.001 + join_window * index / n_channels,
                lambda n=tails[index % len(tails)], c=channel: (
                    net.host(n).subscribe(c)
                ),
                name="bench-tail-join",
            )

        current: dict[str, Optional[object]] = {name: None for name in surfers}

        def zap(surfer: str, channel) -> None:
            previous = current[surfer]
            if previous is not None:
                net.host(surfer).unsubscribe(previous)
            net.host(surfer).subscribe(channel)
            current[surfer] = channel

        for at, surfer, draw in zap_plan:
            net.sim.schedule_at(
                at,
                lambda s=surfer, c=channels[draw]: zap(s, c),
                name="bench-zap",
            )

        net.run(until=churn_start)  # build + settle: untimed
        agents = net.ecmp_agents.values()
        examined_before = sum(
            a.stats.get("refresh_records_examined") for a in agents
        )
        started = perf_counter()
        net.run(until=churn_end)
        wall = perf_counter() - started
        examined = (
            sum(a.stats.get("refresh_records_examined") for a in agents)
            - examined_before
        )
        # Post-churn settle (untimed): long enough for any soft state
        # the last zaps abandoned to expire in both passes before the
        # parity snapshot.
        net.run(until=churn_end + settle_after)
        snapshot = {}
        for name, agent in sorted(net.ecmp_agents.items()):
            snapshot[name] = {
                (channel.source, channel.suffix): {
                    neighbor: (record.count, record.validated, record.udp)
                    for neighbor, record in sorted(state.downstream.items())
                }
                for channel, state in agent.channels.items()
            }
        return {
            "net": net,
            "wall": wall,
            "examined": examined,
            "snapshot": snapshot,
        }

    prior_interval = EcmpAgent.UDP_QUERY_INTERVAL
    EcmpAgent.UDP_QUERY_INTERVAL = refresh_interval
    try:
        fast_run = drive(fast=True)
        prior_codec = set_zero_copy(False)
        try:
            base_run = drive(fast=False)
        finally:
            set_zero_copy(prior_codec)
    finally:
        EcmpAgent.UDP_QUERY_INTERVAL = prior_interval

    if fast_run["snapshot"] != base_run["snapshot"]:
        raise RuntimeError(
            "fast and legacy control planes settled to different state"
        )
    fast_wall = fast_run["wall"]
    base_wall = base_run["wall"]
    zap_events = len(zap_plan)
    net = fast_run["net"]
    return {
        "params": {
            "topology": f"isp({n_transit},{stubs},{hosts_per_stub})",
            "nodes": len(net.topo.nodes),
            "channels": n_channels,
            "surfers": len(surfers),
            "tails": len(tails),
            "zap_events": zap_events,
            "refresh_interval": refresh_interval,
            "churn_duration": churn_duration,
        },
        "wall_seconds": fast_wall,
        "sim_events": net.sim.events_processed,
        "events_per_sec": (
            net.sim.events_processed / fast_wall if fast_wall else 0.0
        ),
        "zap_events": zap_events,
        "zap_events_per_sec": zap_events / fast_wall if fast_wall else 0.0,
        "state_churn_speedup": base_wall / fast_wall if fast_wall else 0.0,
        "refresh_records_examined": fast_run["examined"],
        "refresh_scan_fraction": (
            fast_run["examined"] / base_run["examined"]
            if base_run["examined"]
            else 0.0
        ),
        "baseline": {
            "wall_seconds": base_wall,
            "zap_events_per_sec": zap_events / base_wall if base_wall else 0.0,
            "refresh_records_examined": base_run["examined"],
        },
        "states_equivalent": True,
        "ecmp_wire": _ecmp_wire_stats(net),
    }


def mega_join_storm_parallel(
    quick: bool = True, seed: int = 0, workers: Optional[int] = None
) -> dict:
    """The block join storm sharded across worker processes.

    The identical declarative workload (a :data:`~repro.netsim.parallel.
    scenario.OPGENS` ``block_storm`` spec) is run twice: once on a
    single-process wheel simulator (the oracle and the baseline the
    speedup is measured against) and once through
    :class:`~repro.netsim.parallel.runner.ParallelRunner` with one
    wheel-scheduler worker process per partition. The sharded run must
    produce settled ``ChannelState`` tables, block membership, delivery
    counts, and dispatch totals identical to the single-process run
    (:func:`~repro.netsim.parallel.runner.assert_equivalent`; a
    divergence is a hard error, not a metric). ``partition_speedup`` is
    single-process wall over the sharded round-loop wall — partition
    build/spawn is a fixed cost excluded from both sides (scheduling is
    untimed in the single run too).

    The ISP core delay is raised to 40 ms so the conservative-sync
    lookahead (= the smallest cut-link delay) keeps the round count —
    and with it the null-message overhead — proportionate; see
    ``docs/performance.md`` for why cut delay bounds the speedup.

    A second sharded pass runs the identical spec with distributed
    telemetry attached (schema v5): the engine phase profiler, periodic
    registry snapshots merged into one fleet scrape, cross-shard trace
    stitching, and the convergence monitor. That pass reports
    ``phase_breakdown`` (fractions of worker wall time; must sum to
    ~1), ``null_message_ratio``, ``sync_efficiency`` (the productive —
    non-``sync_wait``/``idle`` — fraction CI gates with
    ``--floor-sync-efficiency``), ``settle_seconds``, and the merged
    scrape/trace evidence (``shards_in_scrape``,
    ``cross_shard_traces``). The *plain* pass keeps the speedup
    measurement exactly as before — telemetry is opt-in and charges
    nothing to the gated numbers.

    Schema v7 adds the sync-tax economics: the timed pass runs the
    demand-driven multi-window protocol over the default transport
    (shm ring unless ``REPRO_TRANSPORT``/CI says otherwise — the
    ``transport`` field records which), and an additional *eager*
    lockstep baseline pass (inline — message counts are
    transport-independent, and its wall clock is never used) yields
    ``null_ratio_reduction`` and ``sync_message_reduction``, the
    host-independent ratios CI gates with
    ``--floor-null-ratio-reduction`` / ``--floor-sync-msg-reduction``.
    """
    from repro.netsim.parallel import (
        ParallelRunner,
        ScenarioSpec,
        TelemetryConfig,
        assert_equivalent,
        run_single,
    )

    n_subs = 300_000 if quick else 1_000_000
    n_workers = workers if workers is not None else 4
    packets = 60
    # The paper's regional-audience shape: the channel's subscribers
    # live in two of the four transit domains (the EXPRESS model —
    # unsubscribed regions receive no traffic at all), so after the
    # churn burst converges the other two shards are permanently
    # quiet. Demand-driven sync stops contacting them; the eager
    # baseline heartbeats every shard every round, which is exactly
    # the tax ``sync_message_reduction`` measures.
    edge_routers = tuple(sorted(f"e{t}_{s}" for t in range(2) for s in range(3)))
    spec = ScenarioSpec(
        topology="isp",
        topology_kwargs={
            "n_transit": 4,
            "stubs_per_transit": 3,
            "hosts_per_stub": 1,
            "core_delay": 0.04,
        },
        source="h0_0_0",
        n_channels=1,
        blocks=edge_routers,
        opgen=(
            "block_storm",
            {
                "n_subs": n_subs,
                "n_blocks": len(edge_routers),
                "packets": packets,
                # The paper's single-source regime: compress the
                # subscription churn into a front-loaded burst and
                # stretch the data phase, so most of the run is a
                # steady state where only the shards a packet touches
                # have work. The dense default shape (churn smeared
                # over the whole run) forces every conservative
                # protocol into lockstep — each shard has a pending
                # event inside every lookahead window, so the round
                # count is the CMB optimum and no grant policy can cut
                # it; see docs/performance.md ("the sync tax").
                "join_window": 0.1,
                "leave_window": 0.1,
                "packet_spacing": 0.15,
                "burst": 2,
                "seed": seed,
            },
        ),
        duration=5.6,
        seed=seed,
    )
    single = run_single(spec, scheduler="wheel")
    runner = ParallelRunner(spec, n_workers, scheduler="wheel", mode="mp")
    result = runner.run()
    try:
        assert_equivalent(result.merged, single)
    except AssertionError as exc:
        raise RuntimeError(f"sharded run diverged from single-process: {exc}") from exc
    n_leaves = int(n_subs * 0.125)
    expected_members = n_subs - n_leaves
    members = sum(
        sum(block["counts"].values()) for block in result.merged["blocks"].values()
    )
    deliveries = sum(
        block["deliveries"] for block in result.merged["blocks"].values()
    )
    if members != expected_members:
        raise RuntimeError(f"final membership {members} != {expected_members}")
    if deliveries != packets * members:
        raise RuntimeError(
            f"block deliveries {deliveries} != {packets * members}"
        )
    single_wall = single["wall_seconds"]
    parallel_wall = result.wall_seconds
    events = result.merged["events"]
    sync = result.sync_totals()
    messages = result.message_totals()
    null_ratio = (
        sync["null_messages"] / sync["sync_rounds"] if sync["sync_rounds"] else 0.0
    )

    # Eager lockstep baseline: the pre-demand protocol (every worker,
    # every round, one window, a null message whenever a report carries
    # neither exports nor dispatched work) on the identical spec.
    # Message economics are
    # protocol-deterministic and transport-independent (pinned by the
    # property suite), so the baseline runs inline — no spawn cost, and
    # its wall clock is never used for anything.
    eager = ParallelRunner(
        spec, n_workers, scheduler="wheel", mode="inline", sync_mode="eager"
    ).run()
    try:
        assert_equivalent(eager.merged, single)
    except AssertionError as exc:
        raise RuntimeError(
            f"eager baseline diverged from single-process: {exc}"
        ) from exc
    eager_sync = eager.sync_totals()
    eager_messages = eager.message_totals()
    eager_null_ratio = (
        eager_sync["null_messages"] / eager_sync["sync_rounds"]
        if eager_sync["sync_rounds"]
        else 0.0
    )

    # Post-mortem hook: when REPRO_ROUNDS_DUMP names a file, write the
    # per-round grant ladders and frame counts of both passes as JSON
    # lines. CI sets it and uploads the file when the job fails, so a
    # reduction-floor regression arrives with the protocol transcript
    # that produced it.
    dump_path = os.environ.get("REPRO_ROUNDS_DUMP")
    if dump_path:
        os.makedirs(os.path.dirname(dump_path) or ".", exist_ok=True)
        with open(dump_path, "w", encoding="utf-8") as fh:
            for pass_name, res in (("demand", result), ("eager", eager)):
                for trace in res.round_traces:
                    row = {"pass": pass_name, **trace.as_dict()}
                    fh.write(json.dumps(row) + "\n")

    # Telemetered pass: same spec, same workers, full distributed
    # telemetry. Kept separate from the timed pass above so the
    # partition_speedup gate measures the uninstrumented fast path.
    telemetered = ParallelRunner(
        spec, n_workers, scheduler="wheel", mode="mp",
        telemetry=TelemetryConfig(profile=True, snapshot_every=8),
    ).run()
    phases = telemetered.phase_totals()
    breakdown_sum = sum(phases["phase_breakdown"].values())
    if abs(breakdown_sum - 1.0) > 0.01:
        raise RuntimeError(
            f"phase breakdown sums to {breakdown_sum:.4f}, not ~1.0"
        )
    shard_values: set[str] = set()
    shard_series = 0
    for family in telemetered.telemetry.registry().collect():
        if "shard" not in family.labelnames:
            continue
        at = family.labelnames.index("shard")
        for values, _child in family.children():
            shard_values.add(values[at])
            shard_series += 1
    if len(shard_values) != n_workers:
        raise RuntimeError(
            f"merged scrape covers shards {sorted(shard_values)}, "
            f"expected {n_workers}"
        )
    cross_traces = telemetered.telemetry.tracer().cross_shard_traces()
    if not cross_traces:
        raise RuntimeError("no causal trace crossed a shard boundary")
    telemetry_block = {
        "wall_seconds": telemetered.wall_seconds,
        "overhead_vs_plain": (
            telemetered.wall_seconds / parallel_wall - 1.0 if parallel_wall else 0.0
        ),
        "phase_seconds": phases["phase_seconds"],
        "events_per_second": {
            str(rank): eps for rank, eps in phases["events_per_second"].items()
        },
        "snapshots_ingested": telemetered.telemetry.snapshots_ingested,
        "shard_series": shard_series,
        "shards_in_scrape": sorted(shard_values),
        "cross_shard_traces": len(cross_traces),
        "quiesced_at": telemetered.quiesced_at,
    }
    return {
        "params": {
            "topology": "isp(4,3,1) core_delay=0.04",
            "nodes": sum(len(p) for p in result.plan.parts),
            "subscribers": n_subs,
            "leaves": n_leaves,
            "blocks": len(edge_routers),
            "packets": packets,
            "workers": result.plan.n,
        },
        "partition_plan": result.plan.summary(),
        "wall_seconds": parallel_wall,
        "sim_events": events,
        "events_per_sec": events / parallel_wall if parallel_wall else 0.0,
        "single_process": {
            "wall_seconds": single_wall,
            "sim_events": single["events"],
            "events_per_sec": single["events"] / single_wall if single_wall else 0.0,
        },
        "partition_speedup": single_wall / parallel_wall if parallel_wall else 0.0,
        # Host/harness diagnostics: when "cores_limited" is present the
        # workers time-sliced fewer cores than processes and the
        # speedup measures the host, not the protocol (the quick gate
        # is relaxed accordingly); "setup_dominated" means spawn+build
        # outweighed the round loop — scale the workload up.
        "setup_seconds": result.setup_seconds,
        "cores_available": result.cores_available,
        "warnings": list(result.warnings),
        "transport": result.transport,
        "sync_mode": result.sync_mode,
        "sync_rounds": result.rounds,
        "sync": sync,
        # Host-independent sync-message economics, and how they compare
        # to the eager lockstep baseline (the "sync tax" cut the
        # reduction gates pin; see docs/performance.md).
        "sync_messages_per_event": messages["sync_messages_per_event"],
        "frames_per_round": messages["frames_per_round"],
        "demand_null_ratio": null_ratio,
        "sync_baseline": {
            "sync_mode": "eager",
            "sync_rounds": eager.rounds,
            "sync": eager_sync,
            "null_message_ratio": eager_null_ratio,
            "sync_messages_per_event": eager_messages["sync_messages_per_event"],
            "frames_per_round": eager_messages["frames_per_round"],
        },
        # A demand run with *zero* nulls would divide by zero; clamp
        # its ratio to the resolution of one null per report so the
        # reduction stays finite (and the gate can't fail on perfect).
        "null_ratio_reduction": (
            eager_null_ratio
            / max(null_ratio, 1.0 / max(sync["sync_rounds"], 1))
        ),
        "sync_message_reduction": (
            eager_messages["sync_messages_per_event"]
            / messages["sync_messages_per_event"]
            if messages["sync_messages_per_event"]
            else 0.0
        ),
        "phase_breakdown": phases["phase_breakdown"],
        "null_message_ratio": phases["null_message_ratio"],
        "sync_efficiency": phases["sync_efficiency"],
        "settle_seconds": telemetered.settle_seconds,
        "telemetry": telemetry_block,
        "members_final": members,
        "members_expected": expected_members,
        "block_deliveries": deliveries,
        "deliveries_expected": packets * expected_members,
        "equivalent_to_single_process": True,
    }


def router_crash_storm(quick: bool = True, seed: int = 0) -> dict:
    """Soft-state recovery under a seeded chaos plan (schema v9).

    An ISP network with UDP-mode host edges carries a subscribed
    audience (one channel key-authenticated); once settled, a
    :class:`~repro.faults.plan.FaultPlan` fires transit-router
    crash/restart cycles through the real protocol (links drop,
    :meth:`EcmpAgent.lose_state` wipes the victim, neighbors resync on
    recovery), plus a stub partition/heal, a core latency spike, a
    wire-mutation window duplicating/reordering/dropping frames on a
    UDP edge, a forged-key join flood (§3.3 authentication DoS), and a
    counting-inflation attack. The
    :class:`~repro.faults.monitor.FaultMonitor` scores the run:
    ``convergence_seconds`` (last state write after the last fault),
    ``resync_bytes`` (recovery re-announcement cost), ``blast_radius``
    (fraction of agents churned), and ``orphaned_state`` (must settle
    to zero — the scenario raises on leftovers). The final CountQuery
    must return the honest subscriber count: the inflation attack may
    not survive settlement.
    """
    n_transit = 3 if quick else 5
    stubs = 2 if quick else 3
    hosts_per_stub = 2 if quick else 3
    crashes = 2 if quick else 5
    downtime = 4.0
    spacing = 12.0
    channels_per_source = 2 if quick else 4
    refresh_interval = 1.0

    saved_interval = EcmpAgent.UDP_QUERY_INTERVAL
    EcmpAgent.UDP_QUERY_INTERVAL = refresh_interval
    try:
        obs = Observability()
        topo = TopologyBuilder.isp(
            n_transit=n_transit,
            stubs_per_transit=stubs,
            hosts_per_stub=hosts_per_stub,
            seed=seed,
        )
        obs.bind_simulator(topo.sim)
        net = ExpressNetwork(topo, obs=obs, wire_format=True, edge_udp=True)
        host_names = sorted(net.host_names)
        net.start()
        net.settle(2.0)

        # Two sources in different transit regions; the last host stays
        # unsubscribed and plays the forged-key attacker.
        sources = [net.source(host_names[0]), net.source(host_names[-2])]
        source_names = {s.name for s in sources}
        attacker = host_names[-1]
        channels = [
            s.allocate_channel()
            for s in sources
            for _ in range(channels_per_source)
        ]
        keyed_channel = channels[0]
        key = make_key(keyed_channel)
        sources[0].channel_key(keyed_channel, key)
        subscribers = [
            n for n in host_names if n not in source_names and n != attacker
        ]
        for j, name in enumerate(subscribers):
            for index, channel in enumerate(channels):
                net.sim.schedule(
                    0.05 * ((j * len(channels) + index) % 37),
                    lambda n=name, c=channel: net.host(n).subscribe(
                        c, key=key if c == keyed_channel else None
                    ),
                    name="bench-join",
                )
        net.settle(5.0 + 2 * refresh_interval)

        monitor = FaultMonitor(net)
        monitor.begin()
        storm_start = net.sim.now + 2.0
        # Crash victims exclude t0 so the composed link faults on
        # t0-attached links never race a crash of their own endpoint.
        victims = [f"t{t}" for t in range(1, n_transit)]
        plan = seeded_crash_storm(
            seed, victims, storm_start, crashes, downtime=downtime, spacing=spacing
        )
        mutated_link_host = subscribers[0]
        edge_of = {
            name: topo.node(name).neighbors()[0].name for name in host_names
        }
        plan.partition(storm_start + 5.0, "t0", edge_of[host_names[0]])
        plan.heal(storm_start + 8.0, "t0", edge_of[host_names[0]])
        plan.latency_spike(storm_start + 6.0, "t0", "t1", factor=10.0, duration=5.0)
        plan.wire_mutate(
            storm_start + 3.0,
            edge_of[mutated_link_host],
            mutated_link_host,
            duration=8.0,
            drop=0.05,
            duplicate=0.2,
            reorder=0.2,
        )
        plan.join_flood(
            storm_start + 4.0,
            attacker,
            keyed_channel,
            attempts=150 if quick else 400,
            interval=0.005,
        )
        plan.count_inflate(
            storm_start + 7.0,
            subscribers[1],
            channels[-1],
            count=1_000_000,
            repeats=3,
        )
        injector = FaultInjector(net, plan, monitor=monitor)
        injector.arm()

        storm_end = max(event.at + event.duration for event in plan)
        settle_window = 20.0 + 4 * refresh_interval
        events_before = net.sim.events_processed
        started = perf_counter()
        net.run(until=storm_end + settle_window)
        wall = perf_counter() - started
        sim_events = net.sim.events_processed - events_before
        slo = monitor.report(injector)

        if slo["orphaned_state"]:
            raise RuntimeError(
                f"router_crash_storm left {slo['orphaned_state']} orphaned "
                "state entries after settlement"
            )
        expected = len(subscribers)
        for channel in channels:
            active = net.subscriber_hosts(channel)
            if len(active) != expected:
                raise RuntimeError(
                    f"{channel} lost subscribers across the storm: "
                    f"{len(active)}/{expected} still active"
                )
        # The counting-inflation attack must not survive settlement:
        # the honest refresh overwrote it (untimed verification pass).
        totals: list[int] = []
        sources[-1].count_query(
            channels[-1],
            1,
            timeout=5.0,
            callback=lambda total, partial: totals.append(total),
        )
        net.settle(10.0)
        if not totals or totals[0] != expected:
            raise RuntimeError(
                f"count_query after inflation attack returned {totals}, "
                f"expected [{expected}]"
            )

        return {
            "params": {
                "topology": f"isp({n_transit},{stubs},{hosts_per_stub})",
                "nodes": len(topo.nodes),
                "channels": len(channels),
                "subscribers": expected,
                "crashes": crashes,
                "downtime": downtime,
                "fault_events": len(plan),
                "refresh_interval": refresh_interval,
            },
            "wall_seconds": wall,
            "sim_events": sim_events,
            "events_per_sec": sim_events / wall if wall else 0.0,
            "convergence_seconds": slo["convergence_seconds"],
            "resync_bytes": slo["resync_bytes"],
            "resync_counts": slo["resync_counts"],
            "blast_radius": slo["blast_radius"],
            "orphaned_state": slo["orphaned_state"],
            "faults": slo,
            "ecmp_wire": _ecmp_wire_stats(net),
        }
    finally:
        EcmpAgent.UDP_QUERY_INTERVAL = saved_interval


SCENARIOS = {
    "join_storm": join_storm,
    "link_flap_churn": link_flap_churn,
    "steady_fanout": steady_fanout,
    "mega_join_storm": mega_join_storm,
    "channel_surf": channel_surf,
    "router_crash_storm": router_crash_storm,
    "mega_join_storm_parallel": mega_join_storm_parallel,
}

#: Scenarios that accept the ``workers`` parameter (``--workers N``).
PARALLEL_SCENARIOS = {"mega_join_storm_parallel"}


def run_scenarios(
    quick: bool = True,
    seed: int = 0,
    only: Optional[list[str]] = None,
    workers: Optional[int] = None,
) -> dict[str, dict]:
    """Run the selected scenarios; returns ``{name: metrics}``."""
    names = list(SCENARIOS) if not only else only
    results = {}
    for name in names:
        kwargs = {"quick": quick, "seed": seed}
        if name in PARALLEL_SCENARIOS and workers is not None:
            kwargs["workers"] = workers
        results[name] = SCENARIOS[name](**kwargs)
    return results
