"""Entry point: ``python -m repro.bench [--quick] [--output PATH]``."""

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main())
