"""``python -m repro`` — a one-minute tour of the library.

Runs a condensed version of the quickstart (channel, tree, delivery,
counting, authentication) and prints the cost-model headline numbers,
so a fresh checkout can be sanity-checked with one command.
"""

from __future__ import annotations

from repro import ExpressNetwork, TopologyBuilder, make_key
from repro.core.keys import ChannelKey
from repro.costmodel import FibCostModel, ManagementStateModel, MillionChannelScenario


def main() -> int:
    print("EXPRESS multicast channels (Holbrook & Cheriton, SIGCOMM 1999)")
    print("=" * 64)

    topo = TopologyBuilder.isp(n_transit=3, stubs_per_transit=2, hosts_per_stub=2)
    net = ExpressNetwork(topo)
    net.run(until=0.1)

    source = net.source("h0_0_0")
    channel = source.allocate_channel()
    key = make_key(channel)
    source.channel_key(channel, key)
    print(f"channel {channel} (authenticated), source h0_0_0")

    delivered = []
    for name in ("h1_0_0", "h1_1_1", "h2_0_1"):
        net.host(name).subscribe(channel, key=key,
                                 on_data=lambda p, n=name: delivered.append(n))
    crasher = net.host("h2_0_0").subscribe(channel, key=ChannelKey(b"invalid!"))
    net.settle()
    print(f"3 keyed subscriptions active; bad-key subscription: {crasher.status}")

    source.send(channel, payload=b"hello")
    net.settle()
    print(f"delivered to {sorted(set(delivered))}")

    result = source.count_query(channel, timeout=5.0)
    net.settle(6.0)
    print(f"CountQuery -> {result.count} subscribers; "
          f"{net.fib_entries_total()} FIB entries network-wide")

    print()
    print("§5 cost headlines (paper's 1998 constants):")
    fib = FibCostModel()
    print(f"  FIB entry: 12 bytes = ${fib.entry_purchase_cost():.5f}")
    mgmt = ManagementStateModel()
    print(f"  management state: {mgmt.channel_bytes()} B/channel"
          f" (${mgmt.channel_cost_dollars():.6f}/channel-yr)")
    scenario = MillionChannelScenario()
    print(f"  1M-channel router: {scenario.event_rate():,.0f} Count events/s,"
          f" {scenario.receive_bandwidth_bps() / 1000:.0f} kbit/s control in")
    print()
    print("run `pytest benchmarks/ --benchmark-only -s` for the full")
    print("paper-vs-measured reproduction (see EXPERIMENTS.md).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
