"""Arm a :class:`~repro.faults.plan.FaultPlan` against a live network.

The injector translates each typed fault event into real simulator
events: crashes take every attached link down and wipe the agent's
soft state through :meth:`EcmpAgent.lose_state`; restarts reboot the
agent empty and bring the links back, so the resync storm flows through
the genuine ECMP protocol (keepalive rediscovery,
``_neighbor_recovered`` count re-announcement, hysteresis re-homing) —
nothing is shortcut. Adversarial kinds drive the same public API an
attacker on the wire could reach: forged-key ``newSubscription`` calls
and raw inflated ``Count`` reports.

An empty plan arms *nothing*: zero simulator events, zero RNG draws —
a fault-instrumented run with no faults is bit-identical to a plain
run (pinned by ``tests/properties/test_fault_equivalence.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.ecmp.countids import SUBSCRIBER_ID
from repro.core.ecmp.messages import Count
from repro.core.keys import KEY_BYTES, ChannelKey
from repro.errors import ChannelError, FaultError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.wire import WireMutator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import ExpressNetwork
    from repro.faults.monitor import FaultMonitor
    from repro.netsim.link import Link


class FaultInjector:
    """Applies a plan's events to an :class:`ExpressNetwork`.

    Construct, then :meth:`arm` once before (or during) the run. Fired
    faults are logged in :attr:`fired` as ``(time, kind, target)`` and
    reported to the optional :class:`FaultMonitor` so SLO scoring knows
    when the last fault landed.
    """

    def __init__(
        self,
        net: "ExpressNetwork",
        plan: FaultPlan,
        monitor: Optional["FaultMonitor"] = None,
    ) -> None:
        self.net = net
        self.plan = plan
        self.monitor = monitor
        self.armed = False
        #: ``(sim_time, kind, target)`` of every fault actually fired.
        self.fired: list[tuple[float, str, str]] = []
        #: node -> links this injector took down at crash time (only
        #: these come back up at restart, so a crash composed with an
        #: unrelated partition does not heal the partition).
        self._downed: dict[str, list["Link"]] = {}
        #: Live wire mutators by link, for monitor reporting.
        self.mutators: list[WireMutator] = []
        #: Adversarial-load accounting.
        self.attack_stats = {
            "join_attempts": 0,
            "join_errors": 0,
            "inflated_counts": 0,
        }

    # -- plan arming -------------------------------------------------------

    def arm(self) -> None:
        """Validate the plan and schedule every event. Idempotence is
        not attempted — arming twice is an error."""
        if self.armed:
            raise FaultError("fault plan already armed")
        self.armed = True
        self.plan.validate()
        sim = self.net.sim
        for index, event in self.plan.sorted_events():
            if event.at < sim.now:
                raise FaultError(
                    f"fault at t={event.at} is in the past (now={sim.now})"
                )
            sim.schedule_at(
                event.at,
                lambda index=index, event=event: self._fire(index, event),
                name=f"fault:{event.kind}",
            )

    def _fire(self, index: int, event: FaultEvent) -> None:
        handler = getattr(self, f"_fire_{event.kind}")
        handler(index, event)
        self.fired.append((self.net.sim.now, event.kind, event.target))
        if self.monitor is not None:
            self.monitor.note_fault(self.net.sim.now, event)

    # -- node faults -------------------------------------------------------

    def _links_of(self, name: str) -> list["Link"]:
        node = self.net.topo.node(name)
        return [
            iface.link for iface in node.interfaces if iface.link is not None
        ]

    def _fire_crash(self, index: int, event: FaultEvent) -> None:
        name = event.target
        agent = self.net.ecmp_agents.get(name)
        if agent is None:
            raise FaultError(f"unknown crash target {name!r}")
        downed = []
        for link in self._links_of(name):
            if link.up:
                link.set_up(False)
                downed.append(link)
        self._downed[name] = downed
        agent.lose_state()

    def _fire_restart(self, index: int, event: FaultEvent) -> None:
        name = event.target
        agent = self.net.ecmp_agents.get(name)
        if agent is None:
            raise FaultError(f"unknown restart target {name!r}")
        # Reboot first, then raise the links: the up-notifications
        # trigger the neighbors' resync storms and the recompute that
        # re-homes trees back through this router, and the freshly
        # started agent must be listening when they land.
        agent.start()
        for link in self._downed.pop(name, []):
            link.set_up(True)

    # -- link faults -------------------------------------------------------

    def _link_for(self, event: FaultEvent) -> "Link":
        a, b = event.link_endpoints
        link = self.net.topo.link_between(a, b)
        if link is None:
            raise FaultError(f"no link between {a!r} and {b!r}")
        return link

    def _fire_partition(self, index: int, event: FaultEvent) -> None:
        self._link_for(event).fail()

    def _fire_heal(self, index: int, event: FaultEvent) -> None:
        self._link_for(event).recover()

    def _fire_latency_spike(self, index: int, event: FaultEvent) -> None:
        link = self._link_for(event)
        original = link.delay
        link.delay = original * event.params["factor"]

        def restore() -> None:
            link.delay = original

        self.net.sim.schedule(event.duration, restore, name="fault:latency-restore")

    def _fire_wire_mutate(self, index: int, event: FaultEvent) -> None:
        link = self._link_for(event)
        now = self.net.sim.now
        mutator = WireMutator(
            self.plan.rng_for(index, event),
            drop=event.params["drop"],
            duplicate=event.params["duplicate"],
            reorder=event.params["reorder"],
            reorder_delay=event.params["reorder_delay"],
            start=now,
            end=now + event.duration,
        )
        mutator.install(link)
        self.mutators.append(mutator)
        self.net.sim.schedule(
            event.duration,
            lambda: mutator.remove(link),
            name="fault:wire-restore",
        )

    # -- adversarial load --------------------------------------------------

    def _fire_join_flood(self, index: int, event: FaultEvent) -> None:
        attacker = event.target
        agent = self.net.ecmp_agents.get(attacker)
        if agent is None:
            raise FaultError(f"unknown join_flood attacker {attacker!r}")
        channel = event.params["channel"]
        rng = self.plan.rng_for(index, event)
        interval = event.params["interval"]

        def attempt() -> None:
            forged = ChannelKey(
                bytes(rng.randrange(256) for _ in range(KEY_BYTES))
            )
            self.attack_stats["join_attempts"] += 1
            try:
                agent.new_subscription(channel, key=forged)
            except ChannelError:
                self.attack_stats["join_errors"] += 1

        sim = self.net.sim
        for i in range(event.params["attempts"]):
            sim.schedule(i * interval, attempt, name="fault:join-flood")

    def _fire_count_inflate(self, index: int, event: FaultEvent) -> None:
        attacker = event.target
        agent = self.net.ecmp_agents.get(attacker)
        if agent is None:
            raise FaultError(f"unknown count_inflate attacker {attacker!r}")
        channel = event.params["channel"]
        count = event.params["count"]
        interval = event.params["interval"]

        def victim() -> str:
            state = agent.channels.get(channel)
            if state is not None and state.upstream is not None:
                return state.upstream
            links = self._links_of(attacker)
            if not links:
                raise FaultError(f"{attacker!r} has no neighbors to attack")
            return links[0].other_end(self.net.topo.node(attacker)).name

        def inflate() -> None:
            # A raw subscriber-count report claiming ``count`` members
            # behind this host: the soft-state design accepts it
            # last-writer-wins, so the *measurement* is how far it
            # propagates and how fast the next honest refresh or
            # expiry corrects it.
            self.attack_stats["inflated_counts"] += 1
            agent._send_message(
                Count(channel, SUBSCRIBER_ID, count), victim()
            )

        sim = self.net.sim
        for i in range(event.params["repeats"]):
            sim.schedule(i * interval, inflate, name="fault:count-inflate")

    def mutation_stats(self) -> dict[str, int]:
        totals = {"passed": 0, "dropped": 0, "duplicated": 0, "reordered": 0}
        for mutator in self.mutators:
            for key, value in mutator.stats.items():
                totals[key] += value
        return totals


def crash_parallel_worker(transport, rank: int, join_timeout: float = 5.0):
    """Kill one worker process of a parallel run mid-flight.

    Works on any transport that exposes ``procs`` (both the pipe and
    shared-memory transports do). The coordinator's next receive must
    surface a :class:`~repro.errors.SimulationError` — the shm ring's
    generation counters spot the torn frame / dead peer, the pipe
    transport spots EOF — rather than hanging; the worker-crash tests
    pin that contract. Returns the terminated process object.
    """
    procs = getattr(transport, "procs", None)
    if not procs:
        raise FaultError("transport has no worker processes to crash")
    if not 0 <= rank < len(procs):
        raise FaultError(f"no worker rank {rank} (have {len(procs)})")
    proc = procs[rank]
    proc.terminate()
    proc.join(join_timeout)
    return proc
