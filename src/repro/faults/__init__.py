"""Fault injection and adversarial robustness (``repro.faults``).

EXPRESS is a soft-state design (§3): periodic refresh, UDP-mode
timeout-decrement, key-authenticated joins. This subsystem measures
what that buys — and costs — when things break. Declarative
:class:`FaultPlan` schedules (crash/restart, partition/heal, latency
spikes, wire mutation, forged-key floods, counting inflation) are
armed against a live network by a :class:`FaultInjector`, and a
:class:`FaultMonitor` scores the run with convergence-time,
resync-bytes, orphaned-state, and blast-radius SLOs. Everything is
seeded through the :func:`~repro.netsim.engine.derive_seed` contract:
chaos runs replay bit-identically, and an empty plan leaves a run
bit-identical to one with no fault instrumentation at all.

See ``docs/robustness.md`` for the fault model and SLO definitions.
"""

from repro.faults.injectors import FaultInjector, crash_parallel_worker
from repro.faults.monitor import CHURN_KEYS, FaultMonitor
from repro.faults.plan import (
    KINDS,
    LINK_KINDS,
    FaultEvent,
    FaultPlan,
    seeded_crash_storm,
)
from repro.faults.wire import WireMutator

__all__ = [
    "CHURN_KEYS",
    "FaultEvent",
    "FaultInjector",
    "FaultMonitor",
    "FaultPlan",
    "KINDS",
    "LINK_KINDS",
    "WireMutator",
    "crash_parallel_worker",
    "seeded_crash_storm",
]
