"""SLO scoring for chaos runs: convergence, resync cost, blast radius.

Built on the PR-6 convergence hooks: the
:class:`~repro.obs.convergence.ConvergenceMonitor` already timestamps
every protocol/FIB state mutation, so *convergence time* is simply the
gap between the last injected fault and the last state write once the
network has been given room to settle. The other SLOs are counter
deltas over the fault window:

``convergence_seconds``
    ``last_state_change - last_fault_time`` — how long the soft-state
    machinery (keepalive rediscovery, resync re-announcement,
    hysteresis re-homing, refresh expiry) kept churning after the last
    fault landed. Lower is better.

``resync_bytes``
    Extra control bytes attributable to recovery: the
    ``resync_bytes`` counters the protocol tallies in
    ``_neighbor_recovered`` and ``reevaluate_upstreams``, summed over
    the fleet and differenced against the pre-fault baseline.

``orphaned_state``
    State that should not exist in a settled network: FIB entries with
    no channel-table backing, downstream records whose neighbor does
    not reciprocate with a matching upstream, and refresh-ring entries
    pointing at dead records. A healthy run settles to zero — the
    §3 soft-state claim this subsystem exists to check.

``blast_radius``
    The fraction of agents whose churn counters moved during the fault
    window — how far the damage spread beyond the faulted nodes. A
    crash whose resync stays within the neighbor set scores near
    ``(neighbors+1)/agents``; full-fleet churn scores 1.0.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.ecmp.state import is_pseudo_neighbor
from repro.errors import FaultError
from repro.obs.convergence import ConvergenceMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import ExpressNetwork
    from repro.faults.injectors import FaultInjector
    from repro.faults.plan import FaultEvent

#: Per-agent counters whose movement marks the agent as churned by the
#: fault window (the blast-radius numerator).
CHURN_KEYS = (
    "subscribe_events",
    "unsubscribe_events",
    "count_update_events",
    "upstream_changes",
    "udp_expirations",
    "resync_counts",
    "resync_events",
    "denied_subscriptions",
    "unexpected_counts",
    "query_timeouts",
    "state_losses",
)


class FaultMonitor:
    """Scores one chaos run against the robustness SLOs.

    Usage: construct against the network, :meth:`begin` once the
    workload is settled (the pre-fault baseline), hand the monitor to
    the :class:`~repro.faults.injectors.FaultInjector` so it can stamp
    fault times, run the plan plus a settle window, then
    :meth:`report`.
    """

    def __init__(self, net: "ExpressNetwork") -> None:
        self.net = net
        self.convergence: Optional[ConvergenceMonitor] = None
        obs = net.obs
        if obs is not None:
            if getattr(obs, "convergence", None) is None:
                obs.convergence = ConvergenceMonitor(net.sim)
            self.convergence = obs.convergence
        self.last_fault_at: Optional[float] = None
        self.faults: list[tuple[float, str, str]] = []
        self._baseline: Optional[dict] = None

    # -- injector callback -------------------------------------------------

    def note_fault(self, at: float, event: "FaultEvent") -> None:
        self.last_fault_at = at
        self.faults.append((at, event.kind, event.target))

    # -- lifecycle ---------------------------------------------------------

    def begin(self) -> None:
        """Snapshot the pre-fault baseline (call after initial
        settlement, before any fault fires)."""
        self._baseline = {
            "time": self.net.sim.now,
            "totals": self.net.control_stats_total(),
            "churn": self._churn_by_agent(),
        }

    def _churn_by_agent(self) -> dict[str, int]:
        return {
            name: sum(agent.stats.get(key) for key in CHURN_KEYS)
            for name, agent in self.net.ecmp_agents.items()
        }

    # -- SLO computation ---------------------------------------------------

    def orphaned_state(self) -> int:
        """Count state entries a settled network should not hold."""
        orphans = 0
        agents = self.net.ecmp_agents
        for name, agent in agents.items():
            table = {
                (channel.source, channel.group) for channel in agent.channels
            }
            for source, dest in agent.fib.channels():
                if (source, dest) not in table:
                    orphans += 1
            for channel, state in agent.channels.items():
                for neighbor, record in state.downstream.items():
                    if (
                        record.count <= 0
                        or is_pseudo_neighbor(neighbor)
                        or neighbor not in agents
                    ):
                        continue
                    peer = agents[neighbor].channels.get(channel)
                    if peer is None or peer.upstream != name:
                        orphans += 1
            ring = agent._refresh_ring
            if ring is not None:
                for key in list(ring._entries):
                    ring_channel, ring_neighbor = key
                    state = agent.channels.get(ring_channel)
                    if state is None or ring_neighbor not in state.downstream:
                        orphans += 1
        return orphans

    def report(self, injector: Optional["FaultInjector"] = None) -> dict:
        """The SLO dict for this run (requires :meth:`begin`)."""
        if self._baseline is None:
            raise FaultError("FaultMonitor.report() before begin()")
        totals = self.net.control_stats_total()
        base_totals = self._baseline["totals"]

        def delta(key: str) -> int:
            return totals.get(key, 0) - base_totals.get(key, 0)

        churn = self._churn_by_agent()
        base_churn = self._baseline["churn"]
        churned = [
            name
            for name, value in churn.items()
            if value > base_churn.get(name, 0)
        ]
        agents_total = len(self.net.ecmp_agents)

        if self.convergence is not None and self.last_fault_at is not None:
            convergence_seconds = max(
                0.0, self.convergence.last_change - self.last_fault_at
            )
        else:
            convergence_seconds = 0.0

        out = {
            "faults_fired": len(self.faults),
            "last_fault_at": self.last_fault_at,
            "convergence_seconds": convergence_seconds,
            "resync_bytes": delta("resync_bytes"),
            "resync_counts": delta("resync_counts"),
            "resync_events": delta("resync_events"),
            "orphaned_state": self.orphaned_state(),
            "blast_radius": (len(churned) / agents_total) if agents_total else 0.0,
            "agents_churned": len(churned),
            "agents_total": agents_total,
            "state_losses": delta("state_losses"),
            "denied_subscriptions": delta("denied_subscriptions"),
            "unexpected_counts": delta("unexpected_counts"),
            "udp_expirations": delta("udp_expirations"),
            "upstream_changes": delta("upstream_changes"),
        }
        if injector is not None:
            out["wire_mutations"] = injector.mutation_stats()
            out["attack"] = dict(injector.attack_stats)
        return out
