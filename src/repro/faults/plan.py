"""Declarative, replayable chaos plans.

A :class:`FaultPlan` is a schedule of typed :class:`FaultEvent`\\ s —
router crashes/restarts, link partitions/heals, latency spikes, wire
mutation windows, and adversarial load bursts — that an injector
(:mod:`repro.faults.injectors`) arms against a live
:class:`~repro.core.network.ExpressNetwork`. Plans are data, not
callbacks: the same plan applied to the same seeded network replays
bit-identically, and an *empty* plan schedules nothing at all, so an
instrumented run with no faults is indistinguishable from a plain run
(the ``tests/properties/test_fault_equivalence.py`` suite pins this).

Every source of randomness inside a fault (forged key bytes, mutation
draws, flood jitter) comes from a per-event ``random.Random`` seeded
through the repo's :func:`~repro.netsim.engine.derive_seed` contract —
never from the simulator's own RNG — so injecting a fault perturbs the
run only through the protocol events it causes, and two plans with the
same seed draw identical chaos regardless of what the simulation does
in between.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import FaultError
from repro.netsim.engine import derive_seed

#: Every fault kind an injector knows how to fire. Node faults operate
#: on one router; link faults on an ``(a, b)`` endpoint pair;
#: adversarial kinds on an attacker host/router.
KINDS = (
    "crash",
    "restart",
    "partition",
    "heal",
    "latency_spike",
    "wire_mutate",
    "join_flood",
    "count_inflate",
)

#: Kinds whose target is a link endpoint pair ``(a, b)``.
LINK_KINDS = ("partition", "heal", "latency_spike", "wire_mutate")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is absolute simulated time; ``target`` is a node name for
    node/adversarial kinds and ``"a|b"`` for link kinds; ``duration``
    bounds windowed kinds (latency spikes, wire mutation, floods); any
    kind-specific knobs ride in ``params``.
    """

    at: float
    kind: str
    target: str = ""
    duration: float = 0.0
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise FaultError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise FaultError(f"duration must be >= 0, got {self.duration}")

    @property
    def link_endpoints(self) -> tuple[str, str]:
        if self.kind not in LINK_KINDS:
            raise FaultError(f"{self.kind} is not a link fault")
        a, sep, b = self.target.partition("|")
        if not sep or not a or not b:
            raise FaultError(f"link target must be 'a|b', got {self.target!r}")
        return a, b


class FaultPlan:
    """An ordered, seeded schedule of fault events.

    Build one with the fluent methods (each returns ``self`` for
    chaining), then hand it to a
    :class:`~repro.faults.injectors.FaultInjector`. Event order within
    one timestamp is the insertion order of the builder calls, so a
    plan is fully deterministic without any tie-breaking randomness.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.events: list[FaultEvent] = []

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @property
    def empty(self) -> bool:
        return not self.events

    def sorted_events(self) -> list[tuple[int, FaultEvent]]:
        """``(index, event)`` pairs in firing order (time, then
        insertion order — Python's sort is stable)."""
        return sorted(enumerate(self.events), key=lambda pair: pair[1].at)

    def rng_for(self, index: int, event: FaultEvent) -> random.Random:
        """The per-event RNG: seeded from the plan seed, the event's
        position, kind, and target — never from the simulator."""
        return random.Random(
            derive_seed(self.seed, "faults", str(index), event.kind, event.target)
        )

    # -- builders ----------------------------------------------------------

    def _add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def crash(self, at: float, node: str) -> "FaultPlan":
        """Router crash: every attached link goes down and the agent
        loses all soft state (:meth:`EcmpAgent.lose_state`)."""
        return self._add(FaultEvent(at, "crash", node))

    def restart(self, at: float, node: str) -> "FaultPlan":
        """Reboot a crashed router: agent restarts empty, links come
        back up, neighbors resync through the real protocol."""
        return self._add(FaultEvent(at, "restart", node))

    def crash_restart(
        self, at: float, node: str, downtime: float
    ) -> "FaultPlan":
        """Convenience: a crash at ``at`` healed at ``at + downtime``."""
        if downtime <= 0:
            raise FaultError(f"downtime must be > 0, got {downtime}")
        return self.crash(at, node).restart(at + downtime, node)

    def partition(self, at: float, a: str, b: str) -> "FaultPlan":
        """Fail the link between ``a`` and ``b``."""
        return self._add(FaultEvent(at, "partition", f"{a}|{b}"))

    def heal(self, at: float, a: str, b: str) -> "FaultPlan":
        """Recover the link between ``a`` and ``b``."""
        return self._add(FaultEvent(at, "heal", f"{a}|{b}"))

    def latency_spike(
        self, at: float, a: str, b: str, factor: float, duration: float
    ) -> "FaultPlan":
        """Multiply the a-b link's propagation delay by ``factor`` for
        ``duration`` seconds, then restore it."""
        if factor <= 0:
            raise FaultError(f"latency factor must be > 0, got {factor}")
        return self._add(
            FaultEvent(
                at,
                "latency_spike",
                f"{a}|{b}",
                duration,
                {"factor": factor},
            )
        )

    def wire_mutate(
        self,
        at: float,
        a: str,
        b: str,
        duration: float,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        reorder_delay: float = 0.005,
    ) -> "FaultPlan":
        """Install a seeded wire mutator on the a-b link for
        ``duration`` seconds: per-packet Bernoulli drop / duplicate /
        reorder draws against ``MSG_BATCH`` frames and data alike."""
        for name, p in (("drop", drop), ("duplicate", duplicate), ("reorder", reorder)):
            if not 0.0 <= p <= 1.0:
                raise FaultError(f"{name} probability must be in [0, 1], got {p}")
        return self._add(
            FaultEvent(
                at,
                "wire_mutate",
                f"{a}|{b}",
                duration,
                {
                    "drop": drop,
                    "duplicate": duplicate,
                    "reorder": reorder,
                    "reorder_delay": reorder_delay,
                },
            )
        )

    def join_flood(
        self,
        at: float,
        attacker: str,
        channel: Any,
        attempts: int = 50,
        interval: float = 0.01,
    ) -> "FaultPlan":
        """§3.3 authentication DoS: ``attacker`` (a host) floods the
        keyed ``channel`` with forged-key subscription attempts at one
        per ``interval`` seconds."""
        if attempts <= 0:
            raise FaultError(f"attempts must be > 0, got {attempts}")
        if interval <= 0:
            raise FaultError(f"interval must be > 0, got {interval}")
        return self._add(
            FaultEvent(
                at,
                "join_flood",
                attacker,
                attempts * interval,
                {"channel": channel, "attempts": attempts, "interval": interval},
            )
        )

    def count_inflate(
        self,
        at: float,
        attacker: str,
        channel: Any,
        count: int = 1_000_000,
        repeats: int = 1,
        interval: float = 0.05,
    ) -> "FaultPlan":
        """Counting-inflation attack: ``attacker`` (a subscribed host)
        reports a wildly inflated subscriber count for ``channel``,
        trying to corrupt CountQuery totals upstream."""
        if count < 0:
            raise FaultError(f"count must be >= 0, got {count}")
        if repeats <= 0:
            raise FaultError(f"repeats must be > 0, got {repeats}")
        return self._add(
            FaultEvent(
                at,
                "count_inflate",
                attacker,
                repeats * interval,
                {"channel": channel, "count": count, "repeats": repeats,
                 "interval": interval},
            )
        )

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Static sanity checks, raising :class:`FaultError`:

        - every ``restart`` must follow a ``crash`` of the same node
          (and vice versa: no double crash without an intervening
          restart);
        - every ``heal`` must follow a ``partition`` of the same pair;
        - link-kind targets must parse as ``a|b``.
        """
        crashed: set[str] = set()
        partitioned: set[frozenset] = set()
        for _, event in self.sorted_events():
            if event.kind == "crash":
                if event.target in crashed:
                    raise FaultError(
                        f"{event.target} crashed twice with no restart"
                    )
                crashed.add(event.target)
            elif event.kind == "restart":
                if event.target not in crashed:
                    raise FaultError(
                        f"restart of {event.target} with no prior crash"
                    )
                crashed.discard(event.target)
            elif event.kind in LINK_KINDS:
                pair = frozenset(event.link_endpoints)
                if event.kind == "partition":
                    if pair in partitioned:
                        raise FaultError(
                            f"{event.target} partitioned twice with no heal"
                        )
                    partitioned.add(pair)
                elif event.kind == "heal":
                    if pair not in partitioned:
                        raise FaultError(
                            f"heal of {event.target} with no prior partition"
                        )
                    partitioned.discard(pair)


def seeded_crash_storm(
    seed: int,
    routers: list[str],
    start: float,
    crashes: int,
    downtime: float = 5.0,
    spacing: float = 10.0,
    jitter: float = 2.0,
) -> FaultPlan:
    """A replayable storm of crash/restart cycles over ``routers``.

    Victims and timing jitter are drawn from ``derive_seed(seed,
    "faults", "crash_storm")`` so the same arguments always produce the
    same plan. Crashes are spaced so a router is always restarted
    before it (or another) can crash again — the plan validates.
    """
    if not routers:
        raise FaultError("crash storm needs at least one candidate router")
    if downtime >= spacing:
        raise FaultError(
            f"downtime {downtime} must be < spacing {spacing} so cycles "
            "never overlap"
        )
    rng = random.Random(derive_seed(seed, "faults", "crash_storm"))
    plan = FaultPlan(seed)
    at = start
    for _ in range(crashes):
        victim = routers[rng.randrange(len(routers))]
        plan.crash_restart(at, victim, downtime)
        at += spacing + rng.uniform(0.0, jitter)
    plan.validate()
    return plan
