"""Seeded wire mutator: reorder / duplicate / drop frames on one link.

Installs on :attr:`repro.netsim.link.Link.mutator` and rewrites each
transmission into zero or more ``(extra_delay, packet)`` deliveries.
Because the hook sits *after* the sender-side accounting and loss draw
but *before* the capture-or-schedule split, mutated frames flow through
the parallel proxy path exactly like clean ones — a duplicated
``MSG_BATCH`` frame crosses a partition boundary as two proxied
packets, which is precisely the §3.2 soft-state idempotence the
equivalence suites lean on.

All randomness comes from the mutator's own :class:`random.Random`
(seeded via the plan's ``derive_seed`` contract), never the
simulator's RNG: installing a mutator with all probabilities at zero
perturbs nothing.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable

from repro.errors import FaultError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.link import Link
    from repro.netsim.node import Node
    from repro.netsim.packet import Packet


class WireMutator:
    """Per-packet Bernoulli drop / duplicate / reorder draws.

    ``start``/``end`` bound the active window in simulated time;
    outside it every packet passes untouched (and is not counted).
    ``only_proto`` restricts mutation to one protocol label (default
    ``"ecmp"`` — the control-plane frames whose idempotence is under
    test); data packets pass through unmutated.
    """

    def __init__(
        self,
        rng: random.Random,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        reorder_delay: float = 0.005,
        start: float = 0.0,
        end: float = math.inf,
        only_proto: str = "ecmp",
    ) -> None:
        for name, p in (("drop", drop), ("duplicate", duplicate), ("reorder", reorder)):
            if not 0.0 <= p <= 1.0:
                raise FaultError(f"{name} probability must be in [0, 1], got {p}")
        if reorder_delay < 0:
            raise FaultError(f"reorder_delay must be >= 0, got {reorder_delay}")
        self.rng = rng
        self.drop = drop
        self.duplicate = duplicate
        self.reorder = reorder
        self.reorder_delay = reorder_delay
        self.start = start
        self.end = end
        self.only_proto = only_proto
        #: Mutation tally, reported by the fault monitor.
        self.stats = {"passed": 0, "dropped": 0, "duplicated": 0, "reordered": 0}

    def install(self, link: "Link") -> None:
        if link.mutator is not None:
            raise FaultError(f"{link!r} already has a wire mutator")
        link.mutator = self

    def remove(self, link: "Link") -> None:
        if link.mutator is self:
            link.mutator = None

    def __call__(
        self, link: "Link", sender: "Node", packet: "Packet"
    ) -> Iterable[tuple[float, "Packet"]]:
        now = link.sim.now
        if not (self.start <= now < self.end):
            return ((0.0, packet),)
        if self.only_proto is not None and packet.proto != self.only_proto:
            return ((0.0, packet),)
        # One draw per knob per packet, in a fixed order, so the draw
        # sequence (and thus the whole run) is seed-deterministic.
        rng = self.rng
        drop = rng.random() < self.drop if self.drop else False
        dup = rng.random() < self.duplicate if self.duplicate else False
        reorder = rng.random() < self.reorder if self.reorder else False
        if drop:
            self.stats["dropped"] += 1
            return ()
        head_delay = 0.0
        if reorder:
            # Delay the original behind traffic sent up to
            # ``reorder_delay`` later: a genuine reordering, not just
            # added latency, whenever the link carries back-to-back
            # frames.
            self.stats["reordered"] += 1
            head_delay = self.reorder_delay
        deliveries = [(head_delay, packet)]
        if dup:
            self.stats["duplicated"] += 1
            copy = replace(packet, headers=dict(packet.headers))
            deliveries.append((head_delay + self.reorder_delay, copy))
        if not (drop or dup or reorder):
            self.stats["passed"] += 1
        return deliveries

    def mutations_total(self) -> int:
        return (
            self.stats["dropped"]
            + self.stats["duplicated"]
            + self.stats["reordered"]
        )

    def mutate_bytes(self, frame: bytes) -> list[bytes]:
        """Offline mutation of a raw wire frame (no link involved):
        returns the frame list a mutated transmission would carry —
        possibly empty (drop), duplicated, truncated, or concatenated.
        Used by the codec fuzz tests to generate adversarial byte
        strings from real encoder output."""
        rng = self.rng
        roll = rng.random()
        if roll < self.drop:
            return []
        out = [frame]
        if rng.random() < self.duplicate:
            out.append(frame)
        if rng.random() < self.reorder and len(out) > 1:
            out.reverse()
        # A torn write: the tail of the last copy is cut mid-record.
        if rng.random() < self.drop and len(frame) > 1:
            out[-1] = frame[: rng.randrange(1, len(frame))]
        return out
