"""Session advertisement over a "push" EXPRESS channel (§4.1).

"The session relay channel address (SR,E) can be provided along with
publishing or advertising the time, date and topic of the event. Event
advertisement can use web page, a 'push' EXPRESS channel from one or
more directory services, email, or other means."

:class:`SessionDirectory` is such a directory service: it owns one
well-known EXPRESS channel and pushes :class:`SessionAnnouncement`
records over it; :class:`DirectoryListener` subscribes and accumulates
the catalogue, from which an application can join a session's channel
directly. (This is the EXPRESS replacement for sdr/SAP-style session
announcement on a shared multicast group.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.channel import Channel
from repro.core.network import ExpressNetwork, SourceHandle
from repro.errors import RelayError
from repro.netsim.engine import PeriodicTask
from repro.netsim.packet import Packet

#: Simulated wire size of one announcement record.
ANNOUNCEMENT_BYTES = 196


@dataclass(frozen=True)
class SessionAnnouncement:
    """One advertised event: the (SR, E) pair plus human metadata."""

    name: str
    channel: Channel
    starts_at: float
    topic: str = ""
    #: True for restricted sessions (key distributed out of band).
    authenticated: bool = False


class SessionDirectory:
    """A directory service pushing announcements on its own channel."""

    def __init__(
        self,
        net: ExpressNetwork,
        host: str,
        readvertise_interval: Optional[float] = 60.0,
    ) -> None:
        self.net = net
        self.handle: SourceHandle = net.source(host)
        self.channel = self.handle.allocate_channel()
        self.catalogue: dict[str, SessionAnnouncement] = {}
        self.announcements_sent = 0
        self._task: Optional[PeriodicTask] = None
        if readvertise_interval is not None:
            self._task = PeriodicTask(
                net.sim, readvertise_interval, self._readvertise, name="directory"
            )
            self._task.start()

    def announce(self, announcement: SessionAnnouncement) -> None:
        """Publish (and keep re-advertising) one event."""
        if announcement.name in self.catalogue:
            raise RelayError(f"session {announcement.name!r} already announced")
        self.catalogue[announcement.name] = announcement
        self._push(announcement)

    def withdraw(self, name: str) -> None:
        self.catalogue.pop(name, None)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _readvertise(self) -> None:
        """Late joiners catch the periodic refresh."""
        for announcement in self.catalogue.values():
            self._push(announcement)

    def _push(self, announcement: SessionAnnouncement) -> None:
        self.announcements_sent += 1
        self.handle.send(self.channel, payload=announcement, size=ANNOUNCEMENT_BYTES)


class DirectoryListener:
    """A host subscribed to a directory's push channel."""

    def __init__(
        self,
        net: ExpressNetwork,
        host: str,
        directory_channel: Channel,
        on_announcement: Optional[Callable[[SessionAnnouncement], None]] = None,
    ) -> None:
        self.net = net
        self.handle = net.host(host)
        self.known: dict[str, SessionAnnouncement] = {}
        self.on_announcement = on_announcement
        self.handle.subscribe(directory_channel, on_data=self._on_push)

    def _on_push(self, packet: Packet) -> None:
        announcement = packet.payload
        if not isinstance(announcement, SessionAnnouncement):
            return
        fresh = announcement.name not in self.known
        self.known[announcement.name] = announcement
        if fresh and self.on_announcement is not None:
            self.on_announcement(announcement)

    def lookup(self, name: str) -> SessionAnnouncement:
        try:
            return self.known[name]
        except KeyError:
            raise RelayError(f"no announcement for {name!r}") from None

    def join_session(self, name: str, key=None, on_data=None):
        """Subscribe to an advertised session's channel."""
        announcement = self.lookup(name)
        return self.handle.subscribe(announcement.channel, key=key, on_data=on_data)
