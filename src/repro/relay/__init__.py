"""Session-relay middleware (§4).

Multi-source applications are built on single-source channels by
relaying through a *session relay* (SR): "Each SR-based application,
e.g., conference or lecture, has an associated session relay on an
application-selected host SR that acts as the source for the EXPRESS
channel (SR,E) to which each participant in the lecture subscribes."

* :class:`~repro.relay.session.SessionRelay` /
  :class:`~repro.relay.session.SessionParticipant` — the relay itself
  and the client side (speak via unicast to the SR, listen on the
  channel).
* :class:`~repro.relay.floor.FloorControl` — §4.2's "intelligent
  audience microphone": one speaker at a time, per-member question
  limits.
* :class:`~repro.relay.standby.StandbyCoordinator` — §4.2's hot/cold
  standby SRs with application-controlled failover.
* :class:`~repro.relay.reliable.ReliableRelay` — §4.2's
  sequence-numbered relaying with NACK collection over the ECMP
  counting machinery.
* :func:`~repro.relay.session.direct_channel_switchover` — §4.1's
  alternative: a long-talking secondary source moves to its own
  channel, announced through the SR.
"""

from repro.relay.directory import DirectoryListener, SessionAnnouncement, SessionDirectory
from repro.relay.floor import FloorControl, FloorDecision
from repro.relay.reliable import ReliableReceiver, ReliableRelay
from repro.relay.session import (
    RelayMessage,
    SessionParticipant,
    SessionRelay,
    direct_channel_switchover,
)
from repro.relay.rtcp import ReceptionMonitor, SessionQuality
from repro.relay.standby import StandbyCoordinator, StandbyMode

__all__ = [
    "DirectoryListener",
    "FloorControl",
    "FloorDecision",
    "RelayMessage",
    "ReceptionMonitor",
    "ReliableReceiver",
    "ReliableRelay",
    "SessionAnnouncement",
    "SessionDirectory",
    "SessionQuality",
    "SessionParticipant",
    "SessionRelay",
    "StandbyCoordinator",
    "StandbyMode",
    "direct_channel_switchover",
]
