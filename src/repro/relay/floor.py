"""Floor control — the SR as an "intelligent audience microphone" (§4.2).

"The SR can supply 'floor control' when relaying data to the session,
... accepting unicast input from authorized audience members, assigning
the floor to the next speaker, and then forwarding its traffic to this
session. In particular, in a lecture, the SR can ensure that one
question is transmitted to the audience at a time, that the answer
immediately follows the question, and that no member disrupts the
session with excessive questions."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.errors import RelayError


class FloorDecision(Enum):
    """Outcome of a floor request."""

    GRANTED = "granted"
    QUEUED = "queued"
    DENIED = "denied"


@dataclass
class FloorStats:
    grants: int = 0
    denials: int = 0
    queued: int = 0


class FloorControl:
    """One-speaker-at-a-time floor arbitration with per-member limits.

    Parameters
    ----------
    moderator:
        The member who always holds implicit speaking rights (the
        lecturer); their traffic relays without holding the floor.
    max_questions:
        Per-member grant budget; further requests are denied ("no
        member disrupts the session with excessive questions").
    authorized:
        If given, only these members may request the floor at all.
    """

    def __init__(
        self,
        moderator: Optional[str] = None,
        max_questions: Optional[int] = None,
        authorized: Optional[set] = None,
    ) -> None:
        self.moderator = moderator
        self.max_questions = max_questions
        self.authorized = set(authorized) if authorized is not None else None
        self.holder: Optional[str] = None
        self.queue: deque[str] = deque()
        self.grants_given: dict[str, int] = {}
        self.stats = FloorStats()

    def may_speak(self, member: str) -> bool:
        """Whether the SR should relay this member's traffic now."""
        return member == self.moderator or member == self.holder

    def request(self, member: str) -> FloorDecision:
        """Ask for the floor; granted immediately when free."""
        if self.authorized is not None and member not in self.authorized:
            self.stats.denials += 1
            return FloorDecision.DENIED
        if (
            self.max_questions is not None
            and self.grants_given.get(member, 0) >= self.max_questions
        ):
            self.stats.denials += 1
            return FloorDecision.DENIED
        if member == self.holder or member in self.queue:
            return FloorDecision.QUEUED
        if self.holder is None:
            self._grant(member)
            return FloorDecision.GRANTED
        self.queue.append(member)
        self.stats.queued += 1
        return FloorDecision.QUEUED

    def release(self, member: str) -> Optional[str]:
        """Give up the floor; returns the next holder, if any."""
        if member != self.holder:
            if member in self.queue:
                self.queue.remove(member)
                return None
            raise RelayError(f"{member} does not hold the floor")
        self.holder = None
        while self.queue:
            nxt = self.queue.popleft()
            if (
                self.max_questions is None
                or self.grants_given.get(nxt, 0) < self.max_questions
            ):
                self._grant(nxt)
                return nxt
        return None

    def revoke(self) -> Optional[str]:
        """Moderator action: take the floor away from its holder."""
        if self.holder is None:
            return None
        holder, self.holder = self.holder, None
        return holder

    def _grant(self, member: str) -> None:
        self.holder = member
        self.grants_given[member] = self.grants_given.get(member, 0) + 1
        self.stats.grants += 1
