"""Reliable relaying: sequence numbers + NACK counting (§4.2, §2.2.1).

"The SR can add sequence numbers to relayed packets, as required in
reliable multicast protocols. The SR establishes this reliable
communication with all receivers, allowing a secondary (relaying)
source to take advantage of this shared reliable channel" — and the
counting machinery "can be used to efficiently collect positive
acknowledgements or negative acknowledgments to determine how many
subscribers missed a particular packet" (§2.2.1).

Protocol: the SR keeps a retransmission buffer of everything it emitted
with a sequence number. To check on packet ``n`` it multicasts a
``probe`` control message naming ``n``, then issues a CountQuery for
the reserved NACK countId; each receiver's registered responder answers
1 if it is missing ``n``. A nonzero count triggers a re-multicast of
the buffered packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.counting import QueryResult
from repro.core.ecmp.countids import APPLICATION_RANGE
from repro.core.network import ExpressNetwork
from repro.errors import RelayError
from repro.relay.session import RelayMessage, SessionParticipant, SessionRelay

#: Application countId used for NACK collection.
NACK_COUNT_ID = APPLICATION_RANGE.start + 1


@dataclass
class BufferedPacket:
    seq: int
    body: Any
    size: int
    retransmissions: int = 0


class ReliableRelay:
    """Reliability layer over a :class:`SessionRelay`."""

    def __init__(self, relay: SessionRelay, buffer_limit: int = 1024) -> None:
        self.relay = relay
        self.net: ExpressNetwork = relay.net
        self.buffer_limit = buffer_limit
        self.buffer: dict[int, BufferedPacket] = {}
        self.probes_sent = 0
        self.retransmissions = 0

    def send(self, body: Any, size: int = 1356) -> tuple[int, int]:
        """Emit a sequenced talk packet, retaining it for repair.

        Returns ``(seq, fanout)``.
        """
        fanout = self.relay.emit("talk", self.relay.sr_host, body, size=size)
        seq = self.relay.last_emitted_seq
        self.buffer[seq] = BufferedPacket(seq=seq, body=body, size=size)
        while len(self.buffer) > self.buffer_limit:
            self.buffer.pop(min(self.buffer))
        return seq, fanout

    #: Head start the probe gets before the CountQuery chases it down
    #: the tree (the probe is a larger data packet, so it is slower per
    #: hop than the 16-byte query).
    PROBE_LEAD = 0.25

    def check_packet(
        self, seq: int, timeout: float = 5.0, repair: bool = True
    ) -> QueryResult:
        """Probe for packet ``seq`` and count NACKs via ECMP; if
        ``repair``, re-multicast the buffered packet when any subscriber
        reports it missing.

        The returned :class:`QueryResult` resolves after the probe
        lead time plus the query ``timeout``.
        """
        if seq not in self.buffer:
            raise RelayError(f"sequence {seq} is no longer buffered")
        self.relay.emit("probe", self.relay.sr_host, body=seq, size=64)
        self.probes_sent += 1

        outer = QueryResult()

        def run_query() -> None:
            inner = self.relay.handle.count_query(
                self.relay.channel, NACK_COUNT_ID, timeout=timeout
            )

            def settle(res: QueryResult) -> None:
                if repair and res.count and res.count > 0:
                    self.retransmit(seq)
                outer._resolve(res.count or 0, res.partial, self.net.sim.now)

            inner.on_done(settle)

        self.net.sim.schedule(self.PROBE_LEAD, run_query, name="nack-query")
        return outer

    def retransmit(self, seq: int) -> None:
        packet = self.buffer.get(seq)
        if packet is None:
            raise RelayError(f"sequence {seq} is no longer buffered")
        packet.retransmissions += 1
        self.retransmissions += 1
        self.relay.emit("repair", self.relay.sr_host, body=(seq, packet.body), size=packet.size)


class ReliableReceiver:
    """Receiver-side gap tracking for a :class:`SessionParticipant`."""

    def __init__(self, participant: SessionParticipant) -> None:
        self.participant = participant
        self.received_seqs: set[int] = set()
        self.highest_seen = 0
        self.probe_seq: Optional[int] = None
        participant.on_message = self._on_message
        participant.handle.respond_to_count(
            participant.channel, NACK_COUNT_ID, self._nack_response
        )

    def _on_message(self, message: RelayMessage) -> None:
        if message.kind == "talk":
            self.received_seqs.add(message.seq)
            self.highest_seen = max(self.highest_seen, message.seq)
        elif message.kind == "probe":
            self.probe_seq = int(message.body)
            self.highest_seen = max(self.highest_seen, self.probe_seq)
        elif message.kind == "repair":
            seq, _body = message.body
            self.received_seqs.add(seq)

    def _nack_response(self) -> int:
        """1 if the probed sequence number is missing here."""
        if self.probe_seq is None:
            return 0
        return 0 if self.probe_seq in self.received_seqs else 1

    def missing(self) -> set[int]:
        return {
            seq
            for seq in range(1, self.highest_seen + 1)
            if seq not in self.received_seqs
        }
