"""RTCP-style session statistics over ECMP counting (§4.5).

"RTCP, a session management protocol, is used by many existing
applications to measure group reception quality and other session-wide
attributes, and it depends on multi-sender multicast to limit the
overall rate of RTCP traffic. ... many uses of RTCP, such as measuring
group size and average loss rate, are readily implemented with the
CountQuery mechanism. If desired, the SR can also perform
application-specific summarization of reports to inform receivers of
session-wide values (like loss rates)."

:class:`ReceptionMonitor` is that adaptation: each receiver registers
three count responders — membership (1), total packets lost (its gap
count), and a high-loss indicator — and the session's source-side
:class:`SessionQuality` aggregates them with three CountQueries instead
of per-receiver RTCP receiver reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.ecmp.countids import APPLICATION_RANGE
from repro.errors import RelayError
from repro.relay.reliable import ReliableReceiver
from repro.relay.session import SessionParticipant, SessionRelay

#: Application countIds used by the RTCP adaptation.
MEMBER_COUNT_ID = APPLICATION_RANGE.start + 0x10
TOTAL_LOST_ID = APPLICATION_RANGE.start + 0x11
HIGH_LOSS_ID = APPLICATION_RANGE.start + 0x12


class ReceptionMonitor:
    """Receiver-side reception statistics, published via counting.

    Wraps a :class:`ReliableReceiver` (which tracks sequence gaps) and
    registers the three responders. ``high_loss_threshold`` is the loss
    *fraction* above which this receiver counts itself as high-loss.
    """

    def __init__(
        self,
        participant: SessionParticipant,
        high_loss_threshold: float = 0.05,
    ) -> None:
        if not 0 <= high_loss_threshold <= 1:
            raise RelayError("high-loss threshold must be in [0, 1]")
        self.participant = participant
        self.threshold = high_loss_threshold
        self.receiver = ReliableReceiver(participant)
        handle = participant.handle
        handle.respond_to_count(participant.channel, MEMBER_COUNT_ID, lambda: 1)
        handle.respond_to_count(participant.channel, TOTAL_LOST_ID, self.lost_packets)
        handle.respond_to_count(participant.channel, HIGH_LOSS_ID, self._high_loss)

    def lost_packets(self) -> int:
        return len(self.receiver.missing())

    def loss_rate(self) -> float:
        highest = self.receiver.highest_seen
        if highest == 0:
            return 0.0
        return self.lost_packets() / highest

    def _high_loss(self) -> int:
        return 1 if self.loss_rate() > self.threshold else 0


@dataclass
class QualityReport:
    """Session-wide reception quality, RTCP-style."""

    group_size: int
    total_lost: int
    high_loss_receivers: int
    packets_sent: int

    @property
    def mean_lost_per_receiver(self) -> float:
        if self.group_size == 0:
            return 0.0
        return self.total_lost / self.group_size

    @property
    def mean_loss_rate(self) -> float:
        if self.group_size == 0 or self.packets_sent == 0:
            return 0.0
        return self.total_lost / (self.group_size * self.packets_sent)


class SessionQuality:
    """Source/SR-side aggregation: three CountQueries replace N
    receiver reports."""

    def __init__(self, relay: SessionRelay) -> None:
        self.relay = relay
        self.net = relay.net
        self.last_report: Optional[QualityReport] = None

    def collect(self, timeout: float = 5.0) -> "QualityCollection":
        """Issue the three queries; resolve into a QualityReport."""
        handle = self.relay.handle
        channel = self.relay.channel
        collection = QualityCollection(self, packets_sent=self.relay.relayed)
        handle.count_query(channel, MEMBER_COUNT_ID, timeout, collection._take("size"))
        handle.count_query(channel, TOTAL_LOST_ID, timeout, collection._take("lost"))
        handle.count_query(channel, HIGH_LOSS_ID, timeout, collection._take("high"))
        return collection


class QualityCollection:
    """In-flight quality collection; ``report`` is set once all three
    queries resolve."""

    def __init__(self, quality: SessionQuality, packets_sent: int) -> None:
        self._quality = quality
        self._packets_sent = packets_sent
        self._values: dict[str, int] = {}
        self.report: Optional[QualityReport] = None

    def _take(self, key: str):
        def callback(count: int, partial: bool) -> None:
            self._values[key] = count
            if len(self._values) == 3:
                self.report = QualityReport(
                    group_size=self._values["size"],
                    total_lost=self._values["lost"],
                    high_loss_receivers=self._values["high"],
                    packets_sent=self._packets_sent,
                )
                self._quality.last_report = self.report

        return callback

    @property
    def done(self) -> bool:
        return self.report is not None
