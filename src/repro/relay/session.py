"""The session relay and its participants (§4.1).

"The primary lecturer or speaker either resides on the SR or relays its
packets to it and onto the multicast channel by unicasting an
encapsulated packet to the SR. ... Students ask questions which the
other students can hear by relaying their transmissions through the
session relay to the multicast channel (SR,E)."

Data plane: a participant *speaks* by unicasting a
:class:`RelayMessage` to the SR host; the SR — after floor-control
checks — re-emits it as the source of the channel ``(SR, E)``.
Participants *listen* by subscribing to that channel like any EXPRESS
subscriber. Control traffic (floor requests/grants) uses the same two
legs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.channel import Channel
from repro.core.keys import ChannelKey
from repro.core.network import ExpressNetwork, SourceHandle
from repro.netsim.engine import PeriodicTask
from repro.netsim.packet import Packet
from repro.relay.floor import FloorControl, FloorDecision

_session_ids = itertools.count(1)

#: Simulated wire size of a small relay control message.
CONTROL_SIZE = 64


@dataclass
class RelayMessage:
    """Application payload relayed through an SR.

    ``kind`` is one of: "talk" (media), "floor_request",
    "floor_release", "floor_grant", "floor_deny", "heartbeat",
    "announce_channel" (direct-channel switchover), "probe" (reliable
    NACK probe).
    """

    session: int
    kind: str
    speaker: str
    seq: int = 0
    body: Any = None


class SessionRelay:
    """An SR instance on one host of an :class:`ExpressNetwork`."""

    def __init__(
        self,
        net: ExpressNetwork,
        sr_host: str,
        floor: Optional[FloorControl] = None,
        secret: Optional[bytes] = None,
        heartbeat_interval: Optional[float] = None,
        talk_size: int = 1356,
    ) -> None:
        self.net = net
        self.handle: SourceHandle = net.source(sr_host)
        self.session_id = next(_session_ids)
        self.channel: Channel = self.handle.allocate_channel()
        if net.obs is None:
            self._m_messages = None
        else:
            self._m_messages = net.obs.registry.counter(
                "relay_messages_total",
                "Session-relay messages by session, direction, and kind",
                ("session", "direction", "kind"),
            )
        self.floor = floor
        self.talk_size = talk_size
        self._seq = itertools.count(1)
        self.last_emitted_seq = 0
        self.relayed = 0
        self.blocked = 0
        self.stopped = False
        self._heartbeat_task: Optional[PeriodicTask] = None
        #: K(SR,E) when the session is restricted; participants obtain
        #: it out of band (§3.2: "hosts must learn K(S,E) with an
        #: out-of-band mechanism") — here, by sharing ``secret``.
        self.key: Optional[ChannelKey] = None
        if secret is not None:
            self.key = ChannelKey.from_secret(self.channel, secret)
            self.handle.channel_key(self.channel, self.key)
        self.handle.forwarder.on_unicast_delivery(self._on_unicast)
        if heartbeat_interval is not None:
            self._heartbeat_task = PeriodicTask(
                net.sim, heartbeat_interval, self._heartbeat, name="sr-heartbeat"
            )
            self._heartbeat_task.start()

    @property
    def sr_host(self) -> str:
        return self.handle.name

    @property
    def address(self) -> int:
        return self.handle.address

    def stop(self) -> None:
        """Fail the relay (used by the standby experiments)."""
        self.stopped = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.stop()

    # ------------------------------------------------------------------
    # relaying
    # ------------------------------------------------------------------

    def _on_unicast(self, packet: Packet) -> None:
        message = packet.payload
        if not isinstance(message, RelayMessage) or message.session != self.session_id:
            return
        if self.stopped:
            return
        if self._m_messages is not None:
            self._m_messages.labels(
                session=str(self.session_id), direction="rx", kind=message.kind
            ).inc()
        if message.kind == "talk":
            self._relay_talk(message, packet.size)
        elif message.kind == "floor_request":
            self._handle_floor_request(message.speaker)
        elif message.kind == "floor_release":
            self._handle_floor_release(message.speaker)

    def _relay_talk(self, message: RelayMessage, size: int) -> None:
        if self.floor is not None and not self.floor.may_speak(message.speaker):
            self.blocked += 1
            return
        self.emit(message.kind, message.speaker, message.body, size=size)

    def _handle_floor_request(self, speaker: str) -> None:
        if self.floor is None:
            return
        decision = self.floor.request(speaker)
        kind = "floor_grant" if decision is FloorDecision.GRANTED else "floor_deny"
        if decision is FloorDecision.QUEUED:
            return  # grant announced when the floor frees up
        self.emit(kind, speaker, body=decision.value, size=CONTROL_SIZE)

    def _handle_floor_release(self, speaker: str) -> None:
        if self.floor is None:
            return
        nxt = self.floor.release(speaker)
        if nxt is not None:
            self.emit("floor_grant", nxt, body="granted", size=CONTROL_SIZE)

    def emit(self, kind: str, speaker: str, body: Any = None, size: int = 0) -> int:
        """Send one message on the session channel as the SR source."""
        if self.stopped:
            return 0
        self.last_emitted_seq = next(self._seq)
        out = RelayMessage(
            session=self.session_id,
            kind=kind,
            speaker=speaker,
            seq=self.last_emitted_seq,
            body=body,
        )
        if kind == "talk":
            self.relayed += 1
        if self._m_messages is not None:
            self._m_messages.labels(
                session=str(self.session_id), direction="tx", kind=kind
            ).inc()
        return self.handle.send(self.channel, payload=out, size=size or self.talk_size)

    def speak_from_relay(self, body: Any, size: Optional[int] = None) -> int:
        """The primary speaker "resides on the SR": emit directly."""
        return self.emit("talk", self.sr_host, body, size=size or self.talk_size)

    def _heartbeat(self) -> None:
        self.emit("heartbeat", self.sr_host, size=CONTROL_SIZE)


class SessionParticipant:
    """A session member on one host: listens on (SR, E), speaks by
    unicasting to the SR."""

    def __init__(
        self,
        net: ExpressNetwork,
        host: str,
        relay: SessionRelay,
        key: Optional[ChannelKey] = None,
        on_message: Optional[Callable[[RelayMessage], None]] = None,
    ) -> None:
        self.net = net
        self.name = host
        self.handle = net.host(host)
        self.relay_address = relay.address
        self.channel = relay.channel
        self.session_id = relay.session_id
        self.on_message = on_message
        self.received: list[RelayMessage] = []
        self.heard_talks: list[RelayMessage] = []
        self.has_floor = False
        self.last_heartbeat_at: Optional[float] = None
        self.subscription = self.handle.subscribe(
            self.channel, key=key, on_data=self._on_channel_data
        )

    # ------------------------------------------------------------------

    def _on_channel_data(self, packet: Packet) -> None:
        message = packet.payload
        if not isinstance(message, RelayMessage):
            return
        self.received.append(message)
        if message.kind == "talk":
            self.heard_talks.append(message)
        elif message.kind == "heartbeat":
            self.last_heartbeat_at = self.net.sim.now
        elif message.kind == "floor_grant" and message.speaker == self.name:
            self.has_floor = True
        elif message.kind == "floor_deny" and message.speaker == self.name:
            self.has_floor = False
        if self.on_message is not None:
            self.on_message(message)

    def _unicast_to_relay(self, message: RelayMessage, size: int) -> None:
        packet = Packet(
            src=self.handle.address,
            dst=self.relay_address,
            proto="data",
            payload=message,
            size=size,
            created_at=self.net.sim.now,
        )
        self.handle.forwarder.emit_unicast(packet)

    def speak(self, body: Any, size: int = 1356) -> None:
        """Send media toward the session (relayed if floor allows)."""
        self._unicast_to_relay(
            RelayMessage(self.session_id, "talk", self.name, body=body), size
        )

    def request_floor(self) -> None:
        self._unicast_to_relay(
            RelayMessage(self.session_id, "floor_request", self.name), CONTROL_SIZE
        )

    def release_floor(self) -> None:
        self.has_floor = False
        self._unicast_to_relay(
            RelayMessage(self.session_id, "floor_release", self.name), CONTROL_SIZE
        )

    def leave(self) -> None:
        self.handle.unsubscribe(self.channel)


def direct_channel_switchover(
    net: ExpressNetwork,
    relay: SessionRelay,
    speaker_host: str,
    participants: list[SessionParticipant],
) -> Channel:
    """§4.1's alternative to pure relaying: "a secondary sender ...
    create[s] a new channel for which it is the source and use[s] the SR
    to ask all other session participants to subscribe to the new
    channel." Returns the new direct channel.

    "This technique is primarily applicable when the new source is
    going to transmit for an extended period of time and when there is
    considerable delay benefit to using the direct channel over
    relaying."
    """
    speaker = net.source(speaker_host)
    direct = speaker.allocate_channel()
    # Announce through the (still authoritative) session relay.
    relay.emit("announce_channel", speaker_host, body=direct, size=CONTROL_SIZE)
    for participant in participants:
        if participant.name != speaker_host:
            net.host(participant.name).subscribe(direct)
    return direct
