"""Hot/cold standby session relays (§4.2).

"An application can select to use additional backup SRs for
fault-tolerance, controlling their number, placement, and switch-over
policy. It can also choose between pre-subscribing participants to the
backup multicast channel for faster fail-over, or only setting up the
backup channel when the primary one fails, saving on expected channel
charging, options we refer to as 'hot' and 'cold' standby."

Failure detection is heartbeat-based: the primary SR heartbeats on its
channel; each participant runs a small monitor that declares the
primary dead after ``miss_threshold`` missed intervals and switches to
the backup. HOT standby pre-subscribes to the backup channel (failover
cost ≈ detection time only, at roughly twice the channel state); COLD
subscribes at failover (state-lean, slower by one join round-trip).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.core.network import ExpressNetwork
from repro.errors import RelayError
from repro.netsim.engine import PeriodicTask
from repro.relay.session import SessionParticipant, SessionRelay


class StandbyMode(Enum):
    HOT = "hot"
    COLD = "cold"


@dataclass
class FailoverRecord:
    """Per-participant failover outcome for the X3 benchmark."""

    participant: str
    detected_at: float
    recovered_at: Optional[float] = None

    @property
    def recovery_time(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.detected_at


class StandbyCoordinator:
    """Manages a primary/backup SR pair for a set of participants."""

    def __init__(
        self,
        net: ExpressNetwork,
        primary: SessionRelay,
        backup: SessionRelay,
        mode: StandbyMode = StandbyMode.HOT,
        heartbeat_interval: float = 1.0,
        miss_threshold: int = 3,
    ) -> None:
        if primary._heartbeat_task is None:
            raise RelayError("primary relay must heartbeat for failure detection")
        self.net = net
        self.primary = primary
        self.backup = backup
        self.mode = mode
        self.heartbeat_interval = heartbeat_interval
        self.miss_threshold = miss_threshold
        self.participants: list[SessionParticipant] = []
        self.failed_over: dict[str, FailoverRecord] = {}
        self._monitors: list[PeriodicTask] = []

    def enroll(self, participant: SessionParticipant) -> None:
        """Attach a participant to the failover scheme."""
        self.participants.append(participant)
        if self.mode is StandbyMode.HOT:
            # Pre-subscribe to the backup channel ("hot": faster
            # fail-over at roughly twice the channel state).
            participant.handle.subscribe(self.backup.channel, on_data=lambda p: None)
        monitor = PeriodicTask(
            self.net.sim,
            self.heartbeat_interval,
            lambda p=participant: self._check(p),
            name="standby-monitor",
        )
        monitor.start()
        self._monitors.append(monitor)

    def standby_state_entries(self) -> int:
        """FIB entries attributable to the backup channel right now —
        §4.5's "approximately twice as much" state for hot standby."""
        total = 0
        for fib in self.net.fibs.values():
            if fib.get(self.backup.channel.source, self.backup.channel.group):
                total += 1
        return total

    def fail_primary(self) -> None:
        """Inject a primary SR failure."""
        self.primary.stop()

    # ------------------------------------------------------------------

    def _check(self, participant: SessionParticipant) -> None:
        if participant.name in self.failed_over:
            return
        last = participant.last_heartbeat_at
        if last is None:
            return  # never synced yet; give it a full window
        deadline = last + self.miss_threshold * self.heartbeat_interval
        if self.net.sim.now < deadline:
            return
        record = FailoverRecord(
            participant=participant.name, detected_at=self.net.sim.now
        )
        self.failed_over[participant.name] = record
        self._switch(participant, record)

    def _switch(self, participant: SessionParticipant, record: FailoverRecord) -> None:
        def on_backup_data(packet) -> None:
            if record.recovered_at is None:
                record.recovered_at = self.net.sim.now

        handle = participant.handle
        if self.mode is StandbyMode.HOT:
            # Already subscribed; just repoint the data sink.
            sub = handle.ecmp.subscriptions.get(self.backup.channel)
            if sub is not None:
                sub.on_data = on_backup_data
        else:
            handle.subscribe(self.backup.channel, on_data=on_backup_data)
        participant.relay_address = self.backup.address
        participant.channel = self.backup.channel
        participant.session_id = self.backup.session_id

    def all_recovered(self) -> bool:
        return bool(self.failed_over) and all(
            record.recovered_at is not None for record in self.failed_over.values()
        )

    def recovery_times(self) -> dict[str, float]:
        return {
            name: record.recovery_time
            for name, record in self.failed_over.items()
            if record.recovery_time is not None
        }
