"""The channel value type and per-host channel allocation.

"A multicast channel is a datagram delivery service identified by a
tuple (S, E) where S is the sender's source address and E is a channel
destination address. Only the source host S may send to (S, E)" (§2).

Channels with the same E but different S are unrelated; equality and
hashing therefore cover both components. Each source host can allocate
its 2^24 channel numbers autonomously — "duplicate allocation is an
issue only at a single host, which the host operating system can avoid
with a local database of allocated channels" (§2.2.1);
:class:`ChannelAllocator` is that local database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ChannelError
from repro.inet.addr import (
    CHANNELS_PER_SOURCE,
    channel_suffix,
    format_address,
    is_ssm,
    is_unicast,
    ssm_address,
)

# ---------------------------------------------------------------------------
# Channel interning
#
# Channels key every hot dict in the system (channel tables, FIB caches,
# block membership, key caches), and the same (S, E) pair is rebuilt at
# every layer: codec decode, FIB lookup, data-plane delivery. Interning
# gives all of those one canonical object — the validation and hash are
# paid once per distinct channel per process — and lets the columnar
# state tables address channels by a dense integer id instead of the
# object itself.
# ---------------------------------------------------------------------------

#: (source, suffix) -> canonical Channel, filled by :meth:`Channel.of`.
_OF_MEMO: dict = {}

#: (source, group) -> canonical Channel, or None for pairs that fail
#: validation (negative caching: the data plane probes arbitrary
#: packet addresses, and an invalid pair stays invalid).
_PAIR_MEMO: dict = {}

#: Canonical Channel -> dense integer id, in interning order.
_CHANNEL_IDS: dict = {}

_MISSING = object()


def lookup_channel(source: int, group: int):
    """The canonical :class:`Channel` for ``(source, group)``, or None
    when the pair is not a valid channel.

    This is the data plane's fast path: validation is pure, so each
    pair is parsed at most once per process, invalid pairs included.
    """
    key = (source, group)
    channel = _PAIR_MEMO.get(key, _MISSING)
    if channel is _MISSING:
        try:
            channel = Channel(source=source, group=group)
        except ChannelError:
            channel = None
        _PAIR_MEMO[key] = channel
        if channel is not None:
            _OF_MEMO.setdefault((source, channel.suffix), channel)
    return channel


def channel_id(channel: "Channel") -> int:
    """Dense integer id for ``channel``, assigned on first use.

    Ids are process-global and monotonically assigned, so they can
    index parallel arrays (see ``core/ecmp/state.py``) and key caches
    with plain-int hashing.
    """
    cid = _CHANNEL_IDS.get(channel)
    if cid is None:
        cid = len(_CHANNEL_IDS)
        _CHANNEL_IDS[channel] = cid
    return cid


@dataclass(frozen=True)
class Channel:
    """An EXPRESS channel (S, E).

    Attributes
    ----------
    source:
        The single designated source's unicast address S.
    group:
        The channel destination address E, in 232.0.0.0/8.
    """

    source: int
    group: int

    def __post_init__(self) -> None:
        if not is_unicast(self.source):
            raise ChannelError(
                f"channel source {format_address(self.source)} must be unicast"
            )
        if not is_ssm(self.group):
            raise ChannelError(
                f"channel destination {format_address(self.group)} must be in 232/8"
            )
        # Channels key every hot dict in the control and data planes
        # (channel tables, FIB caches, block membership), and the value
        # is immutable — memoize the hash instead of rebuilding the
        # (source, group) tuple on every lookup.
        object.__setattr__(self, "_hash", hash((self.source, self.group)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def suffix(self) -> int:
        """The 24-bit channel number within the source's space."""
        return channel_suffix(self.group)

    @classmethod
    def of(cls, source: int, suffix: int) -> "Channel":
        """The canonical channel ``suffix`` of host ``source``.

        Interned: repeated calls with the same pair return the same
        object, shared with :func:`lookup_channel` (the data plane's
        (src, dst) memo), so there is exactly one ``Channel`` per
        distinct (S, E) in the process.
        """
        if cls is not Channel:  # subclasses get no interning
            return cls(source=source, group=ssm_address(suffix))
        key = (source, suffix)
        channel = _OF_MEMO.get(key)
        if channel is None:
            channel = cls(source=source, group=ssm_address(suffix))
            _OF_MEMO[key] = channel
            _PAIR_MEMO.setdefault((source, channel.group), channel)
        return channel

    def __str__(self) -> str:
        return f"({format_address(self.source)},{format_address(self.group)})"


class ChannelAllocator:
    """A source host's local database of allocated channel numbers.

    Allocation is sequential with explicit release; allocating a
    specific suffix that is already held raises :class:`ChannelError`.
    """

    def __init__(self, source: int) -> None:
        if not is_unicast(source):
            raise ChannelError(f"{format_address(source)} is not a unicast address")
        self.source = source
        self._allocated: set[int] = set()
        self._next = 1  # leave suffix 0 unused (reads as "no channel")

    def allocate(self, suffix: Optional[int] = None) -> Channel:
        """Allocate a channel, either a specific ``suffix`` or the next
        free one."""
        if suffix is not None:
            if suffix in self._allocated:
                raise ChannelError(f"channel suffix {suffix} already allocated")
            self._allocated.add(suffix)
            return Channel.of(self.source, suffix)
        if len(self._allocated) >= CHANNELS_PER_SOURCE - 1:
            raise ChannelError("all 2^24 channels allocated")
        while self._next in self._allocated:
            self._next = (self._next + 1) % CHANNELS_PER_SOURCE or 1
        suffix = self._next
        self._allocated.add(suffix)
        self._next = (self._next + 1) % CHANNELS_PER_SOURCE or 1
        return Channel.of(self.source, suffix)

    def release(self, channel: Channel) -> None:
        if channel.source != self.source:
            raise ChannelError(f"{channel} does not belong to this source")
        self._allocated.discard(channel.suffix)

    def allocated(self) -> Iterator[Channel]:
        for suffix in sorted(self._allocated):
            yield Channel.of(self.source, suffix)

    def __len__(self) -> int:
        return len(self._allocated)

    def __contains__(self, channel: Channel) -> bool:
        return channel.source == self.source and channel.suffix in self._allocated
