"""Vectorized delivery accounting (the native-core counting layer).

The mega-storm profile showed per-event *counting* — block delivery
counters, per-link wire counters, registry label lookups — costing as
much as the protocol work it was measuring: every delivered packet paid
dict hashing for ``labels(...)`` children and one attribute round-trip
per counter per block. This module moves those counters into
preallocated integer arrays with an index-interning layer, updated by
cheap scalar pends on the hot path and *flushed* in bulk at snapshot
and export boundaries:

* :class:`CounterBank` — a column store of ``int64`` arrays (numpy when
  available, plain lists otherwise) with row interning. Rows are
  subscriber blocks or links; columns are counters.
* :class:`DeliveryView` — the forwarder's frozen per-(agent, channel)
  view of block membership. Per packet it does two integer adds
  (``pending_packets``/``pending_bytes``); the flush applies the
  pending tallies to every member block with one fancy-indexed array
  operation per counter. Views are invalidated by
  ``EcmpAgent.members_changing`` (membership is about to move, so
  pending tallies accumulated under the old counts are applied first)
  and refreshed lazily against ``agent.blocks_version``.
* :class:`LinkAccounting` — per-registry aggregator for
  :class:`~repro.obs.hooks.LinkMetrics`: per-packet increments become
  plain attribute adds on the metrics object, and a registered
  collector folds them into the bank *and* the exact same registry
  families every exporter already reads, so PR 6's fleet aggregation
  sees byte-identical family names and label schemas.

Flush boundaries (the full set — counters are never stale when read):

* ``members_changing`` before any join/leave/batch member mutation,
* block counter property reads (``block.deliveries`` etc.),
* the registry collector at every ``collect()``/snapshot/export,
* a delivery view noticing ``blocks_version`` moved.

``REPRO_NO_NUMPY=1`` forces the pure-Python list fallback (CI runs the
tier-1 suite with numpy uninstalled to keep that path green); the
fallback is semantically identical, only the flush loops are scalar.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.blocks import SubscriberBlock
    from repro.core.channel import Channel
    from repro.core.ecmp.protocol import EcmpAgent

if os.environ.get("REPRO_NO_NUMPY", "") == "1":  # pragma: no cover - env gate
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised by the CI fallback job
        np = None

#: Minimum row count before a flush takes the fancy-indexed numpy path;
#: below this the scalar loop wins (array dispatch overhead dominates).
VECTOR_MIN = 16

#: Initial rows per bank column (doubles on demand).
_INITIAL_ROWS = 64


class CounterBank:
    """A column store of preallocated integer counters with row
    interning.

    Columns are ``int64`` numpy arrays when numpy is importable (and
    not disabled via ``REPRO_NO_NUMPY``), plain Python lists otherwise.
    Rows are appended via :meth:`add_row` (anonymous — the caller keeps
    the index, e.g. a :class:`~repro.core.blocks.SubscriberBlock`) or
    :meth:`intern` (keyed — repeated interning of the same key returns
    the same row). Growth doubles the arrays, so callers must index
    through the bank on every access rather than caching column arrays.
    """

    __slots__ = ("columns", "rows", "_capacity", "_cols", "_index")

    def __init__(
        self, columns: Sequence[str], capacity: int = _INITIAL_ROWS
    ) -> None:
        self.columns = tuple(columns)
        self.rows = 0
        self._capacity = capacity
        self._index: dict = {}
        if np is not None:
            self._cols = {
                name: np.zeros(capacity, dtype=np.int64) for name in self.columns
            }
        else:
            self._cols = {name: [0] * capacity for name in self.columns}

    def add_row(self, key: object = None) -> int:
        """Append one zeroed row; returns its index. ``key`` (optional)
        registers the row for :meth:`intern` lookups."""
        row = self.rows
        if row >= self._capacity:
            self._grow()
        self.rows = row + 1
        if key is not None:
            self._index[key] = row
        return row

    def intern(self, key: object) -> int:
        """The row for ``key``, created on first use."""
        row = self._index.get(key)
        if row is None:
            row = self.add_row(key)
        return row

    def _grow(self) -> None:
        self._capacity *= 2
        if np is not None:
            for name, col in self._cols.items():
                grown = np.zeros(self._capacity, dtype=np.int64)
                grown[: len(col)] = col
                self._cols[name] = grown
        else:
            for col in self._cols.values():
                col.extend([0] * (self._capacity - len(col)))

    def column(self, name: str):
        """The live backing array for ``name`` (do not cache across
        :meth:`add_row` calls — growth replaces it)."""
        return self._cols[name]

    def get(self, name: str, row: int) -> int:
        return int(self._cols[name][row])

    def set(self, name: str, row: int, value: int) -> None:
        self._cols[name][row] = value

    def inc(self, name: str, row: int, amount: int = 1) -> None:
        self._cols[name][row] += amount

    def row_values(self, row: int) -> dict:
        return {name: int(col[row]) for name, col in self._cols.items()}

    def stats(self) -> dict:
        return {
            "rows": self.rows,
            "columns": list(self.columns),
            "vectorized": np is not None,
        }


#: Process-wide bank backing every :class:`SubscriberBlock`'s delivery
#: counters (``packets_seen``/``deliveries``/``bytes_delivered``). One
#: row per block instance; rows are never reused, which is fine — banks
#: grow geometrically and a row is three machine words.
BLOCK_BANK = CounterBank(("packets_seen", "deliveries", "bytes_delivered"))


class DeliveryView:
    """Frozen per-(agent, channel) membership view for the forwarder's
    arithmetic final-hop delivery.

    Between membership changes the per-packet work is two integer adds;
    :meth:`flush` then applies the pending packet/byte tallies to every
    member block's bank row in one fancy-indexed operation per counter
    (scalar loop under :data:`VECTOR_MIN` rows or without numpy). The
    equivalence argument: membership is frozen between flushes (every
    mutation path calls ``members_changing`` first), so per-packet and
    batched application compute identical sums.
    """

    __slots__ = (
        "agent",
        "channel",
        "stats",
        "hist",
        "version",
        "blocks",
        "rows",
        "members",
        "members_sum",
        "pending_packets",
        "pending_bytes",
    )

    def __init__(
        self,
        agent: "EcmpAgent",
        channel: "Channel",
        stats,
        hist_family=None,
        node_name: str = "",
    ) -> None:
        self.agent = agent
        self.channel = channel
        #: The forwarder's stats bag (Counter or CounterBag) — flush
        #: targets, same keys the per-packet path used to increment.
        self.stats = stats
        #: Memoized delivery-latency histogram child (obs mode only):
        #: latency is a per-packet distribution, so it is observed at
        #: delivery time, not deferred — but through this cached child
        #: instead of a ``labels(...)`` lookup per packet.
        self.hist = (
            hist_family.labels(
                protocol="express", node=node_name, channel=str(channel)
            )
            if hist_family is not None
            else None
        )
        self.version = -1
        self.blocks: tuple = ()
        self.rows = None
        self.members = None
        self.members_sum = 0
        self.pending_packets = 0
        self.pending_bytes = 0

    def refresh(self) -> None:
        """Rebuild the frozen member vectors from current membership
        (call only with no pending tallies)."""
        agent = self.agent
        channel = self.channel
        blocks = tuple(agent.channel_blocks.get(channel, ()))
        self.blocks = blocks
        counts = [block.members.get(channel, 0) for block in blocks]
        self.members_sum = sum(counts)
        if np is not None:
            self.rows = np.array(
                [block._row for block in blocks], dtype=np.intp
            )
            self.members = np.array(counts, dtype=np.int64)
        else:
            self.rows = [block._row for block in blocks]
            self.members = counts
        self.version = agent.blocks_version

    def flush(self) -> None:
        """Apply pending per-packet tallies to the member blocks' bank
        rows and the stats bag; no-op with nothing pending."""
        packets = self.pending_packets
        if not packets:
            return
        nbytes = self.pending_bytes
        self.pending_packets = 0
        self.pending_bytes = 0
        blocks = self.blocks
        n = len(blocks)
        cols = BLOCK_BANK._cols
        if np is not None and n >= VECTOR_MIN:
            rows = self.rows
            cols["packets_seen"][rows] += packets
            cols["deliveries"][rows] += self.members * packets
            cols["bytes_delivered"][rows] += self.members * nbytes
        else:
            seen = cols["packets_seen"]
            deliveries = cols["deliveries"]
            delivered_bytes = cols["bytes_delivered"]
            members = self.members
            for i in range(n):
                row = blocks[i]._row
                m = members[i]
                seen[row] += packets
                deliveries[row] += m * packets
                delivered_bytes[row] += m * nbytes
        if self.members_sum:
            stats = self.stats
            stats.incr("block_deliveries", self.members_sum * packets)
            stats.incr("block_packets", packets)


def flush_agent_views(agent: "EcmpAgent") -> None:
    """Flush every pending delivery view of ``agent`` (cheap when
    nothing is pending — one attribute check per channel view)."""
    for view in agent._delivery_views.values():
        if view.pending_packets:
            view.flush()


#: Column order shared by :class:`LinkAccounting` and
#: :class:`~repro.obs.hooks.LinkMetrics` pending attributes.
LINK_COLUMNS = ("packets", "lost", "ecmp_packets", "ecmp_bytes")


class LinkAccounting:
    """Per-registry flush aggregator for link counters.

    Each :class:`~repro.obs.hooks.LinkMetrics` registers here once; its
    per-packet methods then only bump plain integer attributes. The
    single collector registered on the registry folds all pending
    counts into the bank's preallocated columns and increments the
    *same* registry families (``link_packets_total`` etc.) by the same
    deltas — exporters, snapshots, and the fleet merge see identical
    series, just updated at collect boundaries instead of per packet.
    """

    __slots__ = ("bank", "_metrics")

    def __init__(self, registry) -> None:
        self.bank = CounterBank(LINK_COLUMNS)
        self._metrics: list = []
        registry.register_collector(self.flush)

    def attach(self, metrics) -> int:
        """Register one LinkMetrics; returns its interned bank row."""
        self._metrics.append(metrics)
        return self.bank.intern(metrics.link)

    def flush(self) -> None:
        bank = self.bank
        for metrics in self._metrics:
            pending = metrics.take_pending()
            if pending is None:
                continue
            packets, lost, ecmp_packets, ecmp_bytes = pending
            row = metrics.row
            if packets:
                bank.inc("packets", row, packets)
                metrics._c_packets.inc(packets)
            if lost:
                bank.inc("lost", row, lost)
                metrics._c_lost.inc(lost)
            if ecmp_packets:
                bank.inc("ecmp_packets", row, ecmp_packets)
                metrics._c_ecmp_packets.inc(ecmp_packets)
            if ecmp_bytes:
                bank.inc("ecmp_bytes", row, ecmp_bytes)
                metrics._c_ecmp_bytes.inc(ecmp_bytes)


def link_accounting(registry) -> LinkAccounting:
    """The registry's :class:`LinkAccounting`, created on first use and
    cached on the registry object itself (one bank + one collector per
    registry, however many links attach)."""
    accounting = getattr(registry, "_link_accounting", None)
    if accounting is None:
        accounting = LinkAccounting(registry)
        registry._link_accounting = accounting
    return accounting
