"""Subcast packet construction (§2.1).

"The source can also subcast a packet to a subset of the subscribers by
relaying it through an internal node in the multicast distribution
tree. ... This mechanism needs no additional interface — the source
unicasts an encapsulated packet to an 'on-channel' router, addressing
the encapsulated packet to the channel."

Decapsulation and downstream forwarding live in the data plane
(:class:`repro.core.forwarding.ExpressForwarder`); this module only
builds the two-layer packet. The single-source property is preserved by
the forwarder's check that the outer (tunnel) source equals the channel
source — the distinction from RMTP's SUBTREE_CAST that §7.1 highlights.
"""

from __future__ import annotations

from typing import Any

from repro.core.channel import Channel
from repro.errors import ChannelError
from repro.netsim.packet import Packet

#: IP-in-IP adds one inner IPv4 header.
ENCAP_OVERHEAD = 20


def build_subcast_packet(
    channel: Channel,
    relay_address: int,
    payload: Any = None,
    size: int = 512,
    created_at: float = 0.0,
) -> Packet:
    """An IP-in-IP packet: outer to ``relay_address``, inner addressed
    to the channel. ``size`` is the *inner* datagram's wire size."""
    if relay_address == channel.source:
        raise ChannelError("subcast relay must be an interior node, not the source")
    inner = Packet(
        src=channel.source,
        dst=channel.group,
        proto="data",
        payload=payload,
        size=size,
        created_at=created_at,
    )
    return inner.encapsulate(
        outer_src=channel.source,
        outer_dst=relay_address,
        proto="ipip",
        overhead=ENCAP_OVERHEAD,
    )
