"""Aggregated edge-subscriber blocks.

EXPRESS's scaling premise (§2, §5) is that routers never need
per-receiver state — "the per-channel subscriber count for each
interface" is the whole of it, and counts aggregate hop by hop. A
:class:`SubscriberBlock` applies that premise to the *simulation
substrate* itself: N leaf receivers behind one edge router are modelled
as a single counted entity instead of N :class:`~repro.netsim.node.Node`
objects with N sets of timers and N delivery events.

* **Joins/leaves** adjust the block's member count for a channel and
  surface at the edge router as one downstream record under a
  ``__block__:`` pseudo-neighbor (the same mechanism as the ``LOCAL``
  record for the router's own subscriptions). The router emits exactly
  the hop-by-hop ``Count`` deltas the paper prescribes — one message
  per 0↔positive transition in TREE_ONLY mode, one per change in
  ON_CHANGE — regardless of N.
* **UDP-mode soft state** is refreshed by one sampled
  :class:`~repro.netsim.engine.PeriodicTask` per block instead of one
  timer per subscriber; if the block stops refreshing (e.g. it is
  stopped), its records age out through the agent's ordinary
  ``UDP_ROBUSTNESS × UDP_QUERY_INTERVAL`` expiry horizon.
* **Final-hop delivery** is accounted arithmetically — the forwarder
  adds ``members`` to the delivery counters per packet instead of
  fanning out N link events (see ``ExpressForwarder._deliver_local``).

Blocks are for *open* channels: a keyed (authenticated) subscription
needs a per-receiver key check, which is exactly the state this
abstraction elides. ``tests/properties/test_block_equivalence.py`` pins
that a block of N produces the same upstream aggregate state as N
individual subscribers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.accounting import BLOCK_BANK, flush_agent_views
from repro.core.channel import Channel
from repro.core.ecmp.protocol import CountPropagation
from repro.core.ecmp.state import BLOCK_PREFIX
from repro.errors import ChannelError
from repro.netsim.engine import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ecmp.protocol import EcmpAgent


class SubscriberBlock:
    """N leaf receivers behind one edge router, as one counted entity.

    Created via :meth:`repro.core.network.ExpressNetwork.subscriber_block`
    (which also attaches it to the edge router's agent), or directly::

        block = SubscriberBlock(agent, "stub3")
        agent.attach_block(block)
        block.join(channel, 50_000)

    ``members`` maps channel -> current member count; the delivery
    counters (``packets_seen``/``deliveries``/``bytes_delivered``) are
    cumulative across channels.
    """

    __slots__ = (
        "agent",
        "name",
        "pseudo",
        "udp",
        "members",
        "_row",
        "_refresh_task",
        "_groups",
        "_ops",
    )

    def __init__(self, agent: "EcmpAgent", name: str, udp: bool = False) -> None:
        self.agent = agent
        self.name = name
        #: Downstream-record key at the edge router's agent. Like
        #: ``LOCAL``, it resolves to no peer node, so it can never leak
        #: onto the wire or into the FIB's outgoing bitmap.
        self.pseudo = BLOCK_PREFIX + name
        self.udp = udp
        self.members: dict[Channel, int] = {}
        #: Row in the process-wide delivery counter bank; the
        #: ``packets_seen``/``deliveries``/``bytes_delivered``
        #: properties below read it (flushing any pending delivery-view
        #: tallies first, so reads are never stale).
        self._row = BLOCK_BANK.add_row()
        self._refresh_task: Optional[PeriodicTask] = None
        self._groups: dict[Channel, BlockChannelGroup] = {}
        self._ops: dict[tuple[Channel, int], BlockOp] = {}

    @property
    def edge_router(self) -> str:
        return self.agent.node.name

    # -- delivery counters (bank-backed; see repro.core.accounting) --------

    @property
    def packets_seen(self) -> int:
        """Channel packets that reached this block's edge (cumulative
        across channels)."""
        flush_agent_views(self.agent)
        return BLOCK_BANK.get("packets_seen", self._row)

    @packets_seen.setter
    def packets_seen(self, value: int) -> None:
        flush_agent_views(self.agent)
        BLOCK_BANK.set("packets_seen", self._row, value)

    @property
    def deliveries(self) -> int:
        """Arithmetic member-deliveries (one per member per packet)."""
        flush_agent_views(self.agent)
        return BLOCK_BANK.get("deliveries", self._row)

    @deliveries.setter
    def deliveries(self, value: int) -> None:
        flush_agent_views(self.agent)
        BLOCK_BANK.set("deliveries", self._row, value)

    @property
    def bytes_delivered(self) -> int:
        """Arithmetic member-bytes (packet size × members, summed)."""
        flush_agent_views(self.agent)
        return BLOCK_BANK.get("bytes_delivered", self._row)

    @bytes_delivered.setter
    def bytes_delivered(self, value: int) -> None:
        flush_agent_views(self.agent)
        BLOCK_BANK.set("bytes_delivered", self._row, value)

    def join(self, channel: Channel, n: int = 1) -> int:
        """Add ``n`` members to the block's count for ``channel``;
        returns the new count. One aggregate Count delta goes upstream
        per the agent's propagation mode, not one per member."""
        if n <= 0:
            raise ChannelError(f"block join needs n >= 1, got {n}")
        new = self.members.get(channel, 0) + n
        self.agent.members_changing(channel)
        self.members[channel] = new
        self.agent.block_adjust(channel, self, new)
        return new

    def leave(self, channel: Channel, n: int = 1) -> int:
        """Remove ``n`` members (clamped at zero); returns the new
        count. Reaching zero prunes this block from the channel's tree
        exactly like the last individual unsubscribe would."""
        if n <= 0:
            raise ChannelError(f"block leave needs n >= 1, got {n}")
        current = self.members.get(channel, 0)
        new = current - n
        self.agent.members_changing(channel)
        if new <= 0:
            new = 0
            self.members.pop(channel, None)
        else:
            self.members[channel] = new
        if new != current:
            self.agent.block_adjust(channel, self, new)
        return new

    def join_op(self, channel: Channel) -> "BlockOp":
        """A cached, bound ``join(channel, 1)`` callable for bulk
        scheduling. Carries the batch metadata (``batch_group``/
        ``batch_delta``) the engine's batch slot dispatcher reads, so a
        wheel slot full of these ops collapses into one arithmetic
        update per (block, channel) — see ``Simulator._batch_slot``."""
        op = self._ops.get((channel, 1))
        if op is None:
            op = self._ops[(channel, 1)] = BlockOp(self.group(channel), 1)
        return op

    def leave_op(self, channel: Channel) -> "BlockOp":
        """A cached, bound ``leave(channel, 1)`` callable for bulk
        scheduling (batchable counterpart of :meth:`join_op`)."""
        op = self._ops.get((channel, -1))
        if op is None:
            op = self._ops[(channel, -1)] = BlockOp(self.group(channel), -1)
        return op

    def group(self, channel: Channel) -> "BlockChannelGroup":
        """The (block, channel) batch group, created once per channel."""
        group = self._groups.get(channel)
        if group is None:
            group = self._groups[channel] = BlockChannelGroup(self, channel)
        return group

    def count(self, channel: Channel) -> int:
        return self.members.get(channel, 0)

    def total_members(self) -> int:
        return sum(self.members.values())

    # -- soft state (UDP mode) ---------------------------------------------

    def start_refresh(self, interval: float, jitter: float = 0.0) -> None:
        """Start the block's single sampled refresh timer (UDP-mode
        blocks only; called by ``EcmpAgent.attach_block``)."""
        if self._refresh_task is not None:
            return
        self._refresh_task = PeriodicTask(
            self.agent.sim,
            interval,
            self._refresh,
            name="block-refresh",
            jitter=jitter,
        )
        self._refresh_task.start()

    def _refresh(self) -> None:
        """Touch every member record so the agent's UDP expiry horizon
        sees the whole block as alive — the per-block analogue of N
        individual IGMP-style report timers."""
        now = self.agent.sim.now
        for channel in self.members:
            state = self.agent.channels.get(channel)
            if state is None:
                continue
            record = state.downstream.get(self.pseudo)
            if record is not None:
                record.updated_at = now

    def stop(self) -> None:
        if self._refresh_task is not None:
            self._refresh_task.stop()
            self._refresh_task = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SubscriberBlock {self.name!r} at {self.edge_router}"
            f" members={self.total_members()}>"
        )


class BlockOp:
    """One bound ±1 membership op, batchable by the engine.

    Calling the op performs exactly ``block.join(channel, 1)`` (or
    ``leave``) — the per-event fallback path. The two extra attributes
    are the batch protocol the engine's clean-slot dispatcher speaks:
    ``batch_group`` names the state this op touches (one group per
    (block, channel)) and ``batch_delta`` its member-count delta, so a
    whole wheel slot of these ops folds into one aggregate update per
    group when the group admits it (see
    :meth:`BlockChannelGroup.can_batch`).
    """

    __slots__ = ("batch_group", "batch_delta")

    def __init__(self, group: "BlockChannelGroup", delta: int) -> None:
        self.batch_group = group
        self.batch_delta = delta

    def __call__(self) -> None:
        group = self.batch_group
        if self.batch_delta > 0:
            group.block.join(group.channel)
        else:
            group.block.leave(group.channel)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "join" if self.batch_delta > 0 else "leave"
        group = self.batch_group
        return f"<BlockOp {kind} {group.block.name!r}/{group.channel}>"


class BlockChannelGroup:
    """Batch-application target for one (block, channel) pair.

    The engine hands a clean wheel slot's ops to their groups as
    aggregates; each group decides *admission* (is folding this batch
    into one arithmetic update indistinguishable from per-event
    dispatch?) and, on an all-groups-yes, applies the fold.

    Admission logic (:meth:`can_batch`) is deliberately conservative —
    it requires the regime where every individual op provably takes the
    agent's O(1) TREE_ONLY fast path: the channel is grafted with a
    live block record whose count matches the block's own view, and
    even the worst-case ordering (all leaves first) keeps the count
    ≥ 1, so no op in the batch could trigger a 0↔positive transition,
    tree graft/prune, FIB sync, or upstream Count message. Under those
    preconditions N sequential fast-path updates and one arithmetic
    fold leave byte-identical protocol state: final count is
    ``start + Σdelta``, ``updated_at`` is the last op's time, and the
    fast-update/convergence tallies advance by N.
    """

    __slots__ = ("block", "channel", "_record")

    def __init__(self, block: SubscriberBlock, channel: Channel) -> None:
        self.block = block
        self.channel = channel
        self._record = None

    def can_batch(self, drops: int) -> bool:
        """Whether a batch with ``drops`` total leaves (and any number
        of joins) is admissible. Side-effect-free apart from caching the
        downstream record for :meth:`run_batch`."""
        block = self.block
        agent = block.agent
        if agent.propagation is not CountPropagation.TREE_ONLY:
            return False
        state = agent.channels.get(self.channel)
        if state is None:
            return False
        record = state.downstream.get(block.pseudo)
        if record is None:
            return False
        count = record.count
        if count <= 0 or count != block.members.get(self.channel, 0):
            return False
        if count - drops < 1:
            return False
        self._record = record
        return True

    def run_batch(self, delta_sum: int, n_ops: int, t_last: float) -> None:
        """Apply an admitted batch: one arithmetic update standing in
        for ``n_ops`` sequential fast-path ops ending at ``t_last``."""
        record = self._record
        self._record = None
        block = self.block
        agent = block.agent
        channel = self.channel
        agent.members_changing(channel)
        new = record.count + delta_sum
        block.members[channel] = new
        record.count = new
        record.updated_at = t_last
        agent.block_fast_updates += n_ops
        if agent.obs is not None:
            agent.obs.state_changed(n_ops)
