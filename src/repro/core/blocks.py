"""Aggregated edge-subscriber blocks.

EXPRESS's scaling premise (§2, §5) is that routers never need
per-receiver state — "the per-channel subscriber count for each
interface" is the whole of it, and counts aggregate hop by hop. A
:class:`SubscriberBlock` applies that premise to the *simulation
substrate* itself: N leaf receivers behind one edge router are modelled
as a single counted entity instead of N :class:`~repro.netsim.node.Node`
objects with N sets of timers and N delivery events.

* **Joins/leaves** adjust the block's member count for a channel and
  surface at the edge router as one downstream record under a
  ``__block__:`` pseudo-neighbor (the same mechanism as the ``LOCAL``
  record for the router's own subscriptions). The router emits exactly
  the hop-by-hop ``Count`` deltas the paper prescribes — one message
  per 0↔positive transition in TREE_ONLY mode, one per change in
  ON_CHANGE — regardless of N.
* **UDP-mode soft state** is refreshed by one sampled
  :class:`~repro.netsim.engine.PeriodicTask` per block instead of one
  timer per subscriber; if the block stops refreshing (e.g. it is
  stopped), its records age out through the agent's ordinary
  ``UDP_ROBUSTNESS × UDP_QUERY_INTERVAL`` expiry horizon.
* **Final-hop delivery** is accounted arithmetically — the forwarder
  adds ``members`` to the delivery counters per packet instead of
  fanning out N link events (see ``ExpressForwarder._deliver_local``).

Blocks are for *open* channels: a keyed (authenticated) subscription
needs a per-receiver key check, which is exactly the state this
abstraction elides. ``tests/properties/test_block_equivalence.py`` pins
that a block of N produces the same upstream aggregate state as N
individual subscribers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.channel import Channel
from repro.core.ecmp.state import BLOCK_PREFIX
from repro.errors import ChannelError
from repro.netsim.engine import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ecmp.protocol import EcmpAgent


class SubscriberBlock:
    """N leaf receivers behind one edge router, as one counted entity.

    Created via :meth:`repro.core.network.ExpressNetwork.subscriber_block`
    (which also attaches it to the edge router's agent), or directly::

        block = SubscriberBlock(agent, "stub3")
        agent.attach_block(block)
        block.join(channel, 50_000)

    ``members`` maps channel -> current member count; the delivery
    counters (``packets_seen``/``deliveries``/``bytes_delivered``) are
    cumulative across channels.
    """

    __slots__ = (
        "agent",
        "name",
        "pseudo",
        "udp",
        "members",
        "packets_seen",
        "deliveries",
        "bytes_delivered",
        "_refresh_task",
    )

    def __init__(self, agent: "EcmpAgent", name: str, udp: bool = False) -> None:
        self.agent = agent
        self.name = name
        #: Downstream-record key at the edge router's agent. Like
        #: ``LOCAL``, it resolves to no peer node, so it can never leak
        #: onto the wire or into the FIB's outgoing bitmap.
        self.pseudo = BLOCK_PREFIX + name
        self.udp = udp
        self.members: dict[Channel, int] = {}
        self.packets_seen = 0
        self.deliveries = 0
        self.bytes_delivered = 0
        self._refresh_task: Optional[PeriodicTask] = None

    @property
    def edge_router(self) -> str:
        return self.agent.node.name

    def join(self, channel: Channel, n: int = 1) -> int:
        """Add ``n`` members to the block's count for ``channel``;
        returns the new count. One aggregate Count delta goes upstream
        per the agent's propagation mode, not one per member."""
        if n <= 0:
            raise ChannelError(f"block join needs n >= 1, got {n}")
        new = self.members.get(channel, 0) + n
        self.members[channel] = new
        self.agent.block_adjust(channel, self, new)
        return new

    def leave(self, channel: Channel, n: int = 1) -> int:
        """Remove ``n`` members (clamped at zero); returns the new
        count. Reaching zero prunes this block from the channel's tree
        exactly like the last individual unsubscribe would."""
        if n <= 0:
            raise ChannelError(f"block leave needs n >= 1, got {n}")
        current = self.members.get(channel, 0)
        new = current - n
        if new <= 0:
            new = 0
            self.members.pop(channel, None)
        else:
            self.members[channel] = new
        if new != current:
            self.agent.block_adjust(channel, self, new)
        return new

    def count(self, channel: Channel) -> int:
        return self.members.get(channel, 0)

    def total_members(self) -> int:
        return sum(self.members.values())

    # -- soft state (UDP mode) ---------------------------------------------

    def start_refresh(self, interval: float, jitter: float = 0.0) -> None:
        """Start the block's single sampled refresh timer (UDP-mode
        blocks only; called by ``EcmpAgent.attach_block``)."""
        if self._refresh_task is not None:
            return
        self._refresh_task = PeriodicTask(
            self.agent.sim,
            interval,
            self._refresh,
            name="block-refresh",
            jitter=jitter,
        )
        self._refresh_task.start()

    def _refresh(self) -> None:
        """Touch every member record so the agent's UDP expiry horizon
        sees the whole block as alive — the per-block analogue of N
        individual IGMP-style report timers."""
        now = self.agent.sim.now
        for channel in self.members:
            state = self.agent.channels.get(channel)
            if state is None:
                continue
            record = state.downstream.get(self.pseudo)
            if record is not None:
                record.updated_at = now

    def stop(self) -> None:
        if self._refresh_task is not None:
            self._refresh_task.stop()
            self._refresh_task = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SubscriberBlock {self.name!r} at {self.edge_router}"
            f" members={self.total_members()}>"
        )
