"""In-flight CountQuery aggregation (§3.1).

"The receiving router creates a record for this query for each
downstream neighbor on the specified channel, decrements the timeout
value by a small multiple of the measured round-trip time to its
upstream neighbor and forwards the request to each downstream neighbor.
... Once Counts are received from all neighbors, or after the timeout
specified in the original query, the counts are summed and the total is
sent upstream in a Count reply."

:class:`PendingQuery` is that record set for one (channel, countId)
query at one node; :class:`QueryResult` is the source-side handle an
application polls or waits on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.channel import Channel

#: "decrements the timeout value by a small multiple of the measured
#: round-trip time" — the multiple we use.
TIMEOUT_RTT_MULTIPLE = 2.0
#: Never forward a query with less than this much time left.
MIN_FORWARD_TIMEOUT = 1e-3


def decrement_timeout(timeout: float, upstream_rtt: float) -> float:
    """Per-hop timeout adjustment so children report before parents."""
    return max(timeout - TIMEOUT_RTT_MULTIPLE * upstream_rtt, MIN_FORWARD_TIMEOUT)


@dataclass
class PendingQuery:
    """One node's record of an in-flight CountQuery.

    ``origin`` is the neighbor the query came from; None when this node
    originated it (source or any on-tree router, §3.1).
    """

    channel: Channel
    count_id: int
    deadline: float
    origin: Optional[str]
    outstanding: set[str] = field(default_factory=set)
    received_sum: int = 0
    local_contribution: int = 0
    replies: int = 0
    completed: bool = False
    callback: Optional[Callable[[int, bool], None]] = None
    timeout_event: Optional[object] = None  # netsim Event
    #: Observability span kept open while the query is outstanding
    #: (a :class:`repro.obs.tracing.Span`; None when tracing is off).
    #: Downstream replies are folded in as span events, and the final
    #: aggregate Count sent upstream is parented to this span, so the
    #: whole fan-out/aggregation reconstructs as one tree.
    span: Optional[object] = None

    def record_reply(self, neighbor: str, count: int) -> bool:
        """Fold in one downstream Count; True if it was expected."""
        if neighbor not in self.outstanding:
            return False
        self.outstanding.discard(neighbor)
        self.received_sum += count
        self.replies += 1
        return True

    def is_complete(self) -> bool:
        return not self.outstanding

    def total(self) -> int:
        return self.received_sum + self.local_contribution


class QueryResult:
    """The caller-facing handle for a locally-originated CountQuery.

    ``count`` is best-effort (§2.1): if some subtree missed the
    deadline, ``partial`` is True and the count covers the subtrees
    that answered.
    """

    def __init__(self) -> None:
        self.count: Optional[int] = None
        self.partial = False
        self.completed_at: Optional[float] = None
        self._callbacks: list[Callable[["QueryResult"], None]] = []

    @property
    def done(self) -> bool:
        return self.count is not None

    def on_done(self, callback: Callable[["QueryResult"], None]) -> None:
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _resolve(self, count: int, partial: bool, now: float) -> None:
        self.count = count
        self.partial = partial
        self.completed_at = now
        for callback in self._callbacks:
            callback(self)
        self._callbacks.clear()
