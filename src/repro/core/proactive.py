"""Proactive counting (§6).

"For large, mostly-quiescent channels, the cost of periodically polling
all routers can be high. In this case, the network layer can
proactively maintain the count rather than requiring the source to
continually poll it." Receivers and routers push ``Count`` updates
upstream, unsolicited, whenever the local relative error exceeds a
time-decaying *error tolerance curve*.

The paper's curve family (Figure 7) has two parameters beyond the
maximum tolerated error: "τ controls the x-intercept — the maximum
delay until any change is transmitted upstream. α controls the rate of
decay without changing the maximum allowed error tolerance." We
implement the natural reading of the printed formula:

    e(dt) = clamp( -ln(dt / τ) / α ,  0,  e_max )

which is ``e_max``-clamped near dt = 0, decays at a rate set by α, and
crosses zero exactly at dt = τ — so *any* change is pushed upstream at
most τ seconds after it happens, and larger changes are pushed sooner.

The relative error at a node compares the current downstream sum
``c_cur`` with the count last advertised upstream ``c_adv``:

    e_rel = max( |Δ| / c_adv, |Δ| / c_cur )   (Δ = c_cur − c_adv)

with either denominator floored at 1 so a transition to or from zero is
always a full-scale (1.0) error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ProtocolError


@dataclass(frozen=True)
class ToleranceCurve:
    """The error tolerance curve of Figure 7.

    Parameters
    ----------
    e_max:
        Maximum tolerated relative error (the clamp near dt = 0).
    alpha:
        Decay rate; the paper simulates α = 4 (tight tracking) and
        α = 2.5 (≈2/3 the message cost, lags after bursts).
    tau:
        x-intercept: the maximum delay before any nonzero change is
        sent upstream. The paper's simulations use τ = 120.
    """

    e_max: float = 0.3
    alpha: float = 4.0
    tau: float = 120.0

    def __post_init__(self) -> None:
        if self.e_max <= 0:
            raise ProtocolError(f"e_max must be > 0, got {self.e_max}")
        if self.alpha <= 0:
            raise ProtocolError(f"alpha must be > 0, got {self.alpha}")
        if self.tau <= 0:
            raise ProtocolError(f"tau must be > 0, got {self.tau}")

    def tolerance(self, dt: float) -> float:
        """Maximum relative error tolerated ``dt`` seconds after the
        last upstream update. Monotonically non-increasing in ``dt``;
        zero for dt >= τ."""
        if dt <= 0:
            return self.e_max
        if dt >= self.tau:
            return 0.0
        ratio = dt / self.tau
        if ratio <= 0.0:  # subnormal dt underflowed the division
            return self.e_max
        return min(self.e_max, -math.log(ratio) / self.alpha)

    def deadline_for_error(self, error: float) -> float:
        """The dt at which the curve drops to ``error`` — i.e. how long
        a change of this relative size may be withheld. Inverse of
        :meth:`tolerance` on the decaying segment."""
        if error <= 0:
            return self.tau
        if error >= self.e_max:
            # Find where the clamp ends: tolerance(dt) == e_max until
            # dt = tau * exp(-alpha * e_max).
            return self.tau * math.exp(-self.alpha * self.e_max)
        return self.tau * math.exp(-self.alpha * error)


def relative_error(current: int, advertised: int) -> float:
    """The paper's e_rel = max(|Δ|/c_adv, |Δ|/c_cur), denominators
    floored at 1."""
    delta = abs(current - advertised)
    if delta == 0:
        return 0.0
    return max(delta / max(advertised, 1), delta / max(current, 1))


class ProactiveCounter:
    """Per-(node, channel, countId) proactive update state.

    The owner feeds it the current downstream sum via :meth:`observe`
    and asks :meth:`should_send` / :meth:`next_check_delay`; after
    actually sending upstream it calls :meth:`sent`.
    """

    def __init__(self, curve: ToleranceCurve, now: float = 0.0) -> None:
        self.curve = curve
        self.advertised = 0
        self.current = 0
        self.last_sent = now
        self.updates_sent = 0

    def observe(self, current: int) -> None:
        """Record the latest locally-aggregated count."""
        self.current = current

    def error(self) -> float:
        return relative_error(self.current, self.advertised)

    def should_send(self, now: float) -> bool:
        """True when the pending error exceeds the tolerance curve."""
        if self.current == self.advertised:
            return False
        return self.error() > self.curve.tolerance(now - self.last_sent)

    def next_check_delay(self, now: float) -> Optional[float]:
        """How long until the *current* pending error would cross the
        curve, or None if nothing is pending. Callers schedule a
        re-check at this delay (plus epsilon) to bound staleness by τ.
        """
        if self.current == self.advertised:
            return None
        deadline_dt = self.curve.deadline_for_error(self.error())
        elapsed = now - self.last_sent
        return max(deadline_dt - elapsed, 0.0)

    def sent(self, now: float) -> int:
        """Mark the current value as advertised; returns it."""
        self.advertised = self.current
        self.last_sent = now
        self.updates_sent += 1
        return self.advertised
