"""Due-deadline ring for coalesced UDP soft-state refresh.

The legacy ``_do_udp_refresh_tick`` walked every channel record on
every tick to find the few UDP-mode records actually due to expire —
O(total state) per tick, the §5.3 cost the soft-state design is
supposed to avoid. This ring applies the wheel-bucket idiom from
:mod:`repro.netsim.engine` to the refresh scan: entries are hashed
into coarse time buckets by expiry deadline, and a tick pops only the
buckets whose window has fully passed.

Deadlines are *lazy*: a record's ``updated_at`` is bumped on every
refresh response without touching the ring. When an entry's bucket
comes due, the caller revalidates against the live record — if the
record was refreshed meanwhile, the entry is simply rescheduled at its
new deadline. Because a bucket's start is never later than any
deadline hashed into it, an entry is always examined no later than the
tick on which the full-table scan would have expired it, so expiry
timing is identical to the scan (the equivalence suite pins this); a
refreshed entry costs at most one extra examination per refresh
interval instead of one per record per tick.
"""

from __future__ import annotations

from typing import Hashable, Iterator


class RefreshRing:
    """Sparse bucket ring of (channel, neighbor) refresh deadlines.

    ``granularity`` is the refresh tick interval: bucket ``b`` covers
    deadlines in ``[b*g, (b+1)*g)``, and :meth:`due` pops every bucket
    whose window starts strictly before ``now``. Entries are deduped —
    an entry lives in at most one bucket, tracked membership in a set;
    :meth:`discard` is lazy (the bucket slot is skipped when popped).

    Popped-but-undispositioned keys are staged in ``_pending`` rather
    than handed to the generator's stack alone: if a :meth:`due`
    iteration is abandoned partway (an exception, a crash injected
    mid-tick, a clock jump straddling the deadline), the keys already
    popped from their buckets are *not* lost — the next :meth:`due`
    call re-yields them, and :meth:`rebuild` re-buckets them. Without
    the staging area an abandoned iteration would strand keys tracked
    in ``_entries`` but resident in no bucket: dead entries that never
    expire and block :meth:`add` from ever re-arming the key.
    """

    __slots__ = ("granularity", "_buckets", "_entries", "_pending")

    def __init__(self, granularity: float) -> None:
        if granularity <= 0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        self.granularity = granularity
        self._buckets: dict[int, list] = {}
        self._entries: set = set()
        #: Keys popped by :meth:`due` awaiting a discard/reschedule
        #: disposition. A dict (insertion-ordered) so the re-yield
        #: order after an abandoned iteration is deterministic.
        self._pending: dict = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def _bucket_of(self, deadline: float) -> int:
        return int(deadline // self.granularity)

    def add(self, key: Hashable, deadline: float) -> bool:
        """Track ``key`` with ``deadline``; False if already tracked
        (the existing entry stays — lazy revalidation will catch the
        moved deadline when its bucket comes due)."""
        if key in self._entries:
            return False
        self._entries.add(key)
        self._buckets.setdefault(self._bucket_of(deadline), []).append(key)
        return True

    def reschedule(self, key: Hashable, deadline: float) -> None:
        """Re-bucket a key just popped by :meth:`due` (still tracked)."""
        self._pending.pop(key, None)
        self._buckets.setdefault(self._bucket_of(deadline), []).append(key)

    def discard(self, key: Hashable) -> None:
        """Stop tracking ``key``; its bucket slot is skipped lazily."""
        self._entries.discard(key)
        self._pending.pop(key, None)

    def due(self, now: float) -> Iterator[Hashable]:
        """Pop and yield every tracked entry whose bucket window starts
        before ``now``, plus any entry popped by an earlier, abandoned
        iteration that never received a disposition. The caller must
        either :meth:`discard` or :meth:`reschedule` each yielded key;
        keys are staged in ``_pending`` until then, so an abandoned
        iteration loses nothing."""
        if self._buckets:
            granularity = self.granularity
            entries = self._entries
            pending = self._pending
            for bucket in sorted(self._buckets):
                if bucket * granularity >= now:
                    break
                for key in self._buckets.pop(bucket):
                    if key in entries:
                        pending[key] = None
        for key in list(self._pending):
            # Re-check per yield: the caller's disposition of an
            # earlier key may have discarded this one.
            if key in self._pending and key in self._entries:
                yield key

    def rebuild(self, granularity: float, deadline_of) -> None:
        """Re-bucket every tracked entry under a new ``granularity``
        (used when the refresh interval changes, and by crash/restart
        recovery to re-arm entries stranded mid-tick);
        ``deadline_of(key)`` supplies each entry's current deadline."""
        if granularity <= 0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        self.granularity = granularity
        keys = [key for keys in self._buckets.values() for key in keys]
        keys.extend(self._pending)
        self._buckets = {}
        self._pending = {}
        seen = set()
        for key in keys:
            if key in self._entries and key not in seen:
                seen.add(key)
                self._buckets.setdefault(
                    self._bucket_of(deadline_of(key)), []
                ).append(key)
