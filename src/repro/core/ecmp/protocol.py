"""The ECMP state machine (§3).

One :class:`EcmpAgent` runs on every EXPRESS-capable node — routers and
hosts alike. The paper's insight that "distribution tree construction
for a single source is a restricted case of counting the subscribers in
each subtree" shows up directly: a host's own subscription is just a
downstream record under the pseudo-neighbor ``LOCAL``, and the same
Count-handling path maintains the tree whether the count came from a
router, a host, or the local application.

Protocol clarifications this implementation pins down (the paper leaves
them open; see DESIGN.md §4):

* **Verdicts.** Every *join* Count (a 0→positive transition, or any
  Count carrying a key) receives exactly one ``CountResponse`` verdict
  from its immediate upstream: OK or INVALID_AUTHENTICATOR. A router
  that terminates the join locally (it knows the key, it is the
  always-authoritative source, or it absorbs a keyless join into an
  existing tree) answers at once; otherwise it forwards the join,
  records a :class:`VerdictEntry` with rollback state, and relays the
  verdict when its own upstream answers. Entries resolve FIFO per
  channel, matching TCP-mode ordering — the paper itself points
  authenticated channels at TCP-mode core routers.
* **Optimism.** Keyless joins are accepted optimistically (forwarding
  state installs immediately) and rolled back if a later verdict denies
  them; keyed joins needing upstream validation install tree state but
  *not* forwarding state until validated, so no data ever flows to a
  subscriber whose key fails.
* **Timeout decrement.** "A small multiple of the measured round-trip
  time to its upstream neighbor" is 2× the RTT; in the simulator the
  RTT estimate is twice the link's propagation delay (a real
  implementation would measure it from keepalives).
* **Concurrent queries.** The wire format identifies a query by
  (channel, countId); a second query for the same pair restarts the
  first (the paper sizes state for "2 counts outstanding at any time on
  a channel" — two *different* countIds).
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.channel import Channel, lookup_channel
from repro.core.counting import (
    MIN_FORWARD_TIMEOUT,
    PendingQuery,
    QueryResult,
    decrement_timeout,
)
from repro.core.ecmp.countids import (
    ALL_CHANNELS_ID,
    NEIGHBORS_ID,
    SUBSCRIBER_ID,
    propagates_to_hosts,
)
from repro.core.ecmp.messages import (
    Count,
    CountQuery,
    CountResponse,
    CountStatus,
    EcmpBatch,
    EcmpMessage,
    decode_message,
    encode_message,
)
from repro.core.ecmp.refresh import RefreshRing
from repro.core.ecmp.state import (
    COLUMNAR_DEFAULT,
    LOCAL,
    ChannelState,
    is_pseudo_neighbor,
)
from repro.core.keys import ChannelKey, KeyCache
from repro.core.proactive import ProactiveCounter, ToleranceCurve
from repro.errors import ChannelError, ProtocolError
from repro.inet.addr import parse_address
from repro.netsim.engine import PeriodicTask
from repro.netsim.node import Node, ProtocolAgent
from repro.netsim.packet import Packet
from repro.netsim.trace import Counter
from repro.obs.hooks import SPAN_HEADER
from repro.routing.fib import MulticastFib
from repro.routing.unicast import UnicastRouting

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.blocks import SubscriberBlock

PROTO_ECMP = "ecmp"

#: ``REPRO_REFRESH_RING=0`` is the coalesced-refresh escape hatch:
#: agents fall back to the legacy full-table refresh/general-query
#: scans (also the A/B baseline for the ``channel_surf`` benchmark).
REFRESH_RING_DEFAULT = os.environ.get("REPRO_REFRESH_RING", "1") != "0"

#: "All multicast ECMP datagrams are sent to a well-known ECMP address"
#: with "a well-known localhost value as the source" (§3.3 + footnote 5).
DISCOVERY_CHANNEL = lookup_channel(
    parse_address("127.0.0.1"), parse_address("232.0.0.255")
)

#: IPv4 header bytes added to every ECMP message on the wire.
IP_OVERHEAD = 20


class NeighborMode(Enum):
    """Per-neighbor ECMP transport (§3.2): "TCP is provided for core
    routers with few neighbors and many channels, whereas UDP is
    intended for use in edge routers"."""

    TCP = "tcp"
    UDP = "udp"


class CountPropagation(Enum):
    """When a router pushes subscriber-count changes upstream.

    * TREE_ONLY — only 0↔positive transitions propagate (the paper's
      base behaviour: a join "propagates hop-by-hop until it reaches
      the source or a router already on the distribution tree").
    * ON_CHANGE — every change propagates (exact counts everywhere;
      the costly strawman §6 improves on).
    * PROACTIVE — §6: changes propagate when they exceed the error
      tolerance curve.
    """

    TREE_ONLY = "tree-only"
    ON_CHANGE = "on-change"
    PROACTIVE = "proactive"


@dataclass
class _QueuedRecord:
    """One pending message in a neighbor's dirty-channel queue."""

    message: EcmpMessage
    #: Pinned records occupy their own slot in the peer's processing
    #: order (joins awaiting verdicts, CountResponses); later writes for
    #: the same (channel, countId) append instead of replacing them.
    pinned: bool
    #: Span context captured at enqueue time (None when tracing is off):
    #: causality is established when the protocol *decides* to send, not
    #: when the flush timer fires.
    span_ctx: Optional[object] = None


class DirtyChannelQueue:
    """Coalesced pending sends toward one TCP-mode neighbor.

    Non-pinned messages are last-writer-wins per ``(type, channel,
    countId)`` — a refresh superseded before the flush never touches the
    wire. FIFO order of first enqueue is preserved, which is what keeps
    the verdict queues of both ends aligned (§3.2's TCP ordering).
    """

    __slots__ = ("records", "_latest")

    def __init__(self) -> None:
        self.records: list[_QueuedRecord] = []
        self._latest: dict = {}

    def __len__(self) -> int:
        return len(self.records)

    def enqueue(
        self, message: EcmpMessage, pinned: bool, span_ctx: Optional[object] = None
    ) -> bool:
        """Add (or merge) one message; True if it absorbed an earlier
        queued message that will now never hit the wire."""
        key = (type(message).__name__, message.channel, message.count_id)
        index = self._latest.get(key)
        if index is not None and not pinned and not self.records[index].pinned:
            self.records[index] = _QueuedRecord(message, pinned, span_ctx)
            return True
        self._latest[key] = len(self.records)
        self.records.append(_QueuedRecord(message, pinned, span_ctx))
        return False


@dataclass
class VerdictEntry:
    """One forwarded join awaiting its upstream verdict, with enough
    prior state to roll the join back if it is denied."""

    neighbor: str
    prior_count: int
    prior_validated: bool
    presented_key: Optional[ChannelKey]
    prior_advertised: int = 0
    #: Count the joining downstream advertised; the denied join's
    #: contribution is ``joined_count - prior_count``, subtracted (not
    #: snapshot-restored) on rollback so increments that arrived while
    #: the verdict was in flight survive.
    joined_count: int = 0
    #: Total this node sent upstream alongside this entry; mirrors the
    #: delta the upstream will subtract from its record of us.
    sent_count: int = 0


@dataclass
class SubscriptionHandle:
    """A host-side subscription returned by :meth:`EcmpAgent.new_subscription`.

    ``status`` is "pending" (keyed, awaiting verdict), "active", or
    "denied" — the paper's ``result`` out-parameter, asynchronous here.
    """

    channel: Channel
    status: str = "active"
    key: Optional[ChannelKey] = None
    on_data: Optional[Callable[[Packet], None]] = None
    on_status: Optional[Callable[["SubscriptionHandle"], None]] = None
    packets_received: int = 0
    bytes_received: int = 0

    def _set_status(self, status: str) -> None:
        self.status = status
        if self.on_status is not None:
            self.on_status(self)


class EcmpAgent(ProtocolAgent):
    """ECMP on one node (router or host).

    Parameters
    ----------
    node, routing, fib:
        The node this agent runs on, the shared unicast routing
        substrate, and the node's multicast FIB.
    role:
        "router" or "host"; hosts answer application countIds and never
        relay data, routers do the reverse.
    propagation:
        Count propagation policy for subscriber counts (see
        :class:`CountPropagation`).
    default_mode:
        Transport mode assumed for neighbors without an explicit
        :meth:`set_neighbor_mode` call.
    proactive_curve:
        Tolerance curve used when ``propagation`` is PROACTIVE (or when
        enabling proactive counting locally).
    obs:
        Optional :class:`repro.obs.Observability`. When set, the agent's
        ``stats`` bag is backed by the shared metrics registry
        (``ecmp_events_total{node,event}``), every message tx/rx is
        counted per channel (``ecmp_messages_total``), and every ECMP
        message carries a trace/span id so control-plane causality
        (RPF join propagation, CountQuery fan-out/aggregation) can be
        reconstructed from the tracer. When None (the default) the hot
        paths take the uninstrumented branch.
    """

    UDP_QUERY_INTERVAL = 60.0
    UDP_ROBUSTNESS = 2
    KEEPALIVE_INTERVAL = 30.0
    KEEPALIVE_MISSES = 3
    HYSTERESIS = 5.0
    #: Nagle-style coalescing window for TCP-mode neighbor sessions: a
    #: non-urgent message waits at most this long for company before the
    #: dirty-channel queue is flushed as one frame.
    BATCH_FLUSH_INTERVAL = 0.05
    #: Queue-size watermark: flush immediately once this many records
    #: are pending toward one neighbor (just under the ~82 framed
    #: unauthenticated Counts that fit a 1480-byte segment, §5.3).
    BATCH_MAX_RECORDS = 64

    def __init__(
        self,
        node: Node,
        routing: UnicastRouting,
        fib: MulticastFib,
        role: str = "router",
        propagation: CountPropagation = CountPropagation.TREE_ONLY,
        default_mode: NeighborMode = NeighborMode.TCP,
        proactive_curve: Optional[ToleranceCurve] = None,
        wire_format: bool = False,
        batching: bool = True,
        obs=None,
        columnar: Optional[bool] = None,
        refresh_ring: Optional[bool] = None,
    ) -> None:
        super().__init__(node)
        if role not in ("router", "host"):
            raise ProtocolError(f"role must be 'router' or 'host', got {role!r}")
        #: When True, every ECMP message is serialized to its real wire
        #: bytes on send and parsed on receive (slower; exercises the
        #: codecs end-to-end). Both ends of a link must agree, which the
        #: network facade guarantees by setting it uniformly.
        self.wire_format = wire_format
        #: When True (the default), messages toward TCP-mode neighbors
        #: go through a per-neighbor dirty-channel queue and are flushed
        #: as one MSG_BATCH frame (see docs/ecmp-wire.md). UDP-mode
        #: neighbors always take the unbatched per-datagram path.
        self.batching = batching
        self.routing = routing
        self.fib = fib
        self.role = role
        self.propagation = propagation
        #: Same-sign block count rewrites that took the O(1) fast path
        #: (plain attribute, not a Counter: the fast path is hot enough
        #: at bench scale that even a dict increment shows up).
        self.block_fast_updates = 0
        self.default_mode = default_mode
        self.proactive_curve = proactive_curve or ToleranceCurve()
        #: Record backend for this agent's channel tables (columnar
        #: StateBank rows vs the legacy per-record dataclass); None
        #: defers to the ``REPRO_COLUMNAR`` process default.
        self.columnar = COLUMNAR_DEFAULT if columnar is None else columnar
        #: Coalesced soft-state refresh (due-deadline ring + upstream
        #: index) vs the legacy full-table scans; None defers to the
        #: ``REPRO_REFRESH_RING`` process default.
        self.refresh_ring_enabled = (
            REFRESH_RING_DEFAULT if refresh_ring is None else refresh_ring
        )
        self.keys = KeyCache()
        self.channels: dict[Channel, ChannelState] = {}
        self.subscriptions: dict[Channel, SubscriptionHandle] = {}
        self.pending_queries: dict[tuple[Channel, int], PendingQuery] = {}
        self.pending_verdicts: dict[Channel, deque] = {}
        self.count_responders: dict[tuple[Channel, int], Callable[[], int]] = {}
        self.neighbor_modes: dict[str, NeighborMode] = {}
        self.neighbor_last_heard: dict[str, float] = {}
        #: Aggregated subscriber blocks attached at this (edge) router,
        #: keyed by pseudo-neighbor name (see repro.core.blocks), plus a
        #: per-channel list view for the forwarder's arithmetic
        #: final-hop delivery.
        self.blocks: dict[str, "SubscriberBlock"] = {}
        self.channel_blocks: dict[Channel, list] = {}
        #: Bumped before every block-membership mutation (join/leave/
        #: batch); the forwarder's vectorized delivery views compare it
        #: to decide whether their frozen member vectors are stale.
        self.blocks_version = 0
        #: Per-channel :class:`repro.core.accounting.DeliveryView`
        #: registered by the forwarder so membership mutations can flush
        #: pending delivery tallies accumulated under the old counts.
        self._delivery_views: dict[Channel, object] = {}
        self.obs = obs
        if obs is None:
            self.stats = Counter()
            self._m_messages = self._m_bytes = None
            self._m_wire_bytes = self._m_coalesced = self._m_flushes = None
        else:
            registry = obs.registry
            self.stats = registry.counter_bag(
                "ecmp_events_total", "ECMP protocol events by node", node=node.name
            )
            self._m_messages = registry.counter(
                "ecmp_messages_total",
                "ECMP messages by node, direction, message type, and channel",
                ("node", "direction", "type", "channel"),
            )
            self._m_bytes = registry.counter(
                "ecmp_bytes_total",
                "Logical ECMP control bytes (per message, pre-coalescing) "
                "by node and direction",
                ("node", "direction"),
            )
            self._m_wire_bytes = registry.counter(
                "ecmp_bytes_on_wire",
                "Actual ECMP bytes put on (or taken off) the wire per "
                "node and direction, batch framing included",
                ("node", "direction"),
            )
            self._m_coalesced = registry.counter(
                "ecmp_msgs_coalesced",
                "ECMP messages that did not cost their own wire packet "
                "(absorbed by last-writer-wins or carried in a batch frame)",
                ("node",),
            )
            self._m_flushes = registry.counter(
                "ecmp_batch_flushes",
                "Dirty-channel queue flushes by node and trigger",
                ("node", "trigger"),
            )
        #: Per-TCP-neighbor dirty-channel queues and their flush timers.
        self._batch_queues: dict[str, DirtyChannelQueue] = {}
        self._flush_events: dict[str, object] = {}
        self._proactive_checks: dict[tuple[Channel, int], object] = {}
        #: neighbor -> {channel: None}: channels with a live UDP-mode
        #: record from that *real* neighbor — the general-query fan-out
        #: set, maintained incrementally so the refresh tick never
        #: rebuilds it by scanning every record.
        self._udp_channels: dict[str, dict[Channel, None]] = {}
        #: upstream name -> {channel: None}: channels routed *via* that
        #: neighbor (the general-query response set; insertion-ordered
        #: so the indexed path replays the scan's channel order).
        self._by_upstream: dict[str, dict[Channel, None]] = {}
        #: Due-deadline ring over (channel, neighbor) UDP records;
        #: router-role only (hosts run no refresh tick).
        self._refresh_ring: Optional[RefreshRing] = None
        if role == "router":
            self._refresh_ring = RefreshRing(self.UDP_QUERY_INTERVAL)
        self._udp_query_task: Optional[PeriodicTask] = None
        self._keepalive_task: Optional[PeriodicTask] = None
        self._rehome_scheduled = False
        #: Set by the network facade; called when this agent sees a
        #: local link flap so routing can recompute and trees re-home.
        self.topology_change_hook: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # lifecycle / wiring
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.role == "router":
            ring = self._refresh_ring
            if ring is not None and ring.granularity != self.UDP_QUERY_INTERVAL:
                # The refresh interval was overridden after construction
                # (tests and benches patch it per instance): re-bucket so
                # the ring's windows match the tick cadence.
                ring.rebuild(self.UDP_QUERY_INTERVAL, self._refresh_deadline)
            self._udp_query_task = PeriodicTask(
                self.sim, self.UDP_QUERY_INTERVAL, self._udp_refresh_tick, name="ecmp-udpq"
            )
            self._udp_query_task.start()
        self._keepalive_task = PeriodicTask(
            self.sim, self.KEEPALIVE_INTERVAL, self._keepalive_tick, name="ecmp-ka"
        )
        self._keepalive_task.start()

    def stop(self) -> None:
        for task in (self._udp_query_task, self._keepalive_task):
            if task is not None:
                task.stop()
        for block in self.blocks.values():
            block.stop()
        for event in self._flush_events.values():
            event.cancel()
        self._flush_events.clear()
        self._batch_queues.clear()

    def lose_state(self) -> None:
        """Crash semantics: drop every piece of soft protocol state.

        Used by the fault-injection subsystem
        (:mod:`repro.faults.injectors`) to model a router crash: all
        channel tables, subscriptions, pending queries/verdicts,
        aggregated block membership, refresh bookkeeping, and FIB
        entries vanish; only configuration (role, neighbor modes,
        propagation policy) and the cumulative observability counters
        survive — the counters are the measurement harness, not
        protocol state. Call :meth:`stop` first or let this do it;
        afterwards :meth:`start` models the reboot, and neighbors'
        keepalive misses / ``_neighbor_recovered`` resync storms
        rebuild the state through the real protocol.
        """
        self.stop()
        n_lost = sum(len(s.neighbors) for s in self.channels.values())
        self.channels.clear()
        self.subscriptions.clear()
        for pending in self.pending_queries.values():
            if pending.timeout_event is not None:
                pending.timeout_event.cancel()
        self.pending_queries.clear()
        self.pending_verdicts.clear()
        self.count_responders.clear()
        for event in self._proactive_checks.values():
            event.cancel()
        self._proactive_checks.clear()
        self.neighbor_last_heard.clear()
        self.blocks.clear()
        self.channel_blocks.clear()
        self.blocks_version += 1
        self._delivery_views.clear()
        self._udp_channels.clear()
        self._by_upstream.clear()
        self.keys = KeyCache()
        if self.role == "router":
            self._refresh_ring = RefreshRing(self.UDP_QUERY_INTERVAL)
        self._udp_query_task = None
        self._keepalive_task = None
        self._rehome_scheduled = False
        for source, dest in self.fib.channels():
            self.fib.remove(source, dest)
        if self.obs is not None and n_lost:
            self.obs.state_changed(n_lost)
        self.stats.incr("state_losses")

    def set_neighbor_mode(self, neighbor: str, mode: NeighborMode) -> None:
        """Configure TCP or UDP mode toward one neighbor (§3.2: "A
        router can select either TCP or UDP mode for ECMP on each
        interface")."""
        self.neighbor_modes[neighbor] = mode

    def mode_of(self, neighbor: str) -> NeighborMode:
        return self.neighbor_modes.get(neighbor, self.default_mode)

    def on_link_change(self, ifindex: int, up: bool) -> None:
        iface = self.node.interfaces[ifindex]
        peer = iface.link.other_end(self.node) if iface.link else None
        if peer is None:
            return
        if not up:
            # TCP-mode semantics: connection failure -> subtract counts.
            # Anything still queued toward the dead session is lost with
            # the connection; the reconnect resend covers it.
            self._drop_queue(peer.name)
            self._neighbor_failed(peer.name)
        else:
            self._neighbor_recovered(peer.name)
        if self.topology_change_hook is not None:
            self.topology_change_hook()

    # ------------------------------------------------------------------
    # service interface (§2.1)
    # ------------------------------------------------------------------

    def new_subscription(
        self,
        channel: Channel,
        key: Optional[ChannelKey] = None,
        on_data: Optional[Callable[[Packet], None]] = None,
        on_status: Optional[Callable[[SubscriptionHandle], None]] = None,
    ) -> SubscriptionHandle:
        """Subscribe this node to ``channel`` (§2.1 newSubscription)."""
        if channel in self.subscriptions:
            return self.subscriptions[channel]
        handle = SubscriptionHandle(
            channel=channel,
            status="pending" if key is not None else "active",
            key=key,
            on_data=on_data,
            on_status=on_status,
        )
        self.subscriptions[channel] = handle
        if self.obs is not None:
            with self.obs.tracer.span(
                "ecmp.subscribe", node=self.node.name, channel=channel,
                keyed=key is not None,
            ):
                self._apply_subscriber_count(channel, LOCAL, 1, key=key)
        else:
            self._apply_subscriber_count(channel, LOCAL, 1, key=key)
        # A keyless subscription to a channel this node *knows* is
        # authenticated is denied synchronously (or the source was
        # unknown/unreachable).
        if channel not in self.subscriptions and handle.status != "denied":
            handle._set_status("denied")
        return handle

    def delete_subscription(self, channel: Channel) -> bool:
        """Unsubscribe (§2.1 deleteSubscription); True if subscribed."""
        handle = self.subscriptions.pop(channel, None)
        if handle is None:
            return False
        if self.obs is not None:
            with self.obs.tracer.span(
                "ecmp.unsubscribe", node=self.node.name, channel=channel
            ):
                self._apply_subscriber_count(channel, LOCAL, 0)
        else:
            self._apply_subscriber_count(channel, LOCAL, 0)
        return True

    def channel_key(self, channel: Channel, key: ChannelKey) -> None:
        """§2.1 channelKey: "inform the network that channel is
        authenticated". Only the channel's source may call this."""
        if channel.source != self.node.address:
            raise ChannelError(f"{self.node.name} is not the source of {channel}")
        if self.obs is not None:
            with self.obs.tracer.span(
                "ecmp.channel_key", node=self.node.name, channel=channel
            ):
                self.keys.install_authoritative(channel, key)
        else:
            self.keys.install_authoritative(channel, key)

    def count_query(
        self,
        channel: Channel,
        count_id: int,
        timeout: float,
        callback: Optional[Callable[[int, bool], None]] = None,
    ) -> QueryResult:
        """Originate a CountQuery locally (§2.1 CountQuery; also §3.1's
        router-initiated query "without source cooperation").

        Returns a :class:`QueryResult` resolved with the best-effort
        count within ``timeout``.
        """
        result = QueryResult()

        def finish(total: int, partial: bool) -> None:
            result._resolve(total, partial, self.sim.now)
            if callback is not None:
                callback(total, partial)

        query = CountQuery(channel=channel, count_id=count_id, timeout=timeout)
        if self.obs is not None:
            tracer = self.obs.tracer
            root = tracer.start_span(
                "ecmp.count_query",
                node=self.node.name,
                channel=channel,
                count_id=count_id,
                timeout=timeout,
            )
            # The root stays open until the query finalizes (it becomes
            # the pending query's span); _finalize_query ends it.
            with tracer.activate(root):
                self._start_query(query, origin=None, callback=finish)
            if root.attrs.get("deferred") is None:
                tracer.end(root)
        else:
            self._start_query(query, origin=None, callback=finish)
        return result

    def enable_proactive(
        self, channel: Channel, count_id: int = SUBSCRIBER_ID, curve: Optional[ToleranceCurve] = None
    ) -> None:
        """§6: request proactive maintenance of a count; the request
        propagates to all routers in the channel's tree."""
        curve = curve or self.proactive_curve
        query = CountQuery(
            channel=channel, count_id=count_id, timeout=0.0, proactive=curve
        )
        if self.obs is not None:
            with self.obs.tracer.span(
                "ecmp.enable_proactive",
                node=self.node.name,
                channel=channel,
                count_id=count_id,
            ):
                self._handle_proactive_request(query, origin=None)
        else:
            self._handle_proactive_request(query, origin=None)

    def register_count_responder(
        self, channel: Channel, count_id: int, responder: Callable[[], int]
    ) -> None:
        """Register the application's answer to a countId (§2.2.1:
        application-defined votes; the subscriber "replies to a
        CountQuery request with count(...)")."""
        self.count_responders[(channel, count_id)] = responder

    def notify_count_changed(self, channel: Channel, count_id: int) -> None:
        """Tell ECMP an application-maintained count changed.

        Only meaningful when proactive counting (§6) is active for the
        (channel, countId): the agent re-reads the registered responder
        and pushes the change upstream per the tolerance curve. With no
        proactive state this is a no-op (polled queries always read the
        responder fresh).
        """
        state = self.channels.get(channel)
        if state is not None and count_id in state.proactive:
            self._proactive_evaluate(state, count_id)

    # ------------------------------------------------------------------
    # aggregated subscriber blocks (see repro.core.blocks)
    # ------------------------------------------------------------------

    def attach_block(self, block: "SubscriberBlock") -> None:
        """Register an aggregated subscriber block at this router. A
        UDP-mode block gets its single sampled refresh timer started
        here (jittered so co-located blocks desynchronize)."""
        if self.role != "router":
            raise ProtocolError("subscriber blocks attach to routers, not hosts")
        if block.pseudo in self.blocks:
            raise ProtocolError(f"duplicate block {block.name!r} on {self.node.name}")
        self.blocks[block.pseudo] = block
        if block.udp:
            block.start_refresh(
                self.UDP_QUERY_INTERVAL / 2, jitter=self.UDP_QUERY_INTERVAL / 10
            )

    def block_adjust(self, channel: Channel, block: "SubscriberBlock", count: int) -> None:
        """Apply a block membership change as the paper's counting
        semantics: 0↔positive transitions walk the full
        :meth:`_apply_subscriber_count` path (tree graft/prune, FIB
        sync, upstream Count), while a same-sign count change in
        TREE_ONLY mode takes an O(1) fast path that rewrites the stored
        count in place — the FIB does not depend on count magnitude and
        TREE_ONLY stays quiet while on-tree, so the full path would do
        no observable work. ON_CHANGE/PROACTIVE modes always take the
        full path (magnitude changes must propagate)."""
        state = self.channels.get(channel)
        record = state.downstream.get(block.pseudo) if state is not None else None
        if record is not None and 0 < count and 0 < record.count:
            # Same-sign change: neither channel_blocks transition below
            # can apply, so the membership index is untouched.
            if count == record.count:
                return
            if self.propagation is CountPropagation.TREE_ONLY:
                # Not folded into the stats bag: ``block_fast_updates``
                # is the fast path's own tally; add it to the bag's
                # ``count_update_events`` for a total update count.
                record.count = count
                record.updated_at = self.sim.now
                self.block_fast_updates += 1
                if self.obs is not None:
                    self.obs.state_changed()
                return
            self._apply_subscriber_count(channel, block.pseudo, count)
            return
        previous = record.count if record is not None else 0
        if count == previous:
            return
        if previous == 0 and count > 0:
            self.channel_blocks.setdefault(channel, []).append(block)
        elif count == 0 and previous > 0:
            entries = self.channel_blocks.get(channel)
            if entries is not None and block in entries:
                entries.remove(block)
                if not entries:
                    del self.channel_blocks[channel]
        self._apply_subscriber_count(channel, block.pseudo, count)

    def members_changing(self, channel: Channel) -> None:
        """Pre-mutation hook for block membership on ``channel``: flush
        any delivery view's pending tallies (they were accumulated under
        the *old* member counts, so they must be applied before those
        counts move) and invalidate the frozen member vectors."""
        self.blocks_version += 1
        view = self._delivery_views.get(channel)
        if view is not None:
            view.flush()

    def block_members(self, channel: Channel) -> int:
        """Total aggregated members across blocks for one channel."""
        return sum(b.members.get(channel, 0) for b in self.channel_blocks.get(channel, ()))

    # -- convenience inspection -------------------------------------------------

    def subscriber_count_estimate(self, channel: Channel) -> int:
        """This node's current aggregated subscriber count (exact only
        in ON_CHANGE mode or at quiescence; see CountQuery for polling)."""
        state = self.channels.get(channel)
        return state.total(validated_only=False) if state else 0

    def proactive_estimate(self, channel: Channel, count_id: int = SUBSCRIBER_ID) -> int:
        """The proactively-maintained aggregate for any countId, as
        currently known at this node (§6). For subscriberId this equals
        :meth:`subscriber_count_estimate`."""
        state = self.channels.get(channel)
        if state is None:
            return 0
        return self._proactive_total(state, count_id)

    def on_tree(self, channel: Channel) -> bool:
        return channel in self.channels

    # ------------------------------------------------------------------
    # packet plumbing
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet, ifindex: int) -> None:
        message = packet.headers.get("ecmp")
        if message is None and isinstance(packet.payload, bytes):
            try:
                message = decode_message(packet.payload)
            except Exception:
                self.stats.incr("undecodable_messages")
                return
        if message is None:
            return
        iface = self.node.interfaces[ifindex]
        peer = iface.link.other_end(self.node) if iface.link else None
        if peer is None:
            return
        from_name = peer.name
        self.neighbor_last_heard[from_name] = self.sim.now
        self.stats.incr("wire_recvs")
        self.stats.incr("bytes_on_wire_rx", packet.size)
        if self._m_wire_bytes is not None:
            self._m_wire_bytes.labels(node=self.node.name, direction="rx").inc(
                packet.size
            )
        span_ctx = packet.headers.get(SPAN_HEADER)
        if isinstance(message, EcmpBatch):
            self.stats.incr("batches_rx")
            self.stats.incr("batch_records_rx", len(message.messages))
            contexts = span_ctx if isinstance(span_ctx, list) else None
            for index, record in enumerate(message.messages):
                ctx = None
                if contexts is not None and index < len(contexts):
                    ctx = contexts[index]
                self._dispatch_message(record, from_name, ctx)
            return
        self._dispatch_message(message, from_name, span_ctx)

    def _dispatch_message(
        self, message: EcmpMessage, from_name: str, span_ctx
    ) -> None:
        """Route one decoded protocol message (possibly unpacked from a
        batch frame) to its handler, with per-message rx accounting."""
        if isinstance(message, Count):
            self.stats.incr("counts_rx")
            kind, handler = "count", self._handle_count
        elif isinstance(message, CountQuery):
            self.stats.incr("queries_rx")
            kind, handler = "query", self._handle_query
        elif isinstance(message, CountResponse):
            self.stats.incr("responses_rx")
            kind, handler = "response", self._handle_response
        else:
            return
        if self.obs is None:
            handler(message, from_name)
            return
        size = IP_OVERHEAD + message.wire_size()
        self._m_messages.labels(
            node=self.node.name,
            direction="rx",
            type=type(message).__name__,
            channel=str(message.channel),
        ).inc()
        self._m_bytes.labels(node=self.node.name, direction="rx").inc(size)
        self._handle_traced(message, from_name, kind, handler, span_ctx)

    def _handle_traced(
        self,
        message: EcmpMessage,
        from_name: str,
        kind: str,
        handler: Callable[[EcmpMessage, str], None],
        parent_ctx,
    ) -> None:
        """Run ``handler`` inside the right span.

        A Count consumed as a *reply* to a pending query does not open
        a span of its own — it is recorded as an event on the pending
        query's span (and runs inside it, so anything it triggers stays
        in the query's trace). That keeps a query trace's leaves equal
        to the subscribers that answered. Every other message opens a
        handling span parented to the context the message carried.
        """
        tracer = self.obs.tracer
        if isinstance(message, Count):
            pending = self.pending_queries.get((message.channel, message.count_id))
            if (
                pending is not None
                and from_name in pending.outstanding
                and pending.span is not None
            ):
                tracer.add_event(
                    pending.span, "reply", neighbor=from_name, count=message.count
                )
                with tracer.activate(pending.span):
                    handler(message, from_name)
                return
        parent = parent_ctx
        span = tracer.start_span(
            f"ecmp.{kind}",
            node=self.node.name,
            parent=parent,
            channel=message.channel,
            count_id=message.count_id,
            neighbor=from_name,
        )
        with tracer.activate(span):
            handler(message, from_name)
        if not span.attrs.get("deferred"):
            tracer.end(span)

    def _send_message(
        self,
        message: EcmpMessage,
        neighbor: str,
        urgent: Optional[bool] = None,
        pinned: Optional[bool] = None,
    ) -> None:
        """Send (or queue) one protocol message toward ``neighbor``.

        Logical per-message accounting (``msgs_tx``, ``bytes_tx``,
        ``ecmp_messages_total``) happens here regardless of batching;
        wire-level accounting happens in :meth:`_transmit` when a packet
        actually leaves. ``urgent``/``pinned`` override the defaults
        from :meth:`_batch_policy` (used by call sites that know more —
        joins are pinned, query replies are urgent).
        """
        peer = self.routing.topo.nodes.get(neighbor)
        if peer is None:
            return
        size = IP_OVERHEAD + message.wire_size()
        self.stats.incr("msgs_tx")
        self.stats.incr("bytes_tx", size)
        self.stats.incr(f"tx_{type(message).__name__.lower()}")
        span_ctx = None
        if self.obs is not None:
            current = self.obs.tracer.current
            if current is not None:
                # Causal context rides with the message: the span active
                # while the protocol decides to send becomes the parent
                # of the receiver's handling span — even if the wire
                # send happens later, from a flush event.
                span_ctx = current.context
            self._m_messages.labels(
                node=self.node.name,
                direction="tx",
                type=type(message).__name__,
                channel=str(message.channel),
            ).inc()
            self._m_bytes.labels(node=self.node.name, direction="tx").inc(size)
        if not self.batching or self.mode_of(neighbor) is not NeighborMode.TCP:
            # UDP-mode neighbors (and batching-off agents) keep the
            # one-datagram-per-message path.
            self._transmit(message, peer, contexts=(span_ctx,))
            return
        default_urgent, default_pinned = self._batch_policy(message)
        if urgent is None:
            urgent = default_urgent
        if pinned is None:
            pinned = default_pinned
        queue = self._batch_queues.get(neighbor)
        if queue is None:
            queue = self._batch_queues[neighbor] = DirtyChannelQueue()
        if queue.enqueue(message, pinned, span_ctx):
            # Last-writer-wins: the overwritten message never hits the wire.
            self.stats.incr("msgs_coalesced")
            if self._m_coalesced is not None:
                self._m_coalesced.labels(node=self.node.name).inc()
        if urgent:
            self._flush_neighbor(neighbor, trigger="urgent")
        elif len(queue) >= self.BATCH_MAX_RECORDS:
            self._flush_neighbor(neighbor, trigger="watermark")
        elif neighbor not in self._flush_events:
            self._flush_events[neighbor] = self.sim.schedule(
                self.BATCH_FLUSH_INTERVAL,
                lambda: self._flush_timer_fired(neighbor),
                name="ecmp-batch-flush",
            )

    def _batch_policy(self, message: EcmpMessage) -> tuple[bool, bool]:
        """Default ``(urgent, pinned)`` for one message.

        Urgent messages flush the whole queue immediately (they still
        share the frame with anything already pending, so ordering is
        preserved): CountQuery (a reply deadline is running),
        CountResponse rejections (the subscriber must learn of the
        denial now), and zero-count leaves (the upstream forwards data
        until the zero lands). CountResponses are always pinned — each
        one pops exactly one entry from the peer's verdict FIFO, so two
        may never merge. Keyed Counts are pinned because each presented
        key needs its own verdict.
        """
        if isinstance(message, CountQuery):
            return True, True
        if isinstance(message, CountResponse):
            return message.status is not CountStatus.OK, True
        if message.count_id == SUBSCRIBER_ID and message.count == 0:
            return True, True
        return False, message.key is not None

    def _transmit(
        self,
        message,
        peer: Node,
        contexts: tuple = (),
    ) -> None:
        """Put one wire packet (a single message or a batch frame) on
        the link toward ``peer``, with on-wire byte accounting."""
        size = IP_OVERHEAD + message.wire_size()
        packet = Packet(
            src=self.node.address,
            dst=peer.address,
            proto=PROTO_ECMP,
            size=size,
            created_at=self.sim.now,
        )
        if self.wire_format:
            packet.payload = encode_message(message)
        else:
            packet.headers["ecmp"] = message
        # TCP mode hides loss behind retransmission; model it as
        # loss-exempt delivery (delay still applies).
        packet.headers["reliable"] = self.mode_of(peer.name) is NeighborMode.TCP
        if isinstance(message, EcmpBatch):
            if any(ctx is not None for ctx in contexts):
                # One span context per record, aligned by index.
                packet.headers[SPAN_HEADER] = list(contexts)
        elif contexts and contexts[0] is not None:
            packet.headers[SPAN_HEADER] = contexts[0]
        self.stats.incr("wire_sends")
        self.stats.incr("bytes_on_wire", size)
        if self._m_wire_bytes is not None:
            self._m_wire_bytes.labels(node=self.node.name, direction="tx").inc(size)
        self.node.send_to_neighbor(packet, peer)

    def _flush_neighbor(self, neighbor: str, trigger: str = "timer") -> None:
        """Drain the dirty-channel queue toward ``neighbor`` as one wire
        send: a bare message when a single record is pending, a
        MSG_BATCH frame otherwise."""
        event = self._flush_events.pop(neighbor, None)
        if event is not None:
            event.cancel()
        queue = self._batch_queues.pop(neighbor, None)
        if queue is None or not queue.records:
            return
        peer = self.routing.topo.nodes.get(neighbor)
        if peer is None:
            return
        records = queue.records
        self.stats.incr("batch_flushes")
        if self._m_flushes is not None:
            self._m_flushes.labels(node=self.node.name, trigger=trigger).inc()
        if len(records) == 1:
            self._transmit(records[0].message, peer, contexts=(records[0].span_ctx,))
            return
        batch = EcmpBatch(messages=tuple(r.message for r in records))
        self.stats.incr("batch_records_tx", len(records))
        self.stats.incr("msgs_coalesced", len(records) - 1)
        if self._m_coalesced is not None:
            self._m_coalesced.labels(node=self.node.name).inc(len(records) - 1)
        self._transmit(batch, peer, contexts=tuple(r.span_ctx for r in records))

    def _flush_timer_fired(self, neighbor: str) -> None:
        self._flush_events.pop(neighbor, None)
        self._flush_neighbor(neighbor, trigger="timer")

    def _flush_all(self, trigger: str) -> None:
        for neighbor in list(self._batch_queues):
            self._flush_neighbor(neighbor, trigger=trigger)

    def _drop_queue(self, neighbor: str) -> None:
        event = self._flush_events.pop(neighbor, None)
        if event is not None:
            event.cancel()
        self._batch_queues.pop(neighbor, None)

    def _rtt_estimate(self, neighbor: str) -> float:
        peer = self.routing.topo.nodes.get(neighbor)
        if peer is None:
            return 0.0
        iface = self.node.interface_to(peer)
        if iface is None or iface.link is None:
            return 0.0
        return 2.0 * iface.link.delay

    # ------------------------------------------------------------------
    # subscriber counts: join / leave / update (§3.2)
    # ------------------------------------------------------------------

    def _handle_count(self, message: Count, from_name: str) -> None:
        channel, count_id = message.channel, message.count_id
        if count_id == NEIGHBORS_ID:
            return  # discovery replies refresh last_heard; nothing more
        if count_id == SUBSCRIBER_ID:
            # Tree maintenance always applies; a pending query may also
            # consume the same message as its reply (see module doc).
            pending = self.pending_queries.get((channel, count_id))
            if pending is not None and from_name in pending.outstanding:
                pending.record_reply(from_name, message.count)
                self._maybe_finalize(pending)
            self._apply_subscriber_count(
                channel, from_name, message.count, key=message.key
            )
            return
        pending = self.pending_queries.get((channel, count_id))
        if pending is not None and from_name in pending.outstanding:
            pending.record_reply(from_name, message.count)
            self._maybe_finalize(pending)
            return
        state = self.channels.get(channel)
        if state is not None and count_id in state.proactive:
            self._apply_proactive_value(state, count_id, from_name, message.count)
            return
        # §3.1: "A router can either acknowledge or reject a Count
        # message by sending a CountResponse indicating an unsupported
        # count" — a Count matching no query, no proactive state, and
        # no tree activity is rejected so the sender can stop.
        self.stats.incr("unexpected_counts")
        self._send_message(
            CountResponse(channel, count_id, CountStatus.UNSUPPORTED_COUNT), from_name
        )

    def _apply_subscriber_count(
        self,
        channel: Channel,
        from_name: str,
        count: int,
        key: Optional[ChannelKey] = None,
    ) -> None:
        state = self.channels.get(channel)
        previous = 0
        prior_validated = True
        if state is not None and from_name in state.downstream:
            record = state.downstream[from_name]
            previous, prior_validated = record.count, record.validated

        if count > 0 and previous == 0:
            self.stats.incr("subscribe_events")
        elif count == 0 and previous > 0:
            self.stats.incr("unsubscribe_events")
        elif count != previous:
            self.stats.incr("count_update_events")
        if count != previous and self.obs is not None:
            self.obs.state_changed()

        if count == 0:
            if state is None or from_name not in state.downstream:
                return
            # In-flight verdict entries for this neighbor stay queued:
            # the upstream response still arrives and must pop in order.
            was_udp = state.downstream[from_name].udp
            del state.downstream[from_name]
            self._untrack_record(channel, from_name)
            self._sync_fib(state)
            self._propagate(state)
            self._garbage_collect(state)
            if was_udp and from_name != LOCAL:
                # §3.2: a UDP-neighbor leave makes the upstream
                # "re-issue a CountQuery on that interface (like
                # IGMPv2)" in case other subscribers remain behind it.
                self._send_message(
                    CountQuery(
                        channel=channel,
                        count_id=SUBSCRIBER_ID,
                        timeout=self.UDP_QUERY_INTERVAL,
                    ),
                    from_name,
                )
            return

        is_join = previous == 0 or key is not None
        defer = False
        if is_join:
            verdict = self.keys.validate(channel, key) if self.keys.knows(channel) else None
            if verdict is False:
                self._deny(channel, from_name)
                return
            at_source = (
                self.routing.topo.node_by_address(channel.source) is self.node
            )
            # Accept locally when the key checked out, the join is
            # keyless (optimistic), or we are the always-authoritative
            # source (no installed key == open channel).
            defer = key is not None and verdict is None and not at_source

        if state is None:
            state = self._create_state(channel)
            if state is None:
                # Source unknown/unreachable: reject.
                if from_name != LOCAL:
                    self._send_message(
                        CountResponse(channel, SUBSCRIBER_ID, CountStatus.NO_SUCH_CHANNEL),
                        from_name,
                    )
                else:
                    self.subscriptions.pop(channel, None)
                return

        record = state.downstream.get(from_name)
        if record is None:
            record = state.downstream[from_name] = state.new_record()
        record.count = count
        record.updated_at = self.sim.now
        if from_name != LOCAL:
            block = self.blocks.get(from_name)
            if block is not None:
                record.udp = block.udp
            else:
                record.udp = self.mode_of(from_name) is NeighborMode.UDP
            self._track_udp_record(channel, from_name, record)

        entry = None
        if is_join:
            record.presented_key = key
            if defer:
                record.validated = False
                state.pending_key = key
            else:
                record.validated = True
            entry = VerdictEntry(
                neighbor=from_name,
                prior_count=previous,
                prior_validated=prior_validated,
                presented_key=key,
                joined_count=count,
            )

        self._sync_fib(state)
        forwarded = self._propagate(
            state, joining_key=key if defer else None, join_entry=entry
        )
        if is_join and not forwarded:
            # The join terminated here: this node's verdict is final.
            if from_name == LOCAL:
                self._activate_local(channel)
            else:
                self._send_message(
                    CountResponse(channel, SUBSCRIBER_ID, CountStatus.OK), from_name
                )

    def _create_state(self, channel: Channel) -> Optional[ChannelState]:
        upstream = self._upstream_name(channel)
        source_node = self.routing.topo.node_by_address(channel.source)
        if source_node is None:
            return None
        if source_node is not self.node and upstream is None:
            return None  # unreachable source
        state = ChannelState(
            channel=channel,
            upstream=upstream,
            created_at=self.sim.now,
            columnar=self.columnar,
        )
        state.upstream_changed_at = self.sim.now
        self.channels[channel] = state
        if upstream is not None:
            self._by_upstream.setdefault(upstream, {})[channel] = None
        if self.propagation is CountPropagation.PROACTIVE:
            state.proactive[SUBSCRIBER_ID] = ProactiveCounter(
                self.proactive_curve, now=self.sim.now
            )
        return state

    def _upstream_name(self, channel: Channel) -> Optional[str]:
        source_node = self.routing.topo.node_by_address(channel.source)
        if source_node is None or source_node is self.node:
            return None
        return self.routing.next_hop(self.node.name, source_node.name)

    def _propagate(
        self,
        state: ChannelState,
        joining_key: Optional[ChannelKey] = None,
        join_entry: Optional[VerdictEntry] = None,
    ) -> bool:
        """Decide whether the new downstream total goes upstream now.

        Returns True when a *join* Count went upstream (the caller's
        verdict then comes from above rather than from this node); a
        ``join_entry`` is queued for each such forwarded join.
        """
        if state.upstream is None:
            # Root (the source's node): counts aggregate here.
            counter = state.proactive.get(SUBSCRIBER_ID)
            if counter is not None:
                counter.observe(state.total(validated_only=False))
            return False
        total = state.total(validated_only=False)
        key = joining_key or self.keys.get(state.channel) or state.pending_key
        if total > 0 and state.advertised == 0:
            self._queue_entry(state, join_entry, total)
            self._send_count_upstream(state, total, key=key)
            return True
        if total == 0 and state.advertised > 0:
            self._send_count_upstream(state, 0)
            return False
        if joining_key is not None:
            # Already on tree, but a keyed join needs an upstream verdict.
            self._queue_entry(state, join_entry, total)
            self._send_count_upstream(state, total, key=joining_key)
            return True
        if total == state.advertised:
            return False
        if self.propagation is CountPropagation.ON_CHANGE:
            self._send_count_upstream(state, total)
        elif self.propagation is CountPropagation.PROACTIVE:
            self._proactive_evaluate(state, SUBSCRIBER_ID)
        # TREE_ONLY: stay quiet while on-tree.
        return False

    def _queue_entry(
        self, state: ChannelState, entry: Optional[VerdictEntry], total: int
    ) -> None:
        if entry is None:
            return
        entry.prior_advertised = state.advertised
        entry.sent_count = total
        self.pending_verdicts.setdefault(state.channel, deque()).append(entry)

    def _send_count_upstream(
        self, state: ChannelState, count: int, key: Optional[ChannelKey] = None
    ) -> None:
        if state.upstream is None:
            return
        # A 0→positive transition (or any keyed Count) queues a
        # VerdictEntry at the upstream, so the message must survive
        # coalescing verbatim — each pending verdict pairs with exactly
        # one on-wire Count.
        is_join = count > 0 and state.advertised == 0
        self._send_message(
            Count(channel=state.channel, count_id=SUBSCRIBER_ID, count=count, key=key),
            state.upstream,
            pinned=True if (is_join or key is not None) else None,
        )
        state.advertised = count
        counter = state.proactive.get(SUBSCRIBER_ID)
        if counter is not None:
            counter.observe(state.total(validated_only=False))
            counter.sent(self.sim.now)

    def _garbage_collect(self, state: ChannelState) -> None:
        if not state.downstream and state.advertised == 0:
            self.channels.pop(state.channel, None)
            if state.upstream is not None:
                routed = self._by_upstream.get(state.upstream)
                if routed is not None:
                    routed.pop(state.channel, None)
            self.pending_verdicts.pop(state.channel, None)
            self.fib.remove(state.channel.source, state.channel.group)
            for (channel, count_id), event in list(self._proactive_checks.items()):
                if channel == state.channel:
                    event.cancel()
                    del self._proactive_checks[(channel, count_id)]

    def _sync_fib(self, state: ChannelState) -> None:
        """Mirror validated downstream neighbors into the data plane.

        Block pseudo-neighbors contribute no outgoing interface (their
        members sit *at* this router), but they do keep the FIB entry
        installed: a blocks-only edge router is on the tree, so matching
        packets must pass the RPF check and terminate here rather than
        count as §3.4 no-match drops."""
        channel = state.channel
        has_remote = False
        has_block = False
        for name, rec in state.downstream.items():
            if not rec.validated or rec.count <= 0:
                continue
            if name == LOCAL:
                continue
            if name in self.blocks:
                has_block = True
            else:
                has_remote = True
        if not has_remote and not has_block:
            self.fib.remove(channel.source, channel.group)
            return
        iif = self._rpf_ifindex(channel)
        entry = self.fib.install(channel.source, channel.group, iif)
        entry.incoming_interface = iif
        entry.outgoing = 0
        for name, rec in state.downstream.items():
            if is_pseudo_neighbor(name) or not rec.validated or rec.count <= 0:
                continue
            peer = self.routing.topo.nodes.get(name)
            iface = self.node.interface_to(peer) if peer else None
            if iface is not None:
                entry.add_outgoing(iface.index)
        if entry.outgoing == 0 and not has_block:
            self.fib.remove(channel.source, channel.group)

    def _rpf_ifindex(self, channel: Channel) -> int:
        upstream = self.channels[channel].upstream if channel in self.channels else None
        if upstream is None:
            return 0  # source's own node; emit path skips the iif check
        peer = self.routing.topo.nodes.get(upstream)
        iface = self.node.interface_to(peer) if peer else None
        return iface.index if iface is not None else 0

    # ------------------------------------------------------------------
    # authentication verdicts (§3.2, §3.5)
    # ------------------------------------------------------------------

    def _deny(self, channel: Channel, neighbor: str) -> None:
        """Reject a subscription locally (bad key against cached K)."""
        self.stats.incr("denied_subscriptions")
        if neighbor == LOCAL:
            handle = self.subscriptions.pop(channel, None)
            if handle is not None:
                handle._set_status("denied")
            return
        self._send_message(
            CountResponse(channel, SUBSCRIBER_ID, CountStatus.INVALID_AUTHENTICATOR),
            neighbor,
        )

    def _handle_response(self, message: CountResponse, from_name: str) -> None:
        channel = message.channel
        if message.count_id != SUBSCRIBER_ID:
            # Rejection of a non-subscriber Count (e.g. an unsupported
            # countId): nothing to roll back — just note it.
            self.stats.incr("rejected_counts")
            return
        state = self.channels.get(channel)
        if state is None or from_name != state.upstream:
            return
        queue = self.pending_verdicts.get(channel)
        entry = queue.popleft() if queue else None

        if message.status is CountStatus.OK:
            if entry is None:
                return  # e.g. a refresh the upstream saw as a fresh join
            if entry.presented_key is not None:
                self.keys.learn(channel, entry.presented_key)
                if state.pending_key == entry.presented_key:
                    state.pending_key = None
            self._confirm(state, entry.neighbor)
            self._sync_fib(state)
            return

        if message.status in (
            CountStatus.INVALID_AUTHENTICATOR,
            CountStatus.NO_SUCH_CHANNEL,
            CountStatus.UNSUPPORTED_COUNT,
        ):
            if entry is not None:
                if state.pending_key == entry.presented_key:
                    state.pending_key = None
                self._rollback(state, entry)
            else:
                # Unmatched denial (e.g. a re-homing join was refused):
                # tear down the most recent optimistic keyless record.
                for name in reversed(list(state.downstream)):
                    record = state.downstream[name]
                    if record.presented_key is None:
                        del state.downstream[name]
                        self._untrack_record(state.channel, name)
                        self._notify_denied(state.channel, name)
                        break
            self._sync_fib(state)
            self._garbage_collect(state)

    def _confirm(self, state: ChannelState, neighbor: str) -> None:
        record = state.downstream.get(neighbor)
        if record is not None:
            record.validated = True
        if neighbor == LOCAL:
            self._activate_local(state.channel)
        else:
            # Relay the verdict even if the neighbor has since left —
            # its own entry queue must stay aligned.
            self._send_message(
                CountResponse(state.channel, SUBSCRIBER_ID, CountStatus.OK), neighbor
            )

    def _activate_local(self, channel: Channel) -> None:
        handle = self.subscriptions.get(channel)
        if handle is not None and handle.status != "active":
            handle._set_status("active")

    def _rollback(self, state: ChannelState, entry: VerdictEntry) -> None:
        """Undo a denied join by subtracting its contribution.

        The subtraction is relative, not a snapshot restore: counts
        that arrived between the join and its verdict (e.g. several
        joins batched into one frame, whose verdicts all come back
        after the last join landed) must survive the rollback. The
        upstream applies the mirror-image subtraction to its record of
        us, so ``advertised`` shrinks by the same delta it will."""
        self.stats.incr("denied_subscriptions")
        state.advertised = max(
            0, state.advertised - (entry.sent_count - entry.prior_advertised)
        )
        record = state.downstream.get(entry.neighbor)
        if record is not None:
            rolled = record.count - (entry.joined_count - entry.prior_count)
            if rolled > 0:
                record.count = rolled
                # Never revoke a validation an earlier verdict granted.
                record.validated = record.validated or entry.prior_validated
            else:
                del state.downstream[entry.neighbor]
                self._untrack_record(state.channel, entry.neighbor)
        self._notify_denied(state.channel, entry.neighbor)

    def _notify_denied(self, channel: Channel, neighbor: str) -> None:
        if neighbor == LOCAL:
            handle = self.subscriptions.pop(channel, None)
            if handle is not None:
                handle._set_status("denied")
        else:
            self._send_message(
                CountResponse(channel, SUBSCRIBER_ID, CountStatus.INVALID_AUTHENTICATOR),
                neighbor,
            )

    # ------------------------------------------------------------------
    # generic counting (§3.1)
    # ------------------------------------------------------------------

    def _handle_query(self, query: CountQuery, from_name: str) -> None:
        if query.count_id == NEIGHBORS_ID:
            # Neighbor discovery / keepalive probe: reply immediately.
            self._send_message(
                Count(channel=query.channel, count_id=NEIGHBORS_ID, count=1), from_name
            )
            return
        if query.count_id == ALL_CHANNELS_ID:
            self._handle_general_query(from_name)
            return
        if query.proactive is not None:
            self._handle_proactive_request(query, origin=from_name)
            return
        self._start_query(query, origin=from_name)

    def _handle_general_query(self, from_name: str) -> None:
        """§3.3: re-send Counts for every channel routed via ``from_name``
        (the UDP-mode refresh, "analogous to an IGMP general query").

        Fast path: the ``_by_upstream`` index yields exactly the
        channels routed via the querier instead of testing every
        channel in the table. ``refresh_records_examined`` tallies the
        states each path had to touch, so the benchmark can report the
        scan-work fraction the index eliminates.
        """
        if self.refresh_ring_enabled:
            routed = self._by_upstream.get(from_name)
            if not routed:
                return
            self.stats.incr("refresh_records_examined", len(routed))
            for channel in list(routed):
                state = self.channels.get(channel)
                if state is not None and state.upstream == from_name:
                    self._send_count_upstream(state, state.total(validated_only=False))
            return
        examined = 0
        for channel, state in self.channels.items():
            examined += 1
            if state.upstream == from_name:
                self._send_count_upstream(state, state.total(validated_only=False))
        if examined:
            self.stats.incr("refresh_records_examined", examined)

    def _start_query(
        self,
        query: CountQuery,
        origin: Optional[str],
        callback: Optional[Callable[[int, bool], None]] = None,
    ) -> None:
        channel, count_id = query.channel, query.count_id
        key = (channel, count_id)
        stale = self.pending_queries.pop(key, None)
        if stale is not None and stale.timeout_event is not None:
            stale.timeout_event.cancel()
        if stale is not None and stale.span is not None and self.obs is not None:
            self.obs.tracer.add_event(stale.span, "superseded")
            self.obs.tracer.end(stale.span)

        state = self.channels.get(channel)
        timeout = query.timeout
        if origin is not None:
            timeout = decrement_timeout(timeout, self._rtt_estimate(origin))

        pending = PendingQuery(
            channel=channel,
            count_id=count_id,
            deadline=self.sim.now + timeout,
            origin=origin,
            callback=callback,
        )
        pending.local_contribution = self._local_contribution(channel, count_id)

        if state is not None:
            forward = CountQuery(channel=channel, count_id=count_id, timeout=timeout)
            for name, record in state.downstream.items():
                if name == LOCAL or record.count <= 0:
                    continue
                if name in self.blocks:
                    # A block is locally-held state: this router is the
                    # authority for its count, so it folds into the
                    # local contribution instead of being polled over a
                    # wire (there is no wire — and no reply to await).
                    if count_id == SUBSCRIBER_ID:
                        pending.local_contribution += record.count
                    continue
                if not propagates_to_hosts(count_id) and self._neighbor_is_host(name):
                    continue
                pending.outstanding.add(name)
                self._send_message(forward, name)

        if not pending.outstanding:
            self._finalize_query(pending)
            return
        if self.obs is not None:
            span = self.obs.tracer.current
            if span is not None:
                # The handling (or locally-originated root) span stays
                # open while replies are outstanding; downstream Counts
                # fold in as events on it (see _handle_traced).
                span.attrs["deferred"] = True
                pending.span = span
        self.pending_queries[key] = pending
        pending.timeout_event = self.sim.schedule(
            max(timeout, MIN_FORWARD_TIMEOUT),
            lambda: self._query_timed_out(key),
            name="ecmp-query-timeout",
        )

    def _neighbor_is_host(self, name: str) -> bool:
        peer = self.routing.topo.nodes.get(name)
        if peer is None:
            return False
        agent = peer.agents.get(PROTO_ECMP)
        return isinstance(agent, EcmpAgent) and agent.role == "host"

    def _local_contribution(self, channel: Channel, count_id: int) -> int:
        """This node's own addend for a count (§3.1: hosts answer
        immediately or via the application; routers contribute
        network-layer resource counts)."""
        from repro.core.ecmp.countids import LINK_COUNT_ID, TREE_SIZE_ID

        responder = self.count_responders.get((channel, count_id))
        if responder is not None:
            return int(responder())
        if count_id == SUBSCRIBER_ID:
            return 1 if channel in self.subscriptions else 0
        state = self.channels.get(channel)
        if count_id == LINK_COUNT_ID:
            return state.downstream_links() if state is not None else 0
        if count_id == TREE_SIZE_ID:
            return 1 if state is not None else 0
        return 0

    def _maybe_finalize(self, pending: PendingQuery) -> None:
        if pending.is_complete() and not pending.completed:
            if pending.timeout_event is not None:
                pending.timeout_event.cancel()
            self._finalize_query(pending)

    def _query_timed_out(self, key: tuple[Channel, int]) -> None:
        pending = self.pending_queries.get(key)
        if pending is not None and not pending.completed:
            self.stats.incr("query_timeouts")
            self._finalize_query(pending)

    def _finalize_query(self, pending: PendingQuery) -> None:
        pending.completed = True
        self.pending_queries.pop((pending.channel, pending.count_id), None)
        partial = bool(pending.outstanding)
        total = pending.total()

        def deliver() -> None:
            if pending.origin is None:
                if pending.callback is not None:
                    pending.callback(total, partial)
            else:
                # Query replies race the origin's reply deadline; never
                # let one sit in a flush window.
                self._send_message(
                    Count(
                        channel=pending.channel,
                        count_id=pending.count_id,
                        count=total,
                    ),
                    pending.origin,
                    urgent=True,
                )

        if self.obs is not None and pending.span is not None:
            tracer = self.obs.tracer
            tracer.add_event(pending.span, "finalized", total=total, partial=partial)
            with tracer.activate(pending.span):
                deliver()
            tracer.end(pending.span)
        else:
            deliver()

    # ------------------------------------------------------------------
    # proactive counting (§6)
    # ------------------------------------------------------------------

    def _handle_proactive_request(self, query: CountQuery, origin: Optional[str]) -> None:
        channel, count_id = query.channel, query.count_id
        curve = query.proactive or self.proactive_curve
        state = self.channels.get(channel)
        if state is None:
            return
        if count_id not in state.proactive:
            counter = ProactiveCounter(curve, now=self.sim.now)
            counter.observe(self._proactive_total(state, count_id))
            state.proactive[count_id] = counter
        for name, record in state.downstream.items():
            if is_pseudo_neighbor(name) or record.count <= 0:
                continue
            if not propagates_to_hosts(count_id) and self._neighbor_is_host(name):
                continue
            self._send_message(query, name)
        self._proactive_evaluate(state, count_id)

    def _apply_proactive_value(
        self, state: ChannelState, count_id: int, from_name: str, value: int
    ) -> None:
        per_neighbor = state.proactive_values.setdefault(count_id, {})
        per_neighbor[from_name] = value
        self._proactive_evaluate(state, count_id)

    def _proactive_total(self, state: ChannelState, count_id: int) -> int:
        if count_id == SUBSCRIBER_ID:
            return state.total(validated_only=False)
        values = state.proactive_values.get(count_id, {})
        return sum(values.values()) + self._local_contribution(state.channel, count_id)

    def _proactive_evaluate(self, state: ChannelState, count_id: int) -> None:
        counter = state.proactive.get(count_id)
        if counter is None:
            return
        counter.observe(self._proactive_total(state, count_id))
        now = self.sim.now
        if state.upstream is None:
            return  # the root only aggregates
        if counter.should_send(now):
            value = counter.current
            if count_id == SUBSCRIBER_ID:
                self._send_count_upstream(state, value)
            else:
                self._send_message(
                    Count(channel=state.channel, count_id=count_id, count=value),
                    state.upstream,
                )
                counter.sent(now)
            self._cancel_proactive_check(state.channel, count_id)
            return
        delay = counter.next_check_delay(now)
        if delay is not None:
            self._schedule_proactive_check(state.channel, count_id, delay + 1e-6)

    def _schedule_proactive_check(
        self, channel: Channel, count_id: int, delay: float
    ) -> None:
        key = (channel, count_id)
        existing = self._proactive_checks.get(key)
        if existing is not None:
            existing.cancel()
        self._proactive_checks[key] = self.sim.schedule(
            delay, lambda: self._proactive_check_fired(key), name="ecmp-proactive"
        )

    def _cancel_proactive_check(self, channel: Channel, count_id: int) -> None:
        event = self._proactive_checks.pop((channel, count_id), None)
        if event is not None:
            event.cancel()

    def _proactive_check_fired(self, key: tuple[Channel, int]) -> None:
        self._proactive_checks.pop(key, None)
        state = self.channels.get(key[0])
        if state is not None:
            self._proactive_evaluate(state, key[1])

    # ------------------------------------------------------------------
    # liveness: keepalives, UDP refresh, failure handling (§3.2-3.3)
    # ------------------------------------------------------------------

    def _keepalive_tick(self) -> None:
        """Periodic neighbor probe: "Each router periodically multicasts
        such a [neighbors] CountQuery" (§3.3); for TCP neighbors this
        doubles as the per-connection keepalive."""
        if self.obs is not None:
            with self.obs.tracer.span("ecmp.keepalive_tick", node=self.node.name):
                self._do_keepalive_tick()
        else:
            self._do_keepalive_tick()

    def _do_keepalive_tick(self) -> None:
        probe = CountQuery(
            channel=DISCOVERY_CHANNEL,
            count_id=NEIGHBORS_ID,
            timeout=self.KEEPALIVE_INTERVAL,
        )
        for iface in self.node.interfaces:
            peer = iface.neighbor()
            if peer is None or not iface.up:
                continue
            self.stats.incr("keepalives_tx")
            self._send_message(probe, peer.name)
        # Detect silent TCP-neighbor deaths.
        horizon = self.sim.now - self.KEEPALIVE_MISSES * self.KEEPALIVE_INTERVAL
        for name, last in list(self.neighbor_last_heard.items()):
            if last < horizon and self.mode_of(name) is NeighborMode.TCP:
                peer = self.routing.topo.nodes.get(name)
                iface = self.node.interface_to(peer) if peer else None
                if iface is not None and iface.up:
                    continue  # link is up; silence is fine (no traffic)
                del self.neighbor_last_heard[name]
                self._neighbor_failed(name)
        # The keepalive tick is also the protocol's coarse flush point:
        # anything still sitting in a dirty-channel queue rides out now.
        self._flush_all(trigger="keepalive")

    def _udp_refresh_tick(self) -> None:
        """Periodic general query toward UDP-mode downstream neighbors,
        plus expiry of unrefreshed UDP (soft) state."""
        if self.obs is not None:
            with self.obs.tracer.span("ecmp.udp_refresh_tick", node=self.node.name):
                self._do_udp_refresh_tick()
        else:
            self._do_udp_refresh_tick()

    def _do_udp_refresh_tick(self) -> None:
        if self.refresh_ring_enabled:
            self._refresh_tick_ring()
        else:
            self._refresh_tick_scan()

    def _refresh_tick_ring(self) -> None:
        """Coalesced refresh: one sampled general query per UDP-mode
        neighbor (from the incrementally maintained fan-out index), then
        expiry of only the ring entries whose deadline bucket has passed
        — O(neighbors + due) per tick instead of O(total records)."""
        if self._udp_channels:
            general = CountQuery(
                channel=DISCOVERY_CHANNEL,
                count_id=ALL_CHANNELS_ID,
                timeout=self.UDP_QUERY_INTERVAL,
            )
            for name in sorted(self._udp_channels):
                self._send_message(general, name)
        ring = self._refresh_ring
        if ring is None:
            return
        now = self.sim.now
        lease = self.UDP_ROBUSTNESS * self.UDP_QUERY_INTERVAL
        horizon = now - lease
        examined = 0
        expired: list[tuple[Channel, str]] = []
        for key in ring.due(now):
            examined += 1
            channel, name = key
            state = self.channels.get(channel)
            record = state.downstream.get(name) if state is not None else None
            if record is None or not record.udp:
                ring.discard(key)  # record left through another path
            elif record.updated_at < horizon:
                ring.discard(key)
                expired.append(key)
            else:
                # Refreshed since it was bucketed (lazy deadline): move
                # it to the bucket of its current lease expiry.
                ring.reschedule(key, record.updated_at + lease)
        if examined:
            self.stats.incr("refresh_records_examined", examined)
        for channel, name in expired:
            self.stats.incr("udp_expirations")
            self._apply_subscriber_count(channel, name, 0)
            self._expire_block_member(channel, name)

    def _refresh_tick_scan(self) -> None:
        """The legacy full-table refresh (``REPRO_REFRESH_RING=0``):
        every record on every channel is examined on every tick."""
        udp_downstreams: set[str] = set()
        examined = 0
        for state in self.channels.values():
            for name, record in state.downstream.items():
                # Blocks are excluded from the general query (nothing to
                # send to) but *not* from the expiry sweep below: a block
                # that stops refreshing ages out like any UDP neighbor.
                examined += 1
                if not is_pseudo_neighbor(name) and record.udp and record.count > 0:
                    udp_downstreams.add(name)
        if udp_downstreams:
            general = CountQuery(
                channel=DISCOVERY_CHANNEL,
                count_id=ALL_CHANNELS_ID,
                timeout=self.UDP_QUERY_INTERVAL,
            )
            for name in sorted(udp_downstreams):
                self._send_message(general, name)
        horizon = self.sim.now - self.UDP_ROBUSTNESS * self.UDP_QUERY_INTERVAL
        for state in list(self.channels.values()):
            examined += len(state.downstream)
            expired = [
                name
                for name, record in state.downstream.items()
                if name != LOCAL and record.udp and record.updated_at < horizon
            ]
            for name in expired:
                self.stats.incr("udp_expirations")
                self._apply_subscriber_count(state.channel, name, 0)
                self._expire_block_member(state.channel, name)
        if examined:
            self.stats.incr("refresh_records_examined", examined)

    def _expire_block_member(self, channel: Channel, name: str) -> None:
        """Keep an expired block's own view and the delivery index
        consistent with the expired record."""
        block = self.blocks.get(name)
        if block is not None:
            block.members.pop(channel, None)
            entries = self.channel_blocks.get(channel)
            if entries is not None and block in entries:
                entries.remove(block)
                if not entries:
                    del self.channel_blocks[channel]

    def _refresh_deadline(self, key: tuple[Channel, str]) -> float:
        """The live lease expiry for a ring entry (ring rebuilds)."""
        channel, name = key
        state = self.channels.get(channel)
        record = state.downstream.get(name) if state is not None else None
        updated_at = record.updated_at if record is not None else self.sim.now
        return updated_at + self.UDP_ROBUSTNESS * self.UDP_QUERY_INTERVAL

    def _track_udp_record(self, channel: Channel, name: str, record) -> None:
        """Sync the general-query fan-out set and the refresh ring with
        one just-written record's udp flag. Pseudo-neighbors (blocks)
        join the ring — unrefreshed blocks age out like any UDP
        neighbor — but never the query fan-out set."""
        if record.udp:
            if not is_pseudo_neighbor(name):
                self._udp_channels.setdefault(name, {})[channel] = None
            ring = self._refresh_ring
            if ring is not None:
                ring.add(
                    (channel, name),
                    record.updated_at
                    + self.UDP_ROBUSTNESS * self.UDP_QUERY_INTERVAL,
                )
        else:
            self._untrack_record(channel, name)

    def _untrack_record(self, channel: Channel, name: str) -> None:
        """Drop a deleted (or no-longer-UDP) record from the refresh
        structures; called at every downstream-record removal site."""
        channels = self._udp_channels.get(name)
        if channels is not None:
            channels.pop(channel, None)
            if not channels:
                del self._udp_channels[name]
        ring = self._refresh_ring
        if ring is not None:
            ring.discard((channel, name))

    def _neighbor_failed(self, name: str) -> None:
        """TCP-connection failure: "The associated count is subtracted
        from the sum provided upstream if the connection fails" (§3.2)."""
        for state in list(self.channels.values()):
            if name in state.downstream:
                self._apply_subscriber_count(state.channel, name, 0)
        # Channels routed *via* the failed neighbor re-home after the
        # routing recompute (reevaluate_upstreams), which the network
        # facade triggers off the same link event.

    def _neighbor_recovered(self, name: str) -> None:
        """On (re)connection, re-announce every channel we route through
        this neighbor (§3.2: unsolicited Counts on establishment).

        With batching on, the whole unsolicited state dump leaves as a
        single MSG_BATCH frame instead of N packets.

        The re-announced bytes are tallied as ``resync_bytes`` /
        ``resync_counts`` — the soft-state-recovery cost HPIM-DM uses
        as its comparison metric, measured here as the logical control
        bytes the recovery caused (delta of ``bytes_tx`` around the
        state dump, which is deterministic across sharded/oracle runs)."""
        bytes_before = self.stats.get("bytes_tx")
        resent = 0
        for state in self.channels.values():
            if state.upstream == name:
                self._send_count_upstream(state, state.total(validated_only=False))
                resent += 1
        self._flush_neighbor(name, trigger="reconnect")
        if resent:
            self.stats.incr("resync_counts", resent)
            self.stats.incr("resync_bytes", self.stats.get("bytes_tx") - bytes_before)

    # ------------------------------------------------------------------
    # topology change (§3.2)
    # ------------------------------------------------------------------

    def reevaluate_upstreams(self) -> None:
        """After a unicast routing recompute, re-home each channel:
        "it sends a current Count message to the new upstream router and
        a zero Count message to the old upstream router ... Hysteresis
        is applied to prevent route oscillation."
        """
        now = self.sim.now
        touched: set[str] = set()
        bytes_before = self.stats.get("bytes_tx")
        for channel, state in list(self.channels.items()):
            if self.routing.topo.node_by_address(channel.source) is self.node:
                continue  # the source's node is the root; never re-homes
            new_upstream = self._upstream_name(channel)
            if new_upstream == state.upstream:
                continue
            old = state.upstream
            old_reachable = old is not None and self._neighbor_link_up(old)
            if old_reachable and now - state.upstream_changed_at < self.HYSTERESIS:
                remaining = self.HYSTERESIS - (now - state.upstream_changed_at)
                if not self._rehome_scheduled:
                    self._rehome_scheduled = True
                    self.sim.schedule(
                        remaining + 1e-6, self._rehome_fired, name="ecmp-hysteresis"
                    )
                continue
            self.stats.incr("upstream_changes")
            if self.obs is not None:
                self.obs.state_changed()
            if old is not None:
                routed = self._by_upstream.get(old)
                if routed is not None:
                    routed.pop(channel, None)
            state.upstream = new_upstream
            if new_upstream is not None:
                self._by_upstream.setdefault(new_upstream, {})[channel] = None
            state.upstream_changed_at = now
            total = state.total(validated_only=False)
            if new_upstream is not None and total > 0:
                state.advertised = 0  # force a fresh join to the new parent
                self._send_count_upstream(state, total, key=self.keys.get(channel))
                touched.add(new_upstream)
            elif new_upstream is None:
                # Partitioned from the source: nothing is advertised to
                # anyone any more (the old upstream zeroed us, or died).
                state.advertised = 0
            if old_reachable and old is not None:
                # Not urgent=True like an ordinary leave: the flush at
                # the end of this loop sends every old-upstream zero in
                # the same event tick, one frame per neighbor.
                self._send_message(
                    Count(channel=channel, count_id=SUBSCRIBER_ID, count=0),
                    old,
                    urgent=False,
                    pinned=True,
                )
                touched.add(old)
            self._sync_fib(state)
            self._garbage_collect(state)
        # All re-home joins toward one new parent leave as one batch
        # frame rather than waiting for the flush timer per message.
        for name in touched:
            self._flush_neighbor(name, trigger="rehome")
        if touched:
            # Re-home traffic is resync cost too (§3.2's hand-off of a
            # current Count to the new parent and a zero to the old).
            self.stats.incr("resync_events")
            self.stats.incr("resync_bytes", self.stats.get("bytes_tx") - bytes_before)

    def _rehome_fired(self) -> None:
        self._rehome_scheduled = False
        self.reevaluate_upstreams()

    def _neighbor_link_up(self, name: str) -> bool:
        peer = self.routing.topo.nodes.get(name)
        iface = self.node.interface_to(peer) if peer else None
        return iface is not None and iface.up
