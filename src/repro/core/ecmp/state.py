"""Per-channel ECMP state records.

A router on a channel's distribution tree records, per §3.2: its
upstream (RPF) neighbor, "the per-channel subscriber count for each
interface" (we key by neighbor, which is 1:1 with interfaces on
point-to-point links), and — for authenticated channels — the key
material in flight or cached.

§5.2 prices this state: a count-activity record is "roughly 16 bytes,
namely [channel, countId, count]", doubled to 32 to allow for
implementation fields; with an average fanout of 2 (three records
including the upstream record) and 2 outstanding counts per channel,
"the DRAM memory cost per channel is 192 bytes ... Adding another
eight bytes to store K(S,E), the total size is 200 bytes."
:func:`management_state_bytes` reproduces that accounting from live
state so the ``T2`` benchmark can compare model vs measured.

Record storage is *columnar* by default: every
:class:`DownstreamRecord` is a thin row view over the process-global
:class:`StateBank` — parallel ``count``/``flags``/``updated_at``
columns following the ``CounterBank`` layout idiom from
:mod:`repro.core.accounting` (preallocated, doubled on demand, free
list recycling rows). Unlike ``CounterBank``, the columns are plain
Python lists even when numpy is available: no consumer vectorizes
over them — every access is a scalar read or write on a protocol hot
path, where list indexing returns the stored ``int``/``float``
directly while ndarray indexing boxes a fresh numpy scalar (~5×
slower per touch, measured on the mega-storm block path). This still
packs the per-record hot fields the mega-channel workloads hammer
(count rewrites, refresh stamps, mode flags) into flat arrays instead
of one Python object's dict per record, exactly the §5.2 "packed
count-activity record" picture. The legacy per-record dataclass
survives as
:class:`DictDownstreamRecord` (``REPRO_COLUMNAR=0`` or
``columnar=False`` on the agent selects it) and the property suite in
``tests/properties/test_state_equivalence.py`` pins the two backends
bit-identical.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.channel import Channel, channel_id
from repro.core.keys import KEY_BYTES, ChannelKey
from repro.core.proactive import ProactiveCounter

#: ``REPRO_COLUMNAR=0`` is the columnar store's escape hatch: agents
#: fall back to the legacy per-record dataclass.
COLUMNAR_DEFAULT = os.environ.get("REPRO_COLUMNAR", "1") != "0"

#: Pseudo-neighbor name for this node's own (host-local) subscriptions.
LOCAL = "__local__"

#: Name prefix for aggregated subscriber-block records (see
#: :mod:`repro.core.blocks`). Like LOCAL, a block pseudo-neighbor has
#: no peer node: it contributes to counts but never to the FIB's
#: outgoing set, wire sends, or query fan-out.
BLOCK_PREFIX = "__block__:"


def is_pseudo_neighbor(name: str) -> bool:
    """True for downstream-record keys that are not real neighbors
    (the LOCAL record and subscriber-block records)."""
    return name == LOCAL or name.startswith(BLOCK_PREFIX)

#: §5.2's raw count-activity record: [channel (7), countId (2), count (4)]
#: rounded to 16, then doubled "to allow for implementation fields".
COUNT_RECORD_BYTES = 32


#: Flag bits within the bank's ``flags`` column.
_F_VALIDATED = 0x01
_F_UDP = 0x02

#: Initial bank rows (doubles on demand, mirroring ``CounterBank``).
_INITIAL_ROWS = 256


class StateBank:
    """Columnar backing store for downstream records.

    Three parallel columns — ``counts`` (int), ``flags`` (int bit
    field: validated, udp) and ``stamps`` (float ``updated_at``) —
    preallocated and doubled on demand, with a free list so deleted
    records recycle their rows. The columns are plain Python lists by
    design, not ndarrays: all access is scalar (see the module
    docstring). Callers must index through the bank attribute on
    every access: growth may replace the columns.
    """

    __slots__ = ("counts", "flags", "stamps", "_capacity", "_rows", "_free")

    def __init__(self, capacity: int = _INITIAL_ROWS) -> None:
        self._capacity = capacity
        self._rows = 0
        self._free: list[int] = []
        self.counts = [0] * capacity
        self.flags = [0] * capacity
        self.stamps = [0.0] * capacity

    def alloc(self) -> int:
        """Claim one row (recycled if possible); caller initializes it."""
        free = self._free
        if free:
            return free.pop()
        row = self._rows
        if row >= self._capacity:
            self._grow()
        self._rows = row + 1
        return row

    def release(self, row: int) -> None:
        """Return a row to the free list."""
        self._free.append(row)

    def _grow(self) -> None:
        self._capacity *= 2
        self.counts.extend([0] * (self._capacity - len(self.counts)))
        self.flags.extend([0] * (self._capacity - len(self.flags)))
        self.stamps.extend([0.0] * (self._capacity - len(self.stamps)))

    @property
    def live_rows(self) -> int:
        return self._rows - len(self._free)


#: Process-global bank, like ``accounting.BLOCK_BANK``: records from
#: every agent share the same columns, so one network's worth of
#: channel state is a handful of arrays rather than per-record dicts.
STATE_BANK = StateBank()


class DownstreamRecord:
    """State for one downstream neighbor (or LOCAL) on a channel.

    A row view over :data:`STATE_BANK`: attribute reads and writes go
    straight to the columnar arrays. The constructor signature, field
    defaults, repr and equality all match the legacy
    :class:`DictDownstreamRecord` exactly — callers cannot tell the
    backends apart (the property suite enforces that).
    """

    __slots__ = ("_row", "presented_key")

    def __init__(
        self,
        count: int = 0,
        validated: bool = True,
        presented_key: Optional[ChannelKey] = None,
        updated_at: float = 0.0,
        udp: bool = False,
    ) -> None:
        bank = STATE_BANK
        row = bank.alloc()
        bank.counts[row] = count
        bank.flags[row] = (_F_VALIDATED if validated else 0) | (_F_UDP if udp else 0)
        bank.stamps[row] = updated_at
        self._row = row
        self.presented_key = presented_key

    @property
    def count(self) -> int:
        return int(STATE_BANK.counts[self._row])

    @count.setter
    def count(self, value: int) -> None:
        STATE_BANK.counts[self._row] = value

    @property
    def validated(self) -> bool:
        """False while an authenticated subscription awaits validation."""
        return bool(STATE_BANK.flags[self._row] & _F_VALIDATED)

    @validated.setter
    def validated(self, value: bool) -> None:
        bank = STATE_BANK
        if value:
            bank.flags[self._row] |= _F_VALIDATED
        else:
            bank.flags[self._row] &= ~_F_VALIDATED

    @property
    def updated_at(self) -> float:
        return float(STATE_BANK.stamps[self._row])

    @updated_at.setter
    def updated_at(self, value: float) -> None:
        STATE_BANK.stamps[self._row] = value

    @property
    def udp(self) -> bool:
        """True for neighbors managed in UDP mode (soft state, needs
        refresh)."""
        return bool(STATE_BANK.flags[self._row] & _F_UDP)

    @udp.setter
    def udp(self, value: bool) -> None:
        bank = STATE_BANK
        if value:
            bank.flags[self._row] |= _F_UDP
        else:
            bank.flags[self._row] &= ~_F_UDP

    def __repr__(self) -> str:
        return (
            f"DownstreamRecord(count={self.count}, validated={self.validated}, "
            f"presented_key={self.presented_key!r}, "
            f"updated_at={self.updated_at}, udp={self.udp})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (DownstreamRecord, DictDownstreamRecord)):
            return NotImplemented
        return (
            self.count == other.count
            and self.validated == other.validated
            and self.presented_key == other.presented_key
            and self.updated_at == other.updated_at
            and self.udp == other.udp
        )

    def __del__(self) -> None:
        row = getattr(self, "_row", -1)
        if row >= 0:
            self._row = -1
            try:
                STATE_BANK.release(row)
            except (AttributeError, TypeError):  # pragma: no cover
                pass  # interpreter shutdown: globals already torn down


@dataclass(eq=False)
class DictDownstreamRecord:
    """The legacy per-record dataclass (``REPRO_COLUMNAR=0`` backend).

    Kept as the live reference implementation the columnar view is
    equivalence-pinned against, and as the A/B baseline for the
    ``channel_surf`` benchmark.
    """

    count: int = 0
    #: False while an authenticated subscription awaits validation.
    validated: bool = True
    #: The key this neighbor presented (kept until validation resolves).
    presented_key: Optional[ChannelKey] = None
    updated_at: float = 0.0
    #: True for neighbors managed in UDP mode (soft state, needs refresh).
    udp: bool = False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (DownstreamRecord, DictDownstreamRecord)):
            return NotImplemented
        return (
            self.count == other.count
            and self.validated == other.validated
            and self.presented_key == other.presented_key
            and self.updated_at == other.updated_at
            and self.udp == other.udp
        )


#: Either backend; the agent code is written against the shared API.
DownstreamRecordType = Union[DownstreamRecord, DictDownstreamRecord]


@dataclass
class ChannelState:
    """Everything one node knows about one channel."""

    channel: Channel
    #: Upstream neighbor name toward S; None at the source's own node.
    upstream: Optional[str] = None
    #: Per-downstream-neighbor subscriber counts (LOCAL for own subs).
    downstream: dict[str, DownstreamRecordType] = field(default_factory=dict)
    #: Count last advertised upstream (TCP-mode "sum provided upstream").
    advertised: int = 0
    #: Key forwarded upstream, awaiting a CountResponse verdict.
    pending_key: Optional[ChannelKey] = None
    #: Proactive counters, per countId, when §6 mode is active.
    proactive: dict[int, ProactiveCounter] = field(default_factory=dict)
    #: Latest unsolicited per-neighbor values for proactive countIds
    #: other than subscriberId: countId -> neighbor -> value.
    proactive_values: dict[int, dict[str, int]] = field(default_factory=dict)
    #: When this node last switched upstream (hysteresis input).
    upstream_changed_at: float = 0.0
    created_at: float = 0.0
    #: Record backend for this state's table; None resolves to the
    #: process default (``REPRO_COLUMNAR``).
    columnar: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.columnar is None:
            self.columnar = COLUMNAR_DEFAULT
        #: Dense interned channel id (see :func:`channel_id`): stable
        #: per process, used wherever per-channel state wants integer
        #: keys instead of object hashing.
        self.cid = channel_id(self.channel)

    def new_record(self) -> DownstreamRecordType:
        """A fresh default downstream record on this state's backend."""
        return DownstreamRecord() if self.columnar else DictDownstreamRecord()

    def total(self, validated_only: bool = True) -> int:
        """Sum of downstream subscriber counts (the value sent upstream)."""
        return sum(
            rec.count
            for rec in self.downstream.values()
            if rec.validated or not validated_only
        )

    def has_downstream(self) -> bool:
        return any(rec.count > 0 for rec in self.downstream.values())

    def downstream_links(self) -> int:
        """Tree links below this node (excludes the host-local record
        and aggregated subscriber-block records, which are not links)."""
        return sum(
            1
            for name, rec in self.downstream.items()
            if not is_pseudo_neighbor(name) and rec.count > 0
        )

    def unvalidated(self) -> list[str]:
        return [name for name, rec in self.downstream.items() if not rec.validated]


def management_state_bytes(
    state: ChannelState, outstanding_counts: int = 1, authenticated: bool = False
) -> int:
    """The §5.2 accounting applied to one live channel state.

    Each count activity keeps one 32-byte [channel, countId, count]
    record per neighbor (downstream neighbors plus the upstream one);
    tree maintenance itself is one such activity, so the floor is one
    record set. Authenticated channels add 8 bytes for K(S,E).
    """
    neighbor_records = len(state.downstream) + (1 if state.upstream else 0)
    total = neighbor_records * max(outstanding_counts, 1) * COUNT_RECORD_BYTES
    if authenticated:
        total += KEY_BYTES
    return total


def paper_model_channel_bytes(
    fanout: int = 2, outstanding_counts: int = 2, authenticated: bool = True
) -> int:
    """§5.2's worked example: "assume an average fan-out of 2 (so three
    records including the upstream record) and assume 2 counts
    outstanding at any time on a channel, the DRAM memory cost per
    channel is 192 bytes ... Adding another eight bytes to store
    K(S,E), the total size is 200 bytes."

    >>> paper_model_channel_bytes()
    200
    """
    neighbor_records = fanout + 1
    total = neighbor_records * outstanding_counts * COUNT_RECORD_BYTES
    if authenticated:
        total += KEY_BYTES
    return total
