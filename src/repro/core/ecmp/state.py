"""Per-channel ECMP state records.

A router on a channel's distribution tree records, per §3.2: its
upstream (RPF) neighbor, "the per-channel subscriber count for each
interface" (we key by neighbor, which is 1:1 with interfaces on
point-to-point links), and — for authenticated channels — the key
material in flight or cached.

§5.2 prices this state: a count-activity record is "roughly 16 bytes,
namely [channel, countId, count]", doubled to 32 to allow for
implementation fields; with an average fanout of 2 (three records
including the upstream record) and 2 outstanding counts per channel,
"the DRAM memory cost per channel is 192 bytes ... Adding another
eight bytes to store K(S,E), the total size is 200 bytes."
:func:`management_state_bytes` reproduces that accounting from live
state so the ``T2`` benchmark can compare model vs measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.channel import Channel
from repro.core.keys import KEY_BYTES, ChannelKey
from repro.core.proactive import ProactiveCounter

#: Pseudo-neighbor name for this node's own (host-local) subscriptions.
LOCAL = "__local__"

#: Name prefix for aggregated subscriber-block records (see
#: :mod:`repro.core.blocks`). Like LOCAL, a block pseudo-neighbor has
#: no peer node: it contributes to counts but never to the FIB's
#: outgoing set, wire sends, or query fan-out.
BLOCK_PREFIX = "__block__:"


def is_pseudo_neighbor(name: str) -> bool:
    """True for downstream-record keys that are not real neighbors
    (the LOCAL record and subscriber-block records)."""
    return name == LOCAL or name.startswith(BLOCK_PREFIX)

#: §5.2's raw count-activity record: [channel (7), countId (2), count (4)]
#: rounded to 16, then doubled "to allow for implementation fields".
COUNT_RECORD_BYTES = 32


@dataclass
class DownstreamRecord:
    """State for one downstream neighbor (or LOCAL) on a channel."""

    count: int = 0
    #: False while an authenticated subscription awaits validation.
    validated: bool = True
    #: The key this neighbor presented (kept until validation resolves).
    presented_key: Optional[ChannelKey] = None
    updated_at: float = 0.0
    #: True for neighbors managed in UDP mode (soft state, needs refresh).
    udp: bool = False


@dataclass
class ChannelState:
    """Everything one node knows about one channel."""

    channel: Channel
    #: Upstream neighbor name toward S; None at the source's own node.
    upstream: Optional[str] = None
    #: Per-downstream-neighbor subscriber counts (LOCAL for own subs).
    downstream: dict[str, DownstreamRecord] = field(default_factory=dict)
    #: Count last advertised upstream (TCP-mode "sum provided upstream").
    advertised: int = 0
    #: Key forwarded upstream, awaiting a CountResponse verdict.
    pending_key: Optional[ChannelKey] = None
    #: Proactive counters, per countId, when §6 mode is active.
    proactive: dict[int, ProactiveCounter] = field(default_factory=dict)
    #: Latest unsolicited per-neighbor values for proactive countIds
    #: other than subscriberId: countId -> neighbor -> value.
    proactive_values: dict[int, dict[str, int]] = field(default_factory=dict)
    #: When this node last switched upstream (hysteresis input).
    upstream_changed_at: float = 0.0
    created_at: float = 0.0

    def total(self, validated_only: bool = True) -> int:
        """Sum of downstream subscriber counts (the value sent upstream)."""
        return sum(
            rec.count
            for rec in self.downstream.values()
            if rec.validated or not validated_only
        )

    def has_downstream(self) -> bool:
        return any(rec.count > 0 for rec in self.downstream.values())

    def downstream_links(self) -> int:
        """Tree links below this node (excludes the host-local record
        and aggregated subscriber-block records, which are not links)."""
        return sum(
            1
            for name, rec in self.downstream.items()
            if not is_pseudo_neighbor(name) and rec.count > 0
        )

    def unvalidated(self) -> list[str]:
        return [name for name, rec in self.downstream.items() if not rec.validated]


def management_state_bytes(
    state: ChannelState, outstanding_counts: int = 1, authenticated: bool = False
) -> int:
    """The §5.2 accounting applied to one live channel state.

    Each count activity keeps one 32-byte [channel, countId, count]
    record per neighbor (downstream neighbors plus the upstream one);
    tree maintenance itself is one such activity, so the floor is one
    record set. Authenticated channels add 8 bytes for K(S,E).
    """
    neighbor_records = len(state.downstream) + (1 if state.upstream else 0)
    total = neighbor_records * max(outstanding_counts, 1) * COUNT_RECORD_BYTES
    if authenticated:
        total += KEY_BYTES
    return total


def paper_model_channel_bytes(
    fanout: int = 2, outstanding_counts: int = 2, authenticated: bool = True
) -> int:
    """§5.2's worked example: "assume an average fan-out of 2 (so three
    records including the upstream record) and assume 2 counts
    outstanding at any time on a channel, the DRAM memory cost per
    channel is 192 bytes ... Adding another eight bytes to store
    K(S,E), the total size is 200 bytes."

    >>> paper_model_channel_bytes()
    200
    """
    neighbor_records = fanout + 1
    total = neighbor_records * outstanding_counts * COUNT_RECORD_BYTES
    if authenticated:
        total += KEY_BYTES
    return total
