"""The countId space.

CountIds identify what a ``CountQuery``/``Count`` is counting. The
paper reserves specific values and ranges:

* ``subscriberId`` — "designates the number of subscribers in a
  subtree" (§3.2); drives distribution-tree maintenance.
* ``neighbors`` — "designates neighboring EXPRESS routers" (§3.3),
  used by periodic neighbor discovery.
* an *all channels* id whose query "solicits Count retransmissions
  from all hosts for all channels, analogous to an IGMP general query"
  (§3.3).
* "CountIds corresponding to some network-layer resources are not
  propagated all the way to leaf hosts. These counts use a separate
  range of the CountId space" (§3.1 footnote) — e.g. link counting for
  inter-domain settlements.
* "A sub-range of CountIds is designated for locally-defined use"
  (§3.1) and "a range of countIds is reserved to have
  application-defined semantics" (§2.2.1).

The concrete numeric layout below is this implementation's choice (the
paper does not pin values): a 16-bit space split into reserved,
network-layer, locally-defined, and application ranges.
"""

from __future__ import annotations

from repro.errors import ProtocolError


class CountIdError(ProtocolError):
    """A countId is out of range or used outside its range's rules."""


#: 16-bit countId space.
COUNT_ID_MAX = 0xFFFF

# -- reserved well-known ids -------------------------------------------------

#: Number of subscribers in a subtree; maintains the distribution tree.
SUBSCRIBER_ID = 0x0001
#: Neighboring EXPRESS routers (periodic discovery).
NEIGHBORS_ID = 0x0002
#: Solicits Count retransmission for all channels (general query).
ALL_CHANNELS_ID = 0x0003
#: Links used within a domain (network-layer resource counting).
LINK_COUNT_ID = 0x0100
#: Weighted tree-size measure (mentioned in §2.1 as a count type).
TREE_SIZE_ID = 0x0101

# -- ranges -------------------------------------------------------------------

#: Reserved protocol ids (tree maintenance, discovery).
RESERVED_RANGE = range(0x0001, 0x0100)
#: Network-layer resource ids: never forwarded to leaf hosts.
NETWORK_LAYER_RANGE = range(0x0100, 0x1000)
#: Locally-defined use within a domain (§3.1).
LOCAL_USE_RANGE = range(0x1000, 0x4000)
#: Application-defined semantics (votes, NACK collection, ...).
APPLICATION_RANGE = range(0x4000, 0x10000)


def check_count_id(count_id: int) -> int:
    """Validate range; returns ``count_id`` for chaining."""
    if not 0 < count_id <= COUNT_ID_MAX:
        raise CountIdError(f"countId {count_id:#x} outside the 16-bit space")
    return count_id


def is_network_layer_id(count_id: int) -> bool:
    """True for ids counting network-layer resources."""
    check_count_id(count_id)
    return count_id in NETWORK_LAYER_RANGE


def is_application_id(count_id: int) -> bool:
    """True for ids with application-defined semantics."""
    check_count_id(count_id)
    return count_id in APPLICATION_RANGE


def is_local_use_id(count_id: int) -> bool:
    """True for ids designated for locally-defined (intra-domain) use."""
    check_count_id(count_id)
    return count_id in LOCAL_USE_RANGE


def propagates_to_hosts(count_id: int) -> bool:
    """Whether a CountQuery for this id is forwarded to leaf hosts.

    Network-layer resource counts stop at routers (§3.1 footnote);
    everything else reaches subscriber hosts, where the OS either
    answers immediately (``subscriberId``) or hands the query to the
    application (application range).
    """
    check_count_id(count_id)
    return count_id not in NETWORK_LAYER_RANGE
