"""ECMP wire messages and codecs.

"ECMP consists of three messages: CountQuery(channel, countId,
timeout), Count(channel, countId, count, [K(S,E)]),
CountResponse(channel, countId, status)" (§3).

Wire sizes are load-bearing for the §5.3 bandwidth analysis: "Without
authentication, approximately 92 16-byte Count messages fit in a
1480-byte maximum-sized TCP segment on Ethernet." Our ``Count`` packs
to exactly 16 bytes unauthenticated (24 with the 8-byte key), and
``CountQuery`` to 16 (28 with proactive-curve parameters). The field
layout within those sizes is this implementation's choice; the paper
pins only the totals.

§5.3's segment-packing arithmetic presumes the TCP-mode session
coalesces many small messages into one segment. :class:`EcmpBatch` is
the explicit on-wire form of that: a ``MSG_BATCH`` frame with a 4-byte
header and a 2-byte length prefix per record, each record being one
ordinary encoded message (keys and proactive extensions included).
Decoding is strict — a trailing partial record is a :class:`CodecError`,
never a silent truncation — so a TCP-stream reassembly bug cannot
masquerade as a short batch. See ``docs/ecmp-wire.md``.

The codec is *zero-copy* by default: a batch encodes into one
preallocated ``bytearray`` via precompiled ``Struct.pack_into`` at
running offsets (no per-record ``bytes`` concatenation), and decode
reads fields with ``unpack_from`` over ``memoryview`` slices — the
only per-record copy on decode is the 8 key bytes an authenticated
Count must own. The frames are byte-identical to the legacy
concatenating codec (kept in-tree as ``_encode_*_legacy`` /
``_decode_*_legacy``), which ``REPRO_ZERO_COPY=0`` or
:func:`set_zero_copy` selects; the property suite pins the two paths
equal on frames, parses, and every strictness error.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Union

from repro.core.channel import Channel
from repro.core.ecmp.countids import check_count_id
from repro.core.keys import KEY_BYTES, ChannelKey
from repro.core.proactive import ToleranceCurve
from repro.errors import CodecError

#: Unauthenticated Count wire size (92 fit in one 1480-byte segment).
COUNT_WIRE_BYTES = 16
#: CountQuery wire size without proactive parameters.
QUERY_WIRE_BYTES = 16
#: CountResponse wire size.
RESPONSE_WIRE_BYTES = 12

_TYPE_QUERY = 0x01
_TYPE_COUNT = 0x02
_TYPE_RESPONSE = 0x03
_TYPE_BATCH = 0x10

#: Public wire-type id of a coalesced frame (``docs/ecmp-wire.md``).
MSG_BATCH = _TYPE_BATCH

_FLAG_KEY = 0x01
_FLAG_PROACTIVE = 0x02

#: Batch frame header: type(1) flags(1) record-count(2).
_BATCH_HEAD = struct.Struct("!BBH")
#: Per-record length prefix inside a batch frame.
_RECORD_LEN = struct.Struct("!H")

#: Fixed batch-frame overhead and per-record framing cost, used by the
#: §5.3 packing arithmetic in ``repro.costmodel.maintenance``.
BATCH_HEADER_BYTES = _BATCH_HEAD.size
RECORD_FRAME_BYTES = _RECORD_LEN.size

#: Records a single frame may carry (record-count is a uint16).
MAX_BATCH_RECORDS = 0xFFFF

#: type(1) flags(1) countId(2) source(4) dest-suffix(3) ... per-type tail
_HEAD = struct.Struct("!BBHI3s")
_COUNT_TAIL = struct.Struct("!IB")  # count(4) reserved(1)
_QUERY_TAIL = struct.Struct("!IB")  # timeout-ms(4) reserved(1)
_RESPONSE_TAIL = struct.Struct("!B")  # status(1)
_PROACTIVE_EXT = struct.Struct("!fff")  # e_max alpha tau


class CountStatus(Enum):
    """CountResponse statuses: a router "can either acknowledge or
    reject a Count message ... indicating an unsupported count or an
    invalid authenticator" (§3.1)."""

    OK = 0
    UNSUPPORTED_COUNT = 1
    INVALID_AUTHENTICATOR = 2
    NO_SUCH_CHANNEL = 3


@dataclass(frozen=True)
class CountQuery:
    """Solicits Count replies down the distribution tree.

    ``timeout`` is in seconds; it is decremented hop-by-hop so children
    time out before their parents (§3.1). When ``proactive`` is set the
    query doubles as the §6 request that routers maintain this count
    proactively with the given tolerance curve.
    """

    channel: Channel
    count_id: int
    timeout: float
    proactive: Optional[ToleranceCurve] = None

    def __post_init__(self) -> None:
        check_count_id(self.count_id)
        if self.timeout < 0:
            raise CodecError(f"negative timeout {self.timeout}")

    def wire_size(self) -> int:
        return QUERY_WIRE_BYTES + (_PROACTIVE_EXT.size if self.proactive else 0)


@dataclass(frozen=True)
class Count:
    """A count report; doubles as subscribe (non-zero) / unsubscribe
    (zero) when ``count_id`` is ``subscriberId``. ``key`` carries
    K(S,E) for authenticated channels."""

    channel: Channel
    count_id: int
    count: int
    key: Optional[ChannelKey] = None

    def __post_init__(self) -> None:
        check_count_id(self.count_id)
        if not 0 <= self.count <= 0xFFFFFFFF:
            raise CodecError(f"count {self.count} not a uint32")

    def wire_size(self) -> int:
        return COUNT_WIRE_BYTES + (KEY_BYTES if self.key else 0)


@dataclass(frozen=True)
class CountResponse:
    """Acknowledges or rejects a Count (auth results, unsupported ids)."""

    channel: Channel
    count_id: int
    status: CountStatus

    def __post_init__(self) -> None:
        check_count_id(self.count_id)

    def wire_size(self) -> int:
        return RESPONSE_WIRE_BYTES


EcmpMessage = Union[CountQuery, Count, CountResponse]


@dataclass(frozen=True)
class EcmpBatch:
    """A coalesced frame of ECMP messages for one TCP-mode neighbor.

    Records are ordinary messages in send order; the frame exists so a
    flush of N dirty channels costs one wire send instead of N. Batches
    never nest.
    """

    messages: tuple

    def __post_init__(self) -> None:
        if not self.messages:
            raise CodecError("empty batch")
        if len(self.messages) > MAX_BATCH_RECORDS:
            raise CodecError(f"batch of {len(self.messages)} records overflows uint16")
        for message in self.messages:
            if isinstance(message, EcmpBatch):
                raise CodecError("batches cannot nest")

    def wire_size(self) -> int:
        return BATCH_HEADER_BYTES + sum(
            RECORD_FRAME_BYTES + m.wire_size() for m in self.messages
        )

    def __len__(self) -> int:
        return len(self.messages)


#: ``REPRO_ZERO_COPY=0`` is the codec fast path's escape hatch: every
#: encode/decode goes through the legacy concatenating implementation.
ZERO_COPY_DEFAULT = os.environ.get("REPRO_ZERO_COPY", "1") != "0"

_zero_copy = ZERO_COPY_DEFAULT


def set_zero_copy(enabled: bool) -> bool:
    """Select the zero-copy codec fast path (True) or the legacy
    concatenating codec (False); returns the prior setting. The A/B
    hook used by the ``channel_surf`` benchmark baseline pass and the
    codec-equivalence property suite."""
    global _zero_copy
    prior = _zero_copy
    _zero_copy = bool(enabled)
    return prior


# ---------------------------------------------------------------------------
# zero-copy fast path
# ---------------------------------------------------------------------------

_MESSAGE_TYPES = (Count, CountQuery, CountResponse)


def _encode_into(message: EcmpMessage, buf: bytearray, offset: int) -> int:
    """Pack one message into ``buf`` at ``offset``; returns the end
    offset. The writer half of the zero-copy path: precompiled structs
    pack straight into the shared buffer, no intermediate bytes."""
    if isinstance(message, Count):
        flags = _FLAG_KEY if message.key else 0
        _HEAD.pack_into(
            buf,
            offset,
            _TYPE_COUNT,
            flags,
            message.count_id,
            message.channel.source,
            message.channel.suffix.to_bytes(3, "big"),
        )
        offset += _HEAD.size
        _COUNT_TAIL.pack_into(buf, offset, message.count, 0)
        offset += _COUNT_TAIL.size
        if message.key:
            buf[offset : offset + KEY_BYTES] = message.key.value
            offset += KEY_BYTES
        return offset
    if isinstance(message, CountQuery):
        flags = _FLAG_PROACTIVE if message.proactive else 0
        timeout_ms = int(round(message.timeout * 1000))
        if timeout_ms > 0xFFFFFFFF:
            raise CodecError(f"timeout {message.timeout}s unencodable")
        _HEAD.pack_into(
            buf,
            offset,
            _TYPE_QUERY,
            flags,
            message.count_id,
            message.channel.source,
            message.channel.suffix.to_bytes(3, "big"),
        )
        offset += _HEAD.size
        _QUERY_TAIL.pack_into(buf, offset, timeout_ms, 0)
        offset += _QUERY_TAIL.size
        if message.proactive:
            curve = message.proactive
            _PROACTIVE_EXT.pack_into(buf, offset, curve.e_max, curve.alpha, curve.tau)
            offset += _PROACTIVE_EXT.size
        return offset
    if isinstance(message, CountResponse):
        _HEAD.pack_into(
            buf,
            offset,
            _TYPE_RESPONSE,
            0,
            message.count_id,
            message.channel.source,
            message.channel.suffix.to_bytes(3, "big"),
        )
        offset += _HEAD.size
        _RESPONSE_TAIL.pack_into(buf, offset, message.status.value)
        return offset + _RESPONSE_TAIL.size
    raise CodecError(f"not an ECMP message: {message!r}")


def encode_message(message: EcmpMessage) -> bytes:
    """Serialize any ECMP message to its wire form."""
    if not _zero_copy:
        return _encode_message_legacy(message)
    if isinstance(message, EcmpBatch):
        return encode_batch(message.messages)
    if not isinstance(message, _MESSAGE_TYPES):
        raise CodecError(f"not an ECMP message: {message!r}")
    buf = bytearray(message.wire_size())
    _encode_into(message, buf, 0)
    return bytes(buf)


def decode_message(data) -> Union[EcmpMessage, EcmpBatch]:
    """Parse a wire buffer back into a message object.

    Strict: the buffer must be exactly one message. A short buffer *or*
    trailing bytes beyond the message's declared shape raise
    :class:`CodecError` — a framing layer that mis-slices a TCP stream
    must fail loudly, not deliver a plausible prefix.

    Accepts ``bytes`` or a ``memoryview`` (how :func:`decode_batch`
    hands in record windows without copying): fields are read in place
    with ``unpack_from``; only an authenticated Count's 8 key bytes
    are copied out of the buffer.
    """
    if not _zero_copy:
        return _decode_message_legacy(
            data if isinstance(data, bytes) else bytes(data)
        )
    size = len(data)
    if size < _HEAD.size:
        raise CodecError(f"ECMP message truncated: {size} bytes")
    msg_type, flags, count_id, source, suffix_bytes = _HEAD.unpack_from(data, 0)
    if msg_type == _TYPE_BATCH:
        return EcmpBatch(messages=tuple(decode_batch(data)))
    channel = Channel.of(source, int.from_bytes(suffix_bytes, "big"))
    body_len = size - _HEAD.size

    if msg_type == _TYPE_COUNT:
        expected = _COUNT_TAIL.size + (KEY_BYTES if flags & _FLAG_KEY else 0)
        if body_len < expected:
            raise CodecError("Count body truncated")
        if body_len > expected:
            raise CodecError(f"{body_len - expected} trailing bytes after Count")
        count, _reserved = _COUNT_TAIL.unpack_from(data, _HEAD.size)
        key = None
        if flags & _FLAG_KEY:
            key_offset = _HEAD.size + _COUNT_TAIL.size
            key = ChannelKey(bytes(data[key_offset : key_offset + KEY_BYTES]))
        return Count(channel=channel, count_id=count_id, count=count, key=key)

    if msg_type == _TYPE_QUERY:
        expected = _QUERY_TAIL.size + (
            _PROACTIVE_EXT.size if flags & _FLAG_PROACTIVE else 0
        )
        if body_len < expected:
            raise CodecError("CountQuery body truncated")
        if body_len > expected:
            raise CodecError(f"{body_len - expected} trailing bytes after CountQuery")
        timeout_ms, _reserved = _QUERY_TAIL.unpack_from(data, _HEAD.size)
        proactive = None
        if flags & _FLAG_PROACTIVE:
            e_max, alpha, tau = _PROACTIVE_EXT.unpack_from(
                data, _HEAD.size + _QUERY_TAIL.size
            )
            proactive = ToleranceCurve(e_max=e_max, alpha=alpha, tau=tau)
        return CountQuery(
            channel=channel,
            count_id=count_id,
            timeout=timeout_ms / 1000.0,
            proactive=proactive,
        )

    if msg_type == _TYPE_RESPONSE:
        if body_len < _RESPONSE_TAIL.size:
            raise CodecError("CountResponse body truncated")
        if body_len > _RESPONSE_TAIL.size:
            raise CodecError(
                f"{body_len - _RESPONSE_TAIL.size} trailing bytes after CountResponse"
            )
        (status_value,) = _RESPONSE_TAIL.unpack_from(data, _HEAD.size)
        try:
            status = CountStatus(status_value)
        except ValueError:
            raise CodecError(f"unknown CountResponse status {status_value}") from None
        return CountResponse(channel=channel, count_id=count_id, status=status)

    raise CodecError(f"unknown ECMP message type {msg_type:#x}")


def encode_batch(messages: Sequence[EcmpMessage]) -> bytes:
    """Serialize ``messages`` into one ``MSG_BATCH`` frame.

    Frame layout: ``type(1)=0x10 flags(1)=0 record_count(2)`` followed
    by ``record_count`` records, each ``length(2) + encoded message``.

    The frame is sized up front from ``wire_size()`` and every record
    packs straight into one preallocated ``bytearray`` — a flush of N
    coalesced messages costs one allocation, not 2N+1 intermediate
    ``bytes`` objects and a join.
    """
    if not _zero_copy:
        return _encode_batch_legacy(messages)
    if not messages:
        raise CodecError("cannot encode an empty batch")
    if len(messages) > MAX_BATCH_RECORDS:
        raise CodecError(f"batch of {len(messages)} records overflows uint16")
    total = _BATCH_HEAD.size
    for message in messages:
        if isinstance(message, EcmpBatch):
            raise CodecError("batches cannot nest")
        if not isinstance(message, _MESSAGE_TYPES):
            raise CodecError(f"not an ECMP message: {message!r}")
        total += _RECORD_LEN.size + message.wire_size()
    buf = bytearray(total)
    _BATCH_HEAD.pack_into(buf, 0, _TYPE_BATCH, 0, len(messages))
    offset = _BATCH_HEAD.size
    for message in messages:
        start = offset + _RECORD_LEN.size
        end = _encode_into(message, buf, start)
        _RECORD_LEN.pack_into(buf, offset, end - start)
        offset = end
    return bytes(buf)


def decode_batch(data) -> list:
    """Parse a ``MSG_BATCH`` frame back into its message list.

    Round-trip safe for every record type (keyed Counts, proactive
    CountQuery extensions). Raises :class:`CodecError` on a wrong type
    byte, a record count that disagrees with the payload, a trailing
    partial record, or trailing bytes after the final record.

    Records are handed to :func:`decode_message` as ``memoryview``
    windows over the frame — no per-record ``bytes`` copy.
    """
    if not _zero_copy:
        return _decode_batch_legacy(
            data if isinstance(data, bytes) else bytes(data)
        )
    size = len(data)
    if size < _BATCH_HEAD.size:
        raise CodecError(f"batch header truncated: {size} bytes")
    msg_type, _flags, record_count = _BATCH_HEAD.unpack_from(data, 0)
    if msg_type != _TYPE_BATCH:
        raise CodecError(f"not a batch frame (type {msg_type:#x})")
    if record_count == 0:
        raise CodecError("batch declares zero records")
    view = data if isinstance(data, memoryview) else memoryview(data)
    offset = _BATCH_HEAD.size
    messages = []
    for index in range(record_count):
        if size - offset < _RECORD_LEN.size:
            raise CodecError(f"batch record {index} length prefix truncated")
        (length,) = _RECORD_LEN.unpack_from(data, offset)
        offset += _RECORD_LEN.size
        if size - offset < length:
            raise CodecError(
                f"batch record {index} truncated: declared {length} bytes, "
                f"{size - offset} remain"
            )
        messages.append(decode_message(view[offset : offset + length]))
        offset += length
    if offset != size:
        raise CodecError(f"{size - offset} trailing bytes after batch records")
    return messages


# ---------------------------------------------------------------------------
# legacy concatenating codec (REPRO_ZERO_COPY=0; the live equivalence
# reference the property suite pins the fast path against, and the
# channel_surf benchmark's baseline)
# ---------------------------------------------------------------------------


def _pack_head(msg_type: int, flags: int, count_id: int, channel: Channel) -> bytes:
    return _HEAD.pack(
        msg_type, flags, count_id, channel.source, channel.suffix.to_bytes(3, "big")
    )


def _encode_message_legacy(message: EcmpMessage) -> bytes:
    if isinstance(message, Count):
        flags = _FLAG_KEY if message.key else 0
        data = _pack_head(_TYPE_COUNT, flags, message.count_id, message.channel)
        data += _COUNT_TAIL.pack(message.count, 0)
        if message.key:
            data += message.key.value
        return data
    if isinstance(message, CountQuery):
        flags = _FLAG_PROACTIVE if message.proactive else 0
        timeout_ms = int(round(message.timeout * 1000))
        if timeout_ms > 0xFFFFFFFF:
            raise CodecError(f"timeout {message.timeout}s unencodable")
        data = _pack_head(_TYPE_QUERY, flags, message.count_id, message.channel)
        data += _QUERY_TAIL.pack(timeout_ms, 0)
        if message.proactive:
            curve = message.proactive
            data += _PROACTIVE_EXT.pack(curve.e_max, curve.alpha, curve.tau)
        return data
    if isinstance(message, CountResponse):
        data = _pack_head(_TYPE_RESPONSE, 0, message.count_id, message.channel)
        data += _RESPONSE_TAIL.pack(message.status.value)
        return data
    if isinstance(message, EcmpBatch):
        return _encode_batch_legacy(message.messages)
    raise CodecError(f"not an ECMP message: {message!r}")


def _decode_message_legacy(data: bytes) -> Union[EcmpMessage, EcmpBatch]:
    if len(data) < _HEAD.size:
        raise CodecError(f"ECMP message truncated: {len(data)} bytes")
    msg_type, flags, count_id, source, suffix_bytes = _HEAD.unpack(data[: _HEAD.size])
    if msg_type == _TYPE_BATCH:
        return EcmpBatch(messages=tuple(_decode_batch_legacy(data)))
    channel = Channel.of(source, int.from_bytes(suffix_bytes, "big"))
    body = data[_HEAD.size :]

    if msg_type == _TYPE_COUNT:
        expected = _COUNT_TAIL.size + (KEY_BYTES if flags & _FLAG_KEY else 0)
        if len(body) < expected:
            raise CodecError("Count body truncated")
        if len(body) > expected:
            raise CodecError(f"{len(body) - expected} trailing bytes after Count")
        count, _reserved = _COUNT_TAIL.unpack(body[: _COUNT_TAIL.size])
        key = ChannelKey(body[_COUNT_TAIL.size :]) if flags & _FLAG_KEY else None
        return Count(channel=channel, count_id=count_id, count=count, key=key)

    if msg_type == _TYPE_QUERY:
        expected = _QUERY_TAIL.size + (
            _PROACTIVE_EXT.size if flags & _FLAG_PROACTIVE else 0
        )
        if len(body) < expected:
            raise CodecError("CountQuery body truncated")
        if len(body) > expected:
            raise CodecError(f"{len(body) - expected} trailing bytes after CountQuery")
        timeout_ms, _reserved = _QUERY_TAIL.unpack(body[: _QUERY_TAIL.size])
        proactive = None
        if flags & _FLAG_PROACTIVE:
            e_max, alpha, tau = _PROACTIVE_EXT.unpack(body[_QUERY_TAIL.size :])
            proactive = ToleranceCurve(e_max=e_max, alpha=alpha, tau=tau)
        return CountQuery(
            channel=channel,
            count_id=count_id,
            timeout=timeout_ms / 1000.0,
            proactive=proactive,
        )

    if msg_type == _TYPE_RESPONSE:
        if len(body) < _RESPONSE_TAIL.size:
            raise CodecError("CountResponse body truncated")
        if len(body) > _RESPONSE_TAIL.size:
            raise CodecError(
                f"{len(body) - _RESPONSE_TAIL.size} trailing bytes after CountResponse"
            )
        (status_value,) = _RESPONSE_TAIL.unpack(body)
        try:
            status = CountStatus(status_value)
        except ValueError:
            raise CodecError(f"unknown CountResponse status {status_value}") from None
        return CountResponse(channel=channel, count_id=count_id, status=status)

    raise CodecError(f"unknown ECMP message type {msg_type:#x}")


def _encode_batch_legacy(messages: Sequence[EcmpMessage]) -> bytes:
    if not messages:
        raise CodecError("cannot encode an empty batch")
    if len(messages) > MAX_BATCH_RECORDS:
        raise CodecError(f"batch of {len(messages)} records overflows uint16")
    parts = [_BATCH_HEAD.pack(_TYPE_BATCH, 0, len(messages))]
    for message in messages:
        if isinstance(message, EcmpBatch):
            raise CodecError("batches cannot nest")
        record = _encode_message_legacy(message)
        parts.append(_RECORD_LEN.pack(len(record)))
        parts.append(record)
    return b"".join(parts)


def _decode_batch_legacy(data: bytes) -> list:
    if len(data) < _BATCH_HEAD.size:
        raise CodecError(f"batch header truncated: {len(data)} bytes")
    msg_type, _flags, record_count = _BATCH_HEAD.unpack(data[: _BATCH_HEAD.size])
    if msg_type != _TYPE_BATCH:
        raise CodecError(f"not a batch frame (type {msg_type:#x})")
    if record_count == 0:
        raise CodecError("batch declares zero records")
    offset = _BATCH_HEAD.size
    messages = []
    for index in range(record_count):
        if len(data) - offset < _RECORD_LEN.size:
            raise CodecError(f"batch record {index} length prefix truncated")
        (length,) = _RECORD_LEN.unpack(data[offset : offset + _RECORD_LEN.size])
        offset += _RECORD_LEN.size
        if len(data) - offset < length:
            raise CodecError(
                f"batch record {index} truncated: declared {length} bytes, "
                f"{len(data) - offset} remain"
            )
        messages.append(_decode_message_legacy(data[offset : offset + length]))
        offset += length
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after batch records")
    return messages
