"""ECMP wire messages and codecs.

"ECMP consists of three messages: CountQuery(channel, countId,
timeout), Count(channel, countId, count, [K(S,E)]),
CountResponse(channel, countId, status)" (§3).

Wire sizes are load-bearing for the §5.3 bandwidth analysis: "Without
authentication, approximately 92 16-byte Count messages fit in a
1480-byte maximum-sized TCP segment on Ethernet." Our ``Count`` packs
to exactly 16 bytes unauthenticated (24 with the 8-byte key), and
``CountQuery`` to 16 (28 with proactive-curve parameters). The field
layout within those sizes is this implementation's choice; the paper
pins only the totals.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from repro.core.channel import Channel
from repro.core.ecmp.countids import check_count_id
from repro.core.keys import KEY_BYTES, ChannelKey
from repro.core.proactive import ToleranceCurve
from repro.errors import CodecError

#: Unauthenticated Count wire size (92 fit in one 1480-byte segment).
COUNT_WIRE_BYTES = 16
#: CountQuery wire size without proactive parameters.
QUERY_WIRE_BYTES = 16
#: CountResponse wire size.
RESPONSE_WIRE_BYTES = 12

_TYPE_QUERY = 0x01
_TYPE_COUNT = 0x02
_TYPE_RESPONSE = 0x03

_FLAG_KEY = 0x01
_FLAG_PROACTIVE = 0x02

#: type(1) flags(1) countId(2) source(4) dest-suffix(3) ... per-type tail
_HEAD = struct.Struct("!BBHI3s")
_COUNT_TAIL = struct.Struct("!IB")  # count(4) reserved(1)
_QUERY_TAIL = struct.Struct("!IB")  # timeout-ms(4) reserved(1)
_RESPONSE_TAIL = struct.Struct("!B")  # status(1)
_PROACTIVE_EXT = struct.Struct("!fff")  # e_max alpha tau


class CountStatus(Enum):
    """CountResponse statuses: a router "can either acknowledge or
    reject a Count message ... indicating an unsupported count or an
    invalid authenticator" (§3.1)."""

    OK = 0
    UNSUPPORTED_COUNT = 1
    INVALID_AUTHENTICATOR = 2
    NO_SUCH_CHANNEL = 3


@dataclass(frozen=True)
class CountQuery:
    """Solicits Count replies down the distribution tree.

    ``timeout`` is in seconds; it is decremented hop-by-hop so children
    time out before their parents (§3.1). When ``proactive`` is set the
    query doubles as the §6 request that routers maintain this count
    proactively with the given tolerance curve.
    """

    channel: Channel
    count_id: int
    timeout: float
    proactive: Optional[ToleranceCurve] = None

    def __post_init__(self) -> None:
        check_count_id(self.count_id)
        if self.timeout < 0:
            raise CodecError(f"negative timeout {self.timeout}")

    def wire_size(self) -> int:
        return QUERY_WIRE_BYTES + (_PROACTIVE_EXT.size if self.proactive else 0)


@dataclass(frozen=True)
class Count:
    """A count report; doubles as subscribe (non-zero) / unsubscribe
    (zero) when ``count_id`` is ``subscriberId``. ``key`` carries
    K(S,E) for authenticated channels."""

    channel: Channel
    count_id: int
    count: int
    key: Optional[ChannelKey] = None

    def __post_init__(self) -> None:
        check_count_id(self.count_id)
        if not 0 <= self.count <= 0xFFFFFFFF:
            raise CodecError(f"count {self.count} not a uint32")

    def wire_size(self) -> int:
        return COUNT_WIRE_BYTES + (KEY_BYTES if self.key else 0)


@dataclass(frozen=True)
class CountResponse:
    """Acknowledges or rejects a Count (auth results, unsupported ids)."""

    channel: Channel
    count_id: int
    status: CountStatus

    def __post_init__(self) -> None:
        check_count_id(self.count_id)

    def wire_size(self) -> int:
        return RESPONSE_WIRE_BYTES


EcmpMessage = Union[CountQuery, Count, CountResponse]


def _pack_head(msg_type: int, flags: int, count_id: int, channel: Channel) -> bytes:
    return _HEAD.pack(
        msg_type, flags, count_id, channel.source, channel.suffix.to_bytes(3, "big")
    )


def encode_message(message: EcmpMessage) -> bytes:
    """Serialize any ECMP message to its wire form."""
    if isinstance(message, Count):
        flags = _FLAG_KEY if message.key else 0
        data = _pack_head(_TYPE_COUNT, flags, message.count_id, message.channel)
        data += _COUNT_TAIL.pack(message.count, 0)
        if message.key:
            data += message.key.value
        return data
    if isinstance(message, CountQuery):
        flags = _FLAG_PROACTIVE if message.proactive else 0
        timeout_ms = int(round(message.timeout * 1000))
        if timeout_ms > 0xFFFFFFFF:
            raise CodecError(f"timeout {message.timeout}s unencodable")
        data = _pack_head(_TYPE_QUERY, flags, message.count_id, message.channel)
        data += _QUERY_TAIL.pack(timeout_ms, 0)
        if message.proactive:
            curve = message.proactive
            data += _PROACTIVE_EXT.pack(curve.e_max, curve.alpha, curve.tau)
        return data
    if isinstance(message, CountResponse):
        data = _pack_head(_TYPE_RESPONSE, 0, message.count_id, message.channel)
        data += _RESPONSE_TAIL.pack(message.status.value)
        return data
    raise CodecError(f"not an ECMP message: {message!r}")


def decode_message(data: bytes) -> EcmpMessage:
    """Parse a wire buffer back into a message object."""
    if len(data) < _HEAD.size:
        raise CodecError(f"ECMP message truncated: {len(data)} bytes")
    msg_type, flags, count_id, source, suffix_bytes = _HEAD.unpack(data[: _HEAD.size])
    channel = Channel.of(source, int.from_bytes(suffix_bytes, "big"))
    body = data[_HEAD.size :]

    if msg_type == _TYPE_COUNT:
        if len(body) < _COUNT_TAIL.size:
            raise CodecError("Count body truncated")
        count, _reserved = _COUNT_TAIL.unpack(body[: _COUNT_TAIL.size])
        key = None
        if flags & _FLAG_KEY:
            key_bytes = body[_COUNT_TAIL.size : _COUNT_TAIL.size + KEY_BYTES]
            if len(key_bytes) != KEY_BYTES:
                raise CodecError("Count key truncated")
            key = ChannelKey(key_bytes)
        return Count(channel=channel, count_id=count_id, count=count, key=key)

    if msg_type == _TYPE_QUERY:
        if len(body) < _QUERY_TAIL.size:
            raise CodecError("CountQuery body truncated")
        timeout_ms, _reserved = _QUERY_TAIL.unpack(body[: _QUERY_TAIL.size])
        proactive = None
        if flags & _FLAG_PROACTIVE:
            ext = body[_QUERY_TAIL.size : _QUERY_TAIL.size + _PROACTIVE_EXT.size]
            if len(ext) != _PROACTIVE_EXT.size:
                raise CodecError("proactive extension truncated")
            e_max, alpha, tau = _PROACTIVE_EXT.unpack(ext)
            proactive = ToleranceCurve(e_max=e_max, alpha=alpha, tau=tau)
        return CountQuery(
            channel=channel,
            count_id=count_id,
            timeout=timeout_ms / 1000.0,
            proactive=proactive,
        )

    if msg_type == _TYPE_RESPONSE:
        if len(body) < _RESPONSE_TAIL.size:
            raise CodecError("CountResponse body truncated")
        (status_value,) = _RESPONSE_TAIL.unpack(body[: _RESPONSE_TAIL.size])
        try:
            status = CountStatus(status_value)
        except ValueError:
            raise CodecError(f"unknown CountResponse status {status_value}") from None
        return CountResponse(channel=channel, count_id=count_id, status=status)

    raise CodecError(f"unknown ECMP message type {msg_type:#x}")
