"""ECMP — the EXPRESS Count Management Protocol (§3).

"EXPRESS is implemented using ECMP, a single common management protocol
that both maintains the distribution tree and supports source-directed
counting and voting. ... distribution tree construction for a single
source is a restricted case of counting the subscribers in each
subtree."

The protocol is three messages (:mod:`~repro.core.ecmp.messages`):
``CountQuery``, ``Count``, and ``CountResponse``. Subscription is an
unsolicited non-zero ``Count(subscriberId)`` routed toward the source
by RPF; unsubscription is a zero ``Count``; generic counting is a
``CountQuery`` flooded down the tree with ``Count`` sums flowing back
up. :mod:`~repro.core.ecmp.protocol` holds the state machine;
:mod:`~repro.core.ecmp.state` the per-channel records whose size §5.2
accounts for.
"""

from repro.core.ecmp.countids import (
    ALL_CHANNELS_ID,
    NEIGHBORS_ID,
    SUBSCRIBER_ID,
    CountIdError,
    is_application_id,
    is_network_layer_id,
    propagates_to_hosts,
)
from repro.core.ecmp.messages import (
    COUNT_WIRE_BYTES,
    Count,
    CountQuery,
    CountResponse,
    CountStatus,
    decode_message,
    encode_message,
)
from repro.core.ecmp.protocol import CountPropagation, EcmpAgent, NeighborMode

__all__ = [
    "ALL_CHANNELS_ID",
    "COUNT_WIRE_BYTES",
    "Count",
    "CountIdError",
    "CountPropagation",
    "CountQuery",
    "CountResponse",
    "CountStatus",
    "EcmpAgent",
    "NEIGHBORS_ID",
    "NeighborMode",
    "SUBSCRIBER_ID",
    "decode_message",
    "encode_message",
    "is_application_id",
    "is_network_layer_id",
    "propagates_to_hosts",
]
