"""High-level facade assembling a topology into an EXPRESS internetwork.

:class:`ExpressNetwork` wires every node with the three per-node pieces
(ECMP agent, multicast FIB, data-plane forwarder), distinguishes hosts
from routers, reacts to link events by recomputing unicast routing and
re-homing channel trees, and exposes the paper's service interface
(§2.1) through :class:`HostHandle` and :class:`SourceHandle`:

    net = ExpressNetwork(TopologyBuilder.isp())
    src = net.source("h0_0_0")
    ch = src.allocate_channel()
    net.host("h2_1_1").subscribe(ch, on_data=...)
    net.run(until=1.0)
    src.send(ch, size=1316)
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.core.channel import Channel, ChannelAllocator
from repro.core.counting import QueryResult
from repro.core.ecmp.countids import SUBSCRIBER_ID
from repro.core.ecmp.protocol import (
    CountPropagation,
    EcmpAgent,
    NeighborMode,
    SubscriptionHandle,
)
from repro.core.forwarding import ExpressForwarder
from repro.core.keys import ChannelKey
from repro.core.proactive import ToleranceCurve
from repro.core.subcast import build_subcast_packet
from repro.errors import ChannelError, TopologyError
from repro.netsim.packet import Packet
from repro.netsim.topology import Topology
from repro.routing.fib import MulticastFib
from repro.routing.unicast import UnicastRouting

#: MPEG-2 transport payload size used by examples ("4 megabit per second
#: MPEG-2 Super Bowl feed"): 7 TS cells + RTP/UDP/IP headers.
MPEG2_PACKET_BYTES = 1356


class HostHandle:
    """Subscriber-side service interface for one host (§2.1)."""

    def __init__(self, net: "ExpressNetwork", name: str) -> None:
        self.net = net
        self.name = name
        self.ecmp: EcmpAgent = net.ecmp_agents[name]
        self.forwarder: ExpressForwarder = net.forwarders[name]

    def subscribe(
        self,
        channel: Channel,
        key: Optional[ChannelKey] = None,
        on_data: Optional[Callable[[Packet], None]] = None,
        on_status: Optional[Callable[[SubscriptionHandle], None]] = None,
    ) -> SubscriptionHandle:
        """§2.1 newSubscription(channel [, K(S,E)])."""
        return self.ecmp.new_subscription(
            channel, key=key, on_data=on_data, on_status=on_status
        )

    def unsubscribe(self, channel: Channel) -> bool:
        """§2.1 deleteSubscription."""
        return self.ecmp.delete_subscription(channel)

    def is_subscribed(self, channel: Channel) -> bool:
        handle = self.ecmp.subscriptions.get(channel)
        return handle is not None and handle.status == "active"

    def respond_to_count(
        self, channel: Channel, count_id: int, responder: Callable[[], int]
    ) -> None:
        """Register the application's reply for a countId (votes, NACK
        collection, and the other §2.2.1 uses)."""
        self.ecmp.register_count_responder(channel, count_id, responder)

    @property
    def address(self) -> int:
        return self.net.topo.node(self.name).address


class SourceHandle(HostHandle):
    """Source-side service interface (§2.1): send, CountQuery,
    channelKey, subcast, plus autonomous channel allocation (§2.2.1)."""

    def __init__(self, net: "ExpressNetwork", name: str) -> None:
        super().__init__(net, name)
        self.allocator = ChannelAllocator(self.address)

    def allocate_channel(self, suffix: Optional[int] = None) -> Channel:
        """Allocate one of this host's 2^24 channels locally — no
        global address-allocation service involved."""
        return self.allocator.allocate(suffix)

    def release_channel(self, channel: Channel) -> None:
        self.allocator.release(channel)

    def channel_key(self, channel: Channel, key: ChannelKey) -> None:
        """§2.1 channelKey: make the channel authenticated."""
        self.ecmp.channel_key(channel, key)

    def send(self, channel: Channel, payload: Any = None, size: int = MPEG2_PACKET_BYTES) -> int:
        """Transmit one datagram on the channel; returns the fanout at
        the source. Only the designated source may send."""
        if channel.source != self.address:
            raise ChannelError(f"{self.name} is not the source of {channel}")
        packet = Packet(
            src=channel.source,
            dst=channel.group,
            proto="data",
            payload=payload,
            size=size,
            created_at=self.net.sim.now,
        )
        return self.forwarder.emit_local(packet)

    def count_query(
        self,
        channel: Channel,
        count_id: int = SUBSCRIBER_ID,
        timeout: float = 5.0,
        callback: Optional[Callable[[int, bool], None]] = None,
    ) -> QueryResult:
        """§2.1 CountQuery(channel, countId, timeout)."""
        return self.ecmp.count_query(channel, count_id, timeout, callback)

    def enable_proactive(
        self,
        channel: Channel,
        count_id: int = SUBSCRIBER_ID,
        curve: Optional[ToleranceCurve] = None,
    ) -> None:
        """§6: ask the tree to maintain this count proactively."""
        self.ecmp.enable_proactive(channel, count_id, curve)

    def subcast(
        self,
        channel: Channel,
        relay_router: str,
        payload: Any = None,
        size: int = MPEG2_PACKET_BYTES,
    ) -> bool:
        """§2.1 subcast: unicast an encapsulated channel packet to an
        on-tree router, which forwards it to its subtree only."""
        relay = self.net.topo.node(relay_router)
        packet = build_subcast_packet(
            channel,
            relay_address=relay.address,
            payload=payload,
            size=size,
            created_at=self.net.sim.now,
        )
        return self.forwarder.emit_unicast(packet)


class ExpressNetwork:
    """An EXPRESS-enabled internetwork over a :class:`Topology`.

    Parameters
    ----------
    topo:
        The wired topology. Nodes of degree 1 whose name starts with
        ``h`` are treated as hosts unless ``hosts`` is given explicitly.
    hosts:
        Names of host nodes; all other nodes are routers.
    propagation:
        Count-propagation policy applied to every agent.
    default_mode, edge_udp:
        Transport mode between neighbors; with ``edge_udp`` routers use
        UDP mode toward host neighbors (the paper's intended split:
        TCP in the core, UDP at the edge).
    proactive_curve:
        Tolerance curve for PROACTIVE propagation.
    wire_format:
        Serialize every ECMP message to real wire bytes between nodes
        (exercises the codecs end to end; slightly slower).
    columnar, refresh_ring:
        Control-plane fast-path switches passed through to every
        agent: columnar ``StateBank`` records vs the legacy per-record
        dataclass, and the coalesced refresh ring vs the legacy
        full-table scans. ``None`` (default) defers to the
        ``REPRO_COLUMNAR`` / ``REPRO_REFRESH_RING`` process defaults
        (both on); the ``channel_surf`` benchmark pins both off for
        its baseline pass.
    obs:
        Optional :class:`repro.obs.Observability`. When given, the
        topology (simulator, nodes, links) is instrumented, every agent
        and forwarder writes to the shared metrics registry, ECMP
        messages carry causal trace context, and per-node FIB size
        gauges refresh on every registry collection. When None the
        network runs uninstrumented.
    """

    def __init__(
        self,
        topo: Topology,
        hosts: Optional[Iterable[str]] = None,
        propagation: CountPropagation = CountPropagation.TREE_ONLY,
        default_mode: NeighborMode = NeighborMode.TCP,
        edge_udp: bool = False,
        proactive_curve: Optional[ToleranceCurve] = None,
        wire_format: bool = False,
        batching: bool = True,
        obs=None,
        columnar: Optional[bool] = None,
        refresh_ring: Optional[bool] = None,
    ) -> None:
        self.topo = topo
        self.sim = topo.sim
        self.obs = obs
        if obs is not None:
            topo.attach_observability(obs)
        self.routing = UnicastRouting(topo, obs=obs)
        if hosts is None:
            hosts = [
                name
                for name, node in topo.nodes.items()
                if len(node.interfaces) == 1 and name.startswith("h")
            ]
        self.host_names = set(hosts)
        unknown = self.host_names - set(topo.nodes)
        if unknown:
            raise TopologyError(f"unknown host nodes: {sorted(unknown)}")

        self.fibs: dict[str, MulticastFib] = {}
        self.ecmp_agents: dict[str, EcmpAgent] = {}
        self.forwarders: dict[str, ExpressForwarder] = {}
        self._handles: dict[str, HostHandle] = {}
        self._recompute_pending = False

        for name, node in topo.nodes.items():
            fib = MulticastFib()
            role = "host" if name in self.host_names else "router"
            agent = EcmpAgent(
                node,
                self.routing,
                fib,
                role=role,
                propagation=propagation,
                default_mode=default_mode,
                proactive_curve=proactive_curve,
                wire_format=wire_format,
                batching=batching,
                obs=obs,
                columnar=columnar,
                refresh_ring=refresh_ring,
            )
            agent.topology_change_hook = self._on_topology_change
            forwarder = ExpressForwarder(node, self.routing, fib, agent, obs=obs)
            node.register_agent("ecmp", agent)
            node.register_agent("data", forwarder)
            node.register_agent("ipip", forwarder)
            self.fibs[name] = fib
            self.ecmp_agents[name] = agent
            self.forwarders[name] = forwarder

        if obs is not None:
            registry = obs.registry
            g_entries = registry.gauge(
                "fib_entries", "Installed multicast FIB entries per node", ("node",)
            )
            g_bytes = registry.gauge(
                "fib_bytes",
                "FIB memory footprint per node (12-byte entries, Figure 5)",
                ("node",),
            )

            def _refresh_fib_gauges() -> None:
                for node_name, node_fib in self.fibs.items():
                    g_entries.labels(node=node_name).set(len(node_fib))
                    g_bytes.labels(node=node_name).set(node_fib.memory_bytes())

            registry.register_collector(_refresh_fib_gauges)

        if edge_udp:
            for name in self.host_names:
                host_node = topo.nodes[name]
                for router in host_node.neighbors():
                    self.ecmp_agents[router.name].set_neighbor_mode(
                        name, NeighborMode.UDP
                    )
                self.ecmp_agents[name].set_neighbor_mode(
                    host_node.neighbors()[0].name if host_node.neighbors() else "",
                    NeighborMode.UDP,
                )

    # ------------------------------------------------------------------
    # handles
    # ------------------------------------------------------------------

    def host(self, name: str) -> HostHandle:
        """The subscriber-side handle for node ``name``."""
        handle = self._handles.get(name)
        if isinstance(handle, HostHandle) and not isinstance(handle, SourceHandle):
            return handle
        handle = HostHandle(self, name)
        self._handles.setdefault(name, handle)
        return handle

    def source(self, name: str) -> SourceHandle:
        """The source-side handle for node ``name`` (any host can be a
        source — every host owns 2^24 channels)."""
        handle = self._handles.get(name)
        if isinstance(handle, SourceHandle):
            return handle
        handle = SourceHandle(self, name)
        self._handles[name] = handle
        return handle

    def router_agent(self, name: str) -> EcmpAgent:
        return self.ecmp_agents[name]

    def subscriber_block(
        self, edge_router: str, name: Optional[str] = None, udp: bool = False
    ):
        """Create and attach an aggregated :class:`SubscriberBlock`
        behind ``edge_router`` — N leaf receivers as one counted entity
        (see :mod:`repro.core.blocks`). ``udp=True`` tracks the block as
        UDP-mode soft state with one sampled refresh timer."""
        from repro.core.blocks import SubscriberBlock

        agent = self.ecmp_agents.get(edge_router)
        if agent is None:
            raise TopologyError(f"unknown node {edge_router!r}")
        block = SubscriberBlock(
            agent, name if name is not None else f"b{len(agent.blocks)}", udp=udp
        )
        agent.attach_block(block)
        return block

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Start agents (once) and run the simulator."""
        return self.topo.run(until=until, max_events=max_events)

    def start(self, nodes: Optional[list[str]] = None) -> None:
        """Start protocol agents without running the simulator;
        ``nodes`` restricts the start to a subset (see
        :meth:`Topology.start`). Used by the parallel-simulation
        workers, which animate only the nodes their partition owns and
        drive the simulator in lookahead-bounded windows themselves."""
        self.topo.start(nodes=nodes)

    def settle(self, duration: float = 1.0) -> None:
        """Run the simulator forward by ``duration`` seconds — enough
        for control traffic in flight to land on typical topologies."""
        self.run(until=self.sim.now + duration)

    def _on_topology_change(self) -> None:
        if self._recompute_pending:
            return
        self._recompute_pending = True
        self.sim.schedule(0.0, self._recompute_fired, name="net-recompute")

    def _recompute_fired(self) -> None:
        self._recompute_pending = False
        self.routing.recompute()
        for agent in self.ecmp_agents.values():
            agent.reevaluate_upstreams()

    # ------------------------------------------------------------------
    # inspection (used by tests, benches, and EXPERIMENTS.md tables)
    # ------------------------------------------------------------------

    def tree_edges(self, channel: Channel) -> list[tuple[str, str]]:
        """(parent, child) pairs of the channel's distribution tree
        (pseudo-neighbors — local subscriptions and aggregated
        subscriber blocks — are not edges)."""
        from repro.core.ecmp.state import is_pseudo_neighbor

        edges = []
        for name, agent in self.ecmp_agents.items():
            state = agent.channels.get(channel)
            if state is None:
                continue
            for child, record in state.downstream.items():
                if not is_pseudo_neighbor(child) and record.count > 0:
                    edges.append((name, child))
        return sorted(edges)

    def nodes_on_tree(self, channel: Channel) -> set[str]:
        return {
            name
            for name, agent in self.ecmp_agents.items()
            if channel in agent.channels
        }

    def fib_entries_total(self) -> int:
        return sum(len(fib) for fib in self.fibs.values())

    def fib_bytes_total(self) -> int:
        return sum(fib.memory_bytes() for fib in self.fibs.values())

    def control_stats_total(self) -> dict[str, int]:
        """Sum of every agent's ECMP counters (message/byte totals)."""
        totals: dict[str, int] = {}
        for agent in self.ecmp_agents.values():
            for key, value in agent.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def delivery_count(self, channel: Channel) -> int:
        """How many active subscribers have received >= 1 packet."""
        count = 0
        for agent in self.ecmp_agents.values():
            handle = agent.subscriptions.get(channel)
            if handle is not None and handle.packets_received > 0:
                count += 1
        return count

    def subscriber_hosts(self, channel: Channel) -> list[str]:
        return sorted(
            name
            for name, agent in self.ecmp_agents.items()
            if channel in agent.subscriptions
            and agent.subscriptions[channel].status == "active"
        )
