"""The paper's primary contribution: EXPRESS multicast channels.

A channel is ``(S, E)`` — one explicitly designated source ``S`` and a
destination ``E`` in the single-source 232/8 range. This package
implements the channel model end to end:

* :mod:`repro.core.channel` — the channel value type and per-host
  autonomous channel allocation;
* :mod:`repro.core.ecmp` — the EXPRESS Count Management Protocol:
  subscription, distribution-tree maintenance, counting/voting,
  authentication, TCP/UDP neighbor modes, neighbor discovery;
* :mod:`repro.core.forwarding` — the data plane (exact (S,E) FIB
  match, RPF incoming-interface check, subcast decapsulation);
* :mod:`repro.core.proactive` — §6's proactive counting;
* :mod:`repro.core.network` — the high-level facade that assembles a
  topology into an EXPRESS-capable internetwork.
"""

from repro.core.channel import Channel, ChannelAllocator
from repro.core.keys import ChannelKey, KeyCache, make_key
from repro.core.network import ExpressNetwork
from repro.core.proactive import ProactiveCounter, ToleranceCurve

__all__ = [
    "Channel",
    "ChannelAllocator",
    "ChannelKey",
    "ExpressNetwork",
    "KeyCache",
    "ProactiveCounter",
    "ToleranceCurve",
    "make_key",
]
