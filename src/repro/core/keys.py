"""Channel keys and the router key cache.

"A source uses channelKey(channel, K(S,E)) to inform the network that
channel is authenticated. The network layer ensures that only hosts
presenting K(S,E) can subscribe" (§2.1). Routers validate subscriptions
against the key and cache valid keys "so that further authenticated
requests can be denied or accepted locally" (§3.2). Key *distribution*
to subscribers is out of band, exactly as in the paper.

Keys are 8 bytes on the wire (the §5.2 state model adds "another eight
bytes to store K(S,E)"). We derive them from a secret via HMAC-SHA256
truncated to 64 bits; the scheme's strength is not the point — the
protocol behaviour (validate, cache, deny) is.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

from repro.core.channel import Channel, channel_id
from repro.errors import AuthError

#: Wire size of a channel key, per the §5.2 state accounting.
KEY_BYTES = 8


@dataclass(frozen=True)
class ChannelKey:
    """An 8-byte channel authenticator K(S,E)."""

    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) != KEY_BYTES:
            raise AuthError(f"channel key must be {KEY_BYTES} bytes")

    @classmethod
    def from_secret(cls, channel: Channel, secret: bytes) -> "ChannelKey":
        """Derive K(S,E) for ``channel`` from the source's ``secret``."""
        material = f"{channel.source}:{channel.group}".encode()
        digest = hmac.new(secret, material, hashlib.sha256).digest()
        return cls(digest[:KEY_BYTES])

    def __str__(self) -> str:
        return self.value.hex()


def make_key(channel: Channel, secret: bytes = b"express-demo-secret") -> ChannelKey:
    """Convenience wrapper around :meth:`ChannelKey.from_secret`."""
    return ChannelKey.from_secret(channel, secret)


class KeyCache:
    """A router's cache of validated channel keys.

    ``authoritative`` entries came from the source's ``channelKey``
    call (the router *knows* the key); ``learned`` entries were
    validated by an upstream router and cached on the way back down.
    Both allow local accept/deny of later subscriptions.

    Internally the cache is keyed by the dense interned channel id
    (:func:`repro.core.channel.channel_id`) — validation sits on the
    subscription hot path and plain-int hashing beats tuple-hash
    dispatch through the ``Channel`` object.
    """

    def __init__(self) -> None:
        self._authoritative: dict[int, ChannelKey] = {}
        self._learned: dict[int, ChannelKey] = {}
        self.local_accepts = 0
        self.local_denies = 0

    def install_authoritative(self, channel: Channel, key: ChannelKey) -> None:
        """Install the key as the channel's source announced it."""
        self._authoritative[channel_id(channel)] = key

    def learn(self, channel: Channel, key: ChannelKey) -> None:
        """Cache a key an upstream router has validated."""
        self._learned[channel_id(channel)] = key

    def knows(self, channel: Channel) -> bool:
        """True if this router can validate locally."""
        cid = channel_id(channel)
        return cid in self._authoritative or cid in self._learned

    def get(self, channel: Channel) -> Optional[ChannelKey]:
        """The known key for ``channel``, if any."""
        cid = channel_id(channel)
        return self._authoritative.get(cid) or self._learned.get(cid)

    def is_authenticated(self, channel: Channel) -> bool:
        """True if this router knows the channel requires a key."""
        return self.knows(channel)

    def validate(self, channel: Channel, presented: Optional[ChannelKey]) -> Optional[bool]:
        """Locally validate ``presented`` for ``channel``.

        Returns True (accept), False (deny), or None when this router
        has no knowledge and must defer upstream.
        """
        cid = channel_id(channel)
        expected = self._authoritative.get(cid) or self._learned.get(cid)
        if expected is None:
            return None
        ok = presented is not None and hmac.compare_digest(
            presented.value, expected.value
        )
        if ok:
            self.local_accepts += 1
        else:
            self.local_denies += 1
        return ok

    def forget(self, channel: Channel) -> None:
        cid = channel_id(channel)
        self._authoritative.pop(cid, None)
        self._learned.pop(cid, None)

    def memory_bytes(self) -> int:
        """Key-cache footprint at the paper's 8 bytes per key."""
        return (len(self._authoritative) + len(self._learned)) * KEY_BYTES
