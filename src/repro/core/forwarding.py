"""The EXPRESS data plane (§3.4).

"The EXPRESS forwarding procedure is nearly identical to that of
conventional IP multicast. ... when a router receives an EXPRESS
packet, it looks up (S,E) in the FIB and forwards the packet to the set
of outgoing network interfaces, if the incoming interface matches the
FIB entry's, dropping or forwarding to the CPU if not. An EXPRESS
multicast packet that does not match an exact (S,E) entry in the FIB is
simply counted and dropped, as opposed to being forwarded to a
rendezvous point as in PIM-SM, or broadcast, as with PIM-DM and
DVMRP."

The same agent also forwards ordinary unicast datagrams (needed by the
session-relay middleware and by subcast's encapsulated leg) and handles
subcast decapsulation (§2.1): an on-tree router that receives an
IP-in-IP packet addressed to itself, whose inner packet targets a
channel it has state for, "decapsulates the packet received from S and
forwards it toward all downstream channel receivers".
"""

from __future__ import annotations

from typing import Callable

from repro.core.accounting import DeliveryView, flush_agent_views
from repro.core.channel import lookup_channel
from repro.core.ecmp.protocol import EcmpAgent
from repro.errors import ForwardingError
from repro.inet.addr import is_ssm, is_unicast
from repro.netsim.node import Node, ProtocolAgent
from repro.netsim.packet import Packet
from repro.netsim.trace import Counter
from repro.routing.fib import MulticastFib
from repro.routing.unicast import UnicastRouting

PROTO_DATA = "data"
PROTO_IPIP = "ipip"


class ExpressForwarder(ProtocolAgent):
    """Data-plane forwarding for one node.

    Registered for the ``data`` and ``ipip`` protocols. Uses only the
    FIB for multicast decisions — mirroring the paper's point that
    EXPRESS needs *no change* to deployed fast paths.
    """

    def __init__(
        self,
        node: Node,
        routing: UnicastRouting,
        fib: MulticastFib,
        ecmp: EcmpAgent,
        obs=None,
    ) -> None:
        super().__init__(node)
        self.routing = routing
        self.fib = fib
        self.ecmp = ecmp
        self.obs = obs
        if obs is None:
            self.stats = Counter()
            self._m_delivery = None
        else:
            registry = obs.registry
            self.stats = registry.counter_bag(
                "forwarder_events_total",
                "Data-plane forwarding events by node",
                node=node.name,
            )
            self._m_delivery = registry.histogram(
                "delivery_latency_seconds",
                "End-to-end data delivery latency from source emit to "
                "subscriber delivery",
                ("protocol", "node", "channel"),
            )
            # Snapshot boundary: pending delivery-view tallies must land
            # in the block counters and stats bag before any export.
            registry.register_collector(self._flush_views)
        #: Callbacks for unicast datagrams addressed to this node.
        self._unicast_sinks: list[Callable[[Packet], None]] = []

    def _flush_views(self) -> None:
        """Registry collector: apply pending delivery tallies (see
        :mod:`repro.core.accounting`)."""
        flush_agent_views(self.ecmp)

    def on_unicast_delivery(self, callback: Callable[[Packet], None]) -> None:
        """Register an application sink for unicast packets addressed
        to this node (used by the session-relay middleware)."""
        self._unicast_sinks.append(callback)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet, ifindex: int) -> None:
        if packet.proto == PROTO_IPIP:
            self._handle_encapsulated(packet, ifindex)
            return
        if is_ssm(packet.dst):
            self._handle_express(packet, ifindex)
            return
        if is_unicast(packet.dst):
            self._handle_unicast(packet, ifindex)
            return
        # Conventional class-D traffic is outside this forwarder's
        # remit (IGMP-managed LANs handle it); count and drop.
        self.stats.incr("non_express_multicast_drops")

    def _handle_express(self, packet: Packet, ifindex: int) -> None:
        if packet.src == self.node.address:
            # A channel packet claiming to be from us arriving on a
            # wire is spoofed or looped; never process it.
            self.stats.incr("self_spoof_drops")
            return
        delivered = self._deliver_local(packet)
        if self.ecmp.role == "host":
            return  # hosts terminate channels; they never relay
        oifs = self.fib.lookup(packet.src, packet.dst, ifindex)
        self._fan_out(packet, oifs, consume=not delivered)

    def _handle_unicast(self, packet: Packet, ifindex: int) -> None:
        if packet.dst == self.node.address:
            self.stats.incr("unicast_delivered")
            for sink in self._unicast_sinks:
                sink(packet)
            return
        target = self.routing.topo.node_by_address(packet.dst)
        if target is None:
            self.stats.incr("unicast_no_route_drops")
            return
        hop = self.routing.next_hop(self.node.name, target.name)
        if hop is None:
            self.stats.incr("unicast_no_route_drops")
            return
        forwarded = packet.copy()
        forwarded.ttl = packet.ttl - 1
        self.stats.incr("unicast_forwarded")
        self.node.send_to_neighbor(forwarded, self.routing.topo.node(hop))

    def _handle_encapsulated(self, packet: Packet, ifindex: int) -> None:
        if packet.dst != self.node.address:
            # In-transit tunnel packet: plain unicast forwarding.
            self._handle_unicast(packet, ifindex)
            return
        if not packet.is_encapsulated():
            self.stats.incr("bad_decap_drops")
            return
        inner = packet.decapsulate()
        if not is_ssm(inner.dst):
            self.stats.incr("bad_decap_drops")
            return
        # Subcast (§2.1): only the channel source may subcast — enforce
        # by requiring the outer source to equal the inner (channel)
        # source, "preserving the single-source property" (§7.1).
        if packet.src != inner.src:
            self.stats.incr("subcast_auth_drops")
            return
        entry = self.fib.get(inner.src, inner.dst)
        if entry is None:
            self.stats.incr("subcast_off_tree_drops")
            return
        self.stats.incr("subcast_relayed")
        delivered = self._deliver_local(inner)
        self._fan_out(inner, entry.outgoing_interfaces(), consume=not delivered)

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------

    def emit_local(self, packet: Packet) -> int:
        """Inject a channel packet sourced at this node (the channel
        source's own transmission). Skips the incoming-interface check;
        returns the number of interfaces forwarded on."""
        if not is_ssm(packet.dst):
            raise ForwardingError("emit_local is for EXPRESS packets")
        if packet.src != self.node.address:
            raise ForwardingError(
                "only the designated source may emit on a channel"
            )
        delivered = self._deliver_local(packet)  # a source subscribed to itself
        entry = self.fib.get(packet.src, packet.dst)
        if entry is None:
            self.fib.no_match_drops += 1
            return 0
        oifs = entry.outgoing_interfaces()
        self._fan_out(packet, oifs, consume=not delivered)
        return len(oifs)

    def emit_unicast(self, packet: Packet) -> bool:
        """Inject a locally-originated unicast packet."""
        if packet.dst == self.node.address:
            for sink in self._unicast_sinks:
                sink(packet)
            return True
        target = self.routing.topo.node_by_address(packet.dst)
        if target is None:
            return False
        hop = self.routing.next_hop(self.node.name, target.name)
        if hop is None:
            return False
        return self.node.send_to_neighbor(packet, self.routing.topo.node(hop))

    def _fan_out(self, packet: Packet, oifs: list[int], consume: bool = False) -> None:
        """Replicate ``packet`` onto ``oifs``.

        With ``consume=True`` the caller relinquishes ownership of the
        packet object, so the final interface sends the original with
        its TTL decremented in place instead of a defensive copy —
        zero-copy relay on degree-1 tree edges, the common case on deep
        distribution trees. Callers must pass ``consume=False`` whenever
        the packet remains visible elsewhere (delivered to a local
        subscriber whose ``on_data`` may retain it).
        """
        n = len(oifs)
        if n == 0:
            return
        self.stats.incr("multicast_forwarded", n)
        send = self.node.send
        for i in range(n - 1):
            copy = packet.copy()
            copy.ttl = packet.ttl - 1
            send(copy, oifs[i])
        if consume:
            packet.ttl -= 1
            self.stats.incr("fanout_inplace")
            send(packet, oifs[n - 1])
        else:
            copy = packet.copy()
            copy.ttl = packet.ttl - 1
            send(copy, oifs[n - 1])

    def _deliver_local(self, packet: Packet) -> bool:
        """Deliver to a local subscription, if any; True if delivered."""
        # The process-wide interning memo replaces the old per-forwarder
        # cache: every layer (codec, FIB, delivery) shares one canonical
        # Channel per (src, dst), invalid pairs negative-cached.
        channel = lookup_channel(packet.src, packet.dst)
        if channel is None:
            return False
        ecmp = self.ecmp
        if ecmp.channel_blocks:
            # Aggregated final hop: the packet terminates here for every
            # block member — counted arithmetically through a frozen
            # membership view instead of per-block counter churn (see
            # repro.core.accounting.DeliveryView). Per packet this is
            # two integer adds; tallies apply to the blocks in bulk at
            # flush boundaries.
            views = ecmp._delivery_views
            view = views.get(channel)
            if view is None:
                view = views[channel] = DeliveryView(
                    ecmp, channel, self.stats, self._m_delivery,
                    self.node.name,
                )
            if view.version != ecmp.blocks_version:
                view.flush()
                view.refresh()
            if view.members_sum:
                view.pending_packets += 1
                view.pending_bytes += packet.size
                if view.hist is not None:
                    view.hist.observe(self.sim.now - packet.created_at)
        handle = self.ecmp.subscriptions.get(channel)
        if handle is None or handle.status != "active":
            return False
        handle.packets_received += 1
        handle.bytes_received += packet.size
        self.stats.incr("local_deliveries")
        if self._m_delivery is not None:
            self._m_delivery.labels(
                protocol="express", node=self.node.name, channel=str(channel)
            ).observe(self.sim.now - packet.created_at)
        if handle.on_data is not None:
            handle.on_data(packet)
        return True
