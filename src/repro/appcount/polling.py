"""Probabilistic polling estimators (§7.3 baselines).

Two schemes:

* :class:`ProbabilisticPollEstimator` — the source multicasts a poll
  asking each member to reply independently with probability ``p``;
  from ``k`` replies it estimates ``N ≈ k / p``. Simple, one round,
  but the expected reply volume is ``N·p`` — the source must guess
  ``p`` small enough to avoid implosion yet large enough for accuracy.

* :class:`SuppressionPollEstimator` — members schedule replies with
  random delays drawn from an exponential-bias window; the first reply
  is multicast back to the group and *suppresses* the rest (the
  timer-based scalable-feedback family). The group size is inferred
  from the first-reply delay. The paper's §7.3 risk is modelled
  directly: "there is a risk of serious feedback implosion and
  congestion if the suppressing reply ... is lost on any large branch
  of the tree or if misbehaving clients respond when they should not."

Both are Monte-Carlo models over an abstract membership (no packet
simulation needed — the X2 bench compares message *counts* and
accuracy), seeded for reproducibility.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from repro.errors import WorkloadError


@dataclass
class PollOutcome:
    """Result of one probabilistic poll."""

    estimate: float
    replies: int
    messages_at_source: int
    polls_sent: int


class ProbabilisticPollEstimator:
    """Single-round reply-probability polling."""

    def __init__(self, reply_probability: float, seed: int = 0) -> None:
        if not 0 < reply_probability <= 1:
            raise WorkloadError(f"reply probability must be in (0, 1], got {reply_probability}")
        self.p = reply_probability
        self.rng = random.Random(seed)

    def poll(self, group_size: int) -> PollOutcome:
        if group_size < 0:
            raise WorkloadError("group size must be >= 0")
        replies = sum(1 for _ in range(group_size) if self.rng.random() < self.p)
        return PollOutcome(
            estimate=replies / self.p,
            replies=replies,
            messages_at_source=replies,
            polls_sent=1,
        )

    def expected_replies(self, group_size: int) -> float:
        return group_size * self.p

    def relative_stddev(self, group_size: int) -> float:
        """σ/N of the estimator: sqrt(N p (1-p)) / (p N)."""
        if group_size == 0:
            return 0.0
        return math.sqrt(group_size * self.p * (1 - self.p)) / (self.p * group_size)


@dataclass
class SuppressionOutcome:
    """Result of one suppression-based feedback round."""

    estimate: float
    replies: int  # replies that actually reached the source
    messages_at_source: int
    suppression_lost: bool
    implosion: bool  # replies exceeded the implosion threshold


class SuppressionPollEstimator:
    """First-reply suppression with exponentially-biased timers.

    Each member draws a delay ``d = T * log2(1 + (2^λ - 1) * u) / λ``
    (u uniform); the earliest reply is multicast back and suppresses
    everyone whose timer has not yet fired, *if* they receive it.
    ``suppression_loss`` is the probability a member misses the
    suppressing reply; ``misbehaving_fraction`` models clients that
    reply regardless.
    """

    def __init__(
        self,
        window: float = 1.0,
        bias: float = 10.0,
        propagation_delay: float = 0.05,
        suppression_loss: float = 0.0,
        misbehaving_fraction: float = 0.0,
        implosion_threshold: int = 100,
        seed: int = 0,
    ) -> None:
        if window <= 0 or bias <= 0:
            raise WorkloadError("window and bias must be positive")
        if not 0 <= suppression_loss <= 1 or not 0 <= misbehaving_fraction <= 1:
            raise WorkloadError("loss and misbehaving fractions must be in [0, 1]")
        self.window = window
        self.bias = bias
        self.propagation_delay = propagation_delay
        self.suppression_loss = suppression_loss
        self.misbehaving_fraction = misbehaving_fraction
        self.implosion_threshold = implosion_threshold
        self.rng = random.Random(seed)

    def _draw_delay(self) -> float:
        u = self.rng.random()
        return self.window * math.log2(1 + (2**self.bias - 1) * u) / self.bias

    def poll(self, group_size: int) -> SuppressionOutcome:
        if group_size <= 0:
            return SuppressionOutcome(0.0, 0, 0, False, False)
        delays = sorted(self._draw_delay() for _ in range(group_size))
        first = delays[0]
        cutoff = first + self.propagation_delay
        replies = 0
        suppression_lost = False
        for i, delay in enumerate(delays):
            fired_before_suppression = delay <= cutoff
            missed_suppression = self.rng.random() < self.suppression_loss
            misbehaves = self.rng.random() < self.misbehaving_fraction
            if fired_before_suppression or missed_suppression or misbehaves:
                replies += 1
                if i > 0 and missed_suppression:
                    suppression_lost = True
        # Estimate N from the first-fire delay: with this timer family,
        # E[min delay] shrinks ~ log(N); invert the bias curve.
        if first <= 0:
            estimate = float(2**self.bias)
        else:
            estimate = (2**self.bias - 1) / max(
                2 ** (self.bias * first / self.window) - 1, 1e-9
            )
        return SuppressionOutcome(
            estimate=max(estimate, 1.0),
            replies=replies,
            messages_at_source=replies,
            suppression_lost=suppression_lost,
            implosion=replies > self.implosion_threshold,
        )

    def implosion_probability(self, group_size: int, trials: int = 50) -> float:
        """Monte-Carlo probability that a round implodes."""
        hits = sum(1 for _ in range(trials) if self.poll(group_size).implosion)
        return hits / trials
