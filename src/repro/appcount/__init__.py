"""Application-layer group-size estimation baselines (§7.3).

The paper contrasts ECMP's in-network counting with "pure
application-layer algorithms for scalable counting in multicast
groups": suppression-based probabilistic polling (Bolot et al. /
Nonnenmacher & Biersack style) and multi-round probing. These
implementations exist so the ``X2`` benchmark can measure the paper's
qualitative claims — suppression schemes risk feedback implosion when
the suppressing reply is lost or clients misbehave; multi-round schemes
avoid implosion but take more rounds; ECMP is exact with bounded
per-node load.
"""

from repro.appcount.multiround import MultiRoundEstimator, MultiRoundOutcome
from repro.appcount.polling import (
    ProbabilisticPollEstimator,
    SuppressionOutcome,
    SuppressionPollEstimator,
)

__all__ = [
    "MultiRoundEstimator",
    "MultiRoundOutcome",
    "ProbabilisticPollEstimator",
    "SuppressionOutcome",
    "SuppressionPollEstimator",
]
