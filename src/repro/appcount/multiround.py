"""Multi-round polling estimation (§7.3: "Multi-round schemes like [3]
avoid the implosion risk, but are slower than suppression-based
approaches.").

The estimator probes with a reply probability that starts tiny and
doubles each round until enough replies arrive; the final round's reply
count and probability give the estimate. Implosion is structurally
avoided (expected replies per round are bounded by the stopping rule),
at the cost of multiple round-trips over the group.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass
class MultiRoundOutcome:
    estimate: float
    rounds: int
    total_replies: int
    messages_at_source: int
    final_probability: float


class MultiRoundEstimator:
    """Doubling-probability polling."""

    def __init__(
        self,
        initial_probability: float = 1e-6,
        target_replies: int = 20,
        max_rounds: int = 40,
        seed: int = 0,
    ) -> None:
        if not 0 < initial_probability <= 1:
            raise WorkloadError("initial probability must be in (0, 1]")
        if target_replies < 1:
            raise WorkloadError("target replies must be >= 1")
        self.p0 = initial_probability
        self.target = target_replies
        self.max_rounds = max_rounds
        self.rng = random.Random(seed)

    def estimate(self, group_size: int) -> MultiRoundOutcome:
        if group_size < 0:
            raise WorkloadError("group size must be >= 0")
        p = self.p0
        rounds = 0
        total_replies = 0
        replies = 0
        while rounds < self.max_rounds:
            rounds += 1
            replies = sum(1 for _ in range(group_size) if self.rng.random() < p)
            total_replies += replies
            if replies >= self.target or p >= 1.0:
                break
            p = min(p * 2, 1.0)
        estimate = replies / p if p > 0 else 0.0
        return MultiRoundOutcome(
            estimate=estimate,
            rounds=rounds,
            total_replies=total_replies,
            messages_at_source=total_replies + rounds,  # replies + polls
            final_probability=p,
        )

    def expected_rounds(self, group_size: int) -> int:
        """Rounds until expected replies reach the target: the doubling
        walk from p0 to ~target/N."""
        import math

        if group_size <= 0:
            return self.max_rounds
        p_needed = min(self.target / group_size, 1.0)
        if p_needed <= self.p0:
            return 1
        return min(int(math.ceil(math.log2(p_needed / self.p0))) + 1, self.max_rounds)
