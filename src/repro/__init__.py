"""EXPRESS multicast channels — a reproduction of Holbrook & Cheriton,
"IP Multicast Channels: EXPRESS Support for Large-scale Single-source
Applications" (SIGCOMM 1999).

Public API tour
---------------

* :class:`~repro.netsim.Topology` / :class:`~repro.netsim.TopologyBuilder`
  — build a simulated internetwork.
* :class:`~repro.core.ExpressNetwork` — enable EXPRESS on it; get
  :meth:`host` / :meth:`source` handles implementing the paper's §2.1
  service interface (newSubscription, deleteSubscription, CountQuery,
  channelKey, subcast).
* :class:`~repro.core.Channel`, :func:`~repro.core.make_key` — channel
  identities and authenticators.
* :class:`~repro.core.ToleranceCurve` — §6 proactive counting.
* :mod:`repro.relay` — §4 session-relay middleware for multi-source
  applications (floor control, standby failover, reliable sequencing).
* :mod:`repro.routing` — the unicast substrate plus PIM-SM/CBT/DVMRP
  baseline models for the comparison benchmarks.
* :mod:`repro.costmodel` — §5's analytic cost models (Figure 6 and the
  in-text state/maintenance analyses).
* :mod:`repro.workloads` — churn generators and the named scenarios
  behind every figure reproduction.
"""

from repro.core import (
    Channel,
    ChannelAllocator,
    ChannelKey,
    ExpressNetwork,
    KeyCache,
    ProactiveCounter,
    ToleranceCurve,
    make_key,
)
from repro.core.ecmp import (
    ALL_CHANNELS_ID,
    NEIGHBORS_ID,
    SUBSCRIBER_ID,
    Count,
    CountPropagation,
    CountQuery,
    CountResponse,
    CountStatus,
    NeighborMode,
)
from repro.netsim import Simulator, Topology, TopologyBuilder

__version__ = "1.0.0"

__all__ = [
    "ALL_CHANNELS_ID",
    "Channel",
    "ChannelAllocator",
    "ChannelKey",
    "Count",
    "CountPropagation",
    "CountQuery",
    "CountResponse",
    "CountStatus",
    "ExpressNetwork",
    "KeyCache",
    "NEIGHBORS_ID",
    "NeighborMode",
    "ProactiveCounter",
    "SUBSCRIBER_ID",
    "Simulator",
    "ToleranceCurve",
    "Topology",
    "TopologyBuilder",
    "make_key",
]
