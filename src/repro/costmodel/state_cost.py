"""§5.2: management-level (process/DRAM) state cost.

"The state required for each count activity is roughly 16 bytes, namely
[channel, countId, count], plus various implementation fields. If we
further double this size to 32 bytes ..., assume an average fan-out of
2 (so three records including the upstream record) and assume 2 counts
outstanding at any time on a channel, the DRAM memory cost per channel
is 192 bytes ... Adding another eight bytes to store K(S,E), the total
size is 200 bytes. At $1.00 per megabyte, each channel costs less than
1/50-th of a cent in incremental cost over the assumed one year
lifetime of the router."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ecmp.state import COUNT_RECORD_BYTES
from repro.core.keys import KEY_BYTES
from repro.errors import WorkloadError

#: DRAM price assumed by the paper.
DRAM_DOLLARS_PER_MB = 1.00


@dataclass(frozen=True)
class ManagementStateModel:
    """§5.2, parameterized."""

    record_bytes: int = COUNT_RECORD_BYTES
    key_bytes: int = KEY_BYTES
    dollars_per_megabyte: float = DRAM_DOLLARS_PER_MB

    def channel_bytes(
        self,
        fanout: int = 2,
        outstanding_counts: int = 2,
        authenticated: bool = True,
    ) -> int:
        """Per-channel DRAM bytes (paper default: 200)."""
        if fanout < 0 or outstanding_counts < 1:
            raise WorkloadError("fanout >= 0 and outstanding counts >= 1 required")
        neighbor_records = fanout + 1  # downstream records + upstream
        total = neighbor_records * outstanding_counts * self.record_bytes
        if authenticated:
            total += self.key_bytes
        return total

    def channel_cost_dollars(self, **kwargs) -> float:
        """Purchase cost of one channel's management state (the paper's
        "less than 1/50-th of a cent")."""
        return self.channel_bytes(**kwargs) * self.dollars_per_megabyte / 1e6

    def router_bytes(self, channels: int, **kwargs) -> int:
        """Total management DRAM for ``channels`` concurrent channels —
        the §5 claim that "memory ... scales linearly with the number
        of channels"."""
        if channels < 0:
            raise WorkloadError("channel count must be >= 0")
        return channels * self.channel_bytes(**kwargs)

    def router_cost_dollars(self, channels: int, **kwargs) -> float:
        return self.router_bytes(channels, **kwargs) * self.dollars_per_megabyte / 1e6
