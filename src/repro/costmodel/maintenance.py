"""§5.3: the cost of state maintenance.

The worked scenario: "Consider a router with one million active
channels, where each channel's active lifetime is 20 minutes. Further
assume that the average fanout of a channel is two. ... In this
scenario, the router receives four million Count messages every 20
minutes, and sends two million. This means processing 3,333 requests
per second and generating half as many, for a total of approximately
5000 Count events per second."

Bandwidth: "approximately 92 16-byte Count messages fit in a 1480-byte
maximum-sized TCP segment on Ethernet. ... a router would receive 36
(3333/92) data segments [per second], or 424 kilobits per second of
control traffic, and send half as much."

CPU: the authors measured ~5,000 cycles/event on a 400 MHz Pentium-II;
4,500 events/s used ~4% of the CPU, and a sustained 33,000 events/s
used 43%. :class:`MaintenanceModel` turns any measured
events-per-second figure from our Python engine (the T4 benchmark) into
the same normalized quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ecmp.messages import (
    BATCH_HEADER_BYTES,
    COUNT_WIRE_BYTES,
    RECORD_FRAME_BYTES,
)
from repro.errors import WorkloadError
from repro.inet.headers import ETHERNET_TCP_SEGMENT

#: The paper's measured per-event CPU cost and reference clock.
PAPER_CYCLES_PER_EVENT = 5000
PAPER_CPU_HZ = 400e6
PAPER_CYCLES_SUBSCRIBE = 2700
PAPER_CYCLES_UNSUBSCRIBE = 3300
PAPER_CYCLES_BUFFER_MGMT = 995


def counts_per_segment(
    segment_bytes: int = ETHERNET_TCP_SEGMENT, count_bytes: int = COUNT_WIRE_BYTES
) -> int:
    """"approximately 92 16-byte Count messages fit in a 1480-byte
    maximum-sized TCP segment"."""
    if count_bytes <= 0:
        raise WorkloadError("count size must be positive")
    return segment_bytes // count_bytes


def counts_per_batch(
    segment_bytes: int = ETHERNET_TCP_SEGMENT, count_bytes: int = COUNT_WIRE_BYTES
) -> int:
    """Counts per MSG_BATCH frame in one TCP segment.

    The explicit frame costs a 4-byte batch header plus a 2-byte length
    prefix per record, so 82 (vs. the paper's back-of-envelope 92)
    16-byte Counts fit in a 1480-byte segment — the price of a codec
    that round-trips mixed message types and keyed Counts."""
    if count_bytes <= 0:
        raise WorkloadError("count size must be positive")
    return (segment_bytes - BATCH_HEADER_BYTES) // (RECORD_FRAME_BYTES + count_bytes)


@dataclass(frozen=True)
class MillionChannelScenario:
    """The §5.3 scenario, parameterized."""

    channels: int = 1_000_000
    lifetime_seconds: float = 1200.0
    fanout: int = 2

    def received_per_lifetime(self) -> int:
        """Counts received per channel lifetime: one subscribe and one
        unsubscribe from each of ``fanout`` downstream neighbors."""
        return self.channels * self.fanout * 2

    def sent_per_lifetime(self) -> int:
        """Counts sent upstream: one join, one leave."""
        return self.channels * 2

    def receive_rate(self) -> float:
        """Counts received per second (the paper's 3,333/s)."""
        return self.received_per_lifetime() / self.lifetime_seconds

    def send_rate(self) -> float:
        return self.sent_per_lifetime() / self.lifetime_seconds

    def event_rate(self) -> float:
        """Total Count events per second (the paper's ~5,000/s)."""
        return self.receive_rate() + self.send_rate()

    def receive_segments_per_second(self) -> float:
        """TCP segments per second inbound (the paper's 36/s)."""
        return self.receive_rate() / counts_per_segment()

    def receive_bandwidth_bps(self) -> float:
        """Inbound control bandwidth in bits/s (the paper's ~424 kbit/s,
        counting full segments)."""
        return self.receive_segments_per_second() * ETHERNET_TCP_SEGMENT * 8

    def send_bandwidth_bps(self) -> float:
        return self.receive_bandwidth_bps() / 2

    def coalesced_receive_frames_per_second(self) -> float:
        """MSG_BATCH frames per second inbound when Counts arrive fully
        coalesced (the implemented analogue of the paper's 36 segments
        per second, paying explicit framing overhead)."""
        return self.receive_rate() / counts_per_batch()

    def coalesced_receive_bandwidth_bps(self) -> float:
        """Inbound control bandwidth with MSG_BATCH framing, counting
        full segments as the paper does."""
        return self.coalesced_receive_frames_per_second() * ETHERNET_TCP_SEGMENT * 8

    def coalescing_wire_message_reduction(self) -> float:
        """How many fewer wire packets batching yields at this scale:
        unbatched sends one packet per Count, batched sends one frame
        per ``counts_per_batch()`` Counts."""
        return float(counts_per_batch())


@dataclass(frozen=True)
class MaintenanceModel:
    """CPU-normalization helpers for the measured engine."""

    cycles_per_event: float = PAPER_CYCLES_PER_EVENT
    cpu_hz: float = PAPER_CPU_HZ

    def cpu_utilization(self, events_per_second: float) -> float:
        """Fraction of the reference CPU consumed at this event rate."""
        if events_per_second < 0:
            raise WorkloadError("event rate must be >= 0")
        return events_per_second * self.cycles_per_event / self.cpu_hz

    def max_event_rate(self, utilization_budget: float = 1.0) -> float:
        """Event rate sustainable within a CPU budget."""
        return utilization_budget * self.cpu_hz / self.cycles_per_event

    @staticmethod
    def implied_cycles_per_event(
        events_per_second: float, utilization: float, cpu_hz: float = PAPER_CPU_HZ
    ) -> float:
        """Back out cycles/event from a measured (rate, utilization)
        pair — how the paper derives 3,500 and 5,200 cycles/event from
        its two measured operating points."""
        if events_per_second <= 0:
            raise WorkloadError("event rate must be positive")
        return utilization * cpu_hz / events_per_second
