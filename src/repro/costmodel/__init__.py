"""Analytic cost models from §5 of the paper.

* :mod:`~repro.costmodel.fib_cost` — Figure 6's FIB-memory cost model
  and the §5.1 worked examples (ten-way conference, 100k-subscriber
  stock ticker, cable-TV comparison points).
* :mod:`~repro.costmodel.state_cost` — §5.2's management-level (DRAM)
  state accounting.
* :mod:`~repro.costmodel.maintenance` — §5.3's state-maintenance
  analysis: event rates, control bandwidth, and CPU utilization for the
  million-channel scenario.

All constants default to the paper's 1998/99 values (SRAM $55/MB, DRAM
$1/MB, one-year router lifetime, 1% average FIB utilization, 400 MHz
Pentium-II) and are parameters, so the benchmarks can also evaluate the
models at modern prices.
"""

from repro.costmodel.fib_cost import (
    FibCostModel,
    conference_example,
    stock_ticker_example,
)
from repro.costmodel.maintenance import (
    MaintenanceModel,
    MillionChannelScenario,
    counts_per_segment,
)
from repro.costmodel.state_cost import ManagementStateModel

__all__ = [
    "FibCostModel",
    "MaintenanceModel",
    "ManagementStateModel",
    "MillionChannelScenario",
    "conference_example",
    "counts_per_segment",
    "stock_ticker_example",
]
