"""Figure 6: the FIB memory cost model, and §5.1's worked examples.

The model (quoting Figure 6):

    m   = FIB memory purchase cost per byte
    e   = bytes per FIB entry
    t_s = session s duration
    t_r = router lifetime
    u   = FIB utilization
    p_sr = m * e * t_s / (t_r * u)     — FIB cost of session s at router r

A k-channel, n-receiver application with h hops from source to each
receiver occupies at most ``k * n * h`` FIB entries network-wide (the
worst-case star-topology bound), so the session's total FIB cost is

    c_s <= k * n * h * p_sr.

Default constants are the paper's: 4-nanosecond SRAM at $55/MB (early
1998), 12-byte entries, one-year router lifetime, 1% average FIB
utilization.

Note on the paper's printed arithmetic: evaluating the paper's own
formula with its own inputs gives $0.0063 for the 10-way conference
(the text prints $.075) and $13,200/yr for the stock ticker (the text
prints $18,200). The discrepancy is in the paper's printed arithmetic,
not the model; both the formula value and the printed value are
reported by the FIG6 benchmark, and the paper's *conclusions* (costs
are small relative to application value) hold for either.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.routing.fib import FIB_ENTRY_BYTES

#: $55 per megabyte of fast-path SRAM (Motorola quote, Feb 1998).
SRAM_DOLLARS_PER_MB = 55.0
#: Seconds in the paper's one-year router lifetime.
ROUTER_LIFETIME_SECONDS = 31_536_000
#: The paper's assumed average FIB utilization.
FIB_UTILIZATION = 0.01
#: The paper's assumed network diameter (hops source -> subscriber).
NETWORK_DIAMETER_HOPS = 25


@dataclass(frozen=True)
class FibCostModel:
    """Figure 6, parameterized."""

    dollars_per_megabyte: float = SRAM_DOLLARS_PER_MB
    entry_bytes: int = FIB_ENTRY_BYTES
    router_lifetime: float = ROUTER_LIFETIME_SECONDS
    utilization: float = FIB_UTILIZATION

    def __post_init__(self) -> None:
        if min(
            self.dollars_per_megabyte,
            self.entry_bytes,
            self.router_lifetime,
            self.utilization,
        ) <= 0:
            raise WorkloadError("all FIB cost model parameters must be positive")

    @property
    def dollars_per_byte(self) -> float:
        # Decimal megabytes: $55/MB * 12 B = $0.00066/entry, matching
        # the paper's printed per-entry figure exactly.
        return self.dollars_per_megabyte / 1e6

    def entry_purchase_cost(self) -> float:
        """Purchase cost of one FIB entry (the paper's $0.00066)."""
        return self.dollars_per_byte * self.entry_bytes

    def per_entry_session_cost(self, session_seconds: float) -> float:
        """p_sr: one entry, one session, utilization-adjusted."""
        if session_seconds < 0:
            raise WorkloadError("session duration must be >= 0")
        return (
            self.entry_purchase_cost()
            * session_seconds
            / (self.router_lifetime * self.utilization)
        )

    def session_cost(
        self,
        channels: int,
        receivers: int,
        hops: int,
        session_seconds: float,
    ) -> float:
        """c_s <= k*n*h * p_sr — the worst-case (star topology) bound."""
        entries = channels * receivers * hops
        return entries * self.per_entry_session_cost(session_seconds)

    def tree_cost(self, total_entries: int, session_seconds: float) -> float:
        """Cost from an actual entry count (e.g. a measured tree, which
        is below the k*n*h bound whenever branches share links)."""
        return total_entries * self.per_entry_session_cost(session_seconds)

    def yearly_cost(self, total_entries: int) -> float:
        """Long-running session: t_s == t_r."""
        return self.tree_cost(total_entries, self.router_lifetime)


def conference_example(model: FibCostModel = FibCostModel()) -> dict:
    """§5.1's fully-meshed 10-way, 10-channel, 20-minute conference.

    Returns the per-formula cost plus the paper's printed figures for
    side-by-side reporting.
    """
    cost = model.session_cost(
        channels=10, receivers=10, hops=NETWORK_DIAMETER_HOPS, session_seconds=1200
    )
    return {
        "channels": 10,
        "receivers": 10,
        "hops": NETWORK_DIAMETER_HOPS,
        "session_seconds": 1200,
        "formula_cost_dollars": cost,
        "formula_cost_per_channel": cost / 10,
        "paper_printed_total": 0.075,
        "paper_printed_per_channel": 0.0075,
        "paper_bound_statement": "less than eight cents for the whole conference",
    }


def stock_ticker_example(model: FibCostModel = FibCostModel()) -> dict:
    """§5.1's 100,000-subscriber stock ticker: ~200,000 tree links
    (fanout 1-2 everywhere), running all year."""
    links = 200_000
    yearly = model.yearly_cost(links)
    return {
        "subscribers": 100_000,
        "tree_links": links,
        "formula_yearly_dollars": yearly,
        "formula_cents_per_subscriber_year": yearly / 100_000 * 100,
        "paper_printed_yearly": 18_200.0,
        "paper_printed_cents_per_subscriber_year": 0.18,
        "cable_tv_lease_per_viewer_month": 1.00,
        "tv_channel_sale_per_viewer": 25.00,
    }
