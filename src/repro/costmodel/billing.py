"""ISP billing for multicast channels (§2.2.3).

"The single source 'ownership' of the channel gives a basis on which to
charge and, of course, whom to charge, namely the source. ... The
ability, provided by the counting support, to determine the number of
subscribers assists the ISP in charging for multicast channels based on
different scales of use, differentiating among channels with 10s, 100s,
1000s, and millions of subscribers."

And §6 on sampling cadence: "to charge for the transmission of a video
over the Internet, one might look at the average number of subscribers
over the 90 minutes or so of the movie, perhaps sampling the count
every 5 or 10 minutes."

:class:`TieredBillingPolicy` prices a channel from count samples;
:class:`BillingCollector` drives the periodic ``CountQuery`` sampling
against a live channel and produces the invoice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.channel import Channel
    from repro.core.network import SourceHandle


@dataclass(frozen=True)
class BillingTier:
    """Channels with an average audience up to ``max_subscribers`` pay
    ``rate_per_hour`` dollars per hour."""

    name: str
    max_subscribers: int
    rate_per_hour: float


#: The paper's scales of use: 10s, 100s, 1000s, and millions.
DEFAULT_TIERS = (
    BillingTier("tens", 100, 0.10),
    BillingTier("hundreds", 1_000, 1.00),
    BillingTier("thousands", 1_000_000, 10.00),
    BillingTier("millions", 10**9, 1_000.00),
)


@dataclass
class Invoice:
    """One channel's bill for one session."""

    channel: str
    tier: str
    average_subscribers: float
    peak_subscribers: int
    duration_hours: float
    amount: float
    samples: list = field(default_factory=list)


class TieredBillingPolicy:
    """Prices a channel session from subscriber-count samples."""

    def __init__(self, tiers: tuple = DEFAULT_TIERS) -> None:
        if not tiers:
            raise WorkloadError("need at least one billing tier")
        ordered = sorted(tiers, key=lambda t: t.max_subscribers)
        if len({t.max_subscribers for t in ordered}) != len(ordered):
            raise WorkloadError("tier boundaries must be distinct")
        self.tiers = tuple(ordered)

    def classify(self, average_subscribers: float) -> BillingTier:
        for tier in self.tiers:
            if average_subscribers <= tier.max_subscribers:
                return tier
        return self.tiers[-1]

    def invoice(
        self, channel: "Channel", samples: list, duration_hours: float
    ) -> Invoice:
        """Bill from periodic count samples (§6's sampled-average
        charging). Empty channels bill at the lowest tier."""
        if duration_hours < 0:
            raise WorkloadError("duration must be >= 0")
        counts = [count for count in samples if count is not None]
        average = sum(counts) / len(counts) if counts else 0.0
        peak = max(counts) if counts else 0
        tier = self.classify(average)
        return Invoice(
            channel=str(channel),
            tier=tier.name,
            average_subscribers=average,
            peak_subscribers=peak,
            duration_hours=duration_hours,
            amount=tier.rate_per_hour * duration_hours,
            samples=list(counts),
        )


class BillingCollector:
    """Periodic count sampling for one channel on a live network.

    The ISP samples the subscriber count every ``interval`` seconds
    ("every 5 or 10 minutes") via ECMP CountQuery — any on-tree router
    could run this without source cooperation; we sample from the
    source's node for convenience.
    """

    def __init__(
        self,
        source: "SourceHandle",
        channel: "Channel",
        interval: float = 300.0,
        query_timeout: float = 5.0,
        policy: Optional[TieredBillingPolicy] = None,
    ) -> None:
        if interval <= 0:
            raise WorkloadError("sampling interval must be positive")
        self.source = source
        self.channel = channel
        self.interval = interval
        self.query_timeout = query_timeout
        self.policy = policy or TieredBillingPolicy()
        self.samples: list[int] = []
        self.started_at: Optional[float] = None
        self._stopped = False

    def start(self) -> None:
        sim = self.source.net.sim
        self.started_at = sim.now
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        if self._stopped:
            return
        self.source.net.sim.schedule(self.interval, self._sample, name="billing-sample")

    def _sample(self) -> None:
        if self._stopped:
            return
        result = self.source.count_query(self.channel, timeout=self.query_timeout)
        result.on_done(lambda res: self.samples.append(res.count or 0))
        self._schedule_next()

    def invoice(self) -> Invoice:
        sim = self.source.net.sim
        started = self.started_at if self.started_at is not None else sim.now
        duration_hours = (sim.now - started) / 3600.0
        return self.policy.invoice(self.channel, self.samples, duration_hours)
